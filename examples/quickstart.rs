//! Quickstart: run the OTEM controller over one standard drive cycle and
//! print the paper's headline metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use otem_repro::control::{policy::Otem, Simulator, SystemConfig};
use otem_repro::drivecycle::{standard, Powertrain, StandardCycle, VehicleParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The system: compact EV pack + 25,000 F ultracapacitor bank +
    //    active liquid cooling, at 25 °C ambient.
    let config = SystemConfig::default();

    // 2. The route: one US06 (the EPA's aggressive supplemental cycle),
    //    converted to a battery-bus power-request trace.
    let cycle = standard(StandardCycle::Us06)?;
    let powertrain = Powertrain::new(VehicleParams::midsize_ev())?;
    let trace = powertrain.power_trace(&cycle);
    println!(
        "route: {} ({:.1} km, {:.0} s, peak request {:.0} kW)",
        cycle.name(),
        cycle.distance().value() / 1000.0,
        cycle.duration().value(),
        trace.peak().value() / 1000.0
    );

    // 3. The controller: OTEM's model-predictive thermal + energy manager.
    let mut otem = Otem::new(&config)?;

    // 4. Drive.
    let result = Simulator::new(&config).run(&mut otem, &trace);

    // 5. The paper's Algorithm 1 outputs.
    println!(
        "capacity loss Q_loss : {:.4e} (fraction of rated)",
        result.capacity_loss()
    );
    println!(
        "HEES energy          : {:.2} MJ",
        result.energy().value() / 1e6
    );
    println!(
        "average power        : {:.2} kW",
        result.average_power().value() / 1000.0
    );
    println!(
        "cooling energy       : {:.2} MJ",
        result.cooling_energy().value() / 1e6
    );
    println!(
        "peak battery temp    : {:.1} °C (limit {:.1} °C, exceeded {:.0} s)",
        result.peak_battery_temp().to_celsius().value(),
        config.temp_max.to_celsius().value(),
        result.time_above(config.temp_max).value()
    );
    println!(
        "projected lifetime   : {:.0} driving hours to 20% capacity loss",
        0.20 / result.capacity_loss() * result.duration().value() / 3600.0
    );
    Ok(())
}
