//! Pack hot-spot study with the N-node thermal extension: under serial
//! coolant flow the last segments run hotter; stronger cell-to-cell
//! conduction flattens the gradient. The lumped model the OTEM
//! controller uses corresponds to the mean.
//!
//! ```sh
//! cargo run --release --example pack_hotspot
//! ```

use otem_repro::thermal::{MultiNodeModel, MultiNodeState, ThermalParams};
use otem_repro::units::{Kelvin, Seconds, Watts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let inlet = Kelvin::from_celsius(18.0);
    let heat = Watts::new(3_000.0);

    println!(
        "{:>12} {:>10} {:>10} {:>10}",
        "conduction", "mean (°C)", "max (°C)", "spread (K)"
    );
    for conduction in [5.0, 50.0, 500.0] {
        let model = MultiNodeModel::new(ThermalParams::ev_pack(), 8, conduction)?;
        let mut state = MultiNodeState::uniform(8, Kelvin::from_celsius(25.0));
        for _ in 0..3_600 {
            state = model.step(&state, heat, inlet, Seconds::new(1.0));
        }
        println!(
            "{:>10} W/K {:>9.2} {:>10.2} {:>10.2}",
            conduction,
            state.mean().to_celsius().value(),
            state.max().to_celsius().value(),
            state.spread().value(),
        );
    }
    println!("\nSegment profile at 50 W/K conduction (flow direction →):");
    let model = MultiNodeModel::new(ThermalParams::ev_pack(), 8, 50.0)?;
    let mut state = MultiNodeState::uniform(8, Kelvin::from_celsius(25.0));
    for _ in 0..3_600 {
        state = model.step(&state, heat, inlet, Seconds::new(1.0));
    }
    for (i, t) in state.segments.iter().enumerate() {
        println!("  segment {i}: {:.2} °C", t.to_celsius().value());
    }
    Ok(())
}
