//! How much is missing future knowledge worth? Compare receding-horizon
//! OTEM (short forecast window) against the clairvoyant DP charge
//! allocator (whole route known, energy-only objective) on a pulsed
//! commute.
//!
//! ```sh
//! cargo run --release --example clairvoyant_gap
//! ```

use otem_repro::control::mpc::MpcConfig;
use otem_repro::control::planner::{plan_split, PlannerConfig};
use otem_repro::control::policy::Otem;
use otem_repro::control::{Simulator, SystemConfig};
use otem_repro::drivecycle::{standard, Powertrain, StandardCycle, VehicleParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SystemConfig::default();
    let cycle = standard(StandardCycle::Us06)?;
    let trace = Powertrain::new(VehicleParams::midsize_ev())?.power_trace(&cycle);

    // The clairvoyant bound: whole route, energy-only DP.
    let plan = plan_split(&config, &trace, &PlannerConfig::default())?;

    // Battery-only reference.
    let mpc_off = MpcConfig {
        w2: 0.0,
        horizon: 1,
        ..MpcConfig::default()
    };
    let mut solo = Otem::with_mpc(&config, mpc_off)?;
    let solo_energy = Simulator::new(&config).run(&mut solo, &trace).energy();

    println!(
        "US06, {:.1} km, energy to complete the route:",
        cycle.distance().value() / 1000.0
    );
    println!(
        "  battery-dominated (no lookahead) : {:.3} MJ",
        solo_energy.value() / 1e6
    );
    for horizon in [4usize, 12, 24] {
        let mpc = MpcConfig {
            w2: 0.0, // energy-only, apples-to-apples with the DP
            horizon,
            ..MpcConfig::default()
        };
        let mut otem = Otem::with_mpc(&config, mpc)?;
        let r = Simulator::new(&config).run(&mut otem, &trace);
        let gap = (r.energy().value() / plan.energy.value() - 1.0) * 100.0;
        println!(
            "  OTEM, {horizon:>2} s window              : {:.3} MJ  ({gap:+.1}% vs clairvoyant)",
            r.energy().value() / 1e6
        );
    }
    println!(
        "  clairvoyant DP (whole route)     : {:.3} MJ",
        plan.energy.value() / 1e6
    );
    println!("\nEven a 4 s causal window lands within a few percent of the non-causal");
    println!("optimum on pure energy — longer windows buy *lifetime* (thermal");
    println!("preparation), not energy, which is why OTEM's joint objective matters.");
    Ok(())
}
