//! Drive a *custom* route with a *custom* vehicle: synthesise a cycle
//! from your own summary statistics (e.g. a delivery loop), model a
//! heavier van, and let OTEM manage the storage.
//!
//! ```sh
//! cargo run --release --example custom_cycle
//! ```

use otem_repro::control::{policy::Otem, Simulator, SystemConfig};
use otem_repro::drivecycle::{synthesize, CycleSpec, Powertrain, VehicleParams};
use otem_repro::units::{
    Kilograms, Meters, MetersPerSecond, MetersPerSecondSquared, Ratio, Seconds, Watts,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A suburban delivery loop: 8 km in 20 minutes with 9 stops.
    let spec = CycleSpec {
        name: "delivery-loop".to_owned(),
        duration: Seconds::new(1_200.0),
        distance: Meters::new(8_000.0),
        max_speed: MetersPerSecond::from_kmh(70.0),
        stops: 9,
        max_accel: MetersPerSecondSquared::new(2.0),
        idle_fraction: 0.22,
        max_specific_power: 16.0,
    };
    let cycle = synthesize(&spec, 7)?;

    // A delivery van: heavier, blunter, more accessory load.
    let van = VehicleParams {
        mass: Kilograms::new(2_900.0),
        drag_coefficient: 0.33,
        frontal_area: 3.4,
        accessory_power: Watts::new(900.0),
        regen_efficiency: Ratio::new(0.55),
        ..VehicleParams::midsize_ev()
    };
    let trace = Powertrain::new(van)?.power_trace(&cycle);

    let config = SystemConfig::default();
    let mut otem = Otem::new(&config)?;
    let result = Simulator::new(&config).run(&mut otem, &trace);

    println!(
        "{}: {:.1} km, mean request {:.1} kW, peak {:.1} kW",
        cycle.name(),
        cycle.distance().value() / 1000.0,
        trace.mean().value() / 1000.0,
        trace.peak().value() / 1000.0
    );
    println!(
        "OTEM: loss {:.3e}, energy {:.2} MJ, avg {:.2} kW, Tpeak {:.1} °C",
        result.capacity_loss(),
        result.energy().value() / 1e6,
        result.average_power().value() / 1000.0,
        result.peak_battery_temp().to_celsius().value()
    );
    Ok(())
}
