//! BMS state-of-charge estimation demo: the controller sees only noisy
//! terminal voltage and a biased current sensor, while the "true" cell
//! follows the second-order transient model. The extended Kalman filter
//! recovers the SoC that pure coulomb counting loses.
//!
//! ```sh
//! cargo run --release --example bms_estimation
//! ```

use otem_repro::battery::{Cell, CellParams, SocEstimator, TransientCell};
use otem_repro::drivecycle::{standard, StandardCycle};
use otem_repro::units::{Amps, Kelvin, Ratio, Seconds};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = CellParams::ncr18650a();
    let room = Kelvin::from_celsius(25.0);
    let dt = Seconds::new(1.0);

    // Ground truth: a transient (RC-pair) cell starting at 92 %.
    let mut truth = TransientCell::ncr18650a(Ratio::new(0.92))?;

    // The BMS: boots believing 70 %, sees a +4 % biased current sensor,
    // and corrects against the terminal voltage.
    let mut ekf = SocEstimator::new(params.clone(), Ratio::new(0.70))?;
    let mut dead_reckoning = Cell::new(params, Ratio::new(0.70))?;
    let sensor_bias = 1.04;

    // Load: per-cell current scaled from a UDDS drive (1C peak-ish).
    let cycle = standard(StandardCycle::Udds)?;
    let currents: Vec<f64> = cycle
        .speeds()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let accel = cycle.acceleration(i).value();
            (0.08 * s.value() + 1.1 * accel).clamp(-3.0, 5.0)
        })
        .collect();

    println!(
        "{:>6} {:>8} {:>10} {:>12} {:>12}",
        "t(s)", "true(%)", "EKF(%)", "EKF err", "coulomb err"
    );
    for (t, &i) in currents.iter().enumerate() {
        let current = Amps::new(i);
        let sensed = Amps::new(i * sensor_bias);
        let v = truth.terminal_voltage(current, room);
        truth.step(current, room, dt);
        ekf.update(sensed, v, room, dt);
        dead_reckoning.integrate_current(sensed, dt);

        if t % 150 == 0 {
            let true_soc = truth.cell().soc().value();
            println!(
                "{:>6} {:>8.1} {:>10.1} {:>12.3} {:>12.3}",
                t,
                true_soc * 100.0,
                ekf.estimate().value() * 100.0,
                (ekf.estimate().value() - true_soc).abs(),
                (dead_reckoning.soc().value() - true_soc).abs(),
            );
        }
    }
    let true_soc = truth.cell().soc().value();
    println!(
        "\nfinal: truth {:.1}%, EKF {:.1}%, coulomb-only {:.1}%",
        true_soc * 100.0,
        ekf.estimate().value() * 100.0,
        dead_reckoning.soc().value() * 100.0
    );
    println!("The EKF absorbs both the wrong boot guess and the sensor bias;");
    println!("dead reckoning keeps the boot error and accumulates the bias.");
    Ok(())
}
