//! Ultracapacitor sizing study (the paper's Fig. 1 motivation): under
//! the dual architecture, undersized banks deplete mid-cycle and the
//! battery overheats; OTEM's access to active cooling makes it nearly
//! size-independent.
//!
//! ```sh
//! cargo run --release --example ucap_sizing
//! ```

use otem_repro::control::{
    policy::{Dual, Otem},
    Controller, Simulator, SystemConfig,
};
use otem_repro::drivecycle::{standard, Powertrain, StandardCycle, VehicleParams};
use otem_repro::units::Farads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cycle = standard(StandardCycle::Us06)?.repeat(3);
    let trace = Powertrain::new(VehicleParams::midsize_ev())?.power_trace(&cycle);

    println!(
        "{:>9} {:>14} {:>12} {:>12} {:>12}",
        "size (F)", "methodology", "Q_loss", "Tpeak (°C)", "t>40°C (s)"
    );
    for farads in [5_000.0, 10_000.0, 25_000.0] {
        let config = SystemConfig::with_capacitance(Farads::new(farads));
        let sim = Simulator::new(&config);
        let mut controllers: Vec<Box<dyn Controller>> =
            vec![Box::new(Dual::new(&config)?), Box::new(Otem::new(&config)?)];
        for controller in controllers.iter_mut() {
            let r = sim.run(controller.as_mut(), &trace);
            println!(
                "{:>9.0} {:>14} {:>12.4e} {:>12.1} {:>12.0}",
                farads,
                r.methodology,
                r.capacity_loss(),
                r.peak_battery_temp().to_celsius().value(),
                r.time_above(config.temp_max).value(),
            );
        }
    }
    println!("\nOTEM's loss varies far less with bank size than Dual's:");
    println!("the active cooling system substitutes for missing buffer energy.");
    Ok(())
}
