//! Battery-lifetime study with degradation feedback: simulate months of
//! daily commuting, feeding each day's capacity loss back into the pack
//! (a smaller effective capacity raises the C-rate stress, accelerating
//! wear), and compare how far each methodology stretches the battery.
//!
//! ```sh
//! cargo run --release --example lifetime_study
//! ```

use otem_repro::battery::AgingModel;
use otem_repro::control::{
    policy::{Dual, Parallel},
    Controller, Simulator, SystemConfig,
};
use otem_repro::drivecycle::{standard, Powertrain, StandardCycle, VehicleParams};
use otem_repro::units::Kelvin;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hard-driving day on the city-EV rig: US06 out and back, twice,
    // in a hot climate — the regime where management choices decide the
    // battery's fate.
    let config = SystemConfig {
        ambient: Kelvin::from_celsius(35.0),
        ..SystemConfig::stress_rig()
    }
    .with_ambient(Kelvin::from_celsius(35.0));
    let cycle = standard(StandardCycle::Us06)?.repeat(4);
    let trace = Powertrain::new(VehicleParams::compact_ev())?.power_trace(&cycle);
    let sim = Simulator::new(&config);

    // A "day" of simulated driving is extrapolated to represent a month
    // of calendar wear so the study completes quickly.
    let days_per_run = 30.0;

    println!(
        "{:<12} {:>8} {:>16} {:>18}",
        "methodology", "months", "capacity left", "daily loss trend"
    );
    for name in ["Parallel", "Dual"] {
        let mut months = 0u32;
        let mut total_loss = 0.0;
        let mut first_daily = None;
        let mut last_daily = 0.0;
        while total_loss < AgingModel::END_OF_LIFE_LOSS && months < 600 {
            let mut controller: Box<dyn Controller> = match name {
                "Parallel" => Box::new(Parallel::new(&config)?),
                _ => Box::new(Dual::new(&config)?),
            };
            // NOTE: each run starts from the *degraded* capacity via the
            // higher C-rate implied by the accumulated loss. We model the
            // feedback by scaling the measured loss: stress grows like
            // (1/(1−loss))^1.15 (the aging law's current exponent).
            let r = sim.run(controller.as_mut(), &trace);
            let stress_factor = (1.0 / (1.0 - total_loss)).powf(1.15);
            let daily = r.capacity_loss() * stress_factor;
            first_daily.get_or_insert(daily);
            last_daily = daily;
            total_loss += daily * days_per_run;
            months += 1;
        }
        println!(
            "{:<12} {:>8} {:>15.1}% {:>17.2}x",
            name,
            months,
            (1.0 - total_loss.min(0.2)) * 100.0,
            last_daily / first_daily.unwrap_or(1.0),
        );
    }
    println!("\nThe degradation feedback (smaller effective capacity ⇒ higher C-rate ⇒");
    println!("faster wear) compounds: the daily loss grows over the battery's life.");
    Ok(())
}
