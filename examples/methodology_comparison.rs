//! Compare all four methodologies of the paper on an aggressive commute
//! (US06 driven twice), reproducing the qualitative story of Section IV:
//! OTEM extends battery lifetime at a small energy premium over the
//! unmanaged parallel architecture, and undercuts the pure active
//! cooling system on both metrics.
//!
//! ```sh
//! cargo run --release --example methodology_comparison
//! ```

use otem_repro::control::{
    policy::{ActiveCooling, Dual, Otem, Parallel},
    Controller, Simulator, SystemConfig,
};
use otem_repro::drivecycle::{standard, Powertrain, StandardCycle, VehicleParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SystemConfig::default();
    let cycle = standard(StandardCycle::Us06)?.repeat(2);
    let trace = Powertrain::new(VehicleParams::midsize_ev())?.power_trace(&cycle);
    let sim = Simulator::new(&config);

    let mut controllers: Vec<Box<dyn Controller>> = vec![
        Box::new(Parallel::new(&config)?),
        Box::new(ActiveCooling::new(&config)?),
        Box::new(Dual::new(&config)?),
        Box::new(Otem::new(&config)?),
    ];

    println!(
        "{:<14} {:>12} {:>10} {:>10} {:>9}",
        "methodology", "Q_loss", "avgP (kW)", "cool (MJ)", "Tpeak(°C)"
    );
    let mut baseline_loss = None;
    for controller in controllers.iter_mut() {
        let r = sim.run(controller.as_mut(), &trace);
        let loss = r.capacity_loss();
        let rel = baseline_loss
            .map(|b: f64| format!(" ({:+.1}% vs Parallel)", (loss / b - 1.0) * 100.0))
            .unwrap_or_default();
        if baseline_loss.is_none() {
            baseline_loss = Some(loss);
        }
        println!(
            "{:<14} {:>12.4e} {:>10.2} {:>10.2} {:>9.1}{rel}",
            r.methodology,
            loss,
            r.average_power().value() / 1000.0,
            r.cooling_energy().value() / 1e6,
            r.peak_battery_temp().to_celsius().value(),
        );
    }
    Ok(())
}
