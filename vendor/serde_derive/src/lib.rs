//! Offline stand-in for `serde_derive`.
//!
//! This workspace derives `Serialize`/`Deserialize` on its model types
//! for downstream consumers, but never serialises anything itself (no
//! `serde_json`, no wire format). The container this repo builds in has
//! no network access to crates.io, so the real derive machinery (syn,
//! quote, proc-macro2) is unavailable. This stub accepts the same derive
//! syntax — including `#[serde(...)]` attributes — and expands to
//! nothing, which is sufficient because no code in the workspace requires
//! the `Serialize`/`Deserialize` trait bounds.
//!
//! Swapping the real serde back in is a one-line change in the workspace
//! `Cargo.toml` once a registry is reachable.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
