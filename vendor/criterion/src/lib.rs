//! Offline stand-in for `criterion` 0.5.
//!
//! The build container cannot reach crates.io, so this crate implements
//! the subset of the criterion API the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Methodology is deliberately simple: a short warm-up, then repeated
//! timed batches until a wall-clock budget or sample count is reached,
//! reporting mean and min per-iteration latency to stdout. There is no
//! statistical analysis, HTML report, or saved baseline — this harness
//! exists so `cargo bench` compiles and produces honest order-of-magnitude
//! numbers offline. Passing `--test` (as `cargo test --benches` does)
//! runs each benchmark body exactly once as a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Times one benchmark body via [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    target_samples: usize,
    budget: Duration,
    smoke_test: bool,
}

impl Bencher {
    fn new(target_samples: usize, smoke_test: bool) -> Self {
        Self {
            samples: Vec::new(),
            iters_per_sample: 1,
            target_samples,
            budget: Duration::from_secs(3),
            smoke_test,
        }
    }

    /// Runs `routine` repeatedly, recording per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.smoke_test {
            black_box(routine());
            return;
        }
        // Warm-up: one untimed call, then size batches so each sample
        // takes ≳1ms (keeps Instant overhead out of fast routines).
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        self.iters_per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos())
            .clamp(1, 10_000) as u64;

        let started = Instant::now();
        while self.samples.len() < self.target_samples && started.elapsed() < self.budget {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / self.iters_per_sample as u32);
        }
    }

    fn report(&self, label: &str) {
        if self.smoke_test {
            println!("{label}: ok (smoke test)");
            return;
        }
        if self.samples.is_empty() {
            println!("{label}: no samples collected");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{label}: mean {mean:?}, min {min:?} ({} samples x {} iters)",
            self.samples.len(),
            self.iters_per_sample
        );
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    smoke_test: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        let mut bencher = Bencher::new(self.sample_size, self.smoke_test);
        routine(&mut bencher);
        bencher.report(&label);
        self
    }

    /// Benchmarks `routine` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        let mut bencher = Bencher::new(self.sample_size, self.smoke_test);
        routine(&mut bencher, input);
        bencher.report(&label);
        self
    }

    /// Finishes the group (upstream writes reports here; this is a no-op).
    pub fn finish(self) {}
}

/// Anything accepted where criterion takes a benchmark id.
pub trait IntoBenchmarkId {
    /// Converts into a concrete [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` runs harness-free bench binaries with
        // `--test`; run each body once so tests stay fast.
        let smoke_test = std::env::args().any(|a| a == "--test");
        Self { smoke_test }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            smoke_test: self.smoke_test,
            _criterion: self,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, routine);
        self
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_routines() {
        let mut c = Criterion { smoke_test: true };
        let mut calls = 0u32;
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("f", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("g", 3), &3u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert_eq!(calls, 1);
    }
}
