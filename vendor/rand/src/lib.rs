//! Offline stand-in for `rand` 0.8.
//!
//! The build container cannot reach crates.io, so this crate provides
//! the subset of the `rand` API the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over `f64` and
//! integer ranges — backed by a SplitMix64 generator. Determinism is the
//! property the workspace actually relies on (seeded cycle synthesis,
//! reproducibility tests); statistical quality beyond SplitMix64 is not.
//!
//! The generated *sequences* differ from upstream `rand`'s ChaCha-based
//! `StdRng`, which is acceptable: nothing in the repo pins golden values
//! produced by upstream rand.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (stand-in for `rand::Rng`).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next `f64` uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from the given range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range, matching upstream `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * rng.next_f64()
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_sample_range!(u32, u64, usize, i32, i64);

/// Named generators (stand-in for `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A seedable deterministic generator (SplitMix64 core).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014) — passes BigCrush,
            // one u64 of state, trivially seedable.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&x));
            let y = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(0usize..=4);
            assert!(y <= 4);
        }
    }
}
