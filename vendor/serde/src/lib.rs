//! Offline stand-in for `serde`.
//!
//! The workspace tags its model types `#[derive(Serialize, Deserialize)]`
//! for downstream consumers but never serialises anything internally, and
//! the build container cannot reach crates.io. This stub provides the
//! trait names (so `use serde::{Serialize, Deserialize}` resolves) and
//! re-exports the no-op derive macros from the sibling `serde_derive`
//! stub. No code in the workspace requires the trait bounds, so empty
//! marker traits are sufficient.

/// Marker stand-in for `serde::Serialize` (no methods; nothing in this
/// workspace serialises through serde).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no methods; nothing in this
/// workspace deserialises through serde).
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
