//! Offline stand-in for `proptest` 1.x.
//!
//! The build container cannot reach crates.io, so this crate implements
//! the subset of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * range strategies over `f64` and integers, [`Strategy::prop_map`],
//!   and [`collection::vec`].
//!
//! Inputs are generated from a fixed-seed SplitMix64 stream, so every
//! run explores the same deterministic case set (upstream proptest also
//! defaults to a deterministic RNG when persistence is off). Shrinking
//! is not implemented: a failing case panics with the generated inputs
//! printed, which is enough to reproduce (the stream is deterministic).

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 stream driving input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with the harness's fixed default seed.
    pub fn deterministic() -> Self {
        Self {
            state: 0x07E3_57E5_7E57_0001,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next `f64` uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `u64` below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Test-runner types (stand-in for `proptest::test_runner`).
pub mod test_runner {
    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Why a generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the property is falsified.
        Fail(String),
        /// `prop_assume!` rejected the inputs; try another case.
        Reject,
    }

    impl TestCaseError {
        /// A falsification with the given message.
        pub fn fail(message: String) -> Self {
            Self::Fail(message)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Self::Fail(m) => write!(f, "{m}"),
                Self::Reject => write!(f, "inputs rejected by prop_assume!"),
            }
        }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: fmt::Debug;

    /// Draws one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adaptor.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range strategy");
        lo + (hi - lo) * rng.next_f64()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy that always produces the same value (stand-in for
/// `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies of one value type — the
/// engine behind [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Union")
            .field("options", &self.options.len())
            .finish()
    }
}

impl<T: fmt::Debug> Union<T> {
    /// Builds the union; panics on an empty option list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Boxes a strategy for use in a [`Union`] (the `as Box<dyn _>` cast a
/// macro cannot spell without knowing the value type).
pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(strategy)
}

/// Uniform choice among strategies of the same value type (stand-in
/// for `proptest::prop_oneof!`; upstream's optional per-arm weights are
/// not supported — every arm is equally likely).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strategy)),+])
    };
}

/// Collection strategies (stand-in for `proptest::collection`).
pub mod collection {
    use super::{fmt, Strategy, TestRng};

    /// Lengths a generated `Vec` may take.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec-size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span > 1 { rng.below(span) as usize } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the property tests import (stand-in for
/// `proptest::prelude::*`).
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, Strategy,
    };

    /// Module alias so `prop::collection::vec` resolves as it does with
    /// the real proptest prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    (@munch ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic();
            let mut ran: u32 = 0;
            let mut rejected: u32 = 0;
            while ran < config.cases {
                // Generate outside the closure so failures can print the
                // inputs that falsified the property.
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)*
                // Render the inputs before the body runs: the body may
                // move them, and on failure the panic must still be able
                // to show what falsified the property.
                let mut input_repr = String::new();
                $(input_repr.push_str(&format!(
                    "  {} = {:?}\n",
                    stringify!($arg),
                    &$arg
                ));)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                    let case = || {
                        $body
                        Ok(())
                    };
                    case()
                };
                match outcome {
                    Ok(()) => ran += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases * 16 + 256,
                            "property {} rejected too many inputs via prop_assume!",
                            stringify!($name),
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(message)) => {
                        panic!(
                            "property {} falsified after {} passing case(s)\n{}inputs:\n{}",
                            stringify!($name),
                            ran,
                            message,
                            input_repr,
                        );
                    }
                }
            }
        }
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    (@munch ($config:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts inside [`proptest!`] bodies; failure falsifies the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Rejects the current inputs, drawing a fresh case instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -2.0..3.0f64, n in 1u32..7) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..7).contains(&n));
        }

        #[test]
        fn oneof_draws_from_every_arm(
            x in prop_oneof![Just(-1.0f64), 0.0..1.0f64, Just(2.0)],
        ) {
            prop_assert!(x == -1.0 || (0.0..1.0).contains(&x) || x == 2.0);
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0.0..1.0f64, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn prop_map_applies(y in (0.0..1.0f64).prop_map(|x| x + 10.0)) {
            prop_assert!((10.0..11.0).contains(&y));
        }

        #[test]
        fn assume_rejects_cleanly(x in 0.0..1.0f64) {
            prop_assume!(x < 0.9);
            prop_assert!(x < 0.9);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }
}
