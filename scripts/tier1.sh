#!/usr/bin/env bash
# Tier-1 gate: everything must pass before a change lands.
#   ./scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --workspace --examples"
cargo build --workspace --examples

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "tier-1: all green"
