#!/usr/bin/env bash
# Tier-1 gate: everything must pass before a change lands.
#   ./scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --workspace --examples"
cargo build --workspace --examples

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Span-accounting gate: a short traced run must produce a balanced,
# properly nested span stream (trace_report exits 1 otherwise).
echo "==> trace_report --steps 20 (span accounting)"
cargo run -q --release -p otem-bench --bin trace_report -- --steps 20

# Adjoint-gradient gates: FD-vs-adjoint parity on the rollout objective
# (proptest, ≤1e-6 relative error), then a release smoke asserting the
# tape gradient's rollouts/solve stays horizon-independent.
echo "==> gradient parity (FD vs adjoint)"
cargo test -q --test gradient_parity

echo "==> perf_report --gradient adjoint (rollout-count smoke)"
cargo run -q --release -p otem-bench --bin perf_report -- --gradient adjoint

# Gauss-Newton gate: under a raised iteration budget the tape-curvature
# mode must reach certified convergence in strictly fewer iterations
# than first-order adjoint descent on the same warm-started problem.
echo "==> perf_report --gradient gauss-newton (iterations-to-tolerance smoke)"
cargo run -q --release -p otem-bench --bin perf_report -- --gradient gauss-newton

# Fleet gates: (1) a 64-vehicle campaign must be bit-identical across
# serial/static/work-stealing schedules and shard counts, (2) the
# JSONL-over-TCP serving layer must round-trip a simulate request on
# loopback and shut down cleanly, and (3) a deadline-constrained OTEM
# campaign on a virtual clock must reproduce bit-for-bit across
# schedules while exercising the anytime path (fleet_bench --smoke does
# all three and exits non-zero otherwise).
echo "==> fleet_bench --vehicles 64 --smoke (determinism + server round trip + virtual-clock deadline)"
cargo run -q --release -p otem-bench --bin fleet_bench -- --vehicles 64 --smoke

# Serving-layer robustness gate: a seeded abuse schedule (malformed /
# truncated / oversized requests, a stalled client, a poisoned vehicle,
# queue-overflow shedding with a retrying client, graceful drain under
# load) against a live server — /healthz must answer correctly after
# every phase.
echo "==> fleet_bench --chaos-smoke (serving-layer robustness)"
cargo run -q --release -p otem-bench --bin fleet_bench -- --chaos-smoke

# Observability gate: boot a live server, scrape /metrics and validate
# the Prometheus exposition with the test-suite parser, check the
# legacy /metrics.json snapshot and /debug/trace span sampling, then
# inject a poisoned vehicle and assert the flight recorder freezes a
# dump attributed to the originating request id.
echo "==> fleet_bench --obs-smoke (metrics exposition + flight recorder)"
cargo run -q --release -p otem-bench --bin fleet_bench -- --obs-smoke

# Batched line-search gate: the SoA ladder must change no bits — the
# smoke asserts batched MPC decisions bit-identical to the scalar
# ladder at every horizon, gradient mode, and width before timing
# scalar vs batched rollout throughput.
echo "==> perf_report --batched (SoA line-search bit-equality + throughput)"
cargo run -q --release -p otem-bench --bin perf_report -- --batched

# Lockstep-engine gate: batched fleet summaries and the FNV-1a
# checksum must be bit-identical to the scalar engine across lane
# widths and schedules, a poisoned lane must be contained, and the
# batch metric families must surface on a live /metrics — all before
# any timing is reported.
echo "==> fleet_bench --batch-smoke (lockstep bit-equality + occupancy + /metrics)"
cargo run -q --release -p otem-bench --bin fleet_bench -- --batch-smoke

echo "tier-1: all green"
