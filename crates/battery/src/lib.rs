//! Li-ion battery models for the OTEM electric-vehicle simulator.
//!
//! Implements Section II-A of the OTEM paper (DATE 2016):
//!
//! * **Electrical model** (Eq. 1–3): the cell is a variable voltage source
//!   `V_oc(SoC)` in series with an internal resistance `R(SoC, T)`; the
//!   state of charge integrates the drawn current over the rated capacity.
//! * **Heat generation** (Eq. 4): Joule loss across the internal
//!   resistance plus the entropic heat term `I·T·dV_oc/dT`.
//! * **Capacity-loss / lifetime model** (Eq. 5): an Arrhenius rate law in
//!   temperature with a power-law stress factor in discharge C-rate.
//!
//! Cells aggregate into a [`BatteryPack`] (series strings × parallel
//! groups) which exposes a *power* interface — given a terminal power
//! request it solves the implied current, terminal voltage, heat and
//! internal loss, which is what the HEES layer and the MPC need.
//!
//! # Examples
//!
//! ```
//! use otem_battery::{BatteryPack, CellParams, PackConfig};
//! use otem_units::{Kelvin, Ratio, Seconds, Watts};
//!
//! # fn main() -> Result<(), otem_battery::BatteryError> {
//! let mut pack = BatteryPack::new(CellParams::ncr18650a(), PackConfig::tesla_s_like())?;
//! let draw = pack.draw_power(Watts::new(30_000.0), Kelvin::from_celsius(25.0))?;
//! pack.integrate(draw, Seconds::new(1.0));
//! assert!(pack.soc() < Ratio::ONE);
//! assert!(draw.heat.value() > 0.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod aging;
mod cell;
mod error;
mod estimator;
pub mod kernel;
mod pack;
mod params;
mod transient;

pub use aging::{AgingModel, AgingParams};
pub use cell::{Cell, CellSnapshot};
pub use error::BatteryError;
pub use estimator::{EkfConfig, SocEstimator};
pub use pack::{BatteryPack, DrawPartials, PackConfig, PackSnapshot, PowerDraw};
pub use params::{CellParams, OcvCurve, ResistanceCurve, SlopeTable};
pub use transient::{RcPair, TransientCell};
