//! Extension: extended-Kalman-filter state-of-charge estimation — the
//! BMS capability the paper's related work (\[9\], \[10\]) centres on.
//!
//! In the paper's simulation the controller reads SoC directly; a real
//! BMS only sees terminal voltage and current, both noisy. This module
//! closes that gap: a 1-state EKF propagates the coulomb-counting model
//! (paper Eq. 1) and corrects it against the measured terminal voltage
//! through the OCV curve's local slope (Eq. 2–3 linearised).

use crate::cell::Cell;
use crate::error::BatteryError;
use crate::params::CellParams;
use otem_units::{Amps, Kelvin, Ratio, Seconds, Volts};
use serde::{Deserialize, Serialize};

/// EKF tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EkfConfig {
    /// Process-noise variance per second on the SoC state (captures
    /// current-sensor bias and coulombic-efficiency error).
    pub process_noise: f64,
    /// Measurement-noise variance on the terminal voltage (V²).
    pub measurement_noise: f64,
    /// Initial estimate variance.
    pub initial_variance: f64,
}

impl Default for EkfConfig {
    fn default() -> Self {
        Self {
            process_noise: 1.0e-10,
            measurement_noise: 4.0e-4, // σ ≈ 20 mV
            initial_variance: 0.01,    // σ ≈ 10 % SoC
        }
    }
}

/// Extended Kalman filter over the cell's SoC.
///
/// # Examples
///
/// ```
/// use otem_battery::{CellParams, SocEstimator};
/// use otem_units::{Amps, Kelvin, Ratio, Seconds, Volts};
///
/// # fn main() -> Result<(), otem_battery::BatteryError> {
/// // BMS boots believing the cell is at 50 %; truth is 80 %.
/// let mut ekf = SocEstimator::new(CellParams::ncr18650a(), Ratio::HALF)?;
/// let truth = 0.8;
/// let room = Kelvin::from_celsius(25.0);
/// // Feed it rest-voltage measurements of the true cell:
/// let v_true = CellParams::ncr18650a().ocv.voltage(Ratio::new(truth));
/// for _ in 0..50 {
///     ekf.update(Amps::ZERO, v_true, room, Seconds::new(1.0));
/// }
/// assert!((ekf.estimate().value() - truth).abs() < 0.02);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocEstimator {
    model: Cell,
    variance: f64,
    config: EkfConfig,
}

impl SocEstimator {
    /// Builds an estimator with default tuning from an initial guess.
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::InvalidParameter`] for invalid cell
    /// parameters.
    pub fn new(params: CellParams, initial_guess: Ratio) -> Result<Self, BatteryError> {
        Self::with_config(params, initial_guess, EkfConfig::default())
    }

    /// Builds with explicit tuning.
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::InvalidParameter`] for invalid cell
    /// parameters.
    pub fn with_config(
        params: CellParams,
        initial_guess: Ratio,
        config: EkfConfig,
    ) -> Result<Self, BatteryError> {
        Ok(Self {
            model: Cell::new(params, initial_guess)?,
            variance: config.initial_variance,
            config,
        })
    }

    /// Current SoC estimate.
    pub fn estimate(&self) -> Ratio {
        self.model.soc()
    }

    /// Current estimate variance.
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// One predict/correct cycle: `current` and `measured_voltage` are
    /// the sensor readings for the period just elapsed.
    pub fn update(
        &mut self,
        current: Amps,
        measured_voltage: Volts,
        temperature: Kelvin,
        dt: Seconds,
    ) {
        // --- Predict: coulomb counting (Eq. 1) --------------------------
        self.model.integrate_current(current, dt);
        self.variance += self.config.process_noise * dt.value();

        // --- Correct: voltage innovation through the OCV slope ----------
        let predicted_v = self.model.terminal_voltage(current, temperature);
        let innovation = measured_voltage.value() - predicted_v.value();

        // h = dV/dSoC: numerical slope of the OCV curve at the estimate
        // (the I·R term's SoC dependence is second order; ignored).
        let soc = self.model.soc().value();
        let eps = 1e-4;
        let hi = self
            .model
            .params()
            .ocv
            .voltage(Ratio::new((soc + eps).min(1.0)));
        let lo = self
            .model
            .params()
            .ocv
            .voltage(Ratio::new((soc - eps).max(0.0)));
        let h = ((hi.value() - lo.value()) / (2.0 * eps)).max(1e-3);

        let s = h * self.variance * h + self.config.measurement_noise;
        let gain = self.variance * h / s;
        self.model.set_soc(Ratio::new(soc + gain * innovation));
        self.variance *= 1.0 - gain * h;
        self.variance = self.variance.max(1e-12);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn room() -> Kelvin {
        Kelvin::from_celsius(25.0)
    }

    /// Simulates the true cell under a load profile, feeding the EKF
    /// noisy-free voltage/current (determinism keeps the test exact; the
    /// noise robustness is exercised through the deliberately wrong
    /// initial guess and process noise).
    fn run_filter(true_initial: f64, guess: f64, current_profile: &[f64]) -> (f64, f64) {
        let params = CellParams::ncr18650a();
        let mut truth = Cell::new(params.clone(), Ratio::new(true_initial)).unwrap();
        let mut ekf = SocEstimator::new(params, Ratio::new(guess)).unwrap();
        for &i in current_profile {
            let current = Amps::new(i);
            let v = truth.terminal_voltage(current, room());
            truth.integrate_current(current, Seconds::new(1.0));
            ekf.update(current, v, room(), Seconds::new(1.0));
        }
        (truth.soc().value(), ekf.estimate().value())
    }

    #[test]
    fn converges_from_wrong_initial_guess_at_rest() {
        let (truth, estimate) = run_filter(0.8, 0.5, &[0.0; 120]);
        assert!((estimate - truth).abs() < 0.01, "{estimate} vs {truth}");
    }

    #[test]
    fn tracks_through_a_discharge() {
        let profile: Vec<f64> = (0..600)
            .map(|k| if k % 60 < 30 { 3.0 } else { 0.5 })
            .collect();
        let (truth, estimate) = run_filter(0.9, 0.7, &profile);
        assert!((estimate - truth).abs() < 0.02, "{estimate} vs {truth}");
    }

    #[test]
    fn variance_shrinks_with_measurements() {
        let params = CellParams::ncr18650a();
        let mut ekf = SocEstimator::new(params.clone(), Ratio::HALF).unwrap();
        let v0 = ekf.variance();
        let truth = Cell::new(params, Ratio::new(0.6)).unwrap();
        for _ in 0..30 {
            let v = truth.terminal_voltage(Amps::ZERO, room());
            ekf.update(Amps::ZERO, v, room(), Seconds::new(1.0));
        }
        assert!(ekf.variance() < v0 / 10.0);
    }

    #[test]
    fn flat_ocv_region_converges_slower_than_steep_region() {
        // The OCV curve is steep near empty and flat in the middle: the
        // filter should close an error faster where the voltage carries
        // more SoC information.
        let steps = 25;
        let profile = vec![0.0; steps];
        let (truth_steep, est_steep) = run_filter(0.15, 0.30, &profile);
        let (truth_flat, est_flat) = run_filter(0.60, 0.75, &profile);
        let err_steep = (est_steep - truth_steep).abs();
        let err_flat = (est_flat - truth_flat).abs();
        assert!(
            err_steep < err_flat,
            "steep-region error {err_steep} should beat flat-region {err_flat}"
        );
    }

    #[test]
    fn coulomb_counting_alone_drifts_but_ekf_corrects() {
        // A 5 % current-sensor bias: pure coulomb counting accumulates
        // the error, the EKF's voltage correction bounds it.
        let params = CellParams::ncr18650a();
        let mut truth = Cell::new(params.clone(), Ratio::new(0.95)).unwrap();
        let mut dead_reckoning = Cell::new(params.clone(), Ratio::new(0.95)).unwrap();
        let mut ekf = SocEstimator::new(params, Ratio::new(0.95)).unwrap();
        for _ in 0..1800 {
            let i_true = Amps::new(2.0);
            let i_sensed = Amps::new(2.0 * 1.05); // biased sensor
            let v = truth.terminal_voltage(i_true, room());
            truth.integrate_current(i_true, Seconds::new(1.0));
            dead_reckoning.integrate_current(i_sensed, Seconds::new(1.0));
            ekf.update(i_sensed, v, room(), Seconds::new(1.0));
        }
        let drift = (dead_reckoning.soc().value() - truth.soc().value()).abs();
        let ekf_err = (ekf.estimate().value() - truth.soc().value()).abs();
        assert!(drift > 0.01, "bias should visibly drift ({drift})");
        assert!(
            ekf_err < drift / 2.0,
            "EKF {ekf_err} should beat dead reckoning {drift}"
        );
    }

    #[test]
    fn estimator_state_is_bounded() {
        // Garbage measurements cannot push the estimate outside [0, 1].
        let params = CellParams::ncr18650a();
        let mut ekf = SocEstimator::new(params, Ratio::HALF).unwrap();
        for k in 0..50 {
            let v = if k % 2 == 0 { 10.0 } else { 0.1 };
            ekf.update(Amps::ZERO, Volts::new(v), room(), Seconds::new(1.0));
            let e = ekf.estimate().value();
            assert!((0.0..=1.0).contains(&e), "estimate escaped: {e}");
            assert!(ekf.variance().is_finite());
        }
    }
}
