//! Extension: second-order Thevenin (RC-pair) transient electrical
//! model.
//!
//! The paper's Eq. 2–3 model the cell as `V_oc(SoC)` plus a pure series
//! resistance, noting that "more detailed battery electrical model may
//! increase behavior modeling accuracy, [but] will not contradict our
//! methodology". This module provides that refinement: two RC pairs
//! capture the charge-transfer (seconds) and diffusion (minutes)
//! relaxation that make terminal voltage sag deepen under sustained load
//! and recover after it — the dynamics a BMS voltage-based SoC estimator
//! has to see through.

use crate::cell::Cell;
use crate::error::BatteryError;
use otem_units::{Amps, Kelvin, Ohms, Seconds, Volts, Watts};
use serde::{Deserialize, Serialize};

/// One RC relaxation branch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RcPair {
    /// Branch resistance (Ω).
    pub resistance: f64,
    /// Branch capacitance (F).
    pub capacitance: f64,
}

impl RcPair {
    /// Relaxation time constant τ = R·C.
    pub fn time_constant(&self) -> Seconds {
        Seconds::new(self.resistance * self.capacitance)
    }

    /// Validates the branch.
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::InvalidParameter`] for non-positive R or
    /// C.
    pub fn validate(&self) -> Result<(), BatteryError> {
        if self.resistance <= 0.0 || !self.resistance.is_finite() {
            return Err(BatteryError::InvalidParameter {
                name: "rc.resistance",
                value: self.resistance,
                constraint: "> 0 Ω",
            });
        }
        if self.capacitance <= 0.0 || !self.capacitance.is_finite() {
            return Err(BatteryError::InvalidParameter {
                name: "rc.capacitance",
                value: self.capacitance,
                constraint: "> 0 F",
            });
        }
        Ok(())
    }
}

/// A [`Cell`] augmented with two RC relaxation branches.
///
/// The static cell's resistance plays the role of the ohmic `R_0`; the
/// RC branches add state: `V = V_oc − I·R_0 − V_1 − V_2` with
/// `dV_k/dt = (I·R_k − V_k)/τ_k`.
///
/// # Examples
///
/// ```
/// use otem_battery::{CellParams, TransientCell};
/// use otem_units::{Amps, Kelvin, Ratio, Seconds};
///
/// # fn main() -> Result<(), otem_battery::BatteryError> {
/// let mut cell = TransientCell::ncr18650a(Ratio::new(0.8))?;
/// let room = Kelvin::from_celsius(25.0);
/// let v_instant = cell.terminal_voltage(Amps::new(3.1), room);
/// for _ in 0..120 {
///     cell.step(Amps::new(3.1), room, Seconds::new(1.0));
/// }
/// let v_settled = cell.terminal_voltage(Amps::new(3.1), room);
/// assert!(v_settled < v_instant); // sag deepens as the RC pairs charge
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientCell {
    cell: Cell,
    charge_transfer: RcPair,
    diffusion: RcPair,
    v1: f64,
    v2: f64,
}

impl TransientCell {
    /// Builds from an existing static cell and explicit RC branches.
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::InvalidParameter`] for invalid branches.
    pub fn new(
        cell: Cell,
        charge_transfer: RcPair,
        diffusion: RcPair,
    ) -> Result<Self, BatteryError> {
        charge_transfer.validate()?;
        diffusion.validate()?;
        Ok(Self {
            cell,
            charge_transfer,
            diffusion,
            v1: 0.0,
            v2: 0.0,
        })
    }

    /// The NCR18650A preset with literature-typical RC branches
    /// (charge transfer τ ≈ 8 s, diffusion τ ≈ 150 s).
    ///
    /// # Errors
    ///
    /// Propagates parameter validation failures.
    pub fn ncr18650a(initial_soc: otem_units::Ratio) -> Result<Self, BatteryError> {
        let cell = Cell::new(crate::params::CellParams::ncr18650a(), initial_soc)?;
        Self::new(
            cell,
            RcPair {
                resistance: 0.015,
                capacitance: 550.0,
            },
            RcPair {
                resistance: 0.020,
                capacitance: 7_500.0,
            },
        )
    }

    /// The underlying static cell (SoC, OCV, ohmic resistance).
    pub fn cell(&self) -> &Cell {
        &self.cell
    }

    /// Present relaxation-branch voltages `(V_1, V_2)`.
    pub fn branch_voltages(&self) -> (Volts, Volts) {
        (Volts::new(self.v1), Volts::new(self.v2))
    }

    /// Terminal voltage at the given instant (before the RC states move):
    /// `V = V_oc − I·R_0 − V_1 − V_2`.
    pub fn terminal_voltage(&self, current: Amps, temperature: Kelvin) -> Volts {
        self.cell.terminal_voltage(current, temperature) - Volts::new(self.v1 + self.v2)
    }

    /// Total effective resistance once fully relaxed under DC load
    /// (`R_0 + R_1 + R_2`).
    pub fn dc_resistance(&self, temperature: Kelvin) -> Ohms {
        self.cell.internal_resistance(temperature)
            + Ohms::new(self.charge_transfer.resistance + self.diffusion.resistance)
    }

    /// Heat generated right now: ohmic + both branch dissipations plus
    /// the entropic term (extends paper Eq. 4 to the transient model).
    pub fn heat_generation(&self, current: Amps, temperature: Kelvin) -> Watts {
        let base = self.cell.heat_generation(current, temperature);
        let q1 = self.v1 * self.v1 / self.charge_transfer.resistance;
        let q2 = self.v2 * self.v2 / self.diffusion.resistance;
        base + Watts::new(q1 + q2)
    }

    /// Advances the RC states and the coulomb counter by one step
    /// (exact exponential update per branch, so any `dt` is stable).
    pub fn step(&mut self, current: Amps, _temperature: Kelvin, dt: Seconds) {
        let i = current.value();
        for (v, pair) in [
            (&mut self.v1, &self.charge_transfer),
            (&mut self.v2, &self.diffusion),
        ] {
            let target = i * pair.resistance;
            let alpha = (-dt.value() / pair.time_constant().value()).exp();
            *v = target + (*v - target) * alpha;
        }
        self.cell.integrate_current(current, dt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otem_units::Ratio;

    fn cell() -> TransientCell {
        TransientCell::ncr18650a(Ratio::new(0.8)).expect("valid")
    }

    fn room() -> Kelvin {
        Kelvin::from_celsius(25.0)
    }

    #[test]
    fn sag_deepens_toward_dc_resistance() {
        let mut c = cell();
        let i = Amps::new(3.1);
        let v0 = c.terminal_voltage(i, room());
        for _ in 0..900 {
            c.step(i, room(), Seconds::new(1.0));
        }
        let v_settled = c.terminal_voltage(i, room());
        assert!(v_settled < v0);
        // Isolate the RC contribution by removing the OCV/R0 drift the
        // 900 s of discharge caused in the static part of the model.
        let static_now = c.cell().terminal_voltage(i, room());
        let rc_sag = (static_now - v_settled).value();
        let expected = 3.1 * (0.015 + 0.020);
        assert!(
            (rc_sag - expected).abs() < 1e-3,
            "RC sag {rc_sag} vs expected {expected}"
        );
    }

    #[test]
    fn voltage_recovers_after_load_removal() {
        let mut c = cell();
        for _ in 0..120 {
            c.step(Amps::new(4.0), room(), Seconds::new(1.0));
        }
        let (v1_loaded, _) = c.branch_voltages();
        assert!(v1_loaded.value() > 0.0);
        // Rest: branches decay toward zero.
        for _ in 0..120 {
            c.step(Amps::ZERO, room(), Seconds::new(1.0));
        }
        let (v1_rested, v2_rested) = c.branch_voltages();
        assert!(v1_rested.value() < 0.01 * v1_loaded.value().max(1e-9) + 1e-6);
        // Diffusion branch (τ = 150 s) relaxes more slowly but shrinks.
        assert!(v2_rested.value() >= 0.0);
    }

    #[test]
    fn fast_branch_settles_before_slow_branch() {
        let mut c = cell();
        for _ in 0..30 {
            c.step(Amps::new(3.0), room(), Seconds::new(1.0));
        }
        let (v1, v2) = c.branch_voltages();
        let v1_frac = v1.value() / (3.0 * 0.015);
        let v2_frac = v2.value() / (3.0 * 0.020);
        assert!(v1_frac > 0.9, "fast branch at {v1_frac}");
        assert!(v2_frac < 0.5, "slow branch already at {v2_frac}");
    }

    #[test]
    fn transient_heat_exceeds_static_heat_under_load() {
        let mut c = cell();
        let static_heat = c.cell().heat_generation(Amps::new(3.0), room());
        for _ in 0..300 {
            c.step(Amps::new(3.0), room(), Seconds::new(1.0));
        }
        let transient_heat = c.heat_generation(Amps::new(3.0), room());
        assert!(transient_heat > static_heat);
    }

    #[test]
    fn exact_update_is_stable_at_large_steps() {
        let mut c = cell();
        for _ in 0..50 {
            c.step(Amps::new(3.0), room(), Seconds::new(60.0));
            let (v1, v2) = c.branch_voltages();
            assert!(v1.is_finite() && v2.is_finite());
            assert!(v1.value() <= 3.0 * 0.015 + 1e-9);
            assert!(v2.value() <= 3.0 * 0.020 + 1e-9);
        }
    }

    #[test]
    fn invalid_branches_rejected() {
        let base = Cell::new(crate::params::CellParams::ncr18650a(), Ratio::ONE).unwrap();
        assert!(TransientCell::new(
            base.clone(),
            RcPair {
                resistance: 0.0,
                capacitance: 100.0
            },
            RcPair {
                resistance: 0.01,
                capacitance: 100.0
            },
        )
        .is_err());
        assert!(TransientCell::new(
            base,
            RcPair {
                resistance: 0.01,
                capacitance: 100.0
            },
            RcPair {
                resistance: 0.01,
                capacitance: -5.0
            },
        )
        .is_err());
    }

    #[test]
    fn dc_resistance_sums_branches() {
        let c = cell();
        let r0 = c.cell().internal_resistance(room()).value();
        assert!((c.dc_resistance(room()).value() - (r0 + 0.035)).abs() < 1e-12);
    }
}
