//! Scalar-generic battery step math.
//!
//! The quadratic pack-current solve, the cell heat law and the coulomb
//! counter of Eq. 1–4, written once against [`otem_units::Scalar`] and
//! monomorphised per scalar type. The concrete `f64` methods on
//! [`crate::BatteryPack`] / [`crate::Cell`] delegate here — the `f64`
//! instantiation performs the *same operations in the same order* as the
//! pre-refactor hand-written code, so delegation is bit-identical (the
//! contract the golden traces pin). The OCV and resistance table lookups
//! stay `f64` at the kernel boundary; only the arithmetic downstream of
//! them is generic.

use otem_units::Scalar;

/// Pack (or cell) current from the stable root of `P = V_oc·I − R·I²`:
/// `I = (V_oc − √(V_oc² − 4RP))/(2R)` — the low-current branch of the
/// quadratic. Returns `None` past the peak-power vertex `V_oc²/(4R)`,
/// where no real current delivers the request.
#[inline]
pub fn pack_current<S: Scalar>(voc: S, r: S, p: S) -> Option<S> {
    let discriminant = voc * voc - S::from_f64(4.0) * r * p;
    if discriminant < S::ZERO {
        return None;
    }
    Some((voc - discriminant.sqrt()) / (S::from_f64(2.0) * r))
}

/// Cell heat generation (Eq. 4): `Q = I²·R + I·T·κ` — non-negative Joule
/// term plus the sign-changing entropic term.
#[inline]
pub fn cell_heat<S: Scalar>(
    current: S,
    resistance: S,
    temperature: S,
    entropy_coefficient: S,
) -> S {
    let joule = current * current * resistance;
    let entropic = current * temperature * entropy_coefficient;
    joule + entropic
}

/// Coulomb-counter decrement for one step (Eq. 1): `ΔSoC = I·dt/C_eff`
/// against the effective capacity in coulombs. The caller subtracts and
/// clamps.
#[inline]
pub fn soc_decrement<S: Scalar>(current: S, dt: S, capacity_coulombs: S) -> S {
    current * dt / capacity_coulombs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_root_reproduces_the_request() {
        let (voc, r) = (350.0_f64, 0.06);
        let i = pack_current(voc, r, 50_000.0).expect("feasible");
        let delivered = voc * i - r * i * i;
        assert!((delivered - 50_000.0).abs() < 1e-6, "P = {delivered}");
    }

    #[test]
    fn past_the_vertex_is_none() {
        let (voc, r) = (350.0_f64, 0.06);
        let peak = voc * voc / (4.0 * r);
        assert!(pack_current(voc, r, peak * 1.01).is_none());
        assert!(pack_current(voc, r, peak * 0.99).is_some());
    }

    #[test]
    fn heat_joule_term_dominates_at_high_current() {
        let q = cell_heat(10.0_f64, 0.05, 298.15, -0.1e-3);
        let joule = 10.0 * 10.0 * 0.05;
        assert!((q - joule).abs() / joule < 0.2, "Q = {q}");
    }

    #[cfg(feature = "f32")]
    #[test]
    fn f32_lanes_track_f64_within_single_precision() {
        let wide = pack_current(350.0_f64, 0.06, 50_000.0).unwrap();
        let narrow = pack_current(350.0_f32, 0.06, 50_000.0).unwrap() as f64;
        assert!((wide - narrow).abs() < 1e-3 * wide, "{wide} vs {narrow}");
    }
}
