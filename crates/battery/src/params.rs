//! Cell parameter sets: the empirical coefficients of paper Eq. 2–5.

use crate::aging::AgingParams;
use crate::error::BatteryError;
use otem_units::{AmpHours, HeatCapacity, Kelvin, Ohms, Ratio, Volts};
use serde::{Deserialize, Serialize};

/// Coefficients of the open-circuit-voltage fit, paper Eq. 2:
///
/// `V_oc(s) = v1·e^(v2·s) + v3·s⁴ + v4·s³ + v5·s² + v6·s + v7`
///
/// with the state of charge `s` as a fraction in `[0, 1]`.
///
/// The default coefficients are the Chen & Rincón-Mora Li-ion fit mapped
/// onto the paper's functional form (the paper cites the Panasonic
/// NCR18650A datasheet for its own fit, which is not published; see
/// DESIGN.md §3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OcvCurve {
    /// Exponential amplitude `v1` (V).
    pub v1: f64,
    /// Exponential rate `v2` (1/SoC).
    pub v2: f64,
    /// Quartic coefficient `v3` (V).
    pub v3: f64,
    /// Cubic coefficient `v4` (V).
    pub v4: f64,
    /// Quadratic coefficient `v5` (V).
    pub v5: f64,
    /// Linear coefficient `v6` (V).
    pub v6: f64,
    /// Constant `v7` (V).
    pub v7: f64,
}

impl OcvCurve {
    /// Chen & Rincón-Mora (2006) fit for a Li-ion cell.
    pub const fn chen_rincon_mora() -> Self {
        Self {
            v1: -1.031,
            v2: -35.0,
            v3: 0.0,
            v4: 0.3201,
            v5: -0.1178,
            v6: 0.2156,
            v7: 3.685,
        }
    }

    /// Evaluates `V_oc` at the given state of charge.
    #[inline]
    pub fn voltage(&self, soc: Ratio) -> Volts {
        let s = soc.value();
        let s2 = s * s;
        Volts::new(
            self.v1 * (self.v2 * s).exp()
                + self.v3 * s2 * s2
                + self.v4 * s2 * s
                + self.v5 * s2
                + self.v6 * s
                + self.v7,
        )
    }

    /// Evaluates `V_oc` and its slope `dV_oc/dSoC` in one pass, sharing
    /// the single exponential between value and derivative. The voltage
    /// term order matches [`OcvCurve::voltage`] exactly, so the value
    /// component is bit-identical to the plain path — the adjoint
    /// backward sweep differentiates precisely the voltage the forward
    /// rollout produced.
    #[inline]
    pub fn voltage_and_slope(&self, soc: Ratio) -> (Volts, f64) {
        let s = soc.value();
        let s2 = s * s;
        let e = (self.v2 * s).exp();
        let v = self.v1 * e
            + self.v3 * s2 * s2
            + self.v4 * s2 * s
            + self.v5 * s2
            + self.v6 * s
            + self.v7;
        let slope = self.v1 * self.v2 * e
            + 4.0 * self.v3 * s2 * s
            + 3.0 * self.v4 * s2
            + 2.0 * self.v5 * s
            + self.v6;
        (Volts::new(v), slope)
    }
}

impl Default for OcvCurve {
    fn default() -> Self {
        Self::chen_rincon_mora()
    }
}

/// Coefficients of the internal-resistance fit, paper Eq. 3, extended with
/// the Arrhenius temperature factor the paper describes qualitatively
/// ("elevated battery temperature improves the energy production by
/// lowering the internal resistance"):
///
/// `R(s, T) = (r1·e^(r2·s) + r3) · e^(k_t·(1/T − 1/T_ref))`
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResistanceCurve {
    /// Exponential amplitude `r1` (Ω).
    pub r1: f64,
    /// Exponential rate `r2` (1/SoC).
    pub r2: f64,
    /// Resistance floor `r3` (Ω).
    pub r3: f64,
    /// Arrhenius temperature-sensitivity constant `k_t` (K). Positive
    /// values make resistance fall as temperature rises.
    pub temperature_sensitivity: f64,
    /// Reference temperature for the fit (the datasheet's 25 °C).
    pub reference_temperature: Kelvin,
}

impl ResistanceCurve {
    /// Chen & Rincón-Mora series-resistance fit with a moderate Arrhenius
    /// temperature factor (≈ −2 %/K near 25 °C).
    pub fn chen_rincon_mora() -> Self {
        Self {
            r1: 0.1562,
            r2: -24.37,
            r3: 0.074_46,
            temperature_sensitivity: 2000.0,
            reference_temperature: Kelvin::from_celsius(25.0),
        }
    }

    /// Evaluates the internal resistance at the given state of charge and
    /// cell temperature.
    #[inline]
    pub fn resistance(&self, soc: Ratio, temperature: Kelvin) -> Ohms {
        let s = soc.value();
        let base = self.r1 * (self.r2 * s).exp() + self.r3;
        let t = temperature.value().max(200.0);
        let factor = (self.temperature_sensitivity
            * (1.0 / t - 1.0 / self.reference_temperature.value()))
        .exp();
        Ohms::new(base * factor)
    }

    /// Resistance plus its partial derivatives `(R, ∂R/∂SoC, ∂R/∂T)` in
    /// one pass, sharing the two exponentials between value and slopes.
    /// The value is computed in exactly the operation order of
    /// [`ResistanceCurve::resistance`], so it is bit-identical to the
    /// plain path. Below the 200 K evaluation floor the temperature
    /// partial is zero (the clamp is active).
    #[inline]
    pub fn resistance_and_slopes(&self, soc: Ratio, temperature: Kelvin) -> (Ohms, f64, f64) {
        let s = soc.value();
        let e = (self.r2 * s).exp();
        let base = self.r1 * e + self.r3;
        let t = temperature.value().max(200.0);
        let factor = (self.temperature_sensitivity
            * (1.0 / t - 1.0 / self.reference_temperature.value()))
        .exp();
        let d_soc = self.r1 * self.r2 * e * factor;
        let d_temp = if temperature.value() > 200.0 {
            base * factor * (-self.temperature_sensitivity / (t * t))
        } else {
            0.0
        };
        (Ohms::new(base * factor), d_soc, d_temp)
    }
}

impl Default for ResistanceCurve {
    fn default() -> Self {
        Self::chen_rincon_mora()
    }
}

/// A sampled one-dimensional curve with every segment's interpolation
/// slope precomputed at construction: knot `i` stores `(x, y, dy/dx)`
/// where `dy/dx` is the slope of the segment starting at that knot.
///
/// A lookup is then one fused multiply `y + dy/dx·(q − x)` instead of
/// re-deriving `(y₁ − y₀)/(x₁ − x₀)` on every call — the form both the
/// forward rollout and the adjoint backward pass want, since the adjoint
/// needs exactly the segment slope the forward interpolation used.
/// Tabulated `V_oc(SoC)` / `R(SoC, T)` curves (e.g. from datasheet
/// points rather than the analytic fits) plug into the same fused-lookup
/// discipline the analytic paths get from
/// [`OcvCurve::voltage_and_slope`] / [`ResistanceCurve::resistance_and_slopes`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlopeTable {
    /// First knot abscissa.
    x0: f64,
    /// Uniform knot spacing.
    step: f64,
    /// `(x, y, dy/dx)` per knot; the last knot's slope repeats the one
    /// before it so clamped lookups past the end stay well-defined.
    knots: Vec<(f64, f64, f64)>,
}

impl SlopeTable {
    /// Tabulates `f` on `segments + 1` uniform knots over `[lo, hi]`,
    /// precomputing each segment's slope. Panics on a degenerate range
    /// or zero segments.
    pub fn from_fn(lo: f64, hi: f64, segments: usize, f: impl Fn(f64) -> f64) -> Self {
        assert!(segments > 0, "SlopeTable needs at least one segment");
        assert!(hi > lo, "SlopeTable range must be non-empty");
        let step = (hi - lo) / segments as f64;
        let xs: Vec<f64> = (0..=segments).map(|i| lo + step * i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
        let knots = (0..=segments)
            .map(|i| {
                let j = i.min(segments - 1); // last knot repeats prior slope
                let slope = (ys[j + 1] - ys[j]) / (xs[j + 1] - xs[j]);
                (xs[i], ys[i], slope)
            })
            .collect();
        Self {
            x0: lo,
            step,
            knots,
        }
    }

    /// Interpolated value at `q` (clamped to the tabulated range): one
    /// fused multiply off the precomputed knot.
    #[inline]
    pub fn eval(&self, q: f64) -> f64 {
        let (x, y, slope) = self.knot_for(q);
        y + slope * (q - x)
    }

    /// Interpolated value and the active segment's slope — the pair the
    /// adjoint backward pass consumes.
    #[inline]
    pub fn eval_with_slope(&self, q: f64) -> (f64, f64) {
        let (x, y, slope) = self.knot_for(q);
        (y + slope * (q - x), slope)
    }

    #[inline]
    fn knot_for(&self, q: f64) -> (f64, f64, f64) {
        let segments = self.knots.len() - 1;
        let idx = ((q - self.x0) / self.step)
            .floor()
            .clamp(0.0, (segments - 1) as f64) as usize;
        self.knots[idx]
    }
}

/// Full parameter set for one Li-ion cell: electrical fits (Eq. 2–3),
/// thermal constants (Eq. 4 and the lumped heat capacity of Eq. 14) and
/// aging coefficients (Eq. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellParams {
    /// Rated capacity at nominal discharge rate (paper `C_bat`).
    pub capacity: AmpHours,
    /// Open-circuit-voltage fit.
    pub ocv: OcvCurve,
    /// Internal-resistance fit.
    pub resistance: ResistanceCurve,
    /// Entropic heat coefficient `dV_oc/dT` (V/K), paper Eq. 4. Typically
    /// a fraction of a millivolt per kelvin and negative at high SoC.
    pub entropy_coefficient: f64,
    /// Lumped heat capacity of one cell (paper `C_b`), J/K. An 18650 cell
    /// weighs ≈ 45 g with c_p ≈ 900 J/(kg·K) → ≈ 40 J/K.
    pub heat_capacity: HeatCapacity,
    /// Aging (capacity-loss) coefficients.
    pub aging: AgingParams,
    /// Maximum continuous cell discharge current (datasheet limit).
    pub max_discharge_current: f64,
}

impl CellParams {
    /// Parameters approximating the Panasonic NCR18650A cell the paper's
    /// reference EV (Tesla Model S) uses: 3.1 Ah, 3.6 V nominal.
    pub fn ncr18650a() -> Self {
        Self {
            capacity: AmpHours::new(3.1),
            ocv: OcvCurve::chen_rincon_mora(),
            resistance: ResistanceCurve::chen_rincon_mora(),
            entropy_coefficient: -1.0e-4,
            heat_capacity: HeatCapacity::new(40.0),
            aging: AgingParams::default(),
            max_discharge_current: 6.2, // 2C continuous
        }
    }

    /// Validates physical plausibility of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::InvalidParameter`] when the capacity, heat
    /// capacity or current limit is non-positive, or the OCV fit produces
    /// a non-positive voltage anywhere on `[0, 1]`.
    pub fn validate(&self) -> Result<(), BatteryError> {
        if self.capacity.value() <= 0.0 {
            return Err(BatteryError::InvalidParameter {
                name: "capacity",
                value: self.capacity.value(),
                constraint: "> 0 Ah",
            });
        }
        if self.heat_capacity.value() <= 0.0 {
            return Err(BatteryError::InvalidParameter {
                name: "heat_capacity",
                value: self.heat_capacity.value(),
                constraint: "> 0 J/K",
            });
        }
        if self.max_discharge_current <= 0.0 {
            return Err(BatteryError::InvalidParameter {
                name: "max_discharge_current",
                value: self.max_discharge_current,
                constraint: "> 0 A",
            });
        }
        for i in 0..=20 {
            let soc = Ratio::new(i as f64 / 20.0);
            let v = self.ocv.voltage(soc);
            if !v.is_finite() || v.value() <= 0.0 {
                return Err(BatteryError::InvalidParameter {
                    name: "ocv",
                    value: v.value(),
                    constraint: "V_oc(soc) > 0 on [0, 1]",
                });
            }
        }
        self.aging.validate()?;
        Ok(())
    }
}

impl Default for CellParams {
    fn default() -> Self {
        Self::ncr18650a()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ocv_is_monotonic_in_soc() {
        let ocv = OcvCurve::default();
        let mut prev = ocv.voltage(Ratio::ZERO);
        for i in 1..=100 {
            let v = ocv.voltage(Ratio::new(i as f64 / 100.0));
            assert!(
                v > prev,
                "OCV must rise with SoC: V({i}) = {v:?} <= {prev:?}"
            );
            prev = v;
        }
    }

    #[test]
    fn ocv_spans_li_ion_voltage_window() {
        let ocv = OcvCurve::default();
        let empty = ocv.voltage(Ratio::ZERO).value();
        let full = ocv.voltage(Ratio::ONE).value();
        assert!((2.5..3.0).contains(&empty), "empty-cell OCV {empty}");
        assert!((4.0..4.3).contains(&full), "full-cell OCV {full}");
    }

    #[test]
    fn resistance_falls_with_temperature() {
        let r = ResistanceCurve::default();
        let soc = Ratio::HALF;
        let cold = r.resistance(soc, Kelvin::from_celsius(0.0));
        let warm = r.resistance(soc, Kelvin::from_celsius(25.0));
        let hot = r.resistance(soc, Kelvin::from_celsius(45.0));
        assert!(cold > warm, "{cold:?} vs {warm:?}");
        assert!(warm > hot, "{warm:?} vs {hot:?}");
    }

    #[test]
    fn resistance_rises_at_low_soc() {
        let r = ResistanceCurve::default();
        let t = Kelvin::from_celsius(25.0);
        assert!(r.resistance(Ratio::new(0.02), t) > r.resistance(Ratio::new(0.5), t));
    }

    #[test]
    fn resistance_at_reference_temperature_matches_fit() {
        let r = ResistanceCurve::default();
        let got = r.resistance(Ratio::ONE, Kelvin::from_celsius(25.0)).value();
        // At SoC = 1 the exponential term is negligible.
        assert!((got - 0.074_46).abs() < 1e-4, "{got}");
    }

    #[test]
    fn ncr18650a_validates() {
        CellParams::ncr18650a().validate().expect("valid preset");
    }

    #[test]
    fn negative_capacity_rejected() {
        let mut p = CellParams::ncr18650a();
        p.capacity = AmpHours::new(-3.0);
        assert!(matches!(
            p.validate(),
            Err(BatteryError::InvalidParameter {
                name: "capacity",
                ..
            })
        ));
    }

    #[test]
    fn broken_ocv_rejected() {
        let mut p = CellParams::ncr18650a();
        p.ocv.v7 = -10.0; // drives OCV negative
        assert!(matches!(
            p.validate(),
            Err(BatteryError::InvalidParameter { name: "ocv", .. })
        ));
    }

    #[test]
    fn default_matches_named_preset() {
        assert_eq!(CellParams::default(), CellParams::ncr18650a());
        assert_eq!(OcvCurve::default(), OcvCurve::chen_rincon_mora());
    }

    #[test]
    fn fused_voltage_slope_is_bit_identical_and_matches_fd() {
        let ocv = OcvCurve::default();
        for i in 0..=200 {
            let soc = Ratio::new(i as f64 / 200.0);
            let (v, slope) = ocv.voltage_and_slope(soc);
            assert_eq!(
                v.value().to_bits(),
                ocv.voltage(soc).value().to_bits(),
                "fused voltage diverged at SoC {soc:?}"
            );
            let h = 1e-7;
            let s = soc.value().clamp(h, 1.0 - h);
            let fd = (ocv.voltage(Ratio::new(s + h)).value()
                - ocv.voltage(Ratio::new(s - h)).value())
                / (2.0 * h);
            let (_, slope_mid) = ocv.voltage_and_slope(Ratio::new(s));
            assert!(
                (slope_mid - fd).abs() <= 1e-5 * fd.abs().max(1.0),
                "slope {slope_mid} vs FD {fd} at SoC {s}; boundary slope {slope}"
            );
        }
    }

    #[test]
    fn fused_resistance_slopes_are_bit_identical_and_match_fd() {
        let r = ResistanceCurve::default();
        for i in 0..=20 {
            let soc = Ratio::new(0.02 + 0.96 * i as f64 / 20.0);
            for celsius in [-10.0, 5.0, 25.0, 45.0] {
                let t = Kelvin::from_celsius(celsius);
                let (ohms, d_soc, d_temp) = r.resistance_and_slopes(soc, t);
                assert_eq!(
                    ohms.value().to_bits(),
                    r.resistance(soc, t).value().to_bits(),
                    "fused resistance diverged at SoC {soc:?}, T {t:?}"
                );
                let h = 1e-6;
                let fd_soc = (r.resistance(Ratio::new(soc.value() + h), t).value()
                    - r.resistance(Ratio::new(soc.value() - h), t).value())
                    / (2.0 * h);
                let fd_temp = (r.resistance(soc, Kelvin::new(t.value() + h)).value()
                    - r.resistance(soc, Kelvin::new(t.value() - h)).value())
                    / (2.0 * h);
                assert!(
                    (d_soc - fd_soc).abs() <= 1e-4 * fd_soc.abs().max(1e-6),
                    "∂R/∂SoC {d_soc} vs FD {fd_soc}"
                );
                assert!(
                    (d_temp - fd_temp).abs() <= 1e-4 * fd_temp.abs().max(1e-9),
                    "∂R/∂T {d_temp} vs FD {fd_temp}"
                );
            }
        }
    }

    #[test]
    fn resistance_temperature_slope_is_zero_below_evaluation_floor() {
        let r = ResistanceCurve::default();
        let (_, _, d_temp) = r.resistance_and_slopes(Ratio::HALF, Kelvin::new(150.0));
        assert_eq!(d_temp, 0.0, "clamped Arrhenius floor must kill ∂R/∂T");
    }

    #[test]
    fn slope_table_lookup_is_bit_identical_to_rederived_interpolation() {
        let ocv = OcvCurve::default();
        let segments = 64;
        let table = SlopeTable::from_fn(0.0, 1.0, segments, |s| ocv.voltage(Ratio::new(s)).value());

        // The "old path": re-derive the segment slope on every lookup.
        let step = 1.0 / segments as f64;
        let old_path = |q: f64| {
            let idx = ((q / step).floor().clamp(0.0, (segments - 1) as f64)) as usize;
            let x0 = step * idx as f64;
            let x1 = step * (idx + 1) as f64;
            let y0 = ocv.voltage(Ratio::new(x0)).value();
            let y1 = ocv.voltage(Ratio::new(x1)).value();
            y0 + (y1 - y0) / (x1 - x0) * (q - x0)
        };

        for i in 0..=1000 {
            let q = i as f64 / 1000.0;
            assert_eq!(
                table.eval(q).to_bits(),
                old_path(q).to_bits(),
                "fused lookup diverged from slope re-derivation at {q}"
            );
            let (value, slope) = table.eval_with_slope(q);
            assert_eq!(value.to_bits(), table.eval(q).to_bits());
            assert!(slope.is_finite());
        }
        // Clamped lookups stay well-defined past both ends.
        assert!(table.eval(-0.5).is_finite());
        assert!(table.eval(1.5).is_finite());
    }

    #[test]
    fn slope_table_tracks_the_analytic_curve() {
        let ocv = OcvCurve::default();
        let table = SlopeTable::from_fn(0.0, 1.0, 256, |s| ocv.voltage(Ratio::new(s)).value());
        for i in 0..=500 {
            let q = i as f64 / 500.0;
            let exact = ocv.voltage(Ratio::new(q)).value();
            // The exponential knee at low SoC has the strongest
            // curvature; first-order extrapolation within a segment is a
            // few mV off there and sub-0.2 mV over the usable range.
            let tol = if q < 0.08 { 5e-3 } else { 2e-4 };
            assert!(
                (table.eval(q) - exact).abs() < tol,
                "table {} vs analytic {exact} at SoC {q}",
                table.eval(q)
            );
        }
    }
}
