//! Cell parameter sets: the empirical coefficients of paper Eq. 2–5.

use crate::aging::AgingParams;
use crate::error::BatteryError;
use otem_units::{AmpHours, HeatCapacity, Kelvin, Ohms, Ratio, Volts};
use serde::{Deserialize, Serialize};

/// Coefficients of the open-circuit-voltage fit, paper Eq. 2:
///
/// `V_oc(s) = v1·e^(v2·s) + v3·s⁴ + v4·s³ + v5·s² + v6·s + v7`
///
/// with the state of charge `s` as a fraction in `[0, 1]`.
///
/// The default coefficients are the Chen & Rincón-Mora Li-ion fit mapped
/// onto the paper's functional form (the paper cites the Panasonic
/// NCR18650A datasheet for its own fit, which is not published; see
/// DESIGN.md §3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OcvCurve {
    /// Exponential amplitude `v1` (V).
    pub v1: f64,
    /// Exponential rate `v2` (1/SoC).
    pub v2: f64,
    /// Quartic coefficient `v3` (V).
    pub v3: f64,
    /// Cubic coefficient `v4` (V).
    pub v4: f64,
    /// Quadratic coefficient `v5` (V).
    pub v5: f64,
    /// Linear coefficient `v6` (V).
    pub v6: f64,
    /// Constant `v7` (V).
    pub v7: f64,
}

impl OcvCurve {
    /// Chen & Rincón-Mora (2006) fit for a Li-ion cell.
    pub const fn chen_rincon_mora() -> Self {
        Self {
            v1: -1.031,
            v2: -35.0,
            v3: 0.0,
            v4: 0.3201,
            v5: -0.1178,
            v6: 0.2156,
            v7: 3.685,
        }
    }

    /// Evaluates `V_oc` at the given state of charge.
    #[inline]
    pub fn voltage(&self, soc: Ratio) -> Volts {
        let s = soc.value();
        let s2 = s * s;
        Volts::new(
            self.v1 * (self.v2 * s).exp()
                + self.v3 * s2 * s2
                + self.v4 * s2 * s
                + self.v5 * s2
                + self.v6 * s
                + self.v7,
        )
    }
}

impl Default for OcvCurve {
    fn default() -> Self {
        Self::chen_rincon_mora()
    }
}

/// Coefficients of the internal-resistance fit, paper Eq. 3, extended with
/// the Arrhenius temperature factor the paper describes qualitatively
/// ("elevated battery temperature improves the energy production by
/// lowering the internal resistance"):
///
/// `R(s, T) = (r1·e^(r2·s) + r3) · e^(k_t·(1/T − 1/T_ref))`
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResistanceCurve {
    /// Exponential amplitude `r1` (Ω).
    pub r1: f64,
    /// Exponential rate `r2` (1/SoC).
    pub r2: f64,
    /// Resistance floor `r3` (Ω).
    pub r3: f64,
    /// Arrhenius temperature-sensitivity constant `k_t` (K). Positive
    /// values make resistance fall as temperature rises.
    pub temperature_sensitivity: f64,
    /// Reference temperature for the fit (the datasheet's 25 °C).
    pub reference_temperature: Kelvin,
}

impl ResistanceCurve {
    /// Chen & Rincón-Mora series-resistance fit with a moderate Arrhenius
    /// temperature factor (≈ −2 %/K near 25 °C).
    pub fn chen_rincon_mora() -> Self {
        Self {
            r1: 0.1562,
            r2: -24.37,
            r3: 0.074_46,
            temperature_sensitivity: 2000.0,
            reference_temperature: Kelvin::from_celsius(25.0),
        }
    }

    /// Evaluates the internal resistance at the given state of charge and
    /// cell temperature.
    #[inline]
    pub fn resistance(&self, soc: Ratio, temperature: Kelvin) -> Ohms {
        let s = soc.value();
        let base = self.r1 * (self.r2 * s).exp() + self.r3;
        let t = temperature.value().max(200.0);
        let factor = (self.temperature_sensitivity
            * (1.0 / t - 1.0 / self.reference_temperature.value()))
        .exp();
        Ohms::new(base * factor)
    }
}

impl Default for ResistanceCurve {
    fn default() -> Self {
        Self::chen_rincon_mora()
    }
}

/// Full parameter set for one Li-ion cell: electrical fits (Eq. 2–3),
/// thermal constants (Eq. 4 and the lumped heat capacity of Eq. 14) and
/// aging coefficients (Eq. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellParams {
    /// Rated capacity at nominal discharge rate (paper `C_bat`).
    pub capacity: AmpHours,
    /// Open-circuit-voltage fit.
    pub ocv: OcvCurve,
    /// Internal-resistance fit.
    pub resistance: ResistanceCurve,
    /// Entropic heat coefficient `dV_oc/dT` (V/K), paper Eq. 4. Typically
    /// a fraction of a millivolt per kelvin and negative at high SoC.
    pub entropy_coefficient: f64,
    /// Lumped heat capacity of one cell (paper `C_b`), J/K. An 18650 cell
    /// weighs ≈ 45 g with c_p ≈ 900 J/(kg·K) → ≈ 40 J/K.
    pub heat_capacity: HeatCapacity,
    /// Aging (capacity-loss) coefficients.
    pub aging: AgingParams,
    /// Maximum continuous cell discharge current (datasheet limit).
    pub max_discharge_current: f64,
}

impl CellParams {
    /// Parameters approximating the Panasonic NCR18650A cell the paper's
    /// reference EV (Tesla Model S) uses: 3.1 Ah, 3.6 V nominal.
    pub fn ncr18650a() -> Self {
        Self {
            capacity: AmpHours::new(3.1),
            ocv: OcvCurve::chen_rincon_mora(),
            resistance: ResistanceCurve::chen_rincon_mora(),
            entropy_coefficient: -1.0e-4,
            heat_capacity: HeatCapacity::new(40.0),
            aging: AgingParams::default(),
            max_discharge_current: 6.2, // 2C continuous
        }
    }

    /// Validates physical plausibility of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::InvalidParameter`] when the capacity, heat
    /// capacity or current limit is non-positive, or the OCV fit produces
    /// a non-positive voltage anywhere on `[0, 1]`.
    pub fn validate(&self) -> Result<(), BatteryError> {
        if self.capacity.value() <= 0.0 {
            return Err(BatteryError::InvalidParameter {
                name: "capacity",
                value: self.capacity.value(),
                constraint: "> 0 Ah",
            });
        }
        if self.heat_capacity.value() <= 0.0 {
            return Err(BatteryError::InvalidParameter {
                name: "heat_capacity",
                value: self.heat_capacity.value(),
                constraint: "> 0 J/K",
            });
        }
        if self.max_discharge_current <= 0.0 {
            return Err(BatteryError::InvalidParameter {
                name: "max_discharge_current",
                value: self.max_discharge_current,
                constraint: "> 0 A",
            });
        }
        for i in 0..=20 {
            let soc = Ratio::new(i as f64 / 20.0);
            let v = self.ocv.voltage(soc);
            if !v.is_finite() || v.value() <= 0.0 {
                return Err(BatteryError::InvalidParameter {
                    name: "ocv",
                    value: v.value(),
                    constraint: "V_oc(soc) > 0 on [0, 1]",
                });
            }
        }
        self.aging.validate()?;
        Ok(())
    }
}

impl Default for CellParams {
    fn default() -> Self {
        Self::ncr18650a()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ocv_is_monotonic_in_soc() {
        let ocv = OcvCurve::default();
        let mut prev = ocv.voltage(Ratio::ZERO);
        for i in 1..=100 {
            let v = ocv.voltage(Ratio::new(i as f64 / 100.0));
            assert!(
                v > prev,
                "OCV must rise with SoC: V({i}) = {v:?} <= {prev:?}"
            );
            prev = v;
        }
    }

    #[test]
    fn ocv_spans_li_ion_voltage_window() {
        let ocv = OcvCurve::default();
        let empty = ocv.voltage(Ratio::ZERO).value();
        let full = ocv.voltage(Ratio::ONE).value();
        assert!((2.5..3.0).contains(&empty), "empty-cell OCV {empty}");
        assert!((4.0..4.3).contains(&full), "full-cell OCV {full}");
    }

    #[test]
    fn resistance_falls_with_temperature() {
        let r = ResistanceCurve::default();
        let soc = Ratio::HALF;
        let cold = r.resistance(soc, Kelvin::from_celsius(0.0));
        let warm = r.resistance(soc, Kelvin::from_celsius(25.0));
        let hot = r.resistance(soc, Kelvin::from_celsius(45.0));
        assert!(cold > warm, "{cold:?} vs {warm:?}");
        assert!(warm > hot, "{warm:?} vs {hot:?}");
    }

    #[test]
    fn resistance_rises_at_low_soc() {
        let r = ResistanceCurve::default();
        let t = Kelvin::from_celsius(25.0);
        assert!(r.resistance(Ratio::new(0.02), t) > r.resistance(Ratio::new(0.5), t));
    }

    #[test]
    fn resistance_at_reference_temperature_matches_fit() {
        let r = ResistanceCurve::default();
        let got = r.resistance(Ratio::ONE, Kelvin::from_celsius(25.0)).value();
        // At SoC = 1 the exponential term is negligible.
        assert!((got - 0.074_46).abs() < 1e-4, "{got}");
    }

    #[test]
    fn ncr18650a_validates() {
        CellParams::ncr18650a().validate().expect("valid preset");
    }

    #[test]
    fn negative_capacity_rejected() {
        let mut p = CellParams::ncr18650a();
        p.capacity = AmpHours::new(-3.0);
        assert!(matches!(
            p.validate(),
            Err(BatteryError::InvalidParameter {
                name: "capacity",
                ..
            })
        ));
    }

    #[test]
    fn broken_ocv_rejected() {
        let mut p = CellParams::ncr18650a();
        p.ocv.v7 = -10.0; // drives OCV negative
        assert!(matches!(
            p.validate(),
            Err(BatteryError::InvalidParameter { name: "ocv", .. })
        ));
    }

    #[test]
    fn default_matches_named_preset() {
        assert_eq!(CellParams::default(), CellParams::ncr18650a());
        assert_eq!(OcvCurve::default(), OcvCurve::chen_rincon_mora());
    }
}
