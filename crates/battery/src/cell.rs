//! Single-cell model: state of charge, terminal behaviour and heat
//! generation (paper Eq. 1–4).

use crate::error::BatteryError;
use crate::params::CellParams;
use otem_units::{Amps, Kelvin, Ohms, Ratio, Seconds, Volts, Watts};
use serde::{Deserialize, Serialize};

/// One Li-ion cell: parameters plus its state of charge.
///
/// Sign convention: positive current **discharges** the cell (current is
/// drawn from it), matching the paper's `I_bat` in Eq. 1.
///
/// # Examples
///
/// ```
/// use otem_battery::{Cell, CellParams};
/// use otem_units::{Amps, Kelvin, Ratio, Seconds};
///
/// # fn main() -> Result<(), otem_battery::BatteryError> {
/// let mut cell = Cell::new(CellParams::ncr18650a(), Ratio::ONE)?;
/// let room = Kelvin::from_celsius(25.0);
/// let v_loaded = cell.terminal_voltage(Amps::new(3.1), room);
/// assert!(v_loaded < cell.open_circuit_voltage());
/// cell.integrate_current(Amps::new(3.1), Seconds::new(360.0)); // 0.1 h at 1C
/// assert!((cell.soc().value() - 0.9).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    params: CellParams,
    soc: Ratio,
    /// Cumulative capacity-loss fraction applied via
    /// [`Cell::apply_degradation`]; shrinks the effective capacity.
    degradation: f64,
}

/// Point-in-time copy of a [`Cell`]'s mutable state (state of charge and
/// cumulative degradation).
///
/// A cell's parameters are immutable after construction, so this tiny
/// `Copy` struct is all that [`Cell::restore`] needs to rewind the cell
/// exactly — the basis for allocation-free what-if rollouts higher up the
/// stack. Note that [`Cell::apply_degradation`] is deliberately monotone;
/// `restore` is the only way to move degradation backwards, and it exists
/// precisely for speculative evaluation, not for healing a real cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellSnapshot {
    soc: Ratio,
    degradation: f64,
}

impl Cell {
    /// Creates a cell at the given initial state of charge.
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::InvalidParameter`] when the parameter set
    /// fails validation.
    pub fn new(params: CellParams, initial_soc: Ratio) -> Result<Self, BatteryError> {
        params.validate()?;
        Ok(Self {
            params,
            soc: initial_soc,
            degradation: 0.0,
        })
    }

    /// The cell's parameter set.
    pub fn params(&self) -> &CellParams {
        &self.params
    }

    /// Present state of charge (paper Eq. 1).
    pub fn soc(&self) -> Ratio {
        self.soc
    }

    /// Overrides the state of charge (initial conditions, test setup).
    pub fn set_soc(&mut self, soc: Ratio) {
        self.soc = soc;
    }

    /// Applies permanent capacity degradation (a fraction of *rated*
    /// capacity, e.g. from [`crate::AgingModel`]): the effective capacity
    /// shrinks, so the same current moves the state of charge faster and
    /// the same charge throughput stresses the cell harder — the
    /// feedback loop behind accelerating end-of-life wear.
    ///
    /// Total degradation is capped at 95 % to keep the model defined.
    pub fn apply_degradation(&mut self, loss_fraction: f64) {
        self.degradation = (self.degradation + loss_fraction.max(0.0)).min(0.95);
    }

    /// Cumulative degradation applied so far (fraction of rated
    /// capacity).
    pub fn degradation(&self) -> f64 {
        self.degradation
    }

    /// Effective (aged) capacity: rated × (1 − degradation).
    pub fn effective_capacity(&self) -> otem_units::AmpHours {
        self.params.capacity * (1.0 - self.degradation)
    }

    /// Open-circuit voltage at the present state of charge (Eq. 2).
    pub fn open_circuit_voltage(&self) -> Volts {
        self.params.ocv.voltage(self.soc)
    }

    /// Internal resistance at the present state of charge and the given
    /// temperature (Eq. 3 with the Arrhenius temperature factor).
    pub fn internal_resistance(&self, temperature: Kelvin) -> Ohms {
        self.params.resistance.resistance(self.soc, temperature)
    }

    /// Terminal voltage under load: `V = V_oc − I·R` (discharge sags,
    /// charge rises).
    pub fn terminal_voltage(&self, current: Amps, temperature: Kelvin) -> Volts {
        self.open_circuit_voltage() - current * self.internal_resistance(temperature)
    }

    /// Heat generated at the given operating point (Eq. 4):
    /// `Q = I·(V_oc − V_bat) + I·T·dV_oc/dT = I²·R + I·T·dV_oc/dT`.
    ///
    /// The Joule term is always non-negative; the entropic term changes
    /// sign with the current direction.
    pub fn heat_generation(&self, current: Amps, temperature: Kelvin) -> Watts {
        let r = self.internal_resistance(temperature).value();
        Watts::new(crate::kernel::cell_heat(
            current.value(),
            r,
            temperature.value(),
            self.params.entropy_coefficient,
        ))
    }

    /// Discharge C-rate implied by the given current (1C = *effective*
    /// capacity in one hour, so aged cells feel the same current as a
    /// higher rate).
    pub fn c_rate(&self, current: Amps) -> f64 {
        current.value() / self.effective_capacity().value()
    }

    /// Maximum terminal power deliverable right now (peak of
    /// `V_oc·I − R·I²` over `I`, attained at `I = V_oc / 2R`), before the
    /// datasheet current limit.
    pub fn max_discharge_power(&self, temperature: Kelvin) -> Watts {
        let voc = self.open_circuit_voltage().value();
        let r = self.internal_resistance(temperature).value();
        let i_peak = voc / (2.0 * r);
        let i = i_peak.min(self.params.max_discharge_current);
        Watts::new(voc * i - r * i * i)
    }

    /// Captures the cell's mutable state for a later [`Cell::restore`].
    pub fn snapshot(&self) -> CellSnapshot {
        CellSnapshot {
            soc: self.soc,
            degradation: self.degradation,
        }
    }

    /// Rewinds the cell to a previously captured [`CellSnapshot`].
    pub fn restore(&mut self, snapshot: CellSnapshot) {
        self.soc = snapshot.soc;
        self.degradation = snapshot.degradation;
    }

    /// Advances the coulomb counter by one time step (Eq. 1):
    /// `SoC ← SoC − ∫ I / C_bat` against the effective capacity,
    /// clamped to `[0, 1]`.
    pub fn integrate_current(&mut self, current: Amps, dt: Seconds) {
        let delta = crate::kernel::soc_decrement(
            current.value(),
            dt.value(),
            self.effective_capacity().to_coulombs().value(),
        );
        self.soc = self.soc.saturating_add(-delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> Cell {
        Cell::new(CellParams::ncr18650a(), Ratio::ONE).expect("valid preset")
    }

    fn room() -> Kelvin {
        Kelvin::from_celsius(25.0)
    }

    #[test]
    fn discharge_sags_charge_lifts_terminal_voltage() {
        let c = cell();
        let voc = c.open_circuit_voltage();
        assert!(c.terminal_voltage(Amps::new(2.0), room()) < voc);
        assert!(c.terminal_voltage(Amps::new(-2.0), room()) > voc);
        assert_eq!(c.terminal_voltage(Amps::ZERO, room()), voc);
    }

    #[test]
    fn one_hour_at_1c_empties_one_capacity_unit() {
        let mut c = cell();
        let i = Amps::new(c.params().capacity.value()); // 1C
        c.integrate_current(i, Seconds::new(3600.0));
        assert!(c.soc().value() < 1e-9, "soc = {}", c.soc().value());
    }

    #[test]
    fn charging_raises_soc_and_clamps_at_full() {
        let mut c = cell();
        c.set_soc(Ratio::new(0.5));
        c.integrate_current(Amps::new(-3.1), Seconds::new(1800.0)); // +0.5
        assert!((c.soc().value() - 1.0).abs() < 1e-9);
        // Further charge cannot exceed 100 %.
        c.integrate_current(Amps::new(-3.1), Seconds::new(3600.0));
        assert_eq!(c.soc(), Ratio::ONE);
    }

    #[test]
    fn heat_generation_is_positive_under_discharge() {
        let c = cell();
        let q = c.heat_generation(Amps::new(3.0), room());
        assert!(q.value() > 0.0);
        // Dominated by the Joule term: I²R.
        let r = c.internal_resistance(room()).value();
        assert!((q.value() - 9.0 * r).abs() / (9.0 * r) < 0.5);
    }

    #[test]
    fn heat_generation_quadratic_in_current() {
        let c = cell();
        let q1 = c.heat_generation(Amps::new(1.0), room()).value();
        let q2 = c.heat_generation(Amps::new(2.0), room()).value();
        // Joule term is quadratic; the (negative) entropic term is linear,
        // so the ratio is at least 4 but stays bounded.
        assert!((4.0..8.0).contains(&(q2 / q1)), "ratio = {}", q2 / q1);
    }

    #[test]
    fn warm_cell_wastes_less_power() {
        let c = cell();
        let cold = c.heat_generation(Amps::new(3.0), Kelvin::from_celsius(0.0));
        let warm = c.heat_generation(Amps::new(3.0), Kelvin::from_celsius(40.0));
        assert!(cold > warm);
    }

    #[test]
    fn max_discharge_power_is_attainable() {
        let c = cell();
        let p_max = c.max_discharge_power(room());
        assert!(p_max.value() > 0.0);
        // At the datasheet current limit the delivered power must match.
        let i = c.params().max_discharge_current;
        let voc = c.open_circuit_voltage().value();
        let r = c.internal_resistance(room()).value();
        let expected = voc * i - r * i * i;
        assert!((p_max.value() - expected).abs() < 1e-9);
    }

    #[test]
    fn c_rate_scales_with_capacity() {
        let c = cell();
        assert!((c.c_rate(Amps::new(3.1)) - 1.0).abs() < 1e-12);
        assert!((c.c_rate(Amps::new(6.2)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degradation_shrinks_capacity_and_raises_stress() {
        let mut c = cell();
        assert_eq!(c.degradation(), 0.0);
        c.apply_degradation(0.10);
        assert!((c.effective_capacity().value() - 3.1 * 0.9).abs() < 1e-12);
        // The same current is now a higher C-rate.
        assert!(c.c_rate(Amps::new(3.1)) > 1.0);
        // And the same discharge empties the cell faster.
        let mut fresh = cell();
        fresh.set_soc(Ratio::ONE);
        c.set_soc(Ratio::ONE);
        fresh.integrate_current(Amps::new(3.1), Seconds::new(1800.0));
        c.integrate_current(Amps::new(3.1), Seconds::new(1800.0));
        assert!(c.soc() < fresh.soc());
    }

    #[test]
    fn snapshot_restore_round_trips_exactly() {
        let mut c = cell();
        c.set_soc(Ratio::new(0.73));
        c.apply_degradation(0.04);
        let saved = c.snapshot();
        let reference = c.clone();
        c.integrate_current(Amps::new(3.1), Seconds::new(600.0));
        c.apply_degradation(0.02);
        assert_ne!(c, reference);
        c.restore(saved);
        // Bit-exact: restore must undo speculative mutation completely,
        // including degradation (which apply_degradation alone cannot).
        assert_eq!(c, reference);
    }

    #[test]
    fn degradation_accumulates_and_caps() {
        let mut c = cell();
        for _ in 0..30 {
            c.apply_degradation(0.10);
        }
        assert!((c.degradation() - 0.95).abs() < 1e-12, "capped at 95 %");
        // Negative input is ignored rather than healing the cell.
        c.apply_degradation(-1.0);
        assert!((c.degradation() - 0.95).abs() < 1e-12);
    }
}
