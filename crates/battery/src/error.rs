//! Error type for battery model construction and operation.

use otem_units::Watts;
use std::error::Error;
use std::fmt;

/// Errors returned by the battery models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BatteryError {
    /// A model parameter was outside its physically meaningful range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// The requested terminal power exceeds what the pack can deliver at
    /// the present state of charge and temperature (the discriminant of
    /// `V_oc·I − R·I² = P` went negative).
    PowerInfeasible {
        /// The power that was requested.
        requested: Watts,
        /// The maximum deliverable terminal power right now.
        available: Watts,
    },
}

impl fmt::Display for BatteryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(
                f,
                "invalid battery parameter {name} = {value}: must satisfy {constraint}"
            ),
            Self::PowerInfeasible {
                requested,
                available,
            } => write!(
                f,
                "requested terminal power {requested:.1} exceeds deliverable {available:.1}"
            ),
        }
    }
}

impl Error for BatteryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = BatteryError::InvalidParameter {
            name: "capacity",
            value: -1.0,
            constraint: "> 0",
        };
        let msg = e.to_string();
        assert!(msg.contains("capacity"));
        assert!(msg.contains("-1"));

        let e = BatteryError::PowerInfeasible {
            requested: Watts::new(1e6),
            available: Watts::new(2e5),
        };
        assert!(e.to_string().contains("exceeds"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BatteryError>();
    }
}
