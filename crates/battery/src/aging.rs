//! Capacity-loss (battery-lifetime) model, paper Eq. 5:
//!
//! `Q_loss = l1 · e^(−l2 / (R·T_bat)) · I^l3`
//!
//! We read Eq. 5 as a *rate* law: at every instant the cell loses capacity
//! at a rate given by an Arrhenius factor in absolute temperature times a
//! power-law stress factor in the discharge C-rate. The coefficients
//! follow the Millner / Wang-et-al. Arrhenius cycling-loss literature the
//! paper cites (\[6\]); `l2` is an activation energy (J/mol) and `l3 > 1`
//! makes high-rate discharge superlinearly damaging.

use crate::error::BatteryError;
use otem_units::{Kelvin, Ratio, Seconds, GAS_CONSTANT};
use serde::{Deserialize, Serialize};

/// Coefficients of the capacity-loss rate law (paper Eq. 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgingParams {
    /// Pre-exponential factor `l1` (fraction of capacity per second at
    /// unit C-rate and infinite temperature).
    pub l1: f64,
    /// Activation energy `l2` (J/mol).
    pub l2: f64,
    /// Current-stress exponent `l3` (dimensionless).
    pub l3: f64,
}

impl AgingParams {
    /// Coefficients calibrated so that sustained 1C discharge at 40 °C
    /// consumes the 20 % end-of-life budget in roughly 1,500 hours of
    /// driving — the order of magnitude of the Millner model for an
    /// NMC/LMO EV cell.
    pub fn millner_like() -> Self {
        Self {
            l1: 6.7e-3,
            l2: 31_500.0,
            l3: 1.15,
        }
    }

    /// Validates the coefficient ranges.
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::InvalidParameter`] for non-positive `l1`
    /// or `l2`, or `l3 < 1` (sublinear stress would reward high-rate
    /// pulsing, inverting the physics the paper relies on).
    pub fn validate(&self) -> Result<(), BatteryError> {
        if self.l1 <= 0.0 {
            return Err(BatteryError::InvalidParameter {
                name: "aging.l1",
                value: self.l1,
                constraint: "> 0",
            });
        }
        if self.l2 <= 0.0 {
            return Err(BatteryError::InvalidParameter {
                name: "aging.l2",
                value: self.l2,
                constraint: "> 0 J/mol",
            });
        }
        if self.l3 < 1.0 {
            return Err(BatteryError::InvalidParameter {
                name: "aging.l3",
                value: self.l3,
                constraint: ">= 1",
            });
        }
        Ok(())
    }

    /// Instantaneous capacity-loss rate (fraction of rated capacity per
    /// second) at the given cell temperature and discharge C-rate.
    ///
    /// Charging (negative C-rate) stresses the cell too; the model uses
    /// the magnitude, matching the paper's use of `I_bat` drawn in either
    /// direction.
    #[inline]
    pub fn loss_rate(&self, temperature: Kelvin, c_rate: f64) -> f64 {
        let t = temperature.value().max(200.0);
        self.l1 * (-self.l2 / (GAS_CONSTANT * t)).exp() * c_rate.abs().powf(self.l3)
    }

    /// [`AgingParams::loss_rate`] together with its partial derivatives:
    /// `(rate, ∂rate/∂T, ∂rate/∂|c|·sign(c))`. The rate is computed in
    /// exactly the operation order of the plain path (bit-identical);
    /// the shared Arrhenius exponential is evaluated once. Below the
    /// 200 K evaluation floor the temperature partial is zero (clamp
    /// active); at zero C-rate the stress partial is zero (the
    /// `|c|^(l3−1)` factor vanishes for `l3 > 1`).
    #[inline]
    pub fn loss_rate_and_partials(&self, temperature: Kelvin, c_rate: f64) -> (f64, f64, f64) {
        let t = temperature.value().max(200.0);
        let arrhenius = (-self.l2 / (GAS_CONSTANT * t)).exp();
        let rate = self.l1 * arrhenius * c_rate.abs().powf(self.l3);
        let d_temp = if temperature.value() > 200.0 {
            rate * self.l2 / (GAS_CONSTANT * t * t)
        } else {
            0.0
        };
        let d_c = if c_rate == 0.0 {
            0.0
        } else {
            self.l1 * arrhenius * self.l3 * c_rate.abs().powf(self.l3 - 1.0) * c_rate.signum()
        };
        (rate, d_temp, d_c)
    }
}

impl Default for AgingParams {
    fn default() -> Self {
        Self::millner_like()
    }
}

/// Accumulates capacity loss over a simulation and answers
/// lifetime questions ("how long until 20 % of capacity is gone?").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgingModel {
    params: AgingParams,
    cumulative_loss: f64,
    elapsed: Seconds,
}

impl AgingModel {
    /// End-of-life threshold: the paper considers the battery useless
    /// after 20 % capacity loss.
    pub const END_OF_LIFE_LOSS: f64 = 0.20;

    /// Creates a fresh accumulator.
    pub fn new(params: AgingParams) -> Self {
        Self {
            params,
            cumulative_loss: 0.0,
            elapsed: Seconds::ZERO,
        }
    }

    /// The coefficients in use.
    pub fn params(&self) -> &AgingParams {
        &self.params
    }

    /// Integrates one time step at the given temperature and C-rate,
    /// returning the incremental loss fraction added by this step.
    pub fn accumulate(&mut self, temperature: Kelvin, c_rate: f64, dt: Seconds) -> f64 {
        let delta = self.params.loss_rate(temperature, c_rate) * dt.value();
        self.cumulative_loss += delta;
        self.elapsed += dt;
        delta
    }

    /// Total capacity-loss fraction so far.
    pub fn cumulative_loss(&self) -> f64 {
        self.cumulative_loss
    }

    /// Remaining usable capacity as a fraction of rated.
    pub fn remaining_capacity(&self) -> Ratio {
        Ratio::new(1.0 - self.cumulative_loss)
    }

    /// Simulated time integrated so far.
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// Extrapolated battery lifetime: at the average loss rate observed so
    /// far, how long until the 20 % end-of-life budget is exhausted?
    ///
    /// Returns `None` until any loss has accumulated.
    pub fn projected_lifetime(&self) -> Option<Seconds> {
        if self.cumulative_loss <= 0.0 || self.elapsed.value() <= 0.0 {
            return None;
        }
        let rate = self.cumulative_loss / self.elapsed.value();
        Some(Seconds::new(Self::END_OF_LIFE_LOSS / rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(celsius: f64) -> Kelvin {
        Kelvin::from_celsius(celsius)
    }

    #[test]
    fn hotter_cells_age_faster() {
        let p = AgingParams::default();
        assert!(p.loss_rate(t(45.0), 1.0) > p.loss_rate(t(25.0), 1.0));
        assert!(p.loss_rate(t(25.0), 1.0) > p.loss_rate(t(5.0), 1.0));
    }

    #[test]
    fn higher_rate_ages_superlinearly() {
        let p = AgingParams::default();
        let one_c = p.loss_rate(t(25.0), 1.0);
        let two_c = p.loss_rate(t(25.0), 2.0);
        assert!(
            two_c > 2.0 * one_c,
            "2C loss {two_c} should exceed twice 1C loss {one_c}"
        );
    }

    #[test]
    fn idle_cell_does_not_age() {
        let p = AgingParams::default();
        assert_eq!(p.loss_rate(t(25.0), 0.0), 0.0);
    }

    #[test]
    fn charging_stress_uses_magnitude() {
        let p = AgingParams::default();
        assert_eq!(p.loss_rate(t(25.0), -1.5), p.loss_rate(t(25.0), 1.5));
    }

    #[test]
    fn calibration_order_of_magnitude() {
        // Sustained 1C at 40 °C should exhaust the 20 % EOL budget in
        // hundreds to a few thousand hours.
        let p = AgingParams::default();
        let rate = p.loss_rate(t(40.0), 1.0);
        let hours_to_eol = AgingModel::END_OF_LIFE_LOSS / rate / 3600.0;
        assert!(
            (200.0..20_000.0).contains(&hours_to_eol),
            "EOL after {hours_to_eol} h"
        );
    }

    #[test]
    fn accumulator_tracks_loss_and_lifetime() {
        let mut aging = AgingModel::new(AgingParams::default());
        assert_eq!(aging.projected_lifetime(), None);
        assert_eq!(aging.remaining_capacity(), Ratio::ONE);

        let step = Seconds::new(60.0);
        let mut total = 0.0;
        for _ in 0..60 {
            total += aging.accumulate(t(35.0), 1.2, step);
        }
        assert!((aging.cumulative_loss() - total).abs() < 1e-15);
        assert!(aging.remaining_capacity() < Ratio::ONE);
        assert_eq!(aging.elapsed(), Seconds::new(3600.0));

        let life = aging.projected_lifetime().expect("loss accumulated");
        // Constant conditions: lifetime = EOL budget / constant rate.
        let expected = AgingModel::END_OF_LIFE_LOSS / (total / 3600.0);
        assert!((life.value() - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn loss_rate_partials_match_finite_differences() {
        let p = AgingParams::default();
        for (celsius, c_rate) in [(10.0, 0.4), (25.0, 1.0), (45.0, 2.5), (35.0, -1.5)] {
            let temp = t(celsius);
            let (rate, d_temp, d_c) = p.loss_rate_and_partials(temp, c_rate);
            assert_eq!(
                rate.to_bits(),
                p.loss_rate(temp, c_rate).to_bits(),
                "fused rate diverged"
            );
            let h = 1e-5;
            let fd_t = (p.loss_rate(Kelvin::new(temp.value() + h), c_rate)
                - p.loss_rate(Kelvin::new(temp.value() - h), c_rate))
                / (2.0 * h);
            let fd_c = (p.loss_rate(temp, c_rate + h) - p.loss_rate(temp, c_rate - h)) / (2.0 * h);
            assert!(
                (d_temp - fd_t).abs() <= 1e-4 * fd_t.abs().max(1e-12),
                "∂rate/∂T {d_temp} vs FD {fd_t}"
            );
            assert!(
                (d_c - fd_c).abs() <= 1e-4 * fd_c.abs().max(1e-12),
                "∂rate/∂c {d_c} vs FD {fd_c}"
            );
        }
        // Degenerate points stay finite and zero where the model is flat.
        let (_, d_cold, _) = p.loss_rate_and_partials(Kelvin::new(150.0), 1.0);
        assert_eq!(d_cold, 0.0);
        let (rate0, _, d_c0) = p.loss_rate_and_partials(t(25.0), 0.0);
        assert_eq!(rate0, 0.0);
        assert_eq!(d_c0, 0.0);
    }

    #[test]
    fn sublinear_stress_exponent_rejected() {
        let p = AgingParams {
            l3: 0.5,
            ..AgingParams::default()
        };
        assert!(p.validate().is_err());
        assert!(AgingParams::default().validate().is_ok());
    }
}
