//! Property-based tests for the battery models: physical invariants that
//! must hold across the whole operating envelope.

use otem_battery::{AgingParams, BatteryPack, Cell, CellParams, PackConfig};
use otem_units::{Amps, Kelvin, Ratio, Seconds, Watts};
use proptest::prelude::*;

fn soc() -> impl Strategy<Value = Ratio> {
    (0.0..=1.0f64).prop_map(Ratio::new)
}

fn temperature() -> impl Strategy<Value = Kelvin> {
    (-10.0..60.0f64).prop_map(Kelvin::from_celsius)
}

proptest! {
    #[test]
    fn ocv_monotonic_and_bounded(s1 in soc(), s2 in soc()) {
        let cell = Cell::new(CellParams::ncr18650a(), s1).unwrap();
        let mut cell2 = cell.clone();
        cell2.set_soc(s2);
        let (v1, v2) = (cell.open_circuit_voltage(), cell2.open_circuit_voltage());
        if s1 < s2 {
            prop_assert!(v1 <= v2);
        }
        prop_assert!((2.0..4.5).contains(&v1.value()));
    }

    #[test]
    fn resistance_positive_and_falls_with_temperature(s in soc(), t in temperature()) {
        let cell = Cell::new(CellParams::ncr18650a(), s).unwrap();
        let r = cell.internal_resistance(t);
        prop_assert!(r.value() > 0.0);
        let hotter = Kelvin::new(t.value() + 10.0);
        prop_assert!(cell.internal_resistance(hotter) < r);
    }

    #[test]
    fn heat_is_nonnegative_for_realistic_currents(
        s in soc(),
        t in temperature(),
        i in -6.0..6.0f64,
    ) {
        let cell = Cell::new(CellParams::ncr18650a(), s).unwrap();
        // The quadratic Joule term dominates the linear entropic term at
        // high current; near zero current, entropic cooling may win
        // (physically real), so only assert above 2 A.
        let q = cell.heat_generation(Amps::new(i), t);
        if i.abs() > 2.0 {
            prop_assert!(q.value() > 0.0, "heat {q:?} at I = {i}");
        }
    }

    #[test]
    fn soc_integration_is_reversible_and_bounded(
        s in soc(),
        i in -6.0..6.0f64,
        dt in 0.1..600.0f64,
    ) {
        let mut cell = Cell::new(CellParams::ncr18650a(), s).unwrap();
        cell.integrate_current(Amps::new(i), Seconds::new(dt));
        let after = cell.soc().value();
        prop_assert!((0.0..=1.0).contains(&after));
        // Discharging lowers SoC, charging raises it (unless clamped).
        if i > 0.0 {
            prop_assert!(after <= s.value());
        } else if i < 0.0 {
            prop_assert!(after >= s.value());
        }
    }

    #[test]
    fn pack_draw_conserves_energy(
        s in 0.2..1.0f64,
        t in temperature(),
        p_kw in -80.0..80.0f64,
    ) {
        let mut pack = BatteryPack::new(CellParams::ncr18650a(), PackConfig::tesla_s_like()).unwrap();
        pack.set_soc(Ratio::new(s));
        let power = Watts::new(p_kw * 1000.0);
        if let Ok(draw) = pack.draw_power(power, t) {
            // internal = terminal + Joule loss; loss is non-negative.
            prop_assert!(draw.loss().value() >= -1e-9, "loss {:?}", draw.loss());
            // Terminal power reproduced by V·I.
            let vi = draw.terminal_voltage.value() * draw.current.value();
            prop_assert!((vi - power.value()).abs() < 1e-5 * power.value().abs().max(1.0));
        }
    }

    #[test]
    fn aging_rate_monotonic_in_temperature_and_rate(
        t1 in 273.0..330.0f64,
        dt_k in 1.0..30.0f64,
        c1 in 0.1..3.0f64,
        dc in 0.1..2.0f64,
    ) {
        let aging = AgingParams::default();
        let base = aging.loss_rate(Kelvin::new(t1), c1);
        prop_assert!(base > 0.0);
        prop_assert!(aging.loss_rate(Kelvin::new(t1 + dt_k), c1) > base);
        prop_assert!(aging.loss_rate(Kelvin::new(t1), c1 + dc) > base);
    }

    #[test]
    fn infeasible_requests_identified_consistently(
        s in 0.2..1.0f64,
        t in temperature(),
    ) {
        let mut pack = BatteryPack::new(CellParams::ncr18650a(), PackConfig::tesla_s_like()).unwrap();
        pack.set_soc(Ratio::new(s));
        let voc = pack.open_circuit_voltage().value();
        let r = pack.internal_resistance(t).value();
        let peak = voc * voc / (4.0 * r);
        prop_assert!(pack.draw_power(Watts::new(peak * 0.99), t).is_ok());
        prop_assert!(pack.draw_power(Watts::new(peak * 1.01), t).is_err());
    }
}
