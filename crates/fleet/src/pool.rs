//! Generic worker-pool fans over independent jobs.
//!
//! Two scheduling disciplines, one contract: results come back **in job
//! order** and are bit-identical to the serial map, because every job is
//! independent and each worker writes only the slots of the jobs it
//! claimed.
//!
//! * [`fan_indexed`] / [`fan_indexed_capped`] — static contiguous
//!   chunking, one chunk per worker. Lowest overhead; load-imbalanced
//!   when job costs are heterogeneous (a worker stuck with the long
//!   jobs idles everyone else).
//! * [`fan_stealing`] — a work-stealing job queue: one atomic cursor
//!   over the shared job slice, each worker claiming the next
//!   un-started job. Per-job overhead is one `fetch_add` plus one
//!   uncontended mutex lock, which heterogeneous fleet campaigns repay
//!   many times over in tail latency.
//!
//! Plain [`std::thread::scope`] throughout — no runtime dependency.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// The worker width a fan call resolves a `threads` argument to, before
/// job-count clamping: `0` means "one worker per available core" (so a
/// 1-CPU container benches honestly instead of oversubscribing), any
/// other value is taken as-is. The bench binaries report this resolved
/// width next to their timings.
pub fn resolve_workers(threads: usize) -> usize {
    if threads == 0 {
        default_threads()
    } else {
        threads
    }
}

/// Fans independent jobs across scoped worker threads and returns the
/// results **in job order**, using one thread per available core.
///
/// See [`fan_indexed_capped`] for the width-capped variant the fleet
/// server uses to pin shard width and avoid oversubscription when many
/// requests fan out concurrently.
pub fn fan_indexed<T, R, F>(jobs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    fan_indexed_capped(jobs, default_threads(), f)
}

/// [`fan_indexed`] with an explicit worker-count cap.
///
/// Spawns `min(threads, jobs)` workers (at least one; serial when one).
/// Each worker owns a contiguous chunk of jobs and writes into the
/// matching chunk of the result vector, so the output ordering is
/// deterministic regardless of thread interleaving — the sweep binaries
/// rely on that to keep their tables and JSONL streams stable across
/// machines.
pub fn fan_indexed_capped<T, R, F>(jobs: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = jobs.len();
    let threads = resolve_workers(threads).clamp(1, n.max(1));
    if threads <= 1 {
        return jobs.into_iter().enumerate().map(|(i, j)| f(i, j)).collect();
    }
    let mut slots: Vec<Option<T>> = jobs.into_iter().map(Some).collect();
    let mut results: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (idx, (job_chunk, result_chunk)) in slots
            .chunks_mut(chunk)
            .zip(results.chunks_mut(chunk))
            .enumerate()
        {
            let f = &f;
            scope.spawn(move || {
                for (offset, (job, slot)) in job_chunk
                    .iter_mut()
                    .zip(result_chunk.iter_mut())
                    .enumerate()
                {
                    let job = job.take().expect("each job is run exactly once");
                    *slot = Some(f(idx * chunk + offset, job));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every worker fills its chunk"))
        .collect()
}

/// Work-stealing fan: `min(threads, jobs)` workers race an atomic
/// cursor over the shared job slice, each claiming the next un-started
/// job until the queue drains. Results come back **in job order**,
/// identical to the serial map — scheduling order only changes *when* a
/// job runs, never its input or its result slot.
///
/// Prefer this over [`fan_indexed_capped`] when job costs are
/// heterogeneous (fleet campaigns mix 60-step reactive vehicles with
/// 360-step MPC vehicles — static chunking leaves the fast workers
/// idle while one shard grinds through the expensive tail).
pub fn fan_stealing<T, R, F>(jobs: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = jobs.len();
    let threads = resolve_workers(threads).clamp(1, n.max(1));
    if threads <= 1 {
        return jobs.into_iter().enumerate().map(|(i, j)| f(i, j)).collect();
    }
    // Each slot is claimed exactly once (the cursor hands out each index
    // to one worker), so the per-slot mutex is never contended — it
    // exists to move `T` out of the shared slice without `unsafe`.
    let slots: Vec<Mutex<Option<T>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let cursor = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let f = &f;
                let slots = &slots;
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut claimed: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // A sibling worker panicking while holding a
                        // *different* slot's lock must not cascade: each
                        // slot is claimed exactly once, so a recovered
                        // guard always sees a complete Option.
                        let job = slots[i]
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .take()
                            .expect("cursor hands each job out once");
                        claimed.push((i, f(i, job)));
                    }
                    claimed
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(claimed) => {
                    for (i, r) in claimed {
                        results[i] = Some(r);
                    }
                }
                // Job closures are expected to contain their own panics
                // (the engine wraps vehicles in catch_unwind); if one
                // escapes anyway, re-raise the original payload instead
                // of masking it behind a generic join error.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every job was claimed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fans_preserve_job_order() {
        let serial: Vec<usize> = (0..23).map(|j| 3 * j + 1).collect();
        let jobs: Vec<usize> = (0..23).collect();
        let f = |i: usize, j: usize| {
            assert_eq!(i, j, "index matches the job's position");
            3 * j + 1
        };
        assert_eq!(fan_indexed(jobs.clone(), f), serial);
        assert_eq!(fan_indexed_capped(jobs.clone(), 4, f), serial);
        assert_eq!(fan_stealing(jobs, 4, f), serial);
    }

    #[test]
    fn degenerate_sizes_work() {
        for fan in [
            fan_indexed_capped as fn(Vec<usize>, usize, fn(usize, usize) -> usize) -> Vec<usize>,
            fan_stealing,
        ] {
            assert_eq!(fan(vec![5], 8, |_, j| j * j), vec![25]);
            assert_eq!(fan(Vec::new(), 8, |_, j| j), Vec::<usize>::new());
        }
    }

    #[test]
    fn caps_wider_than_the_machine_still_complete() {
        let jobs: Vec<usize> = (0..100).collect();
        let out = fan_stealing(jobs, 16, |_, j| j + 1);
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
    }
}
