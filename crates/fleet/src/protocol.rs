//! Wire protocol of the fleet server: minimal JSON field extraction for
//! requests (the vendored `serde` is a no-op stub, so parsing is
//! hand-rolled, mirroring `otem-bench`'s span-stream reader) and JSONL
//! rendering for responses.

use crate::campaign::{Methodology, SolveOutcomes, VehicleSpec, VehicleSummary};
use crate::engine::{Schedule, VehicleFailure};
use otem_drivecycle::StandardCycle;
use otem_telemetry::write_json_string;
use std::fmt::Write as _;

/// The text immediately after `"key":`, if present.
fn field_value<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle)?;
    Some(body[at + needle.len()..].trim_start())
}

/// Extracts an unsigned integer field (`"key":123`).
pub fn json_u64(body: &str, key: &str) -> Option<u64> {
    let rest = field_value(body, key)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts a float field (`"key":-12.5`).
pub fn json_f64(body: &str, key: &str) -> Option<f64> {
    let rest = field_value(body, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts a string field (`"key":"value"`). Values are wire-name
/// identifiers, so escapes are treated as malformed (`None`).
pub fn json_str<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let rest = field_value(body, key)?.strip_prefix('"')?;
    let end = rest.find(['"', '\\'])?;
    if rest[end..].starts_with('\\') {
        return None;
    }
    Some(&rest[..end])
}

/// Extracts a boolean field (`"key":true`).
pub fn json_bool(body: &str, key: &str) -> Option<bool> {
    let rest = field_value(body, key)?;
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Parses a cycle wire name (lower-case spec name).
pub fn cycle_from_wire(name: &str) -> Option<StandardCycle> {
    Some(match name {
        "udds" => StandardCycle::Udds,
        "hwfet" => StandardCycle::Hwfet,
        "us06" => StandardCycle::Us06,
        "sc03" => StandardCycle::Sc03,
        "nycc" => StandardCycle::Nycc,
        "la92" => StandardCycle::La92,
        "wltc" => StandardCycle::Wltc,
        "jc08" => StandardCycle::Jc08,
        "artemis_urban" => StandardCycle::ArtemisUrban,
        _ => return None,
    })
}

/// Lower-case wire name of a cycle.
pub fn cycle_wire_name(cycle: StandardCycle) -> &'static str {
    match cycle {
        StandardCycle::Udds => "udds",
        StandardCycle::Hwfet => "hwfet",
        StandardCycle::Us06 => "us06",
        StandardCycle::Sc03 => "sc03",
        StandardCycle::Nycc => "nycc",
        StandardCycle::La92 => "la92",
        StandardCycle::Wltc => "wltc",
        StandardCycle::Jc08 => "jc08",
        StandardCycle::ArtemisUrban => "artemis_urban",
        // `StandardCycle` is non_exhaustive; new cycles must get a wire
        // name here before the server can accept them.
        _ => "unknown",
    }
}

/// Per-step telemetry format of a single-vehicle request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Telemetry {
    /// Summary line only.
    None,
    /// Stream `otem-telemetry` events as JSON lines ([`otem_telemetry::JsonlSink`]).
    Jsonl,
    /// Stream a Chrome Trace Event array ([`otem_telemetry::ChromeTraceSink`]).
    Chrome,
}

/// A parsed `POST /simulate` or `POST /plan` body.
#[derive(Debug, Clone, PartialEq)]
pub enum SimulateRequest {
    /// Batched campaign: `{"vehicles":1000,"seed":42,"shards":4,
    /// "schedule":"steal","mpc_deadline_us":250}`.
    Fleet {
        /// Campaign size.
        vehicles: usize,
        /// Campaign seed (default 42).
        seed: u64,
        /// Requested worker count (`0` → server default).
        shards: usize,
        /// `"steal"` (default), `"static"`, or `"serial"`.
        schedule: &'static str,
        /// Per-solve wall-clock deadline (µs) applied to every OTEM
        /// vehicle in the campaign; `0` (default) means no deadline.
        mpc_deadline_us: u64,
        /// Chaos hook: id of one vehicle whose controller will *panic*
        /// mid-campaign, exercising the engine's panic containment.
        /// Absent on production traffic.
        poison_id: Option<u64>,
    },
    /// One explicit vehicle: `{"cycle":"us06","methodology":"otem",
    /// "steps":120,"ambient_c":30,"capacitance_f":20000,
    /// "telemetry":"jsonl"}`.
    Vehicle {
        /// The vehicle to simulate.
        spec: VehicleSpec,
        /// Per-step streaming mode.
        telemetry: Telemetry,
    },
}

/// Parse failure: human-readable reason, returned as a 400.
pub type ParseError = String;

/// Extracts and validates the optional per-solve deadline field.
/// `0` (the default) means "no deadline"; anything above 10 s per solve
/// is rejected as a client error rather than silently accepted.
fn parse_deadline_us(body: &str) -> Result<u64, ParseError> {
    let us = json_u64(body, "mpc_deadline_us").unwrap_or(0);
    if us > 10_000_000 {
        return Err("\"mpc_deadline_us\" must be ≤ 10000000 (10 s)".into());
    }
    Ok(us)
}

impl SimulateRequest {
    /// Parses a request body. A body with a `"vehicles"` count is a
    /// fleet request; anything else is a single vehicle with defaults
    /// for every omitted field.
    pub fn parse(body: &str) -> Result<Self, ParseError> {
        if let Some(vehicles) = json_u64(body, "vehicles") {
            if vehicles == 0 {
                return Err("\"vehicles\" must be ≥ 1".into());
            }
            let schedule = match json_str(body, "schedule") {
                None | Some("steal") => "steal",
                Some("static") => "static",
                Some("serial") => "serial",
                Some(other) => return Err(format!("unknown schedule {other:?}")),
            };
            let poison_id = json_u64(body, "poison_id");
            if let Some(id) = poison_id {
                if id >= vehicles {
                    return Err(format!(
                        "\"poison_id\" {id} out of range for {vehicles} vehicles"
                    ));
                }
            }
            return Ok(Self::Fleet {
                vehicles: vehicles as usize,
                seed: json_u64(body, "seed").unwrap_or(42),
                shards: json_u64(body, "shards").unwrap_or(0) as usize,
                schedule,
                mpc_deadline_us: parse_deadline_us(body)?,
                poison_id,
            });
        }

        let cycle = match json_str(body, "cycle") {
            None => StandardCycle::Us06,
            Some(name) => cycle_from_wire(name).ok_or_else(|| format!("unknown cycle {name:?}"))?,
        };
        let methodology = match json_str(body, "methodology") {
            None => Methodology::Otem,
            Some(name) => Methodology::from_wire(name)
                .ok_or_else(|| format!("unknown methodology {name:?}"))?,
        };
        let telemetry = match json_str(body, "telemetry") {
            None | Some("none") => Telemetry::None,
            Some("jsonl") => Telemetry::Jsonl,
            Some("chrome") => Telemetry::Chrome,
            Some(other) => return Err(format!("unknown telemetry mode {other:?}")),
        };
        let steps = json_u64(body, "steps").unwrap_or(120) as usize;
        if steps == 0 || steps > 100_000 {
            return Err("\"steps\" must be in 1..=100000".into());
        }
        let ambient_c = json_f64(body, "ambient_c").unwrap_or(25.0);
        if !(-10.0..=39.0).contains(&ambient_c) {
            return Err("\"ambient_c\" must be in -10..=39".into());
        }
        let capacitance_f = json_f64(body, "capacitance_f").unwrap_or(25_000.0);
        if !(1_000.0..=100_000.0).contains(&capacitance_f) {
            return Err("\"capacitance_f\" must be in 1000..=100000".into());
        }
        Ok(Self::Vehicle {
            spec: VehicleSpec {
                id: json_u64(body, "id").unwrap_or(0),
                cycle,
                steps,
                compact: json_bool(body, "compact").unwrap_or(false),
                ambient_c,
                capacitance_f,
                methodology,
                mpc_horizon: json_u64(body, "mpc_horizon").unwrap_or(8) as usize,
                mpc_iterations: json_u64(body, "mpc_iterations").unwrap_or(12) as usize,
                mpc_deadline_us: parse_deadline_us(body)?,
                poison_step: None,
            },
            telemetry,
        })
    }

    /// The [`Schedule`] a fleet request resolves to, given the server's
    /// configured default shard width.
    pub fn schedule(&self, default_shards: usize) -> Schedule {
        match self {
            Self::Fleet {
                shards, schedule, ..
            } => {
                let width = if *shards == 0 {
                    default_shards
                } else {
                    *shards
                };
                match *schedule {
                    "serial" => Schedule::Serial,
                    "static" => Schedule::Static { shards: width },
                    _ => Schedule::WorkStealing { shards: width },
                }
            }
            Self::Vehicle { .. } => Schedule::Serial,
        }
    }
}

/// Renders a solve-outcome distribution as one JSON object (no
/// surrounding whitespace) — embedded in fleet summary lines and the
/// `/metrics` line.
pub fn outcomes_json(o: &SolveOutcomes) -> String {
    format!(
        "{{\"converged\":{},\"budget_exhausted\":{},\"stalled\":{},\
         \"non_finite\":{},\"deadline_reached\":{}}}",
        o.converged, o.budget_exhausted, o.stalled, o.non_finite, o.deadline_reached
    )
}

/// Renders one vehicle summary as a JSONL line (no trailing newline).
pub fn summary_line(s: &VehicleSummary) -> String {
    let mut out = String::with_capacity(192);
    let _ = write!(
        out,
        "{{\"event\":\"vehicle\",\"id\":{},\"steps\":{},\"energy_j\":{:.6},\
         \"cooling_j\":{:.6},\"capacity_loss\":{:.6e},\"peak_temp_c\":{:.4},\
         \"shortfall_j\":{:.6},\"checksum\":\"{:016x}\"}}",
        s.id,
        s.steps,
        s.energy_j,
        s.cooling_j,
        s.capacity_loss,
        s.peak_temp_k - 273.15,
        s.shortfall_j,
        s.checksum
    );
    out
}

/// Renders one vehicle failure as a JSONL line (no trailing newline) —
/// interleaved with [`summary_line`]s in id order so a streaming client
/// sees exactly one line per requested vehicle.
pub fn failure_line(f: &VehicleFailure) -> String {
    let mut out = String::with_capacity(96 + f.message.len());
    let _ = write!(
        out,
        "{{\"event\":\"vehicle_error\",\"id\":{},\"panicked\":{},\"error\":",
        f.id, f.panicked
    );
    write_json_string(&mut out, &f.message);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_body_parses_with_defaults() {
        let r = SimulateRequest::parse("{\"vehicles\":100}").expect("parses");
        assert_eq!(
            r,
            SimulateRequest::Fleet {
                vehicles: 100,
                seed: 42,
                shards: 0,
                schedule: "steal",
                mpc_deadline_us: 0,
                poison_id: None,
            }
        );
        assert_eq!(r.schedule(4), Schedule::WorkStealing { shards: 4 });
    }

    #[test]
    fn fleet_body_honours_explicit_fields() {
        let r = SimulateRequest::parse(
            "{\"vehicles\":8,\"seed\":7,\"shards\":2,\"schedule\":\"static\",\
             \"mpc_deadline_us\":250}",
        )
        .expect("parses");
        assert_eq!(r.schedule(16), Schedule::Static { shards: 2 });
        match r {
            SimulateRequest::Fleet {
                vehicles,
                seed,
                mpc_deadline_us,
                ..
            } => {
                assert_eq!((vehicles, seed, mpc_deadline_us), (8, 7, 250));
            }
            other => panic!("expected fleet, got {other:?}"),
        }
    }

    #[test]
    fn vehicle_body_parses_with_defaults() {
        let r = SimulateRequest::parse("{}").expect("parses");
        match r {
            SimulateRequest::Vehicle { spec, telemetry } => {
                assert_eq!(spec.cycle, StandardCycle::Us06);
                assert_eq!(spec.methodology, Methodology::Otem);
                assert_eq!(spec.steps, 120);
                assert_eq!(telemetry, Telemetry::None);
            }
            other => panic!("expected vehicle, got {other:?}"),
        }
    }

    #[test]
    fn vehicle_body_honours_explicit_fields() {
        let r = SimulateRequest::parse(
            "{\"cycle\":\"nycc\",\"methodology\":\"dual\",\"steps\":50,\
             \"ambient_c\":32.5,\"capacitance_f\":9000,\"telemetry\":\"jsonl\",\
             \"compact\":true}",
        )
        .expect("parses");
        match r {
            SimulateRequest::Vehicle { spec, telemetry } => {
                assert_eq!(spec.cycle, StandardCycle::Nycc);
                assert_eq!(spec.methodology, Methodology::Dual);
                assert_eq!(spec.steps, 50);
                assert_eq!(spec.ambient_c, 32.5);
                assert_eq!(spec.capacitance_f, 9000.0);
                assert!(spec.compact);
                assert_eq!(telemetry, Telemetry::Jsonl);
            }
            other => panic!("expected vehicle, got {other:?}"),
        }
    }

    #[test]
    fn invalid_bodies_are_rejected() {
        assert!(SimulateRequest::parse("{\"vehicles\":0}").is_err());
        assert!(SimulateRequest::parse("{\"cycle\":\"warp9\"}").is_err());
        assert!(SimulateRequest::parse("{\"methodology\":\"psychic\"}").is_err());
        assert!(SimulateRequest::parse("{\"steps\":0}").is_err());
        assert!(SimulateRequest::parse("{\"ambient_c\":95}").is_err());
        assert!(SimulateRequest::parse("{\"vehicles\":4,\"schedule\":\"chaos\"}").is_err());
        assert!(SimulateRequest::parse("{\"mpc_deadline_us\":10000001}").is_err());
        assert!(SimulateRequest::parse("{\"vehicles\":4,\"mpc_deadline_us\":10000001}").is_err());
        assert!(SimulateRequest::parse("{\"vehicles\":4,\"poison_id\":4}").is_err());
    }

    #[test]
    fn poison_id_parses_when_in_range() {
        let r = SimulateRequest::parse("{\"vehicles\":4,\"poison_id\":2}").expect("parses");
        match r {
            SimulateRequest::Fleet { poison_id, .. } => assert_eq!(poison_id, Some(2)),
            other => panic!("expected fleet, got {other:?}"),
        }
    }

    #[test]
    fn failure_line_escapes_the_message() {
        let line = failure_line(&VehicleFailure {
            id: 7,
            panicked: true,
            message: "poison fault: \"quoted\"\npayload".into(),
        });
        assert_eq!(
            line,
            "{\"event\":\"vehicle_error\",\"id\":7,\"panicked\":true,\
             \"error\":\"poison fault: \\\"quoted\\\"\\npayload\"}"
        );
    }

    #[test]
    fn vehicle_deadline_field_parses() {
        let r = SimulateRequest::parse("{\"mpc_deadline_us\":500}").expect("parses");
        match r {
            SimulateRequest::Vehicle { spec, .. } => assert_eq!(spec.mpc_deadline_us, 500),
            other => panic!("expected vehicle, got {other:?}"),
        }
    }

    #[test]
    fn cycle_wire_names_round_trip() {
        for c in StandardCycle::EXTENDED {
            assert_eq!(cycle_from_wire(cycle_wire_name(c)), Some(c));
        }
    }

    #[test]
    fn summary_line_is_one_json_object() {
        let line = summary_line(&VehicleSummary {
            id: 3,
            steps: 10,
            energy_j: 1234.5,
            cooling_j: 56.25,
            capacity_loss: 1.5e-7,
            peak_temp_k: 300.15,
            shortfall_j: 0.0,
            checksum: 0xdead_beef,
        });
        assert!(line.starts_with("{\"event\":\"vehicle\",\"id\":3,"));
        assert!(line.contains("\"checksum\":\"00000000deadbeef\""));
        assert!(!line.contains('\n'));
    }
}
