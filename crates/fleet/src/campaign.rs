//! Deterministic heterogeneous vehicle campaigns.
//!
//! A campaign is a list of [`VehicleSpec`]s — each an independent
//! closed-loop simulation problem (drive cycle, vehicle class, ambient,
//! ultracapacitor sizing, management methodology, MPC tuning). Specs are
//! derived from a seed *per vehicle* ([`VehicleSpec::synthesize`]), so
//! vehicle `i` of campaign `(n, seed)` is the same vehicle for every
//! `n ≥ i` — the property that lets the determinism tests rebuild any
//! single vehicle and compare it against the fleet engine's output
//! bit for bit.

use otem::mpc::{Clock, MpcConfig};
use otem::policy::{ActiveCooling, Dual, Otem, Parallel};
use otem::{Controller, OtemError, RunTotals, SimulationResult, StepRecord, SystemConfig};
use otem_drivecycle::{standard, PowerTrace, Powertrain, StandardCycle, VehicleParams};
use otem_faults::{FaultKind, FaultPlan, FaultedController};
use otem_telemetry::Counter;
use otem_units::{Farads, Kelvin, Seconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// The management methodologies a fleet vehicle may run (the paper's
/// Section IV-B comparison set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Methodology {
    /// Hard-wired parallel architecture, no management.
    Parallel,
    /// Battery-only with thermostatic active cooling.
    ActiveCooling,
    /// Dual architecture with temperature-threshold switching.
    Dual,
    /// The paper's MPC controller.
    Otem,
}

impl Methodology {
    /// Lower-case wire name (used by the serving layer's JSON).
    pub fn wire_name(self) -> &'static str {
        match self {
            Self::Parallel => "parallel",
            Self::ActiveCooling => "active_cooling",
            Self::Dual => "dual",
            Self::Otem => "otem",
        }
    }

    /// Parses a wire name (see [`Methodology::wire_name`]).
    pub fn from_wire(name: &str) -> Option<Self> {
        Some(match name {
            "parallel" => Self::Parallel,
            "active_cooling" => Self::ActiveCooling,
            "dual" => Self::Dual,
            "otem" => Self::Otem,
            _ => return None,
        })
    }
}

/// One vehicle's complete simulation problem.
#[derive(Debug, Clone, PartialEq)]
pub struct VehicleSpec {
    /// Campaign-unique vehicle id.
    pub id: u64,
    /// Drive cycle the route is cut from.
    pub cycle: StandardCycle,
    /// Route length in control periods (the trace cycles through the
    /// base cycle when longer than one lap).
    pub steps: usize,
    /// `true` → compact city EV; `false` → midsize EV.
    pub compact: bool,
    /// Ambient (and initial) temperature, °C.
    pub ambient_c: f64,
    /// Ultracapacitor bank size, F (the paper's 5,000–25,000 F span).
    pub capacitance_f: f64,
    /// Management methodology.
    pub methodology: Methodology,
    /// MPC horizon (OTEM vehicles only).
    pub mpc_horizon: usize,
    /// MPC per-period solver iteration budget (OTEM vehicles only).
    pub mpc_iterations: usize,
    /// Per-solve wall-clock deadline in microseconds (OTEM vehicles
    /// only; `0` = no deadline). Non-zero values make each MPC solve
    /// *anytime*: it returns its best feasible iterate when the budget
    /// expires instead of running to tolerance.
    pub mpc_deadline_us: u64,
    /// Chaos hook: make this vehicle's controller **panic** at the
    /// given step ([`otem_faults::FaultKind::Poison`]). `None` (always
    /// the case for synthetic campaigns) leaves the controller
    /// untouched — the nominal path never pays for the hook. The fleet
    /// engine must contain the unwind: the campaign completes with a
    /// structured error record for this vehicle.
    pub poison_step: Option<u64>,
}

impl VehicleSpec {
    /// Deterministically derives vehicle `id` of the campaign family
    /// `seed`. Independent of campaign size: the spec depends only on
    /// `(id, seed)`.
    pub fn synthesize(id: u64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let cycle = StandardCycle::ALL[rng.gen_range(0usize..StandardCycle::ALL.len())];
        let steps = rng.gen_range(60usize..=360);
        let compact = rng.next_u64() & 1 == 1;
        let ambient_c = rng.gen_range(15.0..=35.0);
        let capacitance_f = rng.gen_range(5_000.0..=25_000.0);
        // Weighted methodology mix: the MPC vehicles are 2–3 orders of
        // magnitude more expensive per step than the reactive baselines,
        // so a fleet that is 10 % OTEM already spends most of its CPU in
        // the solver — a realistic serving mix that still exercises the
        // full stack.
        let methodology = match rng.next_f64() {
            x if x < 0.30 => Methodology::Parallel,
            x if x < 0.60 => Methodology::ActiveCooling,
            x if x < 0.90 => Methodology::Dual,
            _ => Methodology::Otem,
        };
        let mpc_horizon = rng.gen_range(6usize..=12);
        let mpc_iterations = rng.gen_range(8usize..=16);
        Self {
            id,
            cycle,
            steps,
            compact,
            ambient_c,
            capacitance_f,
            methodology,
            mpc_horizon,
            mpc_iterations,
            // Synthetic campaigns carry no deadline (keeps every
            // historical campaign checksum bit-identical); deadlines
            // arrive via explicit specs or the serving layer's
            // `mpc_deadline_us` request field.
            mpc_deadline_us: 0,
            poison_step: None,
        }
    }

    /// The vehicle's system configuration.
    pub fn config(&self) -> SystemConfig {
        SystemConfig::with_capacitance(Farads::new(self.capacitance_f))
            .with_ambient(Kelvin::from_celsius(self.ambient_c))
    }

    /// Builds the vehicle's controller.
    ///
    /// # Errors
    ///
    /// Propagates component validation errors.
    pub fn controller(&self, config: &SystemConfig) -> Result<Box<dyn Controller>, OtemError> {
        self.controller_with_clock(config, None)
    }

    /// [`VehicleSpec::controller`] with an explicit solver time source
    /// for OTEM vehicles. Deterministic harnesses pass a
    /// [`otem::mpc::VirtualClock`] per vehicle so deadline-constrained
    /// solves are bit-reproducible regardless of host load or shard
    /// count; `None` keeps the production monotonic clock.
    ///
    /// # Errors
    ///
    /// Propagates component validation errors.
    pub fn controller_with_clock(
        &self,
        config: &SystemConfig,
        clock: Option<Arc<dyn Clock>>,
    ) -> Result<Box<dyn Controller>, OtemError> {
        let inner: Box<dyn Controller> = match self.methodology {
            Methodology::Parallel => Box::new(Parallel::new(config)?),
            Methodology::ActiveCooling => Box::new(ActiveCooling::new(config)?),
            Methodology::Dual => Box::new(Dual::new(config)?),
            Methodology::Otem => {
                let mut otem = Otem::with_mpc(
                    config,
                    MpcConfig {
                        horizon: self.mpc_horizon,
                        solver_iterations: self.mpc_iterations,
                        deadline_ns: (self.mpc_deadline_us > 0)
                            .then(|| self.mpc_deadline_us.saturating_mul(1_000)),
                        ..MpcConfig::default()
                    },
                )?;
                if let Some(clock) = clock {
                    otem.set_solver_clock(clock);
                }
                Box::new(otem)
            }
        };
        Ok(match self.poison_step {
            // The decorator only exists on poisoned vehicles, so the
            // nominal path stays byte-identical to the pre-hook code.
            Some(step) => Box::new(FaultedController::new(
                inner,
                FaultPlan::new(0).inject(FaultKind::Poison, step, step.saturating_add(1)),
            )),
            None => inner,
        })
    }
}

/// Count of MPC solves by [`otem_solver` outcome](otem::mpc), summed
/// over whatever scope holds it (one vehicle, a campaign, a server's
/// lifetime). Addition is commutative, so campaign-level totals are
/// identical for every schedule and shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveOutcomes {
    /// Solves that met the convergence tolerance.
    pub converged: u64,
    /// Solves that ran out of their iteration budget.
    pub budget_exhausted: u64,
    /// Solves whose line search stalled on numerically flat terrain.
    pub stalled: u64,
    /// Solves that hit a non-finite objective or gradient.
    pub non_finite: u64,
    /// Anytime solves cut off by the wall-clock deadline.
    pub deadline_reached: u64,
}

impl SolveOutcomes {
    /// Bumps the counter matching a [`SolverOutcome name`]
    /// (`otem_solver::SolverOutcome::name`); unknown names are ignored
    /// so a newer solver never panics an older tally.
    pub fn record(&mut self, outcome: &str) {
        match outcome {
            "converged" => self.converged += 1,
            "budget_exhausted" => self.budget_exhausted += 1,
            "stalled" => self.stalled += 1,
            "non_finite" => self.non_finite += 1,
            "deadline_reached" => self.deadline_reached += 1,
            _ => {}
        }
    }

    /// Adds another tally into this one.
    pub fn add(&mut self, other: SolveOutcomes) {
        self.converged += other.converged;
        self.budget_exhausted += other.budget_exhausted;
        self.stalled += other.stalled;
        self.non_finite += other.non_finite;
        self.deadline_reached += other.deadline_reached;
    }

    /// Total solves observed.
    pub fn total(&self) -> u64 {
        self.converged
            + self.budget_exhausted
            + self.stalled
            + self.non_finite
            + self.deadline_reached
    }
}

/// Caches the base power trace per `(cycle, vehicle class)` so a
/// 100k-vehicle campaign synthesises each standard cycle once, not 100k
/// times. Vehicle traces are deterministic slices of the cached base —
/// the cache is an optimisation, never a behaviour change.
#[derive(Debug, Default)]
pub struct TraceCache {
    base: Mutex<HashMap<(StandardCycle, bool), Arc<PowerTrace>>>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
}

impl TraceCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache whose hit/miss counters are the given handles —
    /// typically children of a
    /// [`otem_telemetry::MetricsRegistry`], so cache effectiveness
    /// shows up on `/metrics` without a separate read path.
    pub fn with_metrics(hits: Arc<Counter>, misses: Arc<Counter>) -> Self {
        Self {
            base: Mutex::default(),
            hits,
            misses,
        }
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups that had to synthesise the base trace (including lost
    /// cold-key races, which each cost one redundant synthesis).
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// The spec's power trace: the base cycle's trace for the spec's
    /// vehicle class, cycled to exactly `spec.steps` samples.
    ///
    /// # Errors
    ///
    /// Propagates cycle-synthesis and vehicle validation errors.
    pub fn trace_for(&self, spec: &VehicleSpec) -> Result<PowerTrace, OtemError> {
        let key = (spec.cycle, spec.compact);
        let base = {
            // `into_inner` on poison: the map is only ever observed
            // between complete insertions (the synthesis happens outside
            // the lock), so a worker that panicked while holding the
            // guard leaves a valid cache — recovering it keeps one
            // poisoned vehicle from starving the rest of the fleet.
            let cached = self
                .base
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .get(&key)
                .cloned();
            match cached {
                Some(b) => {
                    self.hits.inc();
                    b
                }
                None => {
                    self.misses.inc();
                    // Synthesise outside the lock: cycle synthesis is
                    // milliseconds, and concurrent workers hitting a cold
                    // key would serialise behind it. A lost race costs one
                    // redundant synthesis of a deterministic trace.
                    let cycle = standard(spec.cycle)?;
                    let params = if spec.compact {
                        VehicleParams::compact_ev()
                    } else {
                        VehicleParams::midsize_ev()
                    };
                    let trace = Arc::new(Powertrain::new(params)?.power_trace(&cycle));
                    self.base
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .entry(key)
                        .or_insert(trace)
                        .clone()
                }
            }
        };
        let samples = base
            .samples()
            .iter()
            .copied()
            .cycle()
            .take(spec.steps)
            .collect();
        Ok(PowerTrace::new(base.dt(), samples))
    }
}

/// A list of vehicles to simulate.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// Seed the specs were derived from.
    pub seed: u64,
    /// The vehicles, in id order.
    pub vehicles: Vec<VehicleSpec>,
}

impl Campaign {
    /// A deterministic heterogeneous campaign of `n` vehicles.
    pub fn synthetic(n: usize, seed: u64) -> Self {
        Self {
            seed,
            vehicles: (0..n as u64)
                .map(|id| VehicleSpec::synthesize(id, seed))
                .collect(),
        }
    }

    /// Total control periods across the whole campaign.
    pub fn total_steps(&self) -> u64 {
        self.vehicles.iter().map(|v| v.steps as u64).sum()
    }
}

/// Scalar per-vehicle outcome, cheap enough to keep 100k of.
///
/// `checksum` folds **every field of every step record** (bit patterns,
/// in step order) through FNV-1a, so two summaries are equal only if
/// the underlying record streams are bit-identical — the fleet
/// determinism pin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VehicleSummary {
    /// Vehicle id.
    pub id: u64,
    /// Steps simulated.
    pub steps: usize,
    /// HEES energy consumed over the route (J) — the paper's `Energy`.
    pub energy_j: f64,
    /// Energy drawn by active cooling (J).
    pub cooling_j: f64,
    /// Accumulated capacity loss (fraction) — the paper's `Q_loss`.
    pub capacity_loss: f64,
    /// Peak battery temperature (K).
    pub peak_temp_k: f64,
    /// Unserved load energy (J).
    pub shortfall_j: f64,
    /// FNV-1a digest over the full per-step record stream.
    pub checksum: u64,
}

/// Folds a stream of [`StepRecord`]s into a [`VehicleSummary`].
///
/// Both execution paths build summaries through this one type — the
/// fleet engine from [`otem::Simulator::run_each`]'s streamed records,
/// the determinism tests from a retained
/// [`SimulationResult`] — so equal summaries certify equal record
/// streams, not merely similar aggregates.
#[derive(Debug, Clone)]
pub struct SummaryBuilder {
    dt: f64,
    steps: usize,
    energy_j: f64,
    cooling_j: f64,
    peak_temp_k: f64,
    shortfall_j: f64,
    checksum: u64,
}

impl SummaryBuilder {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1000_0000_01b3;

    /// An empty accumulator for a run at control period `dt`.
    pub fn new(dt: Seconds) -> Self {
        Self {
            dt: dt.value(),
            steps: 0,
            energy_j: 0.0,
            cooling_j: 0.0,
            peak_temp_k: 0.0,
            shortfall_j: 0.0,
            checksum: Self::FNV_OFFSET,
        }
    }

    fn fold(&mut self, bits: u64) {
        self.checksum ^= bits;
        self.checksum = self.checksum.wrapping_mul(Self::FNV_PRIME);
    }

    /// Accumulates one step record.
    pub fn push(&mut self, r: &StepRecord) {
        self.steps += 1;
        // Mirrors SimulationResult::energy()/cooling_energy()/
        // shortfall_energy(): a fold of `value * dt` in step order over
        // f64, so the streamed totals are bit-identical to the retained
        // path's iterator sums.
        self.energy_j += r.total_power().value() * self.dt;
        self.cooling_j += r.cooling_power.value() * self.dt;
        self.shortfall_j += r.hees.shortfall.value() * self.dt;
        self.peak_temp_k = self.peak_temp_k.max(r.state.battery_temp.value());
        for bits in [
            r.load.value().to_bits(),
            r.hees.delivered.value().to_bits(),
            r.hees.shortfall.value().to_bits(),
            r.hees.battery_internal.value().to_bits(),
            r.hees.cap_internal.value().to_bits(),
            r.hees.battery_heat.value().to_bits(),
            r.hees.battery_c_rate.to_bits(),
            r.hees.converter_loss.value().to_bits(),
            r.cooling_power.value().to_bits(),
            r.state.battery_temp.value().to_bits(),
            r.state.coolant_temp.value().to_bits(),
            r.state.soc.value().to_bits(),
            r.state.soe.value().to_bits(),
        ] {
            self.fold(bits);
        }
    }

    /// Finishes the summary with the run's totals.
    pub fn finish(self, id: u64, totals: RunTotals) -> VehicleSummary {
        debug_assert_eq!(self.steps, totals.steps, "observer saw every step");
        VehicleSummary {
            id,
            steps: self.steps,
            energy_j: self.energy_j,
            cooling_j: self.cooling_j,
            capacity_loss: totals.capacity_loss,
            peak_temp_k: self.peak_temp_k,
            shortfall_j: self.shortfall_j,
            checksum: self.checksum,
        }
    }

    /// Summarises a retained single-vehicle [`SimulationResult`] — the
    /// reference path the determinism tests compare the engine against.
    pub fn from_result(id: u64, result: &SimulationResult) -> VehicleSummary {
        let mut b = Self::new(result.dt);
        for r in &result.records {
            b.push(r);
        }
        b.finish(
            id,
            RunTotals {
                steps: result.records.len(),
                capacity_loss: result.capacity_loss,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_depend_only_on_id_and_seed() {
        let a = Campaign::synthetic(4, 7);
        let b = Campaign::synthetic(32, 7);
        assert_eq!(a.vehicles[..], b.vehicles[..4], "prefix-stable");
        let c = Campaign::synthetic(4, 8);
        assert_ne!(a.vehicles, c.vehicles, "seed matters");
    }

    #[test]
    fn synthesized_specs_build_valid_systems() {
        for v in &Campaign::synthetic(24, 42).vehicles {
            let config = v.config();
            config
                .validate()
                .unwrap_or_else(|e| panic!("vehicle {}: {e}", v.id));
            v.controller(&config)
                .unwrap_or_else(|e| panic!("vehicle {}: {e}", v.id));
            assert!((60..=360).contains(&v.steps));
            assert!((15.0..=35.0).contains(&v.ambient_c));
        }
    }

    #[test]
    fn campaign_mixes_methodologies() {
        let campaign = Campaign::synthetic(200, 1);
        let otem = campaign
            .vehicles
            .iter()
            .filter(|v| v.methodology == Methodology::Otem)
            .count();
        assert!(otem > 0 && otem < 60, "≈10 % OTEM, got {otem}/200");
    }

    #[test]
    fn trace_cache_slices_are_deterministic_and_sized() {
        let cache = TraceCache::new();
        let spec = VehicleSpec::synthesize(3, 42);
        let a = cache.trace_for(&spec).expect("trace");
        let b = cache.trace_for(&spec).expect("trace");
        assert_eq!(a.samples(), b.samples());
        assert_eq!(a.len(), spec.steps);
    }

    #[test]
    fn trace_cache_counts_hits_and_misses_on_shared_handles() {
        let hits = Arc::new(Counter::new());
        let misses = Arc::new(Counter::new());
        let cache = TraceCache::with_metrics(Arc::clone(&hits), Arc::clone(&misses));
        let spec = VehicleSpec::synthesize(3, 42);
        cache.trace_for(&spec).expect("trace");
        cache.trace_for(&spec).expect("trace");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(
            (hits.get(), misses.get()),
            (1, 1),
            "the external handles observe the same counts"
        );
    }

    #[test]
    fn trace_longer_than_one_lap_cycles_the_base() {
        let cache = TraceCache::new();
        let mut spec = VehicleSpec::synthesize(0, 9);
        spec.cycle = StandardCycle::Nycc; // 598 s base
        spec.steps = 700;
        let t = cache.trace_for(&spec).expect("trace");
        assert_eq!(t.len(), 700);
        assert_eq!(t.get(598 + 5), t.get(5), "wraps onto the base trace");
    }

    #[test]
    fn methodology_wire_names_round_trip() {
        for m in [
            Methodology::Parallel,
            Methodology::ActiveCooling,
            Methodology::Dual,
            Methodology::Otem,
        ] {
            assert_eq!(Methodology::from_wire(m.wire_name()), Some(m));
        }
        assert_eq!(Methodology::from_wire("nope"), None);
    }

    #[test]
    fn checksum_distinguishes_different_record_streams() {
        use otem::policy::{Dual, Parallel};
        use otem::Simulator;
        let cache = TraceCache::new();
        let spec = VehicleSpec::synthesize(1, 42);
        let config = spec.config();
        let trace = cache.trace_for(&spec).expect("trace");
        let sim = Simulator::new(&config);
        let mut a = Parallel::new(&config).expect("valid");
        let mut b = Dual::new(&config).expect("valid");
        let ra = SummaryBuilder::from_result(1, &sim.run(&mut a, &trace));
        let rb = SummaryBuilder::from_result(1, &sim.run(&mut b, &trace));
        assert_ne!(ra.checksum, rb.checksum);
    }
}
