//! A minimal blocking HTTP/JSONL client for the fleet server, with a
//! retrying wrapper the benches and chaos harness share.
//!
//! The server sheds load under pressure (`503` with a `retry_after_ms`
//! hint) and cuts off stalled sockets (`408`) — a client that treats
//! either as fatal turns graceful degradation back into hard failure.
//! [`RetryClient`] closes the loop: exponential backoff with
//! *decorrelated jitter* (each sleep is drawn uniformly from
//! `[base, 3 × previous]`, clamped to a cap — spreading retries out so a
//! shed herd does not re-arrive in lockstep), with the server's
//! `retry_after_ms` hint respected as a floor. The jitter stream is
//! seeded, so a harness replay issues byte-identical schedules.

use crate::protocol::json_u64;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed HTTP response: status line plus the JSONL body split into
/// lines (close-delimited, as the server writes it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code (`200`, `503`, ...).
    pub status: u16,
    /// Body lines, in arrival order, without trailing newlines.
    pub lines: Vec<String>,
}

impl Response {
    /// The `retry_after_ms` hint from a shed (`503`) body, if present.
    pub fn retry_after_ms(&self) -> Option<u64> {
        self.lines
            .first()
            .and_then(|l| json_u64(l, "retry_after_ms"))
    }
}

/// Issues one request and reads the response to EOF (the server closes
/// the connection after each response).
///
/// # Errors
///
/// Connect/read/write failures, or a response head that is not HTTP.
pub fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> io::Result<Response> {
    request_with_timeout(addr, method, path, body, None)
}

/// [`request`] with an optional socket read/write timeout — the chaos
/// harness bounds every probe so a wedged server fails a test instead
/// of hanging it.
///
/// # Errors
///
/// Connect/read/write failures, or a response head that is not HTTP.
pub fn request_with_timeout(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    timeout: Option<Duration>,
) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: fleet\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    reader.read_line(&mut head)?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("not an HTTP status line: {head:?}"),
            )
        })?;
    // Skip response headers up to the blank line, then collect the body.
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line.trim_end().is_empty() {
            break;
        }
    }
    let mut lines = Vec::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if !trimmed.is_empty() {
            lines.push(trimmed.to_string());
        }
    }
    Ok(Response { status, lines })
}

/// Backoff schedule for [`RetryClient`]: decorrelated jitter over a
/// seeded `splitmix64` stream, so two clients with different seeds
/// desynchronise and one client replays identically.
#[derive(Debug, Clone, Copy)]
pub struct BackoffPolicy {
    /// First (and minimum) sleep, milliseconds.
    pub base_ms: u64,
    /// Sleep ceiling, milliseconds.
    pub cap_ms: u64,
    /// Total attempts before giving up (≥ 1).
    pub max_attempts: u32,
    /// Jitter stream seed.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self {
            base_ms: 10,
            cap_ms: 1_000,
            max_attempts: 8,
            seed: 0x5eed_f1ee,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A client that retries transient failures: connect/IO errors, `503`
/// (shed) and `408` (timeout) responses. Other statuses — including
/// `4xx` client errors — are returned as-is; retrying a malformed
/// request would never succeed.
#[derive(Debug)]
pub struct RetryClient {
    addr: SocketAddr,
    policy: BackoffPolicy,
    rng: u64,
    prev_sleep_ms: u64,
    /// Attempts spent by the last [`RetryClient::send`] call.
    pub last_attempts: u32,
}

impl RetryClient {
    /// A client for `addr` with the given policy.
    pub fn new(addr: SocketAddr, policy: BackoffPolicy) -> Self {
        Self {
            addr,
            policy,
            rng: policy.seed,
            prev_sleep_ms: policy.base_ms,
            last_attempts: 0,
        }
    }

    /// Next sleep: uniform in `[base, 3 × previous]`, clamped to the
    /// cap, with the server's `retry_after_ms` hint (if any) as a floor.
    fn next_sleep(&mut self, hint_ms: Option<u64>) -> Duration {
        let base = self.policy.base_ms.max(1);
        let upper = (self.prev_sleep_ms.saturating_mul(3)).max(base + 1);
        let span = upper - base;
        let drawn = base + splitmix64(&mut self.rng) % span;
        let clamped = drawn.min(self.policy.cap_ms).max(hint_ms.unwrap_or(0));
        self.prev_sleep_ms = clamped.max(base);
        Duration::from_millis(clamped)
    }

    /// Sends the request, retrying per the policy.
    ///
    /// # Errors
    ///
    /// The last transport error once attempts are exhausted; a final
    /// `503`/`408` surfaces as the [`Response`] itself (an `Ok`), so
    /// callers can distinguish "server kept shedding" from "server
    /// unreachable".
    pub fn send(&mut self, method: &str, path: &str, body: &str) -> io::Result<Response> {
        let attempts = self.policy.max_attempts.max(1);
        self.last_attempts = 0;
        let mut last: Option<io::Result<Response>> = None;
        for attempt in 0..attempts {
            self.last_attempts = attempt + 1;
            let outcome = request_with_timeout(
                self.addr,
                method,
                path,
                body,
                Some(Duration::from_millis(self.policy.cap_ms.max(1_000) * 10)),
            );
            let hint = match &outcome {
                Ok(resp) if resp.status != 503 && resp.status != 408 => return outcome,
                Ok(resp) => resp.retry_after_ms(),
                Err(_) => None,
            };
            last = Some(outcome);
            if attempt + 1 < attempts {
                std::thread::sleep(self.next_sleep(hint));
            }
        }
        last.expect("at least one attempt ran")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let addr: SocketAddr = "127.0.0.1:1".parse().expect("addr");
        let policy = BackoffPolicy {
            base_ms: 10,
            cap_ms: 200,
            max_attempts: 4,
            seed: 99,
        };
        let mut a = RetryClient::new(addr, policy);
        let mut b = RetryClient::new(addr, policy);
        for _ in 0..16 {
            let (da, db) = (a.next_sleep(None), b.next_sleep(None));
            assert_eq!(da, db, "same seed, same schedule");
            assert!(da >= Duration::from_millis(policy.base_ms));
            assert!(da <= Duration::from_millis(policy.cap_ms));
        }
    }

    #[test]
    fn retry_after_hint_is_a_floor() {
        let addr: SocketAddr = "127.0.0.1:1".parse().expect("addr");
        let mut c = RetryClient::new(addr, BackoffPolicy::default());
        let sleep = c.next_sleep(Some(400));
        assert!(sleep >= Duration::from_millis(400));
    }

    #[test]
    fn shed_response_exposes_the_hint() {
        let resp = Response {
            status: 503,
            lines: vec!["{\"error\":\"overloaded\",\"retry_after_ms\":100}".into()],
        };
        assert_eq!(resp.retry_after_ms(), Some(100));
    }
}
