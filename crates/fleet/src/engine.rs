//! The batched multi-vehicle execution engine.

use crate::campaign::{
    Campaign, SolveOutcomes, SummaryBuilder, TraceCache, VehicleSpec, VehicleSummary,
};
use crate::pool::{fan_indexed_capped, fan_stealing};
use otem::mpc::Clock;
use otem::{OtemError, Simulator};
use otem_telemetry::{Event, Histogram, Sink};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How a campaign's vehicles are dispatched across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// One worker, in campaign order — the reference path.
    Serial,
    /// Static contiguous chunking across `shards` workers
    /// ([`fan_indexed_capped`]).
    Static {
        /// Worker count (clamped to the campaign size).
        shards: usize,
    },
    /// Work-stealing atomic-cursor queue across `shards` workers
    /// ([`fan_stealing`]) — the default for heterogeneous fleets.
    WorkStealing {
        /// Worker count (clamped to the campaign size).
        shards: usize,
    },
}

impl Schedule {
    /// Wire name for reports and the serving layer.
    pub fn wire_name(self) -> &'static str {
        match self {
            Self::Serial => "serial",
            Self::Static { .. } => "static",
            Self::WorkStealing { .. } => "steal",
        }
    }
}

/// Lock-free tally of MPC solve outcomes flowing through a sink.
///
/// `enabled()` stays `false`: plain events like
/// [`Event::SolveOutcome`] are emitted unconditionally, so the tally
/// still sees every solve while call sites skip the *expensive derived*
/// telemetry (spans, per-iteration traces) exactly as with a
/// [`otem_telemetry::NullSink`]. Counter increments are commutative, so
/// campaign totals are schedule- and shard-independent.
#[derive(Debug, Default)]
pub struct OutcomeTally {
    converged: AtomicU64,
    budget_exhausted: AtomicU64,
    stalled: AtomicU64,
    non_finite: AtomicU64,
    deadline_reached: AtomicU64,
}

impl OutcomeTally {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a finished scope's counts (e.g. one campaign's
    /// [`FleetReport::solve_outcomes`]) into this tally.
    pub fn add(&self, counts: SolveOutcomes) {
        self.converged
            .fetch_add(counts.converged, Ordering::Relaxed);
        self.budget_exhausted
            .fetch_add(counts.budget_exhausted, Ordering::Relaxed);
        self.stalled.fetch_add(counts.stalled, Ordering::Relaxed);
        self.non_finite
            .fetch_add(counts.non_finite, Ordering::Relaxed);
        self.deadline_reached
            .fetch_add(counts.deadline_reached, Ordering::Relaxed);
    }

    /// The counts observed so far.
    pub fn snapshot(&self) -> SolveOutcomes {
        SolveOutcomes {
            converged: self.converged.load(Ordering::Relaxed),
            budget_exhausted: self.budget_exhausted.load(Ordering::Relaxed),
            stalled: self.stalled.load(Ordering::Relaxed),
            non_finite: self.non_finite.load(Ordering::Relaxed),
            deadline_reached: self.deadline_reached.load(Ordering::Relaxed),
        }
    }
}

impl Sink for OutcomeTally {
    fn record(&self, event: Event) {
        if let Event::SolveOutcome { outcome, .. } = event {
            match outcome {
                "converged" => &self.converged,
                "budget_exhausted" => &self.budget_exhausted,
                "stalled" => &self.stalled,
                "non_finite" => &self.non_finite,
                "deadline_reached" => &self.deadline_reached,
                _ => return,
            }
            .fetch_add(1, Ordering::Relaxed);
        }
    }

    fn enabled(&self) -> bool {
        false
    }
}

/// One vehicle that did not produce a summary: its simulation either
/// panicked (a software defect — contained by the engine's per-vehicle
/// `catch_unwind`) or returned a validation/synthesis error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VehicleFailure {
    /// Campaign id of the vehicle that failed.
    pub id: u64,
    /// `true` when the controller panicked (poisoned vehicle), `false`
    /// for an ordinary [`OtemError`].
    pub panicked: bool,
    /// Human-readable cause — the panic payload or error display.
    pub message: String,
}

/// The outcome of one campaign run.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-vehicle summaries of the vehicles that *completed*, in
    /// campaign (id) order — identical bits for every [`Schedule`].
    pub summaries: Vec<VehicleSummary>,
    /// Vehicles that failed (panicked or errored), in campaign (id)
    /// order. Empty for healthy campaigns.
    pub failures: Vec<VehicleFailure>,
    /// Wall-clock duration of the batched run, seconds.
    pub wall_s: f64,
    /// Total control periods simulated across all vehicles.
    pub total_steps: u64,
    /// Per-vehicle simulation latency (milliseconds).
    pub latency_ms: Histogram,
    /// MPC solves by solver outcome, summed over the campaign —
    /// identical for every [`Schedule`] (counter addition commutes).
    pub solve_outcomes: SolveOutcomes,
}

impl FleetReport {
    /// Vehicles simulated per wall-clock second.
    pub fn vehicles_per_sec(&self) -> f64 {
        self.summaries.len() as f64 / self.wall_s
    }

    /// Control periods simulated per wall-clock second.
    pub fn steps_per_sec(&self) -> f64 {
        self.total_steps as f64 / self.wall_s
    }

    /// XOR-fold of all per-vehicle checksums — one number that pins the
    /// whole campaign's record streams.
    pub fn fleet_checksum(&self) -> u64 {
        self.summaries.iter().fold(0, |acc, s| acc ^ s.checksum)
    }

    /// How many vehicles failed by *panicking* (as opposed to returning
    /// an ordinary error).
    pub fn vehicle_panics(&self) -> u64 {
        self.failures.iter().filter(|f| f.panicked).count() as u64
    }
}

/// Renders a `catch_unwind` payload as text — panics raised with a
/// string literal or a formatted message are recovered verbatim, any
/// other payload type gets a placeholder.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Latency histogram shape shared by the engine and the server:
/// exponential edges from 10 µs to ≈ 84 s.
pub(crate) fn latency_histogram_ms() -> Histogram {
    Histogram::exponential(0.01, 2.0, 23)
}

/// Per-vehicle solver time source for deadline-constrained OTEM
/// vehicles: called once per vehicle, before its first solve. A plain
/// `fn` pointer keeps the engine `Debug` + trivially shareable; the
/// deterministic harnesses return a fresh
/// [`otem::mpc::VirtualClock`] per vehicle (never shared — sharing
/// would order clock reads across worker threads).
pub type ClockFactory = fn(&VehicleSpec) -> Arc<dyn Clock>;

/// Runs [`Campaign`]s through long-lived scoped worker pools.
#[derive(Debug)]
pub struct FleetEngine {
    /// Dispatch discipline.
    pub schedule: Schedule,
    /// Base-trace cache shared by all workers (synthesise each standard
    /// cycle once per vehicle class, not once per vehicle). `Arc` so the
    /// serving layer can reuse one warm cache across requests.
    cache: Arc<TraceCache>,
    /// Optional per-vehicle solver clock (tests); `None` keeps the
    /// production monotonic clock.
    clock_factory: Option<ClockFactory>,
}

impl FleetEngine {
    /// An engine with the given schedule and a fresh trace cache.
    pub fn new(schedule: Schedule) -> Self {
        Self::with_cache(schedule, Arc::new(TraceCache::new()))
    }

    /// An engine sharing an existing (possibly warm) trace cache.
    pub fn with_cache(schedule: Schedule, cache: Arc<TraceCache>) -> Self {
        Self {
            schedule,
            cache,
            clock_factory: None,
        }
    }

    /// Installs a per-vehicle solver time source (builder style). See
    /// [`ClockFactory`].
    #[must_use]
    pub fn with_clock_factory(mut self, factory: ClockFactory) -> Self {
        self.clock_factory = Some(factory);
        self
    }

    /// Simulates one vehicle exactly as the single-vehicle path would:
    /// same config, same trace, same controller, same step loop — the
    /// records are folded into a [`VehicleSummary`] instead of retained.
    ///
    /// # Errors
    ///
    /// Propagates component validation and cycle-synthesis errors.
    pub fn run_vehicle(&self, spec: &VehicleSpec) -> Result<VehicleSummary, OtemError> {
        self.run_vehicle_with(spec, &OutcomeTally::new())
    }

    /// [`FleetEngine::run_vehicle`] with an explicit telemetry sink —
    /// the campaign path passes a shared [`OutcomeTally`] so the report
    /// can carry the fleet-wide solve-outcome distribution.
    ///
    /// # Errors
    ///
    /// Propagates component validation and cycle-synthesis errors.
    pub fn run_vehicle_with(
        &self,
        spec: &VehicleSpec,
        sink: &dyn Sink,
    ) -> Result<VehicleSummary, OtemError> {
        let config = spec.config();
        let trace = self.cache.trace_for(spec)?;
        let clock = self.clock_factory.map(|f| f(spec));
        let mut controller = spec.controller_with_clock(&config, clock)?;
        let sim = Simulator::new(&config);
        let mut builder = SummaryBuilder::new(config.dt);
        let totals = sim.run_each(controller.as_mut(), &trace, sink, |_, r| {
            builder.push(r);
        });
        Ok(builder.finish(spec.id, totals))
    }

    /// [`FleetEngine::run_vehicle_with`] with the panic boundary the
    /// campaign path relies on: a controller that panics (a poisoned
    /// vehicle, a software defect) is contained here and reported as a
    /// structured [`VehicleFailure`] instead of unwinding through the
    /// worker pool. A [`Event::PanicCaught`] (`context: "vehicle"`) is
    /// recorded on the sink for each contained panic.
    ///
    /// # Errors
    ///
    /// Returns a [`VehicleFailure`] describing the panic or the
    /// propagated [`OtemError`].
    pub fn run_vehicle_caught(
        &self,
        spec: &VehicleSpec,
        sink: &dyn Sink,
    ) -> Result<VehicleSummary, VehicleFailure> {
        // AssertUnwindSafe: on panic the closure's captures are dropped
        // wholesale — nothing observes the vehicle's torn state, and the
        // shared trace cache recovers poisoned locks by construction.
        match catch_unwind(AssertUnwindSafe(|| self.run_vehicle_with(spec, sink))) {
            Ok(Ok(summary)) => Ok(summary),
            Ok(Err(err)) => Err(VehicleFailure {
                id: spec.id,
                panicked: false,
                message: err.to_string(),
            }),
            Err(payload) => {
                sink.record(Event::PanicCaught { context: "vehicle" });
                Err(VehicleFailure {
                    id: spec.id,
                    panicked: true,
                    message: panic_message(payload.as_ref()),
                })
            }
        }
    }

    /// Runs the whole campaign. Infallible: a vehicle that errors or
    /// panics becomes a [`FleetReport::failures`] entry while the rest
    /// of the fleet completes normally — one poisoned vehicle can no
    /// longer sink the batch.
    pub fn run(&self, campaign: &Campaign) -> FleetReport {
        self.run_with(campaign, &otem_telemetry::NullSink)
    }

    /// [`FleetEngine::run`] with an external sink that receives the
    /// engine's containment events ([`Event::PanicCaught`]) in addition
    /// to the per-solve outcome stream.
    pub fn run_with(&self, campaign: &Campaign, sink: &(dyn Sink + Sync)) -> FleetReport {
        self.run_with_request(campaign, sink, 0)
    }

    /// [`FleetEngine::run_with`] under a serving-layer correlation id:
    /// every worker enters [`otem_telemetry::request_scope`]`(request_id)`
    /// before touching a vehicle, so spans and flight-recorder entries
    /// produced inside the solve are stamped with the request that
    /// caused them, and each vehicle announces itself with
    /// [`Event::VehicleStarted`]. `request_id == 0` means "no request"
    /// (the in-process path).
    pub fn run_with_request(
        &self,
        campaign: &Campaign,
        sink: &(dyn Sink + Sync),
        request_id: u64,
    ) -> FleetReport {
        let latency = latency_histogram_ms();
        let tally = OutcomeTally::new();
        let pair = PairSink {
            tally: &tally,
            outer: sink,
        };
        let started = Instant::now();
        let job = |_i: usize, spec: &VehicleSpec| {
            // The scope is thread-local, so it must be (re-)entered
            // inside the job closure: pool workers do not inherit the
            // dispatching thread's correlation id.
            let _scope = otem_telemetry::request_scope(request_id);
            pair.record(Event::VehicleStarted {
                request_id,
                vehicle: spec.id,
            });
            let t0 = Instant::now();
            let outcome = self.run_vehicle_caught(spec, &pair);
            latency.observe(t0.elapsed().as_secs_f64() * 1e3);
            outcome
        };
        let specs: Vec<&VehicleSpec> = campaign.vehicles.iter().collect();
        let outcomes: Vec<Result<VehicleSummary, VehicleFailure>> = match self.schedule {
            Schedule::Serial => specs
                .into_iter()
                .enumerate()
                .map(|(i, s)| job(i, s))
                .collect(),
            Schedule::Static { shards } => fan_indexed_capped(specs, shards, job),
            Schedule::WorkStealing { shards } => fan_stealing(specs, shards, job),
        };
        let wall_s = started.elapsed().as_secs_f64();
        let mut summaries = Vec::with_capacity(outcomes.len());
        let mut failures = Vec::new();
        for outcome in outcomes {
            match outcome {
                Ok(summary) => summaries.push(summary),
                Err(failure) => failures.push(failure),
            }
        }
        let total_steps = summaries.iter().map(|s| s.steps as u64).sum();
        FleetReport {
            summaries,
            failures,
            wall_s,
            total_steps,
            latency_ms: latency,
            solve_outcomes: tally.snapshot(),
        }
    }
}

/// Forwards every event to the campaign's [`OutcomeTally`] *and* an
/// external sink; `enabled` follows the external sink so the zero-cost
/// contract holds when the caller passed a
/// [`otem_telemetry::NullSink`].
struct PairSink<'a> {
    tally: &'a OutcomeTally,
    outer: &'a (dyn Sink + Sync),
}

impl std::fmt::Debug for PairSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PairSink").finish_non_exhaustive()
    }
}

impl Sink for PairSink<'_> {
    fn record(&self, event: Event) {
        self.tally.record(event);
        self.outer.record(event);
    }

    fn enabled(&self) -> bool {
        self.outer.enabled()
    }

    fn flush(&self) {
        self.outer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_rates_are_consistent() {
        let engine = FleetEngine::new(Schedule::Serial);
        let campaign = Campaign::synthetic(3, 42);
        let report = engine.run(&campaign);
        assert!(report.failures.is_empty(), "healthy campaign");
        assert_eq!(report.summaries.len(), 3);
        assert_eq!(report.total_steps, campaign.total_steps());
        assert!(report.vehicles_per_sec() > 0.0);
        assert!(report.steps_per_sec() > report.vehicles_per_sec());
        assert_eq!(report.latency_ms.count(), 3);
        for (i, s) in report.summaries.iter().enumerate() {
            assert_eq!(s.id, i as u64, "campaign order preserved");
            assert!(s.energy_j > 0.0, "vehicle {i} consumed energy");
        }
    }

    #[test]
    fn schedules_agree_bit_for_bit() {
        let campaign = Campaign::synthetic(6, 7);
        let serial = FleetEngine::new(Schedule::Serial).run(&campaign);
        let stealing = FleetEngine::new(Schedule::WorkStealing { shards: 3 }).run(&campaign);
        assert_eq!(serial.summaries, stealing.summaries);
        assert_eq!(serial.fleet_checksum(), stealing.fleet_checksum());
    }

    #[test]
    fn run_with_request_announces_each_vehicle_under_the_id() {
        use otem_telemetry::MemorySink;

        let campaign = Campaign::synthetic(3, 5);
        // Roomy: the announcements arrive first and per-step events
        // must not evict them from the bounded ring.
        let sink = MemorySink::with_capacity(1 << 20);
        FleetEngine::new(Schedule::WorkStealing { shards: 2 })
            .run_with_request(&campaign, &sink, 77);
        let mut started: Vec<u64> = sink
            .events()
            .into_iter()
            .filter_map(|e| match e {
                Event::VehicleStarted {
                    request_id,
                    vehicle,
                } => {
                    assert_eq!(request_id, 77, "vehicle {vehicle} lost the id");
                    Some(vehicle)
                }
                _ => None,
            })
            .collect();
        started.sort_unstable();
        assert_eq!(started, [0, 1, 2], "every vehicle announced exactly once");
    }

    #[test]
    fn poisoned_vehicle_is_contained_and_the_rest_complete() {
        use otem_telemetry::MemorySink;

        let mut campaign = Campaign::synthetic(4, 11);
        campaign.vehicles[2].poison_step = Some(1);
        let sink = MemorySink::with_capacity(64);
        let report =
            FleetEngine::new(Schedule::WorkStealing { shards: 2 }).run_with(&campaign, &sink);
        assert_eq!(report.summaries.len(), 3, "three vehicles complete");
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].id, 2);
        assert!(report.failures[0].panicked);
        assert!(
            report.failures[0].message.contains("poison fault"),
            "panic payload recovered: {}",
            report.failures[0].message
        );
        assert_eq!(report.vehicle_panics(), 1);
        assert_eq!(sink.count_kind("panic_caught"), 1);
        assert!(
            report.summaries.iter().all(|s| s.id != 2),
            "no summary for the poisoned vehicle"
        );
        // The surviving summaries are bit-identical to a clean campaign's.
        let clean = FleetEngine::new(Schedule::Serial).run(&Campaign::synthetic(4, 11));
        for survivor in &report.summaries {
            let reference = clean
                .summaries
                .iter()
                .find(|s| s.id == survivor.id)
                .expect("clean run has every id");
            assert_eq!(
                survivor, reference,
                "containment perturbed vehicle {}",
                survivor.id
            );
        }
    }
}
