//! The batched multi-vehicle execution engine.

use crate::campaign::{
    Campaign, SolveOutcomes, SummaryBuilder, TraceCache, VehicleSpec, VehicleSummary,
};
use crate::pool::{fan_indexed_capped, fan_stealing};
use otem::mpc::Clock;
use otem::{OtemError, Simulator};
use otem_telemetry::{Event, Histogram, Sink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How a campaign's vehicles are dispatched across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// One worker, in campaign order — the reference path.
    Serial,
    /// Static contiguous chunking across `shards` workers
    /// ([`fan_indexed_capped`]).
    Static {
        /// Worker count (clamped to the campaign size).
        shards: usize,
    },
    /// Work-stealing atomic-cursor queue across `shards` workers
    /// ([`fan_stealing`]) — the default for heterogeneous fleets.
    WorkStealing {
        /// Worker count (clamped to the campaign size).
        shards: usize,
    },
}

impl Schedule {
    /// Wire name for reports and the serving layer.
    pub fn wire_name(self) -> &'static str {
        match self {
            Self::Serial => "serial",
            Self::Static { .. } => "static",
            Self::WorkStealing { .. } => "steal",
        }
    }
}

/// Lock-free tally of MPC solve outcomes flowing through a sink.
///
/// `enabled()` stays `false`: plain events like
/// [`Event::SolveOutcome`] are emitted unconditionally, so the tally
/// still sees every solve while call sites skip the *expensive derived*
/// telemetry (spans, per-iteration traces) exactly as with a
/// [`otem_telemetry::NullSink`]. Counter increments are commutative, so
/// campaign totals are schedule- and shard-independent.
#[derive(Debug, Default)]
pub struct OutcomeTally {
    converged: AtomicU64,
    budget_exhausted: AtomicU64,
    stalled: AtomicU64,
    non_finite: AtomicU64,
    deadline_reached: AtomicU64,
}

impl OutcomeTally {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a finished scope's counts (e.g. one campaign's
    /// [`FleetReport::solve_outcomes`]) into this tally.
    pub fn add(&self, counts: SolveOutcomes) {
        self.converged
            .fetch_add(counts.converged, Ordering::Relaxed);
        self.budget_exhausted
            .fetch_add(counts.budget_exhausted, Ordering::Relaxed);
        self.stalled.fetch_add(counts.stalled, Ordering::Relaxed);
        self.non_finite
            .fetch_add(counts.non_finite, Ordering::Relaxed);
        self.deadline_reached
            .fetch_add(counts.deadline_reached, Ordering::Relaxed);
    }

    /// The counts observed so far.
    pub fn snapshot(&self) -> SolveOutcomes {
        SolveOutcomes {
            converged: self.converged.load(Ordering::Relaxed),
            budget_exhausted: self.budget_exhausted.load(Ordering::Relaxed),
            stalled: self.stalled.load(Ordering::Relaxed),
            non_finite: self.non_finite.load(Ordering::Relaxed),
            deadline_reached: self.deadline_reached.load(Ordering::Relaxed),
        }
    }
}

impl Sink for OutcomeTally {
    fn record(&self, event: Event) {
        if let Event::SolveOutcome { outcome, .. } = event {
            match outcome {
                "converged" => &self.converged,
                "budget_exhausted" => &self.budget_exhausted,
                "stalled" => &self.stalled,
                "non_finite" => &self.non_finite,
                "deadline_reached" => &self.deadline_reached,
                _ => return,
            }
            .fetch_add(1, Ordering::Relaxed);
        }
    }

    fn enabled(&self) -> bool {
        false
    }
}

/// The outcome of one campaign run.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-vehicle summaries, in campaign (id) order — identical bits
    /// for every [`Schedule`].
    pub summaries: Vec<VehicleSummary>,
    /// Wall-clock duration of the batched run, seconds.
    pub wall_s: f64,
    /// Total control periods simulated across all vehicles.
    pub total_steps: u64,
    /// Per-vehicle simulation latency (milliseconds).
    pub latency_ms: Histogram,
    /// MPC solves by solver outcome, summed over the campaign —
    /// identical for every [`Schedule`] (counter addition commutes).
    pub solve_outcomes: SolveOutcomes,
}

impl FleetReport {
    /// Vehicles simulated per wall-clock second.
    pub fn vehicles_per_sec(&self) -> f64 {
        self.summaries.len() as f64 / self.wall_s
    }

    /// Control periods simulated per wall-clock second.
    pub fn steps_per_sec(&self) -> f64 {
        self.total_steps as f64 / self.wall_s
    }

    /// XOR-fold of all per-vehicle checksums — one number that pins the
    /// whole campaign's record streams.
    pub fn fleet_checksum(&self) -> u64 {
        self.summaries.iter().fold(0, |acc, s| acc ^ s.checksum)
    }
}

/// Latency histogram shape shared by the engine and the server:
/// exponential edges from 10 µs to ≈ 84 s.
pub(crate) fn latency_histogram_ms() -> Histogram {
    Histogram::exponential(0.01, 2.0, 23)
}

/// Per-vehicle solver time source for deadline-constrained OTEM
/// vehicles: called once per vehicle, before its first solve. A plain
/// `fn` pointer keeps the engine `Debug` + trivially shareable; the
/// deterministic harnesses return a fresh
/// [`otem::mpc::VirtualClock`] per vehicle (never shared — sharing
/// would order clock reads across worker threads).
pub type ClockFactory = fn(&VehicleSpec) -> Arc<dyn Clock>;

/// Runs [`Campaign`]s through long-lived scoped worker pools.
#[derive(Debug)]
pub struct FleetEngine {
    /// Dispatch discipline.
    pub schedule: Schedule,
    /// Base-trace cache shared by all workers (synthesise each standard
    /// cycle once per vehicle class, not once per vehicle). `Arc` so the
    /// serving layer can reuse one warm cache across requests.
    cache: Arc<TraceCache>,
    /// Optional per-vehicle solver clock (tests); `None` keeps the
    /// production monotonic clock.
    clock_factory: Option<ClockFactory>,
}

impl FleetEngine {
    /// An engine with the given schedule and a fresh trace cache.
    pub fn new(schedule: Schedule) -> Self {
        Self::with_cache(schedule, Arc::new(TraceCache::new()))
    }

    /// An engine sharing an existing (possibly warm) trace cache.
    pub fn with_cache(schedule: Schedule, cache: Arc<TraceCache>) -> Self {
        Self {
            schedule,
            cache,
            clock_factory: None,
        }
    }

    /// Installs a per-vehicle solver time source (builder style). See
    /// [`ClockFactory`].
    #[must_use]
    pub fn with_clock_factory(mut self, factory: ClockFactory) -> Self {
        self.clock_factory = Some(factory);
        self
    }

    /// Simulates one vehicle exactly as the single-vehicle path would:
    /// same config, same trace, same controller, same step loop — the
    /// records are folded into a [`VehicleSummary`] instead of retained.
    ///
    /// # Errors
    ///
    /// Propagates component validation and cycle-synthesis errors.
    pub fn run_vehicle(&self, spec: &VehicleSpec) -> Result<VehicleSummary, OtemError> {
        self.run_vehicle_with(spec, &OutcomeTally::new())
    }

    /// [`FleetEngine::run_vehicle`] with an explicit telemetry sink —
    /// the campaign path passes a shared [`OutcomeTally`] so the report
    /// can carry the fleet-wide solve-outcome distribution.
    ///
    /// # Errors
    ///
    /// Propagates component validation and cycle-synthesis errors.
    pub fn run_vehicle_with(
        &self,
        spec: &VehicleSpec,
        sink: &dyn Sink,
    ) -> Result<VehicleSummary, OtemError> {
        let config = spec.config();
        let trace = self.cache.trace_for(spec)?;
        let clock = self.clock_factory.map(|f| f(spec));
        let mut controller = spec.controller_with_clock(&config, clock)?;
        let sim = Simulator::new(&config);
        let mut builder = SummaryBuilder::new(config.dt);
        let totals = sim.run_each(controller.as_mut(), &trace, sink, |_, r| {
            builder.push(r);
        });
        Ok(builder.finish(spec.id, totals))
    }

    /// Runs the whole campaign, returning summaries in campaign order.
    ///
    /// # Errors
    ///
    /// Returns the first vehicle error encountered (specs from
    /// [`Campaign::synthetic`] never fail; hand-built specs can).
    pub fn run(&self, campaign: &Campaign) -> Result<FleetReport, OtemError> {
        let latency = latency_histogram_ms();
        let tally = OutcomeTally::new();
        let started = Instant::now();
        let job = |_i: usize, spec: &VehicleSpec| {
            let t0 = Instant::now();
            let summary = self.run_vehicle_with(spec, &tally);
            latency.observe(t0.elapsed().as_secs_f64() * 1e3);
            summary
        };
        let specs: Vec<&VehicleSpec> = campaign.vehicles.iter().collect();
        let outcomes: Vec<Result<VehicleSummary, OtemError>> = match self.schedule {
            Schedule::Serial => specs
                .into_iter()
                .enumerate()
                .map(|(i, s)| job(i, s))
                .collect(),
            Schedule::Static { shards } => fan_indexed_capped(specs, shards, job),
            Schedule::WorkStealing { shards } => fan_stealing(specs, shards, job),
        };
        let wall_s = started.elapsed().as_secs_f64();
        let summaries = outcomes.into_iter().collect::<Result<Vec<_>, _>>()?;
        let total_steps = summaries.iter().map(|s| s.steps as u64).sum();
        Ok(FleetReport {
            summaries,
            wall_s,
            total_steps,
            latency_ms: latency,
            solve_outcomes: tally.snapshot(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_rates_are_consistent() {
        let engine = FleetEngine::new(Schedule::Serial);
        let campaign = Campaign::synthetic(3, 42);
        let report = engine.run(&campaign).expect("runs");
        assert_eq!(report.summaries.len(), 3);
        assert_eq!(report.total_steps, campaign.total_steps());
        assert!(report.vehicles_per_sec() > 0.0);
        assert!(report.steps_per_sec() > report.vehicles_per_sec());
        assert_eq!(report.latency_ms.count(), 3);
        for (i, s) in report.summaries.iter().enumerate() {
            assert_eq!(s.id, i as u64, "campaign order preserved");
            assert!(s.energy_j > 0.0, "vehicle {i} consumed energy");
        }
    }

    #[test]
    fn schedules_agree_bit_for_bit() {
        let campaign = Campaign::synthetic(6, 7);
        let serial = FleetEngine::new(Schedule::Serial)
            .run(&campaign)
            .expect("runs");
        let stealing = FleetEngine::new(Schedule::WorkStealing { shards: 3 })
            .run(&campaign)
            .expect("runs");
        assert_eq!(serial.summaries, stealing.summaries);
        assert_eq!(serial.fleet_checksum(), stealing.fleet_checksum());
    }
}
