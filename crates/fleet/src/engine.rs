//! The batched multi-vehicle execution engine.

use crate::campaign::{Campaign, SummaryBuilder, TraceCache, VehicleSpec, VehicleSummary};
use crate::pool::{fan_indexed_capped, fan_stealing};
use otem::{OtemError, Simulator};
use otem_telemetry::{Histogram, NullSink};
use std::sync::Arc;
use std::time::Instant;

/// How a campaign's vehicles are dispatched across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// One worker, in campaign order — the reference path.
    Serial,
    /// Static contiguous chunking across `shards` workers
    /// ([`fan_indexed_capped`]).
    Static {
        /// Worker count (clamped to the campaign size).
        shards: usize,
    },
    /// Work-stealing atomic-cursor queue across `shards` workers
    /// ([`fan_stealing`]) — the default for heterogeneous fleets.
    WorkStealing {
        /// Worker count (clamped to the campaign size).
        shards: usize,
    },
}

impl Schedule {
    /// Wire name for reports and the serving layer.
    pub fn wire_name(self) -> &'static str {
        match self {
            Self::Serial => "serial",
            Self::Static { .. } => "static",
            Self::WorkStealing { .. } => "steal",
        }
    }
}

/// The outcome of one campaign run.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-vehicle summaries, in campaign (id) order — identical bits
    /// for every [`Schedule`].
    pub summaries: Vec<VehicleSummary>,
    /// Wall-clock duration of the batched run, seconds.
    pub wall_s: f64,
    /// Total control periods simulated across all vehicles.
    pub total_steps: u64,
    /// Per-vehicle simulation latency (milliseconds).
    pub latency_ms: Histogram,
}

impl FleetReport {
    /// Vehicles simulated per wall-clock second.
    pub fn vehicles_per_sec(&self) -> f64 {
        self.summaries.len() as f64 / self.wall_s
    }

    /// Control periods simulated per wall-clock second.
    pub fn steps_per_sec(&self) -> f64 {
        self.total_steps as f64 / self.wall_s
    }

    /// XOR-fold of all per-vehicle checksums — one number that pins the
    /// whole campaign's record streams.
    pub fn fleet_checksum(&self) -> u64 {
        self.summaries.iter().fold(0, |acc, s| acc ^ s.checksum)
    }
}

/// Latency histogram shape shared by the engine and the server:
/// exponential edges from 10 µs to ≈ 84 s.
pub(crate) fn latency_histogram_ms() -> Histogram {
    Histogram::exponential(0.01, 2.0, 23)
}

/// Runs [`Campaign`]s through long-lived scoped worker pools.
#[derive(Debug)]
pub struct FleetEngine {
    /// Dispatch discipline.
    pub schedule: Schedule,
    /// Base-trace cache shared by all workers (synthesise each standard
    /// cycle once per vehicle class, not once per vehicle). `Arc` so the
    /// serving layer can reuse one warm cache across requests.
    cache: Arc<TraceCache>,
}

impl FleetEngine {
    /// An engine with the given schedule and a fresh trace cache.
    pub fn new(schedule: Schedule) -> Self {
        Self::with_cache(schedule, Arc::new(TraceCache::new()))
    }

    /// An engine sharing an existing (possibly warm) trace cache.
    pub fn with_cache(schedule: Schedule, cache: Arc<TraceCache>) -> Self {
        Self { schedule, cache }
    }

    /// Simulates one vehicle exactly as the single-vehicle path would:
    /// same config, same trace, same controller, same step loop — the
    /// records are folded into a [`VehicleSummary`] instead of retained.
    ///
    /// # Errors
    ///
    /// Propagates component validation and cycle-synthesis errors.
    pub fn run_vehicle(&self, spec: &VehicleSpec) -> Result<VehicleSummary, OtemError> {
        let config = spec.config();
        let trace = self.cache.trace_for(spec)?;
        let mut controller = spec.controller(&config)?;
        let sim = Simulator::new(&config);
        let mut builder = SummaryBuilder::new(config.dt);
        let totals = sim.run_each(controller.as_mut(), &trace, &NullSink, |_, r| {
            builder.push(r);
        });
        Ok(builder.finish(spec.id, totals))
    }

    /// Runs the whole campaign, returning summaries in campaign order.
    ///
    /// # Errors
    ///
    /// Returns the first vehicle error encountered (specs from
    /// [`Campaign::synthetic`] never fail; hand-built specs can).
    pub fn run(&self, campaign: &Campaign) -> Result<FleetReport, OtemError> {
        let latency = latency_histogram_ms();
        let started = Instant::now();
        let job = |_i: usize, spec: &VehicleSpec| {
            let t0 = Instant::now();
            let summary = self.run_vehicle(spec);
            latency.observe(t0.elapsed().as_secs_f64() * 1e3);
            summary
        };
        let specs: Vec<&VehicleSpec> = campaign.vehicles.iter().collect();
        let outcomes: Vec<Result<VehicleSummary, OtemError>> = match self.schedule {
            Schedule::Serial => specs
                .into_iter()
                .enumerate()
                .map(|(i, s)| job(i, s))
                .collect(),
            Schedule::Static { shards } => fan_indexed_capped(specs, shards, job),
            Schedule::WorkStealing { shards } => fan_stealing(specs, shards, job),
        };
        let wall_s = started.elapsed().as_secs_f64();
        let summaries = outcomes.into_iter().collect::<Result<Vec<_>, _>>()?;
        let total_steps = summaries.iter().map(|s| s.steps as u64).sum();
        Ok(FleetReport {
            summaries,
            wall_s,
            total_steps,
            latency_ms: latency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_rates_are_consistent() {
        let engine = FleetEngine::new(Schedule::Serial);
        let campaign = Campaign::synthetic(3, 42);
        let report = engine.run(&campaign).expect("runs");
        assert_eq!(report.summaries.len(), 3);
        assert_eq!(report.total_steps, campaign.total_steps());
        assert!(report.vehicles_per_sec() > 0.0);
        assert!(report.steps_per_sec() > report.vehicles_per_sec());
        assert_eq!(report.latency_ms.count(), 3);
        for (i, s) in report.summaries.iter().enumerate() {
            assert_eq!(s.id, i as u64, "campaign order preserved");
            assert!(s.energy_j > 0.0, "vehicle {i} consumed energy");
        }
    }

    #[test]
    fn schedules_agree_bit_for_bit() {
        let campaign = Campaign::synthetic(6, 7);
        let serial = FleetEngine::new(Schedule::Serial)
            .run(&campaign)
            .expect("runs");
        let stealing = FleetEngine::new(Schedule::WorkStealing { shards: 3 })
            .run(&campaign)
            .expect("runs");
        assert_eq!(serial.summaries, stealing.summaries);
        assert_eq!(serial.fleet_checksum(), stealing.fleet_checksum());
    }
}
