//! The batched multi-vehicle execution engine.

use crate::campaign::{
    Campaign, SolveOutcomes, SummaryBuilder, TraceCache, VehicleSpec, VehicleSummary,
};
use crate::pool::{fan_indexed_capped, fan_stealing};
use otem::mpc::Clock;
use otem::{Controller, OtemError, RunCursor, Simulator};
use otem_drivecycle::PowerTrace;
use otem_telemetry::{Event, Histogram, Sink};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How a campaign's vehicles are dispatched across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// One worker, in campaign order — the reference path.
    Serial,
    /// Static contiguous chunking across `shards` workers
    /// ([`fan_indexed_capped`]).
    Static {
        /// Worker count (clamped to the campaign size).
        shards: usize,
    },
    /// Work-stealing atomic-cursor queue across `shards` workers
    /// ([`fan_stealing`]) — the default for heterogeneous fleets.
    WorkStealing {
        /// Worker count (clamped to the campaign size).
        shards: usize,
    },
}

impl Schedule {
    /// Wire name for reports and the serving layer.
    pub fn wire_name(self) -> &'static str {
        match self {
            Self::Serial => "serial",
            Self::Static { .. } => "static",
            Self::WorkStealing { .. } => "steal",
        }
    }
}

/// Lock-free tally of MPC solve outcomes flowing through a sink.
///
/// `enabled()` stays `false`: plain events like
/// [`Event::SolveOutcome`] are emitted unconditionally, so the tally
/// still sees every solve while call sites skip the *expensive derived*
/// telemetry (spans, per-iteration traces) exactly as with a
/// [`otem_telemetry::NullSink`]. Counter increments are commutative, so
/// campaign totals are schedule- and shard-independent.
#[derive(Debug, Default)]
pub struct OutcomeTally {
    converged: AtomicU64,
    budget_exhausted: AtomicU64,
    stalled: AtomicU64,
    non_finite: AtomicU64,
    deadline_reached: AtomicU64,
}

impl OutcomeTally {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a finished scope's counts (e.g. one campaign's
    /// [`FleetReport::solve_outcomes`]) into this tally.
    pub fn add(&self, counts: SolveOutcomes) {
        self.converged
            .fetch_add(counts.converged, Ordering::Relaxed);
        self.budget_exhausted
            .fetch_add(counts.budget_exhausted, Ordering::Relaxed);
        self.stalled.fetch_add(counts.stalled, Ordering::Relaxed);
        self.non_finite
            .fetch_add(counts.non_finite, Ordering::Relaxed);
        self.deadline_reached
            .fetch_add(counts.deadline_reached, Ordering::Relaxed);
    }

    /// The counts observed so far.
    pub fn snapshot(&self) -> SolveOutcomes {
        SolveOutcomes {
            converged: self.converged.load(Ordering::Relaxed),
            budget_exhausted: self.budget_exhausted.load(Ordering::Relaxed),
            stalled: self.stalled.load(Ordering::Relaxed),
            non_finite: self.non_finite.load(Ordering::Relaxed),
            deadline_reached: self.deadline_reached.load(Ordering::Relaxed),
        }
    }
}

impl Sink for OutcomeTally {
    fn record(&self, event: Event) {
        if let Event::SolveOutcome { outcome, .. } = event {
            match outcome {
                "converged" => &self.converged,
                "budget_exhausted" => &self.budget_exhausted,
                "stalled" => &self.stalled,
                "non_finite" => &self.non_finite,
                "deadline_reached" => &self.deadline_reached,
                _ => return,
            }
            .fetch_add(1, Ordering::Relaxed);
        }
    }

    fn enabled(&self) -> bool {
        false
    }
}

/// One vehicle that did not produce a summary: its simulation either
/// panicked (a software defect — contained by the engine's per-vehicle
/// `catch_unwind`) or returned a validation/synthesis error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VehicleFailure {
    /// Campaign id of the vehicle that failed.
    pub id: u64,
    /// `true` when the controller panicked (poisoned vehicle), `false`
    /// for an ordinary [`OtemError`].
    pub panicked: bool,
    /// Human-readable cause — the panic payload or error display.
    pub message: String,
}

/// The outcome of one campaign run.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-vehicle summaries of the vehicles that *completed*, in
    /// campaign (id) order — identical bits for every [`Schedule`].
    pub summaries: Vec<VehicleSummary>,
    /// Vehicles that failed (panicked or errored), in campaign (id)
    /// order. Empty for healthy campaigns.
    pub failures: Vec<VehicleFailure>,
    /// Wall-clock duration of the batched run, seconds.
    pub wall_s: f64,
    /// Total control periods simulated across all vehicles.
    pub total_steps: u64,
    /// Per-vehicle simulation latency (milliseconds).
    pub latency_ms: Histogram,
    /// MPC solves by solver outcome, summed over the campaign —
    /// identical for every [`Schedule`] (counter addition commutes).
    pub solve_outcomes: SolveOutcomes,
    /// Vehicle-steps executed through the lockstep batched path (zero
    /// when [`FleetEngine::batch_lanes`] is off).
    pub batched_steps: u64,
    /// Lockstep sweeps performed (one sweep advances every live lane of
    /// one batch by one step); `batched_steps / batch_sweeps` is the
    /// mean lane occupancy.
    pub batch_sweeps: u64,
}

impl FleetReport {
    /// Vehicles simulated per wall-clock second.
    pub fn vehicles_per_sec(&self) -> f64 {
        self.summaries.len() as f64 / self.wall_s
    }

    /// Control periods simulated per wall-clock second.
    pub fn steps_per_sec(&self) -> f64 {
        self.total_steps as f64 / self.wall_s
    }

    /// XOR-fold of all per-vehicle checksums — one number that pins the
    /// whole campaign's record streams.
    pub fn fleet_checksum(&self) -> u64 {
        self.summaries.iter().fold(0, |acc, s| acc ^ s.checksum)
    }

    /// How many vehicles failed by *panicking* (as opposed to returning
    /// an ordinary error).
    pub fn vehicle_panics(&self) -> u64 {
        self.failures.iter().filter(|f| f.panicked).count() as u64
    }

    /// Mean live lanes per lockstep sweep (`0.0` when the batched path
    /// did not run). Below the configured width means partially-full
    /// batches: a drained tail chunk, or faulted lanes dropped from the
    /// lockstep set.
    pub fn mean_batch_occupancy(&self) -> f64 {
        if self.batch_sweeps == 0 {
            0.0
        } else {
            self.batched_steps as f64 / self.batch_sweeps as f64
        }
    }
}

/// Renders a `catch_unwind` payload as text — panics raised with a
/// string literal or a formatted message are recovered verbatim, any
/// other payload type gets a placeholder.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Latency histogram shape shared by the engine and the server:
/// exponential edges from 10 µs to ≈ 84 s.
pub(crate) fn latency_histogram_ms() -> Histogram {
    Histogram::exponential(0.01, 2.0, 23)
}

/// Per-vehicle solver time source for deadline-constrained OTEM
/// vehicles: called once per vehicle, before its first solve. A plain
/// `fn` pointer keeps the engine `Debug` + trivially shareable; the
/// deterministic harnesses return a fresh
/// [`otem::mpc::VirtualClock`] per vehicle (never shared — sharing
/// would order clock reads across worker threads).
pub type ClockFactory = fn(&VehicleSpec) -> Arc<dyn Clock>;

/// Runs [`Campaign`]s through long-lived scoped worker pools.
#[derive(Debug)]
pub struct FleetEngine {
    /// Dispatch discipline.
    pub schedule: Schedule,
    /// Base-trace cache shared by all workers (synthesise each standard
    /// cycle once per vehicle class, not once per vehicle). `Arc` so the
    /// serving layer can reuse one warm cache across requests.
    cache: Arc<TraceCache>,
    /// Optional per-vehicle solver clock (tests); `None` keeps the
    /// production monotonic clock.
    clock_factory: Option<ClockFactory>,
    /// Lockstep batch width: `0` (or `1`) runs one vehicle at a time
    /// per worker (the scalar path); `≥ 2` advances that many vehicles
    /// per worker in lockstep through shared step cursors. Lanes are
    /// independent closed loops, so summaries and checksums are
    /// bit-identical either way; a lane that faults mid-batch is
    /// dropped from the lockstep set and reported exactly as the
    /// scalar path would report it.
    batch_lanes: usize,
}

impl FleetEngine {
    /// An engine with the given schedule and a fresh trace cache.
    pub fn new(schedule: Schedule) -> Self {
        Self::with_cache(schedule, Arc::new(TraceCache::new()))
    }

    /// An engine sharing an existing (possibly warm) trace cache.
    pub fn with_cache(schedule: Schedule, cache: Arc<TraceCache>) -> Self {
        Self {
            schedule,
            cache,
            clock_factory: None,
            batch_lanes: 0,
        }
    }

    /// Installs a per-vehicle solver time source (builder style). See
    /// [`ClockFactory`].
    #[must_use]
    pub fn with_clock_factory(mut self, factory: ClockFactory) -> Self {
        self.clock_factory = Some(factory);
        self
    }

    /// Sets the lockstep batch width (builder style): each worker
    /// advances up to `lanes` vehicles together, one step per lane per
    /// sweep, instead of running them to completion one at a time.
    /// `0` and `1` keep the scalar path.
    #[must_use]
    pub fn with_batch_lanes(mut self, lanes: usize) -> Self {
        self.batch_lanes = lanes;
        self
    }

    /// The configured lockstep batch width (see
    /// [`FleetEngine::with_batch_lanes`]).
    pub fn batch_lanes(&self) -> usize {
        self.batch_lanes
    }

    /// Simulates one vehicle exactly as the single-vehicle path would:
    /// same config, same trace, same controller, same step loop — the
    /// records are folded into a [`VehicleSummary`] instead of retained.
    ///
    /// # Errors
    ///
    /// Propagates component validation and cycle-synthesis errors.
    pub fn run_vehicle(&self, spec: &VehicleSpec) -> Result<VehicleSummary, OtemError> {
        self.run_vehicle_with(spec, &OutcomeTally::new())
    }

    /// [`FleetEngine::run_vehicle`] with an explicit telemetry sink —
    /// the campaign path passes a shared [`OutcomeTally`] so the report
    /// can carry the fleet-wide solve-outcome distribution.
    ///
    /// # Errors
    ///
    /// Propagates component validation and cycle-synthesis errors.
    pub fn run_vehicle_with(
        &self,
        spec: &VehicleSpec,
        sink: &dyn Sink,
    ) -> Result<VehicleSummary, OtemError> {
        let config = spec.config();
        let trace = self.cache.trace_for(spec)?;
        let clock = self.clock_factory.map(|f| f(spec));
        let mut controller = spec.controller_with_clock(&config, clock)?;
        let sim = Simulator::new(&config);
        let mut builder = SummaryBuilder::new(config.dt);
        let totals = sim.run_each(controller.as_mut(), &trace, sink, |_, r| {
            builder.push(r);
        });
        Ok(builder.finish(spec.id, totals))
    }

    /// [`FleetEngine::run_vehicle_with`] with the panic boundary the
    /// campaign path relies on: a controller that panics (a poisoned
    /// vehicle, a software defect) is contained here and reported as a
    /// structured [`VehicleFailure`] instead of unwinding through the
    /// worker pool. A [`Event::PanicCaught`] (`context: "vehicle"`) is
    /// recorded on the sink for each contained panic.
    ///
    /// # Errors
    ///
    /// Returns a [`VehicleFailure`] describing the panic or the
    /// propagated [`OtemError`].
    pub fn run_vehicle_caught(
        &self,
        spec: &VehicleSpec,
        sink: &dyn Sink,
    ) -> Result<VehicleSummary, VehicleFailure> {
        // AssertUnwindSafe: on panic the closure's captures are dropped
        // wholesale — nothing observes the vehicle's torn state, and the
        // shared trace cache recovers poisoned locks by construction.
        match catch_unwind(AssertUnwindSafe(|| self.run_vehicle_with(spec, sink))) {
            Ok(Ok(summary)) => Ok(summary),
            Ok(Err(err)) => Err(VehicleFailure {
                id: spec.id,
                panicked: false,
                message: err.to_string(),
            }),
            Err(payload) => {
                sink.record(Event::PanicCaught { context: "vehicle" });
                Err(VehicleFailure {
                    id: spec.id,
                    panicked: true,
                    message: panic_message(payload.as_ref()),
                })
            }
        }
    }

    /// Runs up to one batch of vehicles in lockstep: every lane gets a
    /// step cursor ([`Simulator::cursor`]) and each sweep advances all
    /// live lanes by one closed-loop step. Lanes are fully independent
    /// (own controller, own trace, own aging integrator), so each
    /// vehicle's records, totals and checksum are **bit-identical** to
    /// [`FleetEngine::run_vehicle_caught`]'s — only the interleaving of
    /// work across lanes changes. A lane that panics or errors (at
    /// setup or mid-sweep) is contained and dropped from the lockstep
    /// set — the lane-masking rule — while the remaining lanes continue
    /// untouched; the failure record matches the scalar path's.
    ///
    /// Results come back in `specs` order, one per spec.
    pub fn run_batch_caught(
        &self,
        specs: &[VehicleSpec],
        sink: &dyn Sink,
    ) -> Vec<Result<VehicleSummary, VehicleFailure>> {
        self.run_batch_inner(specs, sink, 0, None, None)
    }

    fn run_batch_inner(
        &self,
        specs: &[VehicleSpec],
        sink: &dyn Sink,
        request_id: u64,
        latency: Option<&Histogram>,
        stats: Option<&BatchStats>,
    ) -> Vec<Result<VehicleSummary, VehicleFailure>> {
        let width = if self.batch_lanes >= 2 {
            self.batch_lanes
        } else {
            specs.len().max(1)
        } as u64;
        let t0 = Instant::now();
        let done = |slot: &mut Option<Result<VehicleSummary, VehicleFailure>>,
                    outcome: Result<VehicleSummary, VehicleFailure>| {
            if let Some(latency) = latency {
                latency.observe(t0.elapsed().as_secs_f64() * 1e3);
            }
            *slot = Some(outcome);
        };
        let mut results: Vec<Option<Result<VehicleSummary, VehicleFailure>>> =
            std::iter::repeat_with(|| None).take(specs.len()).collect();
        let mut lanes: Vec<BatchLane> = Vec::with_capacity(specs.len());
        for (slot, spec) in specs.iter().enumerate() {
            sink.record(Event::VehicleStarted {
                request_id,
                vehicle: spec.id,
            });
            // Setup panics get the same containment the scalar path's
            // whole-vehicle `catch_unwind` provides.
            match catch_unwind(AssertUnwindSafe(|| self.lane_for(slot, spec))) {
                Ok(Ok(lane)) => lanes.push(lane),
                Ok(Err(err)) => done(
                    &mut results[slot],
                    Err(VehicleFailure {
                        id: spec.id,
                        panicked: false,
                        message: err.to_string(),
                    }),
                ),
                Err(payload) => {
                    sink.record(Event::PanicCaught { context: "vehicle" });
                    done(
                        &mut results[slot],
                        Err(VehicleFailure {
                            id: spec.id,
                            panicked: true,
                            message: panic_message(payload.as_ref()),
                        }),
                    );
                }
            }
        }
        while !lanes.is_empty() {
            let mut stepped_lanes = 0u64;
            let mut live = Vec::with_capacity(lanes.len());
            for mut lane in lanes {
                let BatchLane {
                    controller,
                    trace,
                    builder,
                    cursor,
                    ..
                } = &mut lane;
                let stepped = catch_unwind(AssertUnwindSafe(|| {
                    cursor.advance(controller.as_mut(), trace, sink, |_, r| builder.push(r))
                }));
                match stepped {
                    Ok(true) => {
                        stepped_lanes += 1;
                        // Retire a drained lane now instead of letting
                        // the next sweep discover it — occupancy then
                        // counts genuine steps only.
                        if lane.cursor.steps() >= lane.trace.len() {
                            let totals = lane.cursor.finish(sink);
                            done(
                                &mut results[lane.slot],
                                Ok(lane.builder.finish(lane.id, totals)),
                            );
                        } else {
                            live.push(lane);
                        }
                    }
                    // Only an empty trace reaches a no-step retirement.
                    Ok(false) => {
                        let totals = lane.cursor.finish(sink);
                        done(
                            &mut results[lane.slot],
                            Ok(lane.builder.finish(lane.id, totals)),
                        );
                    }
                    Err(payload) => {
                        sink.record(Event::PanicCaught { context: "vehicle" });
                        done(
                            &mut results[lane.slot],
                            Err(VehicleFailure {
                                id: lane.id,
                                panicked: true,
                                message: panic_message(payload.as_ref()),
                            }),
                        );
                    }
                }
            }
            if stepped_lanes > 0 {
                sink.record(Event::BatchEvaluated {
                    lanes: stepped_lanes,
                    width,
                });
                if let Some(stats) = stats {
                    stats.sweeps.fetch_add(1, Ordering::Relaxed);
                    stats.lane_steps.fetch_add(stepped_lanes, Ordering::Relaxed);
                }
            }
            lanes = live;
        }
        results
            .into_iter()
            .map(|r| r.expect("every lane reached a terminal state"))
            .collect()
    }

    /// Builds one lockstep lane: the same config → trace → controller →
    /// simulator pipeline as [`FleetEngine::run_vehicle_with`], with
    /// the step loop suspended behind a cursor instead of run inline.
    fn lane_for(&self, slot: usize, spec: &VehicleSpec) -> Result<BatchLane, OtemError> {
        let config = spec.config();
        let trace = self.cache.trace_for(spec)?;
        let clock = self.clock_factory.map(|f| f(spec));
        let controller = spec.controller_with_clock(&config, clock)?;
        let sim = Simulator::new(&config);
        Ok(BatchLane {
            slot,
            id: spec.id,
            controller,
            trace,
            builder: SummaryBuilder::new(config.dt),
            cursor: sim.cursor(),
        })
    }

    /// Runs the whole campaign. Infallible: a vehicle that errors or
    /// panics becomes a [`FleetReport::failures`] entry while the rest
    /// of the fleet completes normally — one poisoned vehicle can no
    /// longer sink the batch.
    pub fn run(&self, campaign: &Campaign) -> FleetReport {
        self.run_with(campaign, &otem_telemetry::NullSink)
    }

    /// [`FleetEngine::run`] with an external sink that receives the
    /// engine's containment events ([`Event::PanicCaught`]) in addition
    /// to the per-solve outcome stream.
    pub fn run_with(&self, campaign: &Campaign, sink: &(dyn Sink + Sync)) -> FleetReport {
        self.run_with_request(campaign, sink, 0)
    }

    /// [`FleetEngine::run_with`] under a serving-layer correlation id:
    /// every worker enters [`otem_telemetry::request_scope`]`(request_id)`
    /// before touching a vehicle, so spans and flight-recorder entries
    /// produced inside the solve are stamped with the request that
    /// caused them, and each vehicle announces itself with
    /// [`Event::VehicleStarted`]. `request_id == 0` means "no request"
    /// (the in-process path).
    pub fn run_with_request(
        &self,
        campaign: &Campaign,
        sink: &(dyn Sink + Sync),
        request_id: u64,
    ) -> FleetReport {
        let latency = latency_histogram_ms();
        let tally = OutcomeTally::new();
        let pair = PairSink {
            tally: &tally,
            outer: sink,
        };
        let started = Instant::now();
        let job = |_i: usize, spec: &VehicleSpec| {
            // The scope is thread-local, so it must be (re-)entered
            // inside the job closure: pool workers do not inherit the
            // dispatching thread's correlation id.
            let _scope = otem_telemetry::request_scope(request_id);
            pair.record(Event::VehicleStarted {
                request_id,
                vehicle: spec.id,
            });
            let t0 = Instant::now();
            let outcome = self.run_vehicle_caught(spec, &pair);
            latency.observe(t0.elapsed().as_secs_f64() * 1e3);
            outcome
        };
        let stats = BatchStats::default();
        let outcomes: Vec<Result<VehicleSummary, VehicleFailure>> = if self.batch_lanes >= 2 {
            // Lockstep path: each job is one batch of vehicles advanced
            // together; chunks preserve campaign order, so the flattened
            // outcome vector matches the scalar path's ordering.
            let job = |_i: usize, chunk: &[VehicleSpec]| {
                let _scope = otem_telemetry::request_scope(request_id);
                self.run_batch_inner(chunk, &pair, request_id, Some(&latency), Some(&stats))
            };
            let chunks: Vec<&[VehicleSpec]> = campaign.vehicles.chunks(self.batch_lanes).collect();
            let per_chunk = match self.schedule {
                Schedule::Serial => chunks
                    .into_iter()
                    .enumerate()
                    .map(|(i, c)| job(i, c))
                    .collect::<Vec<_>>(),
                Schedule::Static { shards } => fan_indexed_capped(chunks, shards, job),
                Schedule::WorkStealing { shards } => fan_stealing(chunks, shards, job),
            };
            per_chunk.into_iter().flatten().collect()
        } else {
            let specs: Vec<&VehicleSpec> = campaign.vehicles.iter().collect();
            match self.schedule {
                Schedule::Serial => specs
                    .into_iter()
                    .enumerate()
                    .map(|(i, s)| job(i, s))
                    .collect(),
                Schedule::Static { shards } => fan_indexed_capped(specs, shards, job),
                Schedule::WorkStealing { shards } => fan_stealing(specs, shards, job),
            }
        };
        let wall_s = started.elapsed().as_secs_f64();
        let mut summaries = Vec::with_capacity(outcomes.len());
        let mut failures = Vec::new();
        for outcome in outcomes {
            match outcome {
                Ok(summary) => summaries.push(summary),
                Err(failure) => failures.push(failure),
            }
        }
        let total_steps = summaries.iter().map(|s| s.steps as u64).sum();
        FleetReport {
            summaries,
            failures,
            wall_s,
            total_steps,
            latency_ms: latency,
            solve_outcomes: tally.snapshot(),
            batched_steps: stats.lane_steps.load(Ordering::Relaxed),
            batch_sweeps: stats.sweeps.load(Ordering::Relaxed),
        }
    }
}

/// One vehicle's suspended closed loop inside a lockstep batch: its
/// controller, trace and step cursor, plus where its result goes.
struct BatchLane {
    /// Index into the batch's result vector (campaign order).
    slot: usize,
    id: u64,
    controller: Box<dyn Controller>,
    trace: PowerTrace,
    builder: SummaryBuilder,
    cursor: RunCursor,
}

/// Shared occupancy counters for one campaign run's batched path;
/// additions commute, so totals are schedule- and shard-independent.
#[derive(Default)]
struct BatchStats {
    sweeps: AtomicU64,
    lane_steps: AtomicU64,
}

/// Forwards every event to the campaign's [`OutcomeTally`] *and* an
/// external sink; `enabled` follows the external sink so the zero-cost
/// contract holds when the caller passed a
/// [`otem_telemetry::NullSink`].
struct PairSink<'a> {
    tally: &'a OutcomeTally,
    outer: &'a (dyn Sink + Sync),
}

impl std::fmt::Debug for PairSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PairSink").finish_non_exhaustive()
    }
}

impl Sink for PairSink<'_> {
    fn record(&self, event: Event) {
        self.tally.record(event);
        self.outer.record(event);
    }

    fn enabled(&self) -> bool {
        self.outer.enabled()
    }

    fn flush(&self) {
        self.outer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_rates_are_consistent() {
        let engine = FleetEngine::new(Schedule::Serial);
        let campaign = Campaign::synthetic(3, 42);
        let report = engine.run(&campaign);
        assert!(report.failures.is_empty(), "healthy campaign");
        assert_eq!(report.summaries.len(), 3);
        assert_eq!(report.total_steps, campaign.total_steps());
        assert!(report.vehicles_per_sec() > 0.0);
        assert!(report.steps_per_sec() > report.vehicles_per_sec());
        assert_eq!(report.latency_ms.count(), 3);
        for (i, s) in report.summaries.iter().enumerate() {
            assert_eq!(s.id, i as u64, "campaign order preserved");
            assert!(s.energy_j > 0.0, "vehicle {i} consumed energy");
        }
    }

    #[test]
    fn schedules_agree_bit_for_bit() {
        let campaign = Campaign::synthetic(6, 7);
        let serial = FleetEngine::new(Schedule::Serial).run(&campaign);
        let stealing = FleetEngine::new(Schedule::WorkStealing { shards: 3 }).run(&campaign);
        assert_eq!(serial.summaries, stealing.summaries);
        assert_eq!(serial.fleet_checksum(), stealing.fleet_checksum());
    }

    #[test]
    fn run_with_request_announces_each_vehicle_under_the_id() {
        use otem_telemetry::MemorySink;

        let campaign = Campaign::synthetic(3, 5);
        // Roomy: the announcements arrive first and per-step events
        // must not evict them from the bounded ring.
        let sink = MemorySink::with_capacity(1 << 20);
        FleetEngine::new(Schedule::WorkStealing { shards: 2 })
            .run_with_request(&campaign, &sink, 77);
        let mut started: Vec<u64> = sink
            .events()
            .into_iter()
            .filter_map(|e| match e {
                Event::VehicleStarted {
                    request_id,
                    vehicle,
                } => {
                    assert_eq!(request_id, 77, "vehicle {vehicle} lost the id");
                    Some(vehicle)
                }
                _ => None,
            })
            .collect();
        started.sort_unstable();
        assert_eq!(started, [0, 1, 2], "every vehicle announced exactly once");
    }

    #[test]
    fn batched_lockstep_is_bit_identical_to_scalar() {
        let campaign = Campaign::synthetic(7, 13);
        let scalar = FleetEngine::new(Schedule::Serial).run(&campaign);
        assert_eq!(scalar.batch_sweeps, 0, "scalar path must not batch");
        for (schedule, lanes) in [
            (Schedule::Serial, 3usize),
            (Schedule::Static { shards: 2 }, 2),
            (Schedule::WorkStealing { shards: 2 }, 4),
        ] {
            let batched = FleetEngine::new(schedule)
                .with_batch_lanes(lanes)
                .run(&campaign);
            assert_eq!(
                scalar.summaries, batched.summaries,
                "lockstep perturbed results ({schedule:?}, {lanes} lanes)"
            );
            assert_eq!(scalar.fleet_checksum(), batched.fleet_checksum());
            assert_eq!(
                batched.batched_steps, batched.total_steps,
                "every step ran through the lockstep path"
            );
            assert!(batched.batch_sweeps > 0);
            let occupancy = batched.mean_batch_occupancy();
            assert!(
                occupancy > 0.0 && occupancy <= lanes as f64,
                "occupancy {occupancy} out of range"
            );
            assert_eq!(batched.latency_ms.count(), 7, "one latency per vehicle");
        }
    }

    #[test]
    fn batched_lockstep_contains_poisoned_lanes() {
        let mut campaign = Campaign::synthetic(5, 11);
        campaign.vehicles[1].poison_step = Some(1);
        let scalar = FleetEngine::new(Schedule::Serial).run(&campaign);
        let batched = FleetEngine::new(Schedule::Serial)
            .with_batch_lanes(5)
            .run(&campaign);
        assert_eq!(scalar.summaries, batched.summaries);
        assert_eq!(scalar.failures, batched.failures);
        assert!(batched.failures[0].panicked);
        assert_eq!(batched.vehicle_panics(), 1);
        // The faulted lane left the lockstep set: later sweeps run
        // below full width, so mean occupancy sits under 5.
        assert!(batched.mean_batch_occupancy() < 5.0);
    }

    #[test]
    fn run_batch_caught_matches_per_vehicle_runs() {
        let campaign = Campaign::synthetic(4, 3);
        let engine = FleetEngine::new(Schedule::Serial).with_batch_lanes(4);
        let sink = otem_telemetry::MemorySink::with_capacity(1 << 16);
        let outcomes = engine.run_batch_caught(&campaign.vehicles, &sink);
        assert_eq!(outcomes.len(), 4);
        for (spec, outcome) in campaign.vehicles.iter().zip(&outcomes) {
            let reference = engine.run_vehicle(spec).expect("healthy vehicle");
            assert_eq!(outcome.as_ref().expect("healthy lane"), &reference);
        }
        assert!(
            sink.count_kind("batch_evaluated") > 0,
            "lockstep sweeps announce occupancy"
        );
    }

    #[test]
    fn poisoned_vehicle_is_contained_and_the_rest_complete() {
        use otem_telemetry::MemorySink;

        let mut campaign = Campaign::synthetic(4, 11);
        campaign.vehicles[2].poison_step = Some(1);
        let sink = MemorySink::with_capacity(64);
        let report =
            FleetEngine::new(Schedule::WorkStealing { shards: 2 }).run_with(&campaign, &sink);
        assert_eq!(report.summaries.len(), 3, "three vehicles complete");
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].id, 2);
        assert!(report.failures[0].panicked);
        assert!(
            report.failures[0].message.contains("poison fault"),
            "panic payload recovered: {}",
            report.failures[0].message
        );
        assert_eq!(report.vehicle_panics(), 1);
        assert_eq!(sink.count_kind("panic_caught"), 1);
        assert!(
            report.summaries.iter().all(|s| s.id != 2),
            "no summary for the poisoned vehicle"
        );
        // The surviving summaries are bit-identical to a clean campaign's.
        let clean = FleetEngine::new(Schedule::Serial).run(&Campaign::synthetic(4, 11));
        for survivor in &report.summaries {
            let reference = clean
                .summaries
                .iter()
                .find(|s| s.id == survivor.id)
                .expect("clean run has every id");
            assert_eq!(
                survivor, reference,
                "containment perturbed vehicle {}",
                survivor.id
            );
        }
    }
}
