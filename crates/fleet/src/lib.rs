//! Fleet-scale batched simulation for the OTEM reproduction.
//!
//! PR 5's adjoint gradients brought a full MPC solve down to the
//! sub-millisecond range, which makes serving *fleets* realistic: this
//! crate runs thousands of independent vehicles — each with its own
//! drive cycle, ambient, ultracapacitor sizing and management
//! methodology — through sharded long-lived worker pools, and exposes
//! the whole engine behind a hand-rolled HTTP/1.1 + JSONL server over
//! [`std::net::TcpListener`] (the vendored-deps constraint rules out an
//! async runtime).
//!
//! # Layers
//!
//! | module | contents |
//! |--------|----------|
//! | [`campaign`] | [`VehicleSpec`] / [`Campaign`]: deterministic heterogeneous fleets |
//! | [`pool`] | generic fans: statically chunked and work-stealing worker pools |
//! | [`engine`] | [`FleetEngine`]: batched campaign execution + per-vehicle panic containment |
//! | [`queue`] | [`BoundedQueue`]: the std-only bounded MPMC hand-off behind the server |
//! | [`protocol`] | minimal JSON field extraction + JSONL response rendering |
//! | [`server`] | [`FleetServer`]: the hardened `simulate`/`plan` serving layer (worker pool, load shedding, socket deadlines, graceful drain) |
//! | [`client`] | [`RetryClient`]: blocking client with decorrelated-jitter backoff |
//!
//! # Determinism contract
//!
//! Every vehicle in a campaign is an *independent* closed-loop
//! simulation, so the engine's result for vehicle `i` is bit-identical
//! to running [`otem::Simulator`] on that vehicle alone — regardless of
//! shard count or whether the static or work-stealing scheduler
//! dispatched it. `tests/determinism.rs` pins this across shard counts
//! {1, 4, 16} and both schedulers.
//!
//! # Quickstart
//!
//! ```
//! use otem_fleet::{Campaign, FleetEngine, Schedule};
//!
//! let campaign = Campaign::synthetic(8, 42);
//! let engine = FleetEngine::new(Schedule::WorkStealing { shards: 4 });
//! let report = engine.run(&campaign);
//! assert!(report.failures.is_empty());
//! assert_eq!(report.summaries.len(), 8);
//! assert!(report.total_steps > 0);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod campaign;
pub mod client;
pub mod engine;
pub mod pool;
pub mod protocol;
pub mod queue;
pub mod server;

pub use campaign::{
    Campaign, Methodology, SolveOutcomes, SummaryBuilder, TraceCache, VehicleSpec, VehicleSummary,
};
pub use client::{BackoffPolicy, Response, RetryClient};
pub use engine::{ClockFactory, FleetEngine, FleetReport, OutcomeTally, Schedule, VehicleFailure};
pub use queue::{BoundedQueue, PushError};
pub use server::{FleetServer, ServerConfig, ServerHandle};
