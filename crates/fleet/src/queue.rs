//! A hand-rolled bounded MPMC queue on `Mutex` + `Condvar`.
//!
//! The serving layer needs a bounded hand-off between one accept loop
//! and N connection-handler workers, with a *non-blocking* producer so
//! the accept loop can shed load (answer `503`) the instant the queue
//! is full instead of parking behind a slow fleet. The vendored-deps
//! constraint rules out crossbeam, so this is the std-only version:
//! a `VecDeque` behind one mutex, a condvar for sleeping consumers, and
//! a `try_push` that never blocks.
//!
//! Close semantics match a channel's: after [`BoundedQueue::close`],
//! producers are refused but consumers **drain the remaining items**
//! before [`BoundedQueue::pop`] returns `None` — during a graceful
//! drain, connections that were already accepted still get served.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why [`BoundedQueue::try_push`] refused an item (the item is handed
/// back so the caller can respond to the client it belongs to).
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — shed the load.
    Full(T),
    /// The queue was closed — the server is draining.
    Closed(T),
}

#[derive(Debug)]
struct Shared<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
///
/// Shared by `Arc`: producers call [`BoundedQueue::try_push`] (never
/// blocks), consumers call [`BoundedQueue::pop`] (blocks until an item
/// or close-and-empty).
#[derive(Debug)]
pub struct BoundedQueue<T> {
    shared: Mutex<Shared<T>>,
    capacity: usize,
    ready: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (at least one).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            shared: Mutex::new(Shared {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            capacity,
            ready: Condvar::new(),
        }
    }

    /// Recovers the guard even if a consumer panicked while holding the
    /// lock — queue state (a `VecDeque` plus a flag) is valid after any
    /// partial operation, so poisoning carries no information here.
    fn lock(&self) -> std::sync::MutexGuard<'_, Shared<T>> {
        self.shared.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues without blocking; refuses when full or closed.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`] — both return the item.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut shared = self.lock();
        if shared.closed {
            return Err(PushError::Closed(item));
        }
        if shared.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        shared.items.push_back(item);
        drop(shared);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and returns it, or returns
    /// `None` once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut shared = self.lock();
        loop {
            if let Some(item) = shared.items.pop_front() {
                return Some(item);
            }
            if shared.closed {
                return None;
            }
            shared = self
                .ready
                .wait(shared)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: producers are refused from now on, consumers
    /// drain what is left and then observe `None`. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued (racy by nature; for metrics only).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// `true` when nothing is queued (racy by nature; for metrics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn refuses_when_full_and_hands_the_item_back() {
        let q = BoundedQueue::new(2);
        q.try_push(1).expect("fits");
        q.try_push(2).expect("fits");
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_refuses_producers_but_drains_consumers() {
        let q = BoundedQueue::new(4);
        q.try_push(1).expect("fits");
        q.try_push(2).expect("fits");
        q.close();
        match q.try_push(3) {
            Err(PushError::Closed(3)) => {}
            other => panic!("expected Closed(3), got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "close is sticky");
    }

    #[test]
    fn items_flow_to_blocked_consumers() {
        let q = Arc::new(BoundedQueue::new(8));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = q.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        for i in 0..30 {
            // The queue is bounded at 8 while consumers drain it; spin
            // on Full rather than asserting — this test is about
            // delivery, not capacity.
            let mut item = i;
            loop {
                match q.try_push(item) {
                    Ok(()) => break,
                    Err(PushError::Full(back)) => {
                        item = back;
                        std::thread::yield_now();
                    }
                    Err(PushError::Closed(_)) => unreachable!("not closed yet"),
                }
            }
        }
        q.close();
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().expect("consumer joins"))
            .collect();
        all.sort_unstable();
        assert_eq!(
            all,
            (0..30).collect::<Vec<_>>(),
            "every item delivered once"
        );
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        q.try_push(7).expect("capacity clamps to 1");
        assert!(matches!(q.try_push(8), Err(PushError::Full(8))));
    }
}
