//! `fleet_server` — the long-running fleet simulation service.
//!
//! ```text
//! fleet_server [--addr 127.0.0.1:7878] [--shards N] [--max-vehicles N]
//!              [--workers N] [--queue-depth N] [--read-timeout-ms N]
//!              [--drain-deadline-ms N] [--flight-dir DIR]
//!              [--batch-lanes N]
//! ```
//!
//! Speaks HTTP/1.1 with `application/x-ndjson` responses; see the
//! README's "Fleet server" quickstart for request examples. Exits
//! cleanly on `POST /shutdown` after draining in-flight requests.

use otem_fleet::{FleetServer, ServerConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_owned(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--shards" => match value("--shards").parse() {
                Ok(n) if n > 0 => config.shards = n,
                _ => {
                    eprintln!("--shards needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--max-vehicles" => match value("--max-vehicles").parse() {
                Ok(n) if n > 0 => config.max_vehicles = n,
                _ => {
                    eprintln!("--max-vehicles needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--workers" => match value("--workers").parse() {
                Ok(n) if n > 0 => config.workers = n,
                _ => {
                    eprintln!("--workers needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--queue-depth" => match value("--queue-depth").parse() {
                Ok(n) if n > 0 => config.queue_depth = n,
                _ => {
                    eprintln!("--queue-depth needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--read-timeout-ms" => match value("--read-timeout-ms").parse() {
                Ok(n) if n > 0 => config.read_timeout_ms = n,
                _ => {
                    eprintln!("--read-timeout-ms needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--drain-deadline-ms" => match value("--drain-deadline-ms").parse() {
                Ok(n) if n > 0 => config.drain_deadline_ms = n,
                _ => {
                    eprintln!("--drain-deadline-ms needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--flight-dir" => config.flight_dir = value("--flight-dir"),
            // `0` (the default) disables lockstep batching; `>= 2`
            // steps that many fleet vehicles per shard in lockstep
            // (bit-identical to scalar; see DESIGN.md §15).
            "--batch-lanes" => match value("--batch-lanes").parse() {
                Ok(n) => config.batch_lanes = n,
                _ => {
                    eprintln!("--batch-lanes needs a non-negative integer");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: fleet_server [--addr HOST:PORT] [--shards N] [--max-vehicles N]\n\
                     \u{20}                   [--workers N] [--queue-depth N]\n\
                     \u{20}                   [--read-timeout-ms N] [--drain-deadline-ms N]\n\
                     \u{20}                   [--flight-dir DIR] [--batch-lanes N]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let server = FleetServer::new(config);
    match server.run(|addr| println!("fleet_server listening on http://{addr}")) {
        Ok(()) => {
            println!("fleet_server shut down cleanly");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("fleet_server: {err}");
            ExitCode::FAILURE
        }
    }
}
