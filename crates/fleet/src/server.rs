//! The serving layer: hand-rolled HTTP/1.1 + JSONL over
//! [`std::net::TcpListener`], hardened for hostile traffic.
//!
//! The vendored-deps constraint rules out an async runtime, so
//! concurrency is a fixed pool of blocking worker threads fed by a
//! hand-rolled [`BoundedQueue`]: one accept thread hands each accepted
//! socket to the pool, and when the queue is full the accept thread
//! **sheds** the connection immediately with a `503` and a
//! `retry_after_ms` hint instead of letting a backlog build. Four
//! defence layers keep one bad client (or one bad request) from taking
//! the server down:
//!
//! 1. **Load shedding** — bounded queue, `503 {"error":"overloaded",
//!    "retry_after_ms":…}` the instant it is full.
//! 2. **Socket deadlines** — every accepted socket gets
//!    `set_read_timeout`/`set_write_timeout`; a stalled (slow-loris)
//!    client is cut off with `408`, and the request head is capped at
//!    [`MAX_HEADER_BYTES`] bytes / [`MAX_HEADER_COUNT`] headers so a
//!    trickler cannot hold a worker indefinitely.
//! 3. **Panic isolation** — each request handler runs under
//!    `catch_unwind` (a contained panic answers `500` and bumps the
//!    `panics` counter), and inside the engine each *vehicle* is its own
//!    unwind boundary, so a poisoned vehicle yields one structured
//!    `vehicle_error` line while the rest of the fleet completes.
//! 4. **Graceful drain** — `/shutdown` (or [`ServerHandle::shutdown`])
//!    stops accepting, lets queued and in-flight requests finish up to
//!    `drain_deadline_ms`, then joins the pool.
//!
//! # Observability
//!
//! Every serving-layer counter lives in a [`MetricsRegistry`] and is
//! exposed on `GET /metrics` as Prometheus v0.0.4 text (the legacy JSON
//! blob moved to `GET /metrics.json`): request/shed/timeout/panic
//! totals, in-flight and uptime gauges, `otem_build_info`, per-route
//! request-latency histograms, MPC solve outcomes by gradient mode, and
//! trace-cache plus JSONL-drop counters. Each accepted connection mints
//! a `request_id` that rides a thread-local
//! [`otem_telemetry::request_scope`] through the engine's workers, so
//! spans and flight-recorder entries name the request that caused them.
//! An always-on [`FlightRecorder`] keeps the last N events per lane and
//! freezes a post-mortem dump the moment a contained panic or
//! supervisor fallback flows through it; the frozen dump is served on
//! `GET /debug/flight` (and written to [`ServerConfig::flight_dir`]
//! when configured). `GET /debug/trace?sample=N` arms 1-in-N span
//! sampling and streams the sampled spans collected so far.
//!
//! # Routes
//!
//! | route | body | response |
//! |-------|------|----------|
//! | `GET /healthz` | — | one status line |
//! | `GET /metrics` | — | Prometheus v0.0.4 text exposition of the registry |
//! | `GET /metrics.json` | — | request/shed/timeout/panic counters + latency quantiles (one JSON line) |
//! | `GET /debug/flight` | — | frozen flight-recorder dump if an incident occurred, else the live ring |
//! | `GET /debug/trace?sample=N` | — | arms 1-in-N span sampling; streams sampled spans |
//! | `POST /simulate` | [`SimulateRequest`] JSON | JSONL summaries (fleet) or telemetry stream + summary (vehicle) |
//! | `POST /plan` | single-vehicle JSON | clairvoyant DP split, one line per step |
//! | `POST /shutdown` | — | ack line, then the server drains and exits |
//!
//! Responses are `application/x-ndjson` (`/metrics` is
//! `text/plain; version=0.0.4`), close-delimited (`Connection: close`),
//! so clients just read lines until EOF.

use crate::campaign::{Campaign, SummaryBuilder, TraceCache, VehicleSpec};
use crate::engine::{latency_histogram_ms, FleetEngine, OutcomeTally};
use crate::protocol::{failure_line, outcomes_json, summary_line, SimulateRequest, Telemetry};
use crate::queue::{BoundedQueue, PushError};
use otem::planner::{plan_split, PlannerConfig};
use otem::{OtemError, Simulator};
use otem_telemetry::{
    current_request_id, request_scope, ChromeTraceSink, Counter, Event, FlightDump, FlightEntry,
    FlightRecorder, Gauge, Histogram, JsonlSink, MetricsRegistry, NullSink, Sink,
};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper bound on `/plan` route length: the clairvoyant DP is
/// `O(steps × soe_levels × actions)` plant evaluations, so unbounded
/// requests could pin a worker for minutes.
const PLAN_STEP_CAP: usize = 2_000;

/// Largest accepted request body (requests are small JSON objects; a
/// huge Content-Length is a malformed or hostile client).
const BODY_CAP: u64 = 1 << 20;

/// Total bytes a request head (request line + headers) may occupy. A
/// slow-loris client drip-feeding header bytes exhausts this budget and
/// is answered `400` instead of holding the worker.
pub const MAX_HEADER_BYTES: u64 = 8 * 1024;

/// Maximum number of request headers (a header *flood* within the byte
/// budget is still refused).
pub const MAX_HEADER_COUNT: usize = 64;

/// The `retry_after_ms` hint shed responses carry — long enough for a
/// queue slot to open at typical request latencies, short enough that a
/// retrying client converges quickly.
pub const RETRY_AFTER_MS: u64 = 100;

/// Server tuning.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (the tests' loopback mode).
    pub addr: String,
    /// Default shard width for fleet requests that don't pin one.
    pub shards: usize,
    /// Per-request campaign size cap.
    pub max_vehicles: usize,
    /// Connection-handler worker threads (clamped to ≥ 1).
    pub workers: usize,
    /// Bounded hand-off depth between the accept loop and the workers;
    /// connections beyond `workers + queue_depth` are shed with `503`.
    pub queue_depth: usize,
    /// Per-read socket timeout (ms) — a client that stalls this long
    /// mid-request is cut off with `408`. Clamped to ≥ 1.
    pub read_timeout_ms: u64,
    /// Per-write socket timeout (ms); a client that stops reading its
    /// response this long is dropped. Clamped to ≥ 1.
    pub write_timeout_ms: u64,
    /// How long a drain waits for queued + in-flight requests before
    /// abandoning the stragglers (their socket timeouts still bound
    /// them).
    pub drain_deadline_ms: u64,
    /// Directory flight-recorder dumps are written to as
    /// `flight-<seq>-<trigger>.jsonl`. Empty (the default) keeps dumps
    /// in memory only, where `GET /debug/flight` serves the most
    /// recent one.
    pub flight_dir: String,
    /// Lockstep batch width for fleet requests (see
    /// [`FleetEngine::with_batch_lanes`]): `0` (the default) runs the
    /// scalar per-vehicle path; `≥ 2` advances that many vehicles per
    /// shard in lockstep, with identical summaries and checksums.
    pub batch_lanes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            shards: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            max_vehicles: 100_000,
            workers: 4,
            queue_depth: 64,
            read_timeout_ms: 2_000,
            write_timeout_ms: 2_000,
            drain_deadline_ms: 5_000,
            flight_dir: String::new(),
            batch_lanes: 0,
        }
    }
}

/// Help text constants: the registry requires a family's help to be
/// identical on every lookup, so call sites share these.
const SOLVE_OUTCOME_HELP: &str = "MPC solve outcomes by gradient mode across every request served.";
const LATENCY_HELP: &str = "End-to-end request latency (queue wait included) by route.";
const FLIGHT_DUMPS_HELP: &str = "Flight-recorder dumps frozen, by trigger event.";
const BATCHED_ROLLOUTS_HELP: &str =
    "Lanes evaluated through the lockstep batched rollout kernel (line-search candidates and fleet vehicles alike).";
const BATCH_OCCUPANCY_HELP: &str =
    "Occupied lanes per batched evaluation; counts below the configured width expose partially-full batches.";
/// Bucket bounds (lane counts) for `otem_rollout_batch_occupancy`.
const OCCUPANCY_BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// Shared mutable server state (metrics + shutdown flag).
struct ServerState {
    config: ServerConfig,
    cache: Arc<TraceCache>,
    /// Observational sink for serving-layer events ([`Event::RequestShed`],
    /// [`Event::RequestTimeout`], [`Event::PanicCaught`],
    /// [`Event::DrainStarted`]); [`NullSink`] unless installed via
    /// [`FleetServer::with_sink`].
    sink: Arc<dyn Sink + Send + Sync>,
    /// The unified metric registry behind `/metrics`. Every named
    /// counter below is a child of one of its families, so the ad-hoc
    /// accessors, the JSON blob and the Prometheus exposition all read
    /// the same atomics.
    registry: Arc<MetricsRegistry>,
    /// Always-on ring of recent telemetry; freezes on contained panics
    /// and supervisor fallbacks (see [`FlightRecorder`]).
    recorder: FlightRecorder,
    /// The most recent frozen dump, drained from the recorder by the
    /// worker that observed it — `GET /debug/flight` serves this.
    last_dump: Mutex<Option<FlightDump>>,
    /// Monotone file-name sequence for persisted dumps.
    flight_seq: AtomicU64,
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    /// Failed `accept(2)` calls — transport-level, counted apart from
    /// request errors so the two failure modes stay distinguishable.
    accept_errors: Arc<Counter>,
    /// Connections refused with `503` because the queue was full.
    shed: Arc<Counter>,
    /// Requests cut off by a socket deadline (`408`).
    timeouts: Arc<Counter>,
    /// Request-handler panics contained by the worker's `catch_unwind`.
    panics: Arc<Counter>,
    /// Per-vehicle panics contained inside the fleet engine.
    vehicle_panics: Arc<Counter>,
    /// Telemetry records dropped by per-request JSONL streaming sinks.
    jsonl_dropped: Arc<Counter>,
    /// `otem_in_flight_requests`, refreshed from `in_flight` at scrape.
    in_flight_gauge: Arc<Gauge>,
    /// `otem_uptime_seconds`, refreshed from `started` at scrape.
    uptime: Arc<Gauge>,
    /// Construction time, the uptime epoch.
    started: Instant,
    /// Correlation-id mint; ids start at 1 (`0` means "no request").
    request_ids: AtomicU64,
    /// Span-sampling rate armed by `/debug/trace?sample=N`: requests
    /// whose id is divisible by N run with an enabled sink so their
    /// spans reach the flight recorder. `0` (the default) samples none.
    trace_sample: AtomicU64,
    /// Bucket bounds (seconds) shared by every `route` child of
    /// `otem_request_latency_seconds`.
    latency_bounds: Vec<f64>,
    /// Requests currently being handled by workers.
    in_flight: AtomicU64,
    /// Live shedder threads (see [`shed_connection`]); capped so a shed
    /// storm cannot become a thread-spawn storm.
    shedders: AtomicU64,
    latency_ms: Histogram,
    /// MPC solve outcomes across every request served so far (fleet and
    /// single-vehicle alike) — exported on `/metrics.json`.
    solves: OutcomeTally,
    shutdown: AtomicBool,
    /// The bound address, set at bind time — lets the `/shutdown`
    /// handler (running on a worker) wake the blocking accept loop with
    /// a self-connect.
    addr: OnceLock<SocketAddr>,
}

impl ServerState {
    /// Feeds one event to the flight recorder (stamping the recording
    /// thread's correlation id) and folds solve outcomes into the
    /// per-`(mode, outcome)` registry family.
    fn observe(&self, event: Event) {
        self.recorder.record(event);
        if let Event::SolveOutcome { outcome, mode, .. } = event {
            self.registry
                .counter(
                    "otem_solve_outcome_total",
                    SOLVE_OUTCOME_HELP,
                    &[("mode", mode), ("outcome", outcome)],
                )
                .inc();
        }
        if let Event::BatchEvaluated { lanes, .. } = event {
            self.registry
                .counter("otem_batched_rollouts_total", BATCHED_ROLLOUTS_HELP, &[])
                .add(lanes);
            self.registry
                .histogram(
                    "otem_rollout_batch_occupancy",
                    BATCH_OCCUPANCY_HELP,
                    &[],
                    OCCUPANCY_BOUNDS,
                )
                .observe(lanes as f64);
        }
    }

    /// An event for both the observational sink and the recorder.
    fn observe_ops(&self, event: Event) {
        self.sink.record(event);
        self.recorder.record(event);
    }

    /// The latency-histogram child for a route.
    fn route_latency(&self, route: &str) -> Arc<Histogram> {
        self.registry.histogram(
            "otem_request_latency_seconds",
            LATENCY_HELP,
            &[("route", route)],
            &self.latency_bounds,
        )
    }

    /// `true` when span sampling is armed and this request drew the
    /// 1-in-N slot.
    fn trace_sampled(&self, request_id: u64) -> bool {
        let n = self.trace_sample.load(Ordering::Relaxed);
        n != 0 && request_id != 0 && request_id.is_multiple_of(n)
    }

    /// Books a dump the recorder froze: counts it by trigger, persists
    /// it when a flight directory is configured, and retains it for
    /// `GET /debug/flight`.
    fn note_flight_dump(&self, dump: FlightDump) {
        self.registry
            .counter(
                "otem_flight_dumps_total",
                FLIGHT_DUMPS_HELP,
                &[("trigger", dump.trigger)],
            )
            .inc();
        if !self.config.flight_dir.is_empty() {
            let seq = self.flight_seq.fetch_add(1, Ordering::Relaxed);
            let path = format!(
                "{}/flight-{seq:04}-{}.jsonl",
                self.config.flight_dir, dump.trigger
            );
            // Persistence is best-effort: an unwritable directory must
            // not take down request serving, and the dump is still
            // retained in memory below.
            let _ = std::fs::create_dir_all(&self.config.flight_dir);
            let _ = std::fs::write(path, dump.to_jsonl());
        }
        *self
            .last_dump
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(dump);
    }

    /// The Prometheus text exposition, with scrape-time gauges
    /// (uptime, in-flight) refreshed first.
    fn render_prometheus(&self) -> String {
        self.uptime.set(self.started.elapsed().as_secs_f64());
        self.in_flight_gauge
            .set(self.in_flight.load(Ordering::Relaxed) as f64);
        self.registry.snapshot().render_prometheus()
    }
}

impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerState")
            .field("config", &self.config)
            .field("requests", &self.requests.get())
            .field("errors", &self.errors.get())
            .field("shed", &self.shed.get())
            .field("timeouts", &self.timeouts.get())
            .field("panics", &self.panics.get())
            .finish_non_exhaustive()
    }
}

/// A connection waiting for a worker; `accepted` timestamps queue entry
/// so the latency histogram includes queue wait, and `request_id` is
/// the correlation id minted at accept time.
struct Job {
    stream: TcpStream,
    accepted: Instant,
    request_id: u64,
}

/// Counts live workers; the drain waits on it instead of polling.
struct WorkerLatch {
    live: Mutex<usize>,
    done: Condvar,
}

impl WorkerLatch {
    fn new(count: usize) -> Self {
        Self {
            live: Mutex::new(count),
            done: Condvar::new(),
        }
    }

    fn depart(&self) {
        let mut live = self.live.lock().unwrap_or_else(PoisonError::into_inner);
        *live = live.saturating_sub(1);
        drop(live);
        self.done.notify_all();
    }

    /// Waits until every worker departed or the deadline passed;
    /// returns `true` when the pool fully drained.
    fn wait_drained(&self, deadline: Instant) -> bool {
        let mut live = self.live.lock().unwrap_or_else(PoisonError::into_inner);
        while *live > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .done
                .wait_timeout(live, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            live = guard;
        }
        true
    }
}

/// The fleet serving layer. Construct with a [`ServerConfig`], then
/// either [`FleetServer::spawn`] a background handle (tests, embedding)
/// or [`FleetServer::run`] the accept loop on the current thread (the
/// `fleet_server` binary).
#[derive(Debug)]
pub struct FleetServer {
    state: Arc<ServerState>,
}

impl FleetServer {
    /// A server with the given tuning.
    pub fn new(config: ServerConfig) -> Self {
        Self::with_sink(config, Arc::new(NullSink))
    }

    /// A server that records serving-layer events (sheds, timeouts,
    /// contained panics, drain start) on the given sink — the chaos
    /// harness passes a [`otem_telemetry::MemorySink`] to assert on
    /// them.
    pub fn with_sink(config: ServerConfig, sink: Arc<dyn Sink + Send + Sync>) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let counter = |name: &str, help: &str| registry.counter(name, help, &[]);
        registry
            .gauge(
                "otem_build_info",
                "Build metadata; the value is always 1.",
                &[
                    ("version", env!("CARGO_PKG_VERSION")),
                    (
                        "profile",
                        if cfg!(debug_assertions) {
                            "debug"
                        } else {
                            "release"
                        },
                    ),
                ],
            )
            .set(1.0);
        let cache = Arc::new(TraceCache::with_metrics(
            counter(
                "otem_trace_cache_hits_total",
                "Power-trace cache lookups served from the cache.",
            ),
            counter(
                "otem_trace_cache_misses_total",
                "Power-trace cache lookups that synthesised the base trace.",
            ),
        ));
        Self {
            state: Arc::new(ServerState {
                cache,
                sink,
                recorder: FlightRecorder::new(),
                last_dump: Mutex::new(None),
                flight_seq: AtomicU64::new(0),
                requests: counter(
                    "otem_requests_total",
                    "Requests handled by the worker pool (shed connections and \
                     shutdown wake-ups excluded).",
                ),
                errors: counter(
                    "otem_request_errors_total",
                    "Requests answered with an error status or dropped on a \
                     transport error (timeouts counted separately).",
                ),
                accept_errors: counter("otem_accept_errors_total", "Failed accept(2) calls."),
                shed: counter(
                    "otem_requests_shed_total",
                    "Connections refused with 503 because the worker queue was full.",
                ),
                timeouts: counter(
                    "otem_request_timeouts_total",
                    "Requests cut off by a socket deadline (408).",
                ),
                panics: counter(
                    "otem_request_panics_total",
                    "Request-handler panics contained by catch_unwind.",
                ),
                vehicle_panics: counter(
                    "otem_vehicle_panics_total",
                    "Per-vehicle panics contained inside fleet campaigns.",
                ),
                jsonl_dropped: counter(
                    "otem_jsonl_dropped_records_total",
                    "Telemetry records dropped by per-request JSONL streaming sinks.",
                ),
                in_flight_gauge: registry.gauge(
                    "otem_in_flight_requests",
                    "Requests currently being handled by workers.",
                    &[],
                ),
                uptime: registry.gauge(
                    "otem_uptime_seconds",
                    "Seconds since the server was constructed.",
                    &[],
                ),
                started: Instant::now(),
                request_ids: AtomicU64::new(0),
                trace_sample: AtomicU64::new(0),
                // ~10 µs .. ~20 s in doubling buckets.
                latency_bounds: Histogram::exponential(1e-5, 2.0, 22).bounds().to_vec(),
                registry,
                config,
                in_flight: AtomicU64::new(0),
                shedders: AtomicU64::new(0),
                latency_ms: latency_histogram_ms(),
                solves: OutcomeTally::new(),
                shutdown: AtomicBool::new(false),
                addr: OnceLock::new(),
            }),
        }
    }

    /// Binds the listener and runs the accept loop on the current
    /// thread until a shutdown request arrives, then drains the worker
    /// pool. `on_bind` receives the bound address (port 0 resolves
    /// here).
    ///
    /// # Errors
    ///
    /// Returns the bind error; per-connection I/O errors are counted
    /// and survived.
    pub fn run(self, on_bind: impl FnOnce(SocketAddr)) -> io::Result<()> {
        let listener = TcpListener::bind(&self.state.config.addr)?;
        let addr = listener.local_addr()?;
        let _ = self.state.addr.set(addr);
        on_bind(addr);
        self.accept_loop(&listener);
        Ok(())
    }

    /// Binds the listener and serves from a background thread, returning
    /// a handle that resolves the bound address and can shut the server
    /// down.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&self.state.config.addr)?;
        let addr = listener.local_addr()?;
        let _ = self.state.addr.set(addr);
        let state = Arc::clone(&self.state);
        let thread = std::thread::spawn(move || self.accept_loop(&listener));
        Ok(ServerHandle {
            addr,
            state,
            thread: Some(thread),
        })
    }

    /// The accept thread: hand sockets to the pool, shed when full,
    /// drain on shutdown.
    fn accept_loop(&self, listener: &TcpListener) {
        let state = &self.state;
        let queue = Arc::new(BoundedQueue::<Job>::new(state.config.queue_depth));
        let worker_count = state.config.workers.max(1);
        let latch = Arc::new(WorkerLatch::new(worker_count));
        let workers: Vec<JoinHandle<()>> = (0..worker_count)
            .map(|_| {
                let state = Arc::clone(state);
                let queue = Arc::clone(&queue);
                let latch = Arc::clone(&latch);
                std::thread::spawn(move || {
                    while let Some(job) = queue.pop() {
                        serve_job(&state, job);
                    }
                    latch.depart();
                })
            })
            .collect();

        let read_timeout = Duration::from_millis(state.config.read_timeout_ms.max(1));
        let write_timeout = Duration::from_millis(state.config.write_timeout_ms.max(1));
        for conn in listener.incoming() {
            // The shutdown self-connect lands here with the flag already
            // set, so wake connections are never counted or served
            // (`requests` and the latency histogram stay traffic-only).
            if state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else {
                state.accept_errors.inc();
                continue;
            };
            let _ = stream.set_read_timeout(Some(read_timeout));
            let _ = stream.set_write_timeout(Some(write_timeout));
            let job = Job {
                stream,
                accepted: Instant::now(),
                // Ids start at 1: 0 is the "no request" sentinel of
                // `otem_telemetry::current_request_id`.
                request_id: state.request_ids.fetch_add(1, Ordering::Relaxed) + 1,
            };
            match queue.try_push(job) {
                Ok(()) => {}
                Err(PushError::Full(job)) => {
                    state.shed.inc();
                    state.observe_ops(Event::RequestShed {
                        queued: queue.len() as u64,
                        retry_after_ms: RETRY_AFTER_MS,
                    });
                    shed_connection(state, job.stream);
                }
                Err(PushError::Closed(job)) => {
                    // Raced a drain; refuse like a shed so the client
                    // retries against the next instance. Blocking here
                    // is fine — the accept loop is exiting anyway.
                    let _ = respond_shed(job.stream);
                    break;
                }
            }
        }

        // Drain: stop feeding the pool, serve what is queued and
        // in-flight, give up at the deadline (stragglers stay bounded by
        // their socket timeouts).
        state.observe_ops(Event::DrainStarted {
            in_flight: state.in_flight.load(Ordering::Relaxed),
            queued: queue.len() as u64,
        });
        queue.close();
        let deadline =
            Instant::now() + Duration::from_millis(state.config.drain_deadline_ms.max(1));
        if latch.wait_drained(deadline) {
            for worker in workers {
                let _ = worker.join();
            }
        }
        // else: handles drop here — stragglers are detached, not joined.
    }
}

/// Handle to a [spawned](FleetServer::spawn) server.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (port 0 in the config resolves to a real port
    /// here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests handled by the worker pool so far (shed connections and
    /// shutdown wake-ups are not requests).
    pub fn requests(&self) -> u64 {
        self.state.requests.get()
    }

    /// Requests answered with an error status or dropped on a transport
    /// error (excluding timeouts, which are counted separately).
    pub fn errors(&self) -> u64 {
        self.state.errors.get()
    }

    /// Connections refused with `503` because the queue was full.
    pub fn shed(&self) -> u64 {
        self.state.shed.get()
    }

    /// Requests cut off by a socket deadline.
    pub fn timeouts(&self) -> u64 {
        self.state.timeouts.get()
    }

    /// Request-handler panics contained by the pool.
    pub fn panics(&self) -> u64 {
        self.state.panics.get()
    }

    /// Per-vehicle panics contained inside fleet campaigns.
    pub fn vehicle_panics(&self) -> u64 {
        self.state.vehicle_panics.get()
    }

    /// Failed `accept(2)` calls.
    pub fn accept_errors(&self) -> u64 {
        self.state.accept_errors.get()
    }

    /// Signals shutdown, wakes the accept loop and joins the serving
    /// thread — which itself drains the worker pool up to the
    /// configured drain deadline. Idempotent.
    pub fn shutdown(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // The accept loop may be parked in `accept`; a throwaway
        // connection wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One worker's handling of one connection: count it, contain panics,
/// map socket deadlines to `408`, observe latency per route, and drain
/// any flight-recorder dump the request froze.
fn serve_job(state: &Arc<ServerState>, job: Job) {
    state.requests.inc();
    state.in_flight.fetch_add(1, Ordering::Relaxed);
    // The correlation scope covers the whole handling, so even the
    // timeout/panic bookkeeping below stamps this request's id into
    // the recorder.
    let _scope = request_scope(job.request_id);
    // A clone of the socket survives the handler consuming (and on
    // panic, dropping) the original — it is the only way to still
    // answer the client after a timeout or a contained panic.
    let peer = job.stream.try_clone().ok();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        handle_connection(state, job.stream, job.request_id)
    }));
    let route = match outcome {
        Ok(Ok((status, route))) => {
            if status >= 400 {
                state.errors.inc();
            }
            route
        }
        Ok(Err(err)) => {
            if matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) {
                state.timeouts.inc();
                state.observe_ops(Event::RequestTimeout {
                    after_ms: job.accepted.elapsed().as_secs_f64() * 1e3,
                });
                if let Some(peer) = peer {
                    let _ = respond_error(peer, 408, "request timed out");
                }
            } else {
                // Client went away mid-stream or transport failed:
                // count it, keep serving.
                state.errors.inc();
            }
            "transport"
        }
        Err(_) => {
            state.panics.inc();
            // Flowing through the recorder freezes it: the dump is
            // drained below, after the latency bookkeeping.
            state.observe_ops(Event::PanicCaught { context: "request" });
            if let Some(peer) = peer {
                let _ = respond_error(peer, 500, "internal panic (contained)");
            }
            "panic"
        }
    };
    let elapsed_s = job.accepted.elapsed().as_secs_f64();
    state.latency_ms.observe(elapsed_s * 1e3);
    state.route_latency(route).observe(elapsed_s);
    state.in_flight.fetch_sub(1, Ordering::Relaxed);
    if let Some(dump) = state.recorder.take_dump() {
        state.note_flight_dump(dump);
    }
}

/// Outcome of reading one head line under the byte budget.
enum HeadRead {
    /// A complete line (newline included) within budget.
    Line,
    /// The peer closed before a newline.
    Eof,
    /// The byte budget ran out mid-line.
    CapExceeded,
}

/// Reads one line of the request head, charging its bytes against
/// `budget` so the whole head is bounded by [`MAX_HEADER_BYTES`].
fn read_head_line(
    reader: &mut BufReader<TcpStream>,
    budget: &mut u64,
    line: &mut String,
) -> io::Result<HeadRead> {
    line.clear();
    let before = *budget;
    let n = (&mut *reader).take(before).read_line(line)? as u64;
    *budget = before.saturating_sub(n);
    if n == 0 {
        return Ok(HeadRead::Eof);
    }
    if !line.ends_with('\n') {
        return Ok(if *budget == 0 {
            HeadRead::CapExceeded
        } else {
            HeadRead::Eof
        });
    }
    Ok(HeadRead::Line)
}

/// Refuses a request before its input was fully consumed: writes the
/// error response, then briefly drains what the client already sent.
/// Closing a socket with unread bytes in its receive buffer makes the
/// kernel answer with RST, which can destroy the in-flight response
/// before the client reads it — so early refusals drain first, bounded
/// in both bytes (64 KiB) and time (a short per-read timeout).
fn refuse(
    reader: &mut BufReader<TcpStream>,
    stream: TcpStream,
    status: u16,
    reason: &str,
) -> io::Result<u16> {
    let status = respond_error(stream, status, reason)?;
    let _ = reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_millis(50)));
    let mut scratch = [0u8; 1024];
    for _ in 0..64 {
        match reader.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    Ok(status)
}

/// The canonical route label of a request — the `route` label value on
/// `otem_request_latency_seconds` and [`Event::RequestStarted`].
/// Unrecognised method/path pairs collapse to `"other"` so hostile
/// path scans cannot mint unbounded label children.
fn route_name(method: &str, path: &str) -> &'static str {
    match (method, path) {
        ("GET", "/healthz") => "/healthz",
        ("GET", "/metrics") => "/metrics",
        ("GET", "/metrics.json") => "/metrics.json",
        ("GET", "/debug/flight") => "/debug/flight",
        ("GET", "/debug/trace") => "/debug/trace",
        ("POST", "/shutdown") => "/shutdown",
        ("POST", "/simulate") => "/simulate",
        ("POST", "/plan") => "/plan",
        _ => "other",
    }
}

/// Reads the request head + body, dispatches the route, writes the
/// response. Returns the HTTP status written and the route label;
/// `Err` means the connection died mid-request (a socket deadline
/// surfaces here as `WouldBlock`/`TimedOut`).
fn handle_connection(
    state: &ServerState,
    stream: TcpStream,
    request_id: u64,
) -> io::Result<(u16, &'static str)> {
    const MALFORMED: &str = "malformed";
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut budget = MAX_HEADER_BYTES;
    let mut line = String::new();
    match read_head_line(&mut reader, &mut budget, &mut line)? {
        HeadRead::Line => {}
        HeadRead::Eof => return Ok((respond_error(stream, 400, "truncated request")?, MALFORMED)),
        HeadRead::CapExceeded => {
            return Ok((
                refuse(&mut reader, stream, 400, "request head exceeds byte cap")?,
                MALFORMED,
            ))
        }
    }
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_owned(), p.to_owned()),
        _ => {
            return Ok((
                refuse(&mut reader, stream, 400, "malformed request line")?,
                MALFORMED,
            ))
        }
    };

    let mut content_length: u64 = 0;
    let mut header_count = 0usize;
    loop {
        match read_head_line(&mut reader, &mut budget, &mut line)? {
            HeadRead::Line => {}
            HeadRead::Eof => {
                return Ok((
                    respond_error(stream, 400, "truncated request head")?,
                    MALFORMED,
                ))
            }
            HeadRead::CapExceeded => {
                return Ok((
                    refuse(&mut reader, stream, 400, "request head exceeds byte cap")?,
                    MALFORMED,
                ))
            }
        }
        let header = line.trim_end();
        if header.is_empty() {
            break;
        }
        header_count += 1;
        if header_count > MAX_HEADER_COUNT {
            return Ok((
                refuse(
                    &mut reader,
                    stream,
                    400,
                    &format!("more than {MAX_HEADER_COUNT} headers"),
                )?,
                MALFORMED,
            ));
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                // A Content-Length that is not a number is a malformed
                // request, not an empty body.
                content_length = match value.trim().parse() {
                    Ok(n) => n,
                    Err(_) => {
                        return Ok((
                            refuse(&mut reader, stream, 400, "malformed Content-Length")?,
                            MALFORMED,
                        ))
                    }
                };
            }
        }
    }
    if content_length > BODY_CAP {
        return Ok((
            refuse(&mut reader, stream, 413, "request body too large")?,
            MALFORMED,
        ));
    }
    let mut body = String::new();
    reader.take(content_length).read_to_string(&mut body)?;

    let (path, query) = match path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (path.as_str(), ""),
    };
    let route = route_name(&method, path);
    // The id's birth announcement: the first correlated event of the
    // request, visible to the ops sink and the flight recorder.
    state.observe_ops(Event::RequestStarted { request_id, route });
    let status = match (method.as_str(), path) {
        ("GET", "/healthz") => respond_line(stream, "{\"status\":\"ok\"}"),
        ("GET", "/metrics") => {
            let body = state.render_prometheus();
            let mut stream = stream;
            write_head_with_type(&mut stream, 200, "OK", PROMETHEUS_CONTENT_TYPE)?;
            stream.write_all(body.as_bytes())?;
            stream.flush()?;
            Ok(200)
        }
        ("GET", "/metrics.json") => respond_line(stream, &metrics_line(state)),
        ("GET", "/debug/flight") => flight_route(state, stream),
        ("GET", "/debug/trace") => trace_route(state, stream, query),
        ("POST", "/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            // Wake the (possibly parked) accept loop so the drain starts
            // now rather than at the next organic connection.
            if let Some(addr) = state.addr.get() {
                let _ = TcpStream::connect(addr);
            }
            respond_line(stream, "{\"event\":\"shutdown\"}")
        }
        ("POST", "/simulate") => match SimulateRequest::parse(&body) {
            Ok(request) => simulate(state, stream, &request, request_id),
            Err(reason) => respond_error(stream, 400, &reason),
        },
        ("POST", "/plan") => match SimulateRequest::parse(&body) {
            Ok(SimulateRequest::Vehicle { spec, .. }) => plan(state, stream, &spec),
            Ok(SimulateRequest::Fleet { .. }) => {
                respond_error(stream, 400, "/plan takes a single-vehicle body")
            }
            Err(reason) => respond_error(stream, 400, &reason),
        },
        _ => respond_error(stream, 404, "no such route"),
    }?;
    Ok((status, route))
}

/// Serves the flight recorder: the frozen dump of the most recent
/// incident when one exists, otherwise a `flight_live` snapshot of the
/// current ring.
fn flight_route(state: &ServerState, mut stream: TcpStream) -> io::Result<u16> {
    let dump = state
        .last_dump
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    write_head(&mut stream, 200, "OK")?;
    match dump {
        Some(dump) => stream.write_all(dump.to_jsonl().as_bytes())?,
        None => {
            let entries = state.recorder.live_entries();
            writeln!(
                stream,
                "{{\"flight_live\":true,\"entries\":{}}}",
                entries.len()
            )?;
            write_entries(&mut stream, &entries)?;
        }
    }
    stream.flush()?;
    Ok(200)
}

/// Arms span sampling (`?sample=N`; `0` disarms) and streams the span
/// events the flight recorder has collected from sampled requests.
fn trace_route(state: &ServerState, mut stream: TcpStream, query: &str) -> io::Result<u16> {
    if let Some(raw) = query.split('&').find_map(|kv| kv.strip_prefix("sample=")) {
        match raw.parse::<u64>() {
            Ok(rate) => state.trace_sample.store(rate, Ordering::Relaxed),
            Err(_) => {
                return respond_error(stream, 400, "\"sample\" must be an integer (0 disables)")
            }
        }
    }
    let rate = state.trace_sample.load(Ordering::Relaxed);
    let spans: Vec<FlightEntry> = state
        .recorder
        .live_entries()
        .into_iter()
        .filter(|e| matches!(e.event, Event::SpanStart { .. } | Event::SpanEnd { .. }))
        .collect();
    write_head(&mut stream, 200, "OK")?;
    writeln!(
        stream,
        "{{\"event\":\"trace\",\"sample\":{rate},\"spans\":{}}}",
        spans.len()
    )?;
    write_entries(&mut stream, &spans)?;
    stream.flush()?;
    Ok(200)
}

/// Writes flight entries as JSONL, one object per line.
fn write_entries(stream: &mut TcpStream, entries: &[FlightEntry]) -> io::Result<()> {
    let mut line = String::with_capacity(192);
    for entry in entries {
        line.clear();
        entry.write_json(&mut line);
        writeln!(stream, "{line}")?;
    }
    Ok(())
}

fn metrics_line(state: &ServerState) -> String {
    format!(
        "{{\"event\":\"metrics\",\"requests\":{},\"errors\":{},\
         \"accept_errors\":{},\"shed\":{},\"timeouts\":{},\"panics\":{},\
         \"vehicle_panics\":{},\"in_flight\":{},\
         \"latency_ms\":{{\"count\":{},\"p50\":{:.3},\"p95\":{:.3},\"p99\":{:.3}}},\
         \"solves\":{}}}",
        state.requests.get(),
        state.errors.get(),
        state.accept_errors.get(),
        state.shed.get(),
        state.timeouts.get(),
        state.panics.get(),
        state.vehicle_panics.get(),
        state.in_flight.load(Ordering::Relaxed),
        state.latency_ms.count(),
        state.latency_ms.quantile(0.50),
        state.latency_ms.quantile(0.95),
        state.latency_ms.quantile(0.99),
        outcomes_json(&state.solves.snapshot()),
    )
}

/// Forwards events to a per-request sink while tallying MPC solve
/// outcomes into the server-lifetime [`OutcomeTally`], the registry's
/// `(mode, outcome)` family, and the flight recorder. `enabled` defers
/// to the inner sink (so streaming telemetry modes keep their derived
/// events) or to span sampling when `/debug/trace` armed it.
struct TallySink<'a> {
    state: &'a ServerState,
    inner: &'a dyn Sink,
}

impl Sink for TallySink<'_> {
    fn record(&self, event: Event) {
        self.state.solves.record(event);
        self.state.observe(event);
        self.inner.record(event);
    }

    fn enabled(&self) -> bool {
        self.inner.enabled() || self.state.trace_sampled(current_request_id())
    }

    fn flush(&self) {
        self.inner.flush();
    }
}

/// The fleet-campaign sink: everything feeds the flight recorder and
/// the solve-outcome registry family, but only serving-layer events
/// (contained vehicle panics) reach the observational sink — fleet
/// campaigns would otherwise stream *per-step* simulation telemetry
/// into it, thousands of events per request that drown the operational
/// signal (and evict it from a bounded
/// [`otem_telemetry::MemorySink`]). `enabled` is `false` (so the
/// simulator skips building step events entirely) unless span sampling
/// selected the current request.
struct OpsSink<'a> {
    state: &'a ServerState,
}

impl Sink for OpsSink<'_> {
    fn record(&self, event: Event) {
        self.state.observe(event);
        if matches!(event, Event::PanicCaught { .. }) {
            self.state.sink.record(event);
        }
    }

    fn enabled(&self) -> bool {
        self.state.trace_sampled(current_request_id())
    }

    fn flush(&self) {
        self.state.sink.flush();
    }
}

/// The `Content-Type` of the Prometheus text exposition format v0.0.4.
const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

fn write_head_with_type(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nConnection: close\r\n\r\n"
    )
}

fn write_head(stream: &mut TcpStream, status: u16, reason: &str) -> io::Result<()> {
    write_head_with_type(stream, status, reason, "application/x-ndjson")
}

fn respond_line(mut stream: TcpStream, line: &str) -> io::Result<u16> {
    write_head(&mut stream, 200, "OK")?;
    writeln!(stream, "{line}")?;
    stream.flush()?;
    Ok(200)
}

fn status_text(status: u16) -> &'static str {
    match status {
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

fn respond_error(mut stream: TcpStream, status: u16, reason: &str) -> io::Result<u16> {
    write_head(&mut stream, status, status_text(status))?;
    writeln!(stream, "{{\"error\":{reason:?}}}")?;
    stream.flush()?;
    Ok(status)
}

/// Upper bound on concurrent [`shed_connection`] threads; past it,
/// connections are dropped without a response (under that much pressure
/// a silent close is the cheapest honest answer).
const MAX_SHEDDERS: u64 = 64;

/// Refuses one connection with the shed response *without blocking the
/// accept thread*. Closing right after the write would race the
/// client's own request bytes — data arriving at a closed socket RSTs
/// the connection, destroying the `503` before the client reads it — so
/// the response must be followed by a short drain, and that drain waits
/// on the network. A capped, short-lived, small-stack thread absorbs
/// the wait; the accept loop never does.
fn shed_connection(state: &Arc<ServerState>, stream: TcpStream) {
    if state.shedders.fetch_add(1, Ordering::Relaxed) >= MAX_SHEDDERS {
        state.shedders.fetch_sub(1, Ordering::Relaxed);
        return; // dropped: hard close
    }
    let shared = Arc::clone(state);
    let spawned = std::thread::Builder::new()
        .name("fleet-shed".to_owned())
        .stack_size(64 * 1024)
        .spawn(move || {
            let _ = respond_shed(stream);
            shared.shedders.fetch_sub(1, Ordering::Relaxed);
        });
    if spawned.is_err() {
        // The closure (and the stream with it) was dropped unrun.
        state.shedders.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The load-shed response: `503` + `retry_after_ms` hint, then a brief
/// bounded drain of the client's request so the close sends FIN, not
/// RST (see [`shed_connection`]).
fn respond_shed(mut stream: TcpStream) -> io::Result<()> {
    write_head(&mut stream, 503, status_text(503))?;
    writeln!(
        stream,
        "{{\"error\":\"overloaded\",\"retry_after_ms\":{RETRY_AFTER_MS}}}"
    )?;
    stream.flush()?;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut scratch = [0u8; 1024];
    for _ in 0..8 {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    Ok(())
}

fn respond_otem_error(stream: TcpStream, err: &OtemError) -> io::Result<u16> {
    respond_error(stream, 500, &err.to_string())
}

fn simulate(
    state: &ServerState,
    stream: TcpStream,
    request: &SimulateRequest,
    request_id: u64,
) -> io::Result<u16> {
    match request {
        SimulateRequest::Fleet {
            vehicles,
            seed,
            mpc_deadline_us,
            poison_id,
            ..
        } => {
            if *vehicles > state.config.max_vehicles {
                let cap = state.config.max_vehicles;
                return respond_error(stream, 400, &format!("\"vehicles\" capped at {cap}"));
            }
            let schedule = request.schedule(state.config.shards);
            let engine = FleetEngine::with_cache(schedule, Arc::clone(&state.cache))
                .with_batch_lanes(state.config.batch_lanes);
            let mut campaign = Campaign::synthetic(*vehicles, *seed);
            if *mpc_deadline_us > 0 {
                // A request-level deadline caps every solve in the
                // campaign; the anytime solver keeps each vehicle
                // feasible, so this degrades plan quality rather than
                // dropping vehicles.
                for spec in &mut campaign.vehicles {
                    spec.mpc_deadline_us = *mpc_deadline_us;
                }
            }
            if let Some(id) = poison_id {
                // Chaos hook, validated in range by the parser: this
                // vehicle's controller panics at its second step.
                campaign.vehicles[*id as usize].poison_step = Some(1);
            }
            let ops = OpsSink { state };
            let report = engine.run_with_request(&campaign, &ops, request_id);
            state.solves.add(report.solve_outcomes);
            state.vehicle_panics.add(report.vehicle_panics());
            let mut stream = stream;
            write_head(&mut stream, 200, "OK")?;
            // Interleave summaries and failures in id order: both lists
            // are id-sorted, so this is a linear merge and the client
            // sees exactly one line per requested vehicle.
            let mut failures = report.failures.iter().peekable();
            for s in &report.summaries {
                while let Some(f) = failures.peek() {
                    if f.id < s.id {
                        writeln!(stream, "{}", failure_line(f))?;
                        failures.next();
                    } else {
                        break;
                    }
                }
                writeln!(stream, "{}", summary_line(s))?;
            }
            for f in failures {
                writeln!(stream, "{}", failure_line(f))?;
            }
            writeln!(
                stream,
                "{{\"event\":\"fleet\",\"vehicles\":{},\"seed\":{},\
                 \"schedule\":\"{}\",\"total_steps\":{},\"wall_s\":{:.6},\
                 \"vehicles_per_sec\":{:.3},\"steps_per_sec\":{:.1},\
                 \"failures\":{},\"vehicle_panics\":{},\
                 \"latency_ms\":{{\"p50\":{:.3},\"p95\":{:.3},\"p99\":{:.3}}},\
                 \"solves\":{},\"fleet_checksum\":\"{:016x}\"}}",
                report.summaries.len(),
                seed,
                schedule.wire_name(),
                report.total_steps,
                report.wall_s,
                report.vehicles_per_sec(),
                report.steps_per_sec(),
                report.failures.len(),
                report.vehicle_panics(),
                report.latency_ms.quantile(0.50),
                report.latency_ms.quantile(0.95),
                report.latency_ms.quantile(0.99),
                outcomes_json(&report.solve_outcomes),
                report.fleet_checksum(),
            )?;
            stream.flush()?;
            Ok(200)
        }
        SimulateRequest::Vehicle { spec, telemetry } => {
            simulate_vehicle(state, stream, spec, *telemetry)
        }
    }
}

/// Runs one vehicle, optionally streaming its per-step telemetry
/// through the existing sink stack straight onto the socket, then
/// writes the summary line.
fn simulate_vehicle(
    state: &ServerState,
    mut stream: TcpStream,
    spec: &VehicleSpec,
    telemetry: Telemetry,
) -> io::Result<u16> {
    let config = spec.config();
    let trace = match state.cache.trace_for(spec) {
        Ok(t) => t,
        Err(err) => return respond_otem_error(stream, &err),
    };
    let mut controller = match spec.controller(&config) {
        Ok(c) => c,
        Err(err) => return respond_otem_error(stream, &err),
    };
    let sim = Simulator::new(&config);
    let mut builder = SummaryBuilder::new(config.dt);
    write_head(&mut stream, 200, "OK")?;

    let mut run = |sink: &dyn Sink, builder: &mut SummaryBuilder| {
        let tallied = TallySink { state, inner: sink };
        sim.run_each(controller.as_mut(), &trace, &tallied, |_, r| {
            builder.push(r)
        })
    };
    let totals = match telemetry {
        Telemetry::None => run(&NullSink, &mut builder),
        Telemetry::Jsonl => {
            let sink = JsonlSink::new(stream.try_clone()?);
            let totals = run(&sink, &mut builder);
            state.jsonl_dropped.add(sink.dropped_records());
            sink.into_inner().flush()?;
            totals
        }
        Telemetry::Chrome => {
            let sink = ChromeTraceSink::new(stream.try_clone()?);
            let totals = run(&sink, &mut builder);
            let mut w = sink.finish();
            // Chrome traces are a JSON array; terminate the line so the
            // summary below stays one-object-per-line.
            writeln!(w)?;
            totals
        }
    };
    writeln!(stream, "{}", summary_line(&builder.finish(spec.id, totals)))?;
    stream.flush()?;
    Ok(200)
}

/// The clairvoyant DP benchmark as a service: one line per step with the
/// planned ultracapacitor bus power, then the plan total.
fn plan(state: &ServerState, stream: TcpStream, spec: &VehicleSpec) -> io::Result<u16> {
    if spec.steps > PLAN_STEP_CAP {
        return respond_error(
            stream,
            400,
            &format!("/plan \"steps\" capped at {PLAN_STEP_CAP} (DP cost is per-step)"),
        );
    }
    let config = spec.config();
    let trace = match state.cache.trace_for(spec) {
        Ok(t) => t,
        Err(err) => return respond_otem_error(stream, &err),
    };
    match plan_split(&config, &trace, &PlannerConfig::default()) {
        Ok(p) => {
            let mut stream = stream;
            write_head(&mut stream, 200, "OK")?;
            for (t, cap_bus) in p.cap_bus.iter().enumerate() {
                writeln!(
                    stream,
                    "{{\"event\":\"plan_step\",\"t\":{t},\"cap_bus_w\":{:.3}}}",
                    cap_bus.value()
                )?;
            }
            writeln!(
                stream,
                "{{\"event\":\"plan\",\"steps\":{},\"energy_j\":{:.6}}}",
                p.cap_bus.len(),
                p.energy.value()
            )?;
            stream.flush()?;
            Ok(200)
        }
        Err(err) => respond_otem_error(stream, &err),
    }
}
