//! The serving layer: hand-rolled HTTP/1.1 + JSONL over
//! [`std::net::TcpListener`].
//!
//! The vendored-deps constraint rules out an async runtime, so the
//! server is a plain blocking accept loop on one thread; parallelism
//! lives *inside* a request (the fleet engine's sharded worker pools),
//! not across requests. That keeps request handling deterministic and
//! makes shutdown trivial: a flag checked between connections plus a
//! self-connect to wake the blocking `accept`.
//!
//! # Routes
//!
//! | route | body | response |
//! |-------|------|----------|
//! | `GET /healthz` | — | one status line |
//! | `GET /metrics` | — | request counters + latency quantiles |
//! | `POST /simulate` | [`SimulateRequest`] JSON | JSONL summaries (fleet) or telemetry stream + summary (vehicle) |
//! | `POST /plan` | single-vehicle JSON | clairvoyant DP split, one line per step |
//! | `POST /shutdown` | — | ack line, then the server exits |
//!
//! Responses are `application/x-ndjson`, close-delimited
//! (`Connection: close`), so clients just read lines until EOF.

use crate::campaign::{Campaign, SummaryBuilder, TraceCache, VehicleSpec};
use crate::engine::{latency_histogram_ms, FleetEngine, OutcomeTally};
use crate::protocol::{outcomes_json, summary_line, SimulateRequest, Telemetry};
use otem::planner::{plan_split, PlannerConfig};
use otem::{OtemError, Simulator};
use otem_telemetry::{ChromeTraceSink, Counter, Event, Histogram, JsonlSink, NullSink, Sink};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Upper bound on `/plan` route length: the clairvoyant DP is
/// `O(steps × soe_levels × actions)` plant evaluations, so unbounded
/// requests could pin the serving thread for minutes.
const PLAN_STEP_CAP: usize = 2_000;

/// Largest accepted request body (requests are small JSON objects; a
/// huge Content-Length is a malformed or hostile client).
const BODY_CAP: u64 = 1 << 20;

/// Server tuning.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (the tests' loopback mode).
    pub addr: String,
    /// Default shard width for fleet requests that don't pin one.
    pub shards: usize,
    /// Per-request campaign size cap.
    pub max_vehicles: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            shards: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            max_vehicles: 100_000,
        }
    }
}

/// Shared mutable server state (metrics + shutdown flag).
#[derive(Debug)]
struct ServerState {
    config: ServerConfig,
    cache: Arc<TraceCache>,
    requests: Counter,
    errors: Counter,
    latency_ms: Histogram,
    /// MPC solve outcomes across every request served so far (fleet and
    /// single-vehicle alike) — exported on `/metrics`.
    solves: OutcomeTally,
    shutdown: AtomicBool,
}

/// The fleet serving layer. Construct with a [`ServerConfig`], then
/// either [`FleetServer::spawn`] a background handle (tests, embedding)
/// or [`FleetServer::run`] the accept loop on the current thread (the
/// `fleet_server` binary).
#[derive(Debug)]
pub struct FleetServer {
    state: Arc<ServerState>,
}

impl FleetServer {
    /// A server with the given tuning.
    pub fn new(config: ServerConfig) -> Self {
        Self {
            state: Arc::new(ServerState {
                config,
                cache: Arc::new(TraceCache::new()),
                requests: Counter::new(),
                errors: Counter::new(),
                latency_ms: latency_histogram_ms(),
                solves: OutcomeTally::new(),
                shutdown: AtomicBool::new(false),
            }),
        }
    }

    /// Binds the listener and runs the accept loop on the current
    /// thread until a shutdown request arrives. `on_bind` receives the
    /// bound address (port 0 resolves here).
    ///
    /// # Errors
    ///
    /// Returns the bind error; per-connection I/O errors are counted
    /// and survived.
    pub fn run(self, on_bind: impl FnOnce(SocketAddr)) -> io::Result<()> {
        let listener = TcpListener::bind(&self.state.config.addr)?;
        on_bind(listener.local_addr()?);
        self.accept_loop(&listener);
        Ok(())
    }

    /// Binds the listener and serves from a background thread, returning
    /// a handle that resolves the bound address and can shut the server
    /// down.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&self.state.config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::clone(&self.state);
        let thread = std::thread::spawn(move || self.accept_loop(&listener));
        Ok(ServerHandle {
            addr,
            state,
            thread: Some(thread),
        })
    }

    fn accept_loop(&self, listener: &TcpListener) {
        for conn in listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else {
                self.state.errors.inc();
                continue;
            };
            let started = Instant::now();
            self.state.requests.inc();
            if let Err(err) = handle_connection(&self.state, stream) {
                // Client went away mid-stream or sent garbage: count it,
                // keep serving.
                self.state.errors.inc();
                let _ = err;
            }
            self.state
                .latency_ms
                .observe(started.elapsed().as_secs_f64() * 1e3);
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
        }
    }
}

/// Handle to a [spawned](FleetServer::spawn) server.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (port 0 in the config resolves to a real port
    /// here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far.
    pub fn requests(&self) -> u64 {
        self.state.requests.get()
    }

    /// Signals shutdown, wakes the accept loop and joins the serving
    /// thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // The accept loop may be parked in `accept`; a throwaway
        // connection wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reads the request head + body, dispatches the route, writes the
/// response. Any error here aborts only this connection.
fn handle_connection(state: &ServerState, stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_owned(), p.to_owned()),
        _ => return respond_error(stream, 400, "malformed request line"),
    };

    let mut content_length: u64 = 0;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    if content_length > BODY_CAP {
        return respond_error(stream, 413, "request body too large");
    }
    let mut body = String::new();
    reader.take(content_length).read_to_string(&mut body)?;

    match (method.as_str(), path.as_str()) {
        ("GET", "/healthz") => respond_line(stream, "{\"status\":\"ok\"}"),
        ("GET", "/metrics") => respond_line(stream, &metrics_line(state)),
        ("POST", "/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            respond_line(stream, "{\"event\":\"shutdown\"}")
        }
        ("POST", "/simulate") => match SimulateRequest::parse(&body) {
            Ok(request) => simulate(state, stream, &request),
            Err(reason) => respond_error(stream, 400, &reason),
        },
        ("POST", "/plan") => match SimulateRequest::parse(&body) {
            Ok(SimulateRequest::Vehicle { spec, .. }) => plan(state, stream, &spec),
            Ok(SimulateRequest::Fleet { .. }) => {
                respond_error(stream, 400, "/plan takes a single-vehicle body")
            }
            Err(reason) => respond_error(stream, 400, &reason),
        },
        _ => respond_error(stream, 404, "no such route"),
    }
}

fn metrics_line(state: &ServerState) -> String {
    format!(
        "{{\"event\":\"metrics\",\"requests\":{},\"errors\":{},\
         \"latency_ms\":{{\"count\":{},\"p50\":{:.3},\"p95\":{:.3},\"p99\":{:.3}}},\
         \"solves\":{}}}",
        state.requests.get(),
        state.errors.get(),
        state.latency_ms.count(),
        state.latency_ms.quantile(0.50),
        state.latency_ms.quantile(0.95),
        state.latency_ms.quantile(0.99),
        outcomes_json(&state.solves.snapshot()),
    )
}

/// Forwards events to a per-request sink while tallying MPC solve
/// outcomes into the server-lifetime [`OutcomeTally`]. `enabled` defers
/// to the inner sink so streaming telemetry modes keep their derived
/// events.
struct TallySink<'a> {
    tally: &'a OutcomeTally,
    inner: &'a dyn Sink,
}

impl Sink for TallySink<'_> {
    fn record(&self, event: Event) {
        self.tally.record(event);
        self.inner.record(event);
    }

    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn flush(&self) {
        self.inner.flush();
    }
}

fn write_head(stream: &mut TcpStream, status: u16, reason: &str) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"
    )
}

fn respond_line(mut stream: TcpStream, line: &str) -> io::Result<()> {
    write_head(&mut stream, 200, "OK")?;
    writeln!(stream, "{line}")?;
    stream.flush()
}

fn respond_error(mut stream: TcpStream, status: u16, reason: &str) -> io::Result<()> {
    let text = match status {
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        _ => "Internal Server Error",
    };
    write_head(&mut stream, status, text)?;
    writeln!(stream, "{{\"error\":{:?}}}", reason)?;
    stream.flush()
}

fn respond_otem_error(stream: TcpStream, err: &OtemError) -> io::Result<()> {
    respond_error(stream, 500, &err.to_string())
}

fn simulate(state: &ServerState, stream: TcpStream, request: &SimulateRequest) -> io::Result<()> {
    match request {
        SimulateRequest::Fleet {
            vehicles,
            seed,
            mpc_deadline_us,
            ..
        } => {
            if *vehicles > state.config.max_vehicles {
                let cap = state.config.max_vehicles;
                return respond_error(stream, 400, &format!("\"vehicles\" capped at {cap}"));
            }
            let schedule = request.schedule(state.config.shards);
            let engine = FleetEngine::with_cache(schedule, Arc::clone(&state.cache));
            let mut campaign = Campaign::synthetic(*vehicles, *seed);
            if *mpc_deadline_us > 0 {
                // A request-level deadline caps every solve in the
                // campaign; the anytime solver keeps each vehicle
                // feasible, so this degrades plan quality rather than
                // dropping vehicles.
                for spec in &mut campaign.vehicles {
                    spec.mpc_deadline_us = *mpc_deadline_us;
                }
            }
            match engine.run(&campaign) {
                Ok(report) => {
                    state.solves.add(report.solve_outcomes);
                    let mut stream = stream;
                    write_head(&mut stream, 200, "OK")?;
                    for s in &report.summaries {
                        writeln!(stream, "{}", summary_line(s))?;
                    }
                    writeln!(
                        stream,
                        "{{\"event\":\"fleet\",\"vehicles\":{},\"seed\":{},\
                         \"schedule\":\"{}\",\"total_steps\":{},\"wall_s\":{:.6},\
                         \"vehicles_per_sec\":{:.3},\"steps_per_sec\":{:.1},\
                         \"latency_ms\":{{\"p50\":{:.3},\"p95\":{:.3},\"p99\":{:.3}}},\
                         \"solves\":{},\"fleet_checksum\":\"{:016x}\"}}",
                        report.summaries.len(),
                        seed,
                        schedule.wire_name(),
                        report.total_steps,
                        report.wall_s,
                        report.vehicles_per_sec(),
                        report.steps_per_sec(),
                        report.latency_ms.quantile(0.50),
                        report.latency_ms.quantile(0.95),
                        report.latency_ms.quantile(0.99),
                        outcomes_json(&report.solve_outcomes),
                        report.fleet_checksum(),
                    )?;
                    stream.flush()
                }
                Err(err) => respond_otem_error(stream, &err),
            }
        }
        SimulateRequest::Vehicle { spec, telemetry } => {
            simulate_vehicle(state, stream, spec, *telemetry)
        }
    }
}

/// Runs one vehicle, optionally streaming its per-step telemetry
/// through the existing sink stack straight onto the socket, then
/// writes the summary line.
fn simulate_vehicle(
    state: &ServerState,
    mut stream: TcpStream,
    spec: &VehicleSpec,
    telemetry: Telemetry,
) -> io::Result<()> {
    let config = spec.config();
    let trace = match state.cache.trace_for(spec) {
        Ok(t) => t,
        Err(err) => return respond_otem_error(stream, &err),
    };
    let mut controller = match spec.controller(&config) {
        Ok(c) => c,
        Err(err) => return respond_otem_error(stream, &err),
    };
    let sim = Simulator::new(&config);
    let mut builder = SummaryBuilder::new(config.dt);
    write_head(&mut stream, 200, "OK")?;

    let mut run = |sink: &dyn Sink, builder: &mut SummaryBuilder| {
        let tallied = TallySink {
            tally: &state.solves,
            inner: sink,
        };
        sim.run_each(controller.as_mut(), &trace, &tallied, |_, r| {
            builder.push(r)
        })
    };
    let totals = match telemetry {
        Telemetry::None => run(&NullSink, &mut builder),
        Telemetry::Jsonl => {
            let sink = JsonlSink::new(stream.try_clone()?);
            let totals = run(&sink, &mut builder);
            sink.into_inner().flush()?;
            totals
        }
        Telemetry::Chrome => {
            let sink = ChromeTraceSink::new(stream.try_clone()?);
            let totals = run(&sink, &mut builder);
            let mut w = sink.finish();
            // Chrome traces are a JSON array; terminate the line so the
            // summary below stays one-object-per-line.
            writeln!(w)?;
            totals
        }
    };
    writeln!(stream, "{}", summary_line(&builder.finish(spec.id, totals)))?;
    stream.flush()
}

/// The clairvoyant DP benchmark as a service: one line per step with the
/// planned ultracapacitor bus power, then the plan total.
fn plan(state: &ServerState, stream: TcpStream, spec: &VehicleSpec) -> io::Result<()> {
    if spec.steps > PLAN_STEP_CAP {
        return respond_error(
            stream,
            400,
            &format!("/plan \"steps\" capped at {PLAN_STEP_CAP} (DP cost is per-step)"),
        );
    }
    let config = spec.config();
    let trace = match state.cache.trace_for(spec) {
        Ok(t) => t,
        Err(err) => return respond_otem_error(stream, &err),
    };
    match plan_split(&config, &trace, &PlannerConfig::default()) {
        Ok(p) => {
            let mut stream = stream;
            write_head(&mut stream, 200, "OK")?;
            for (t, cap_bus) in p.cap_bus.iter().enumerate() {
                writeln!(
                    stream,
                    "{{\"event\":\"plan_step\",\"t\":{t},\"cap_bus_w\":{:.3}}}",
                    cap_bus.value()
                )?;
            }
            writeln!(
                stream,
                "{{\"event\":\"plan\",\"steps\":{},\"energy_j\":{:.6}}}",
                p.cap_bus.len(),
                p.energy.value()
            )?;
            stream.flush()
        }
        Err(err) => respond_otem_error(stream, &err),
    }
}
