//! Fleet-level deadline determinism: a campaign of deadline-constrained
//! OTEM vehicles, solved against per-vehicle virtual clocks, produces
//! bit-identical summaries and solve-outcome counts for every schedule
//! and shard count — the anytime path is as reproducible as the nominal
//! one.
//!
//! The clock factory hands each vehicle a *fresh*
//! [`VirtualClock`], so a vehicle's sequence of clock reads depends only
//! on its own solve history, never on how worker threads interleave.

use otem::mpc::{Clock, VirtualClock};
use otem_fleet::{Campaign, FleetEngine, Methodology, Schedule, VehicleSpec};
use std::sync::Arc;

/// Per-solve budget (µs) tight enough that the virtual clock below
/// trips it after a couple of iterations.
const DEADLINE_US: u64 = 100;

/// Every clock read advances 40 µs of virtual time, so a 100 µs
/// deadline admits roughly two solver iterations before tripping —
/// deep enough to leave the warm start, shallow enough that every
/// vehicle records deadline outcomes.
fn vclock(_spec: &VehicleSpec) -> Arc<dyn Clock> {
    Arc::new(VirtualClock::with_tick(40_000))
}

/// A small all-OTEM campaign with a per-solve deadline on every vehicle.
fn deadline_campaign() -> Campaign {
    let mut campaign = Campaign::synthetic(6, 3);
    for spec in &mut campaign.vehicles {
        spec.methodology = Methodology::Otem;
        spec.mpc_deadline_us = DEADLINE_US;
    }
    campaign
}

#[test]
fn deadline_runs_are_bit_identical_across_schedules() {
    let campaign = deadline_campaign();
    let reference = FleetEngine::new(Schedule::Serial)
        .with_clock_factory(vclock)
        .run(&campaign);
    assert!(
        reference.solve_outcomes.deadline_reached > 0,
        "virtual clock never tripped the deadline: {:?}",
        reference.solve_outcomes
    );

    for schedule in [
        Schedule::Serial,
        Schedule::Static { shards: 4 },
        Schedule::WorkStealing { shards: 4 },
        Schedule::WorkStealing { shards: 16 },
    ] {
        let report = FleetEngine::new(schedule)
            .with_clock_factory(vclock)
            .run(&campaign);
        assert_eq!(
            report.summaries, reference.summaries,
            "summaries diverged under {schedule:?}"
        );
        assert_eq!(
            report.fleet_checksum(),
            reference.fleet_checksum(),
            "record streams diverged under {schedule:?}"
        );
        // Counter addition commutes, so the outcome distribution is
        // schedule-independent too.
        assert_eq!(
            report.solve_outcomes, reference.solve_outcomes,
            "solve outcomes diverged under {schedule:?}"
        );
    }
}

#[test]
fn deadline_outcomes_count_every_solve() {
    let campaign = deadline_campaign();
    let report = FleetEngine::new(Schedule::WorkStealing { shards: 3 })
        .with_clock_factory(vclock)
        .run(&campaign);
    // One MPC solve per control period per OTEM vehicle: the tally must
    // account for every step of every vehicle.
    assert_eq!(report.solve_outcomes.total(), report.total_steps);
    // And with the virtual clock ticking 40 µs per read against a
    // 100 µs budget, deadline misses dominate.
    assert!(report.solve_outcomes.deadline_reached > 0);
}

#[test]
fn undeadlined_campaign_is_unchanged_by_the_tally() {
    // The outcome tally rides along on the nominal path too; it must
    // not perturb the simulation. Compare against the plain engine.
    let campaign = Campaign::synthetic(6, 1);
    let plain = FleetEngine::new(Schedule::Serial).run(&campaign);
    assert_eq!(plain.solve_outcomes.deadline_reached, 0);
    assert!(
        campaign
            .vehicles
            .iter()
            .any(|v| v.methodology == Methodology::Otem),
        "campaign must exercise the MPC path"
    );
    let otem_steps: u64 = campaign
        .vehicles
        .iter()
        .filter(|v| v.methodology == Methodology::Otem)
        .map(|v| v.steps as u64)
        .sum();
    assert_eq!(plain.solve_outcomes.total(), otem_steps);
}
