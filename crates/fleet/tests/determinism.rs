//! The fleet determinism pin: every schedule and shard count produces
//! summaries bit-identical to the single-vehicle [`otem::Simulator`]
//! reference path.
//!
//! `VehicleSummary::checksum` is an FNV-1a fold over the bit patterns of
//! every field of every step record, so summary equality here certifies
//! that the batched engine's record *streams* — not merely their
//! aggregates — match the reference run exactly.

use otem::Simulator;
use otem_fleet::{
    Campaign, FleetEngine, Methodology, Schedule, SummaryBuilder, TraceCache, VehicleSummary,
};

/// Seed 1's 24-vehicle campaign includes an OTEM (MPC) vehicle, so the
/// pin covers the iterative solver path, not just the reactive
/// baselines.
const SEED: u64 = 1;
const VEHICLES: usize = 24;

/// Runs each vehicle through the plain single-vehicle API — retained
/// records, no fleet machinery — and summarises the result.
fn reference_summaries(campaign: &Campaign) -> Vec<VehicleSummary> {
    let cache = TraceCache::new();
    campaign
        .vehicles
        .iter()
        .map(|spec| {
            let config = spec.config();
            let trace = cache.trace_for(spec).expect("trace");
            let mut controller = spec.controller(&config).expect("controller");
            let result = Simulator::new(&config).run(controller.as_mut(), &trace);
            SummaryBuilder::from_result(spec.id, &result)
        })
        .collect()
}

#[test]
fn every_schedule_matches_the_single_vehicle_reference() {
    let campaign = Campaign::synthetic(VEHICLES, SEED);
    assert!(
        campaign
            .vehicles
            .iter()
            .any(|v| v.methodology == Methodology::Otem),
        "campaign must exercise the MPC path"
    );
    let reference = reference_summaries(&campaign);

    let mut schedules = vec![Schedule::Serial];
    for shards in [1usize, 4, 16] {
        schedules.push(Schedule::Static { shards });
        schedules.push(Schedule::WorkStealing { shards });
    }
    for schedule in schedules {
        let report = FleetEngine::new(schedule).run(&campaign);
        assert!(report.failures.is_empty(), "healthy campaign");
        assert_eq!(report.summaries.len(), reference.len());
        for (got, want) in report.summaries.iter().zip(&reference) {
            assert_eq!(got, want, "vehicle {} diverged under {schedule:?}", want.id);
            assert_eq!(
                got.checksum, want.checksum,
                "record stream of vehicle {} diverged under {schedule:?}",
                want.id
            );
        }
    }
}

#[test]
fn a_smaller_campaign_is_a_bitwise_prefix_of_a_larger_one() {
    // Specs depend only on (id, seed), so the 6-vehicle campaign's
    // summaries must be byte-for-byte the first 6 of the 24-vehicle
    // campaign — the property that lets operators scale a fleet up
    // without invalidating earlier vehicles' results.
    let small =
        FleetEngine::new(Schedule::WorkStealing { shards: 4 }).run(&Campaign::synthetic(6, SEED));
    let large =
        FleetEngine::new(Schedule::Static { shards: 3 }).run(&Campaign::synthetic(VEHICLES, SEED));
    assert_eq!(small.summaries[..], large.summaries[..6]);
}
