//! Loopback round-trips against a spawned [`FleetServer`]: raw
//! `TcpStream` HTTP/1.1 requests, close-delimited `x-ndjson` responses,
//! clean shutdown.

use otem_fleet::{Campaign, FleetEngine, FleetServer, Schedule, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;

/// One HTTP exchange: returns (status line, body lines).
fn roundtrip(handle: &ServerHandle, method: &str, path: &str, body: &str) -> (String, Vec<String>) {
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: loopback\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("request written");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response read");
    let (head, payload) = response.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().expect("status line").to_owned();
    let lines = payload.lines().map(str::to_owned).collect();
    (status, lines)
}

fn spawn_server() -> ServerHandle {
    FleetServer::new(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards: 2,
        max_vehicles: 100,
        ..ServerConfig::default()
    })
    .spawn()
    .expect("bind loopback")
}

#[test]
fn serves_health_fleet_vehicle_plan_metrics_and_shuts_down() {
    let mut handle = spawn_server();

    let (status, lines) = roundtrip(&handle, "GET", "/healthz", "");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(lines, ["{\"status\":\"ok\"}"]);

    // Fleet simulate: one summary line per vehicle plus the fleet
    // trailer, and the trailer's checksum matches an in-process run of
    // the same campaign.
    let (status, lines) = roundtrip(
        &handle,
        "POST",
        "/simulate",
        "{\"vehicles\":8,\"seed\":42,\"shards\":2,\"schedule\":\"steal\"}",
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(lines.len(), 9, "8 vehicles + fleet trailer: {lines:?}");
    for (i, line) in lines[..8].iter().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"event\":\"vehicle\",\"id\":{i},")),
            "line {i} malformed: {line}"
        );
    }
    let trailer = &lines[8];
    assert!(
        trailer.starts_with("{\"event\":\"fleet\","),
        "trailer: {trailer}"
    );
    assert!(
        trailer.contains("\"solves\":{\"converged\":"),
        "solve-outcome distribution present: {trailer}"
    );
    let local = FleetEngine::new(Schedule::Serial).run(&Campaign::synthetic(8, 42));
    let expected = format!("\"fleet_checksum\":\"{:016x}\"", local.fleet_checksum());
    assert!(
        trailer.contains(&expected),
        "served checksum diverges from the in-process engine: {trailer}"
    );

    // Single vehicle with JSONL telemetry: per-step events stream ahead
    // of the final summary line.
    let (status, lines) = roundtrip(
        &handle,
        "POST",
        "/simulate",
        "{\"cycle\":\"nycc\",\"methodology\":\"dual\",\"steps\":40,\"telemetry\":\"jsonl\"}",
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    let steps = lines
        .iter()
        .filter(|l| l.starts_with("{\"event\":\"step_completed\""))
        .count();
    assert_eq!(steps, 40, "one step event per control period: {lines:?}");
    assert!(
        lines
            .last()
            .expect("non-empty")
            .starts_with("{\"event\":\"vehicle\","),
        "summary line terminates the stream"
    );

    // Clairvoyant plan: one line per step plus the plan trailer.
    let (status, lines) = roundtrip(
        &handle,
        "POST",
        "/plan",
        "{\"cycle\":\"nycc\",\"steps\":25}",
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(lines.len(), 26, "25 plan steps + trailer: {lines:?}");
    assert!(lines[0].starts_with("{\"event\":\"plan_step\",\"t\":0,"));
    assert!(lines[25].starts_with("{\"event\":\"plan\",\"steps\":25,"));

    // Bad requests are 400s, unknown routes 404s — and neither kills
    // the server.
    let (status, _) = roundtrip(&handle, "POST", "/simulate", "{\"vehicles\":0}");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    let (status, _) = roundtrip(&handle, "POST", "/simulate", "{\"vehicles\":101}");
    assert_eq!(
        status, "HTTP/1.1 400 Bad Request",
        "max_vehicles cap enforced"
    );
    let (status, _) = roundtrip(&handle, "GET", "/nope", "");
    assert_eq!(status, "HTTP/1.1 404 Not Found");

    // A deadline-capped OTEM vehicle: every solve is anytime (a 1 µs
    // budget expires almost immediately on the monotonic clock), yet
    // the vehicle still completes with a summary — and the outcomes
    // land in the server-lifetime tally asserted on /metrics below.
    let (status, lines) = roundtrip(
        &handle,
        "POST",
        "/simulate",
        "{\"methodology\":\"otem\",\"steps\":12,\"mpc_deadline_us\":1}",
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(
        lines
            .last()
            .expect("non-empty")
            .starts_with("{\"event\":\"vehicle\","),
        "deadline-capped vehicle still summarises: {lines:?}"
    );

    // The legacy JSON blob moved to /metrics.json and still reflects
    // the traffic above.
    let (status, lines) = roundtrip(&handle, "GET", "/metrics.json", "");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let metrics = &lines[0];
    assert!(metrics.starts_with("{\"event\":\"metrics\","), "{metrics}");
    assert!(
        metrics.contains("\"p50\":"),
        "latency quantiles present: {metrics}"
    );
    let deadline_reached: u64 = metrics
        .split("\"deadline_reached\":")
        .nth(1)
        .and_then(|rest| {
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        })
        .expect("solves tally present in metrics");
    assert!(
        deadline_reached > 0,
        "1 µs deadline never tripped: {metrics}"
    );
    assert!(handle.requests() >= 8);

    // /metrics now serves the Prometheus text exposition: it parses
    // and validates (every family typed, buckets cumulative), and
    // covers the serving-layer counters, the per-mode solve outcomes
    // and the per-route latency histograms.
    let (status, lines) = roundtrip(&handle, "GET", "/metrics", "");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let text = lines.join("\n") + "\n";
    let parsed = otem_telemetry::promparse::validate_exposition(&text)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{text}"));
    let requests = parsed
        .sample("otem_requests_total", &[])
        .expect("otem_requests_total exported")
        .value;
    assert!(requests >= 8.0, "request counter covers the traffic above");
    assert!(
        parsed
            .families
            .get("otem_solve_outcome_total")
            .is_some_and(|f| f.samples.iter().any(
                |s| s.label("mode").is_some() && s.label("outcome") == Some("deadline_reached")
            )),
        "solve outcomes broken out by gradient mode: {text}"
    );
    assert!(
        parsed
            .families
            .get("otem_request_latency_seconds")
            .is_some_and(|f| f
                .samples
                .iter()
                .any(|s| s.name.ends_with("_bucket") && s.label("route") == Some("/simulate"))),
        "per-route latency histogram present: {text}"
    );
    assert!(
        parsed.sample("otem_build_info", &[]).is_none(),
        "build info carries version/profile labels, not a bare sample"
    );
    assert!(
        parsed.families.get("otem_build_info").is_some_and(|f| f
            .samples
            .iter()
            .any(|s| s.value == 1.0
                && s.label("version").is_some()
                && s.label("profile").is_some())),
        "otem_build_info{{version,profile}} == 1: {text}"
    );
    assert!(
        parsed
            .sample("otem_uptime_seconds", &[])
            .is_some_and(|s| s.value >= 0.0),
        "uptime gauge present"
    );
    assert!(
        parsed
            .sample("otem_trace_cache_misses_total", &[])
            .is_some_and(|s| s.value >= 1.0),
        "trace-cache misses surfaced in the registry"
    );

    // The flight recorder has seen no incident: /debug/flight serves
    // the live ring.
    let (status, lines) = roundtrip(&handle, "GET", "/debug/flight", "");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(
        lines[0].starts_with("{\"flight_live\":true,"),
        "no frozen dump on a healthy server: {}",
        lines[0]
    );

    // Span sampling: arm 1-in-1 sampling, run a request, and the next
    // /debug/trace call streams its spans, stamped with a request id.
    let (status, lines) = roundtrip(&handle, "GET", "/debug/trace?sample=1", "");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(
        lines[0].starts_with("{\"event\":\"trace\",\"sample\":1,"),
        "sampling armed: {}",
        lines[0]
    );
    let (status, _) = roundtrip(&handle, "POST", "/simulate", "{\"steps\":5}");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let (status, lines) = roundtrip(&handle, "GET", "/debug/trace?sample=0", "");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(
        lines
            .iter()
            .skip(1)
            .any(|l| l.contains("\"event\":{\"event\":\"span_start\"")
                && !l.contains("\"request_id\":0,")),
        "sampled spans carry their originating request id: {lines:?}"
    );

    // HTTP-level shutdown: ack line, then the accept loop exits (the
    // handle's join below would hang forever if it didn't).
    let (status, lines) = roundtrip(&handle, "POST", "/shutdown", "");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(lines, ["{\"event\":\"shutdown\"}"]);
    handle.shutdown();
}

/// Sends raw bytes (no HTTP framing guarantees) and returns the status
/// line the server answered with.
fn raw(handle: &ServerHandle, payload: &str) -> String {
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .expect("read timeout");
    stream
        .write_all(payload.as_bytes())
        .expect("payload written");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response read");
    response.lines().next().unwrap_or_default().to_owned()
}

#[test]
fn malformed_content_length_is_a_400_not_an_empty_body() {
    // Regression: `parse().unwrap_or(0)` used to treat a garbage
    // Content-Length as "no body", silently simulating the default
    // vehicle instead of rejecting the request.
    let mut handle = spawn_server();
    let status = raw(
        &handle,
        "POST /simulate HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
    );
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    let (status, _) = roundtrip(&handle, "GET", "/healthz", "");
    assert_eq!(status, "HTTP/1.1 200 OK", "server survives the rejection");
    handle.shutdown();
}

#[test]
fn oversized_body_is_a_413() {
    let mut handle = spawn_server();
    let status = raw(
        &handle,
        "POST /simulate HTTP/1.1\r\nContent-Length: 2000000\r\n\r\n",
    );
    assert_eq!(status, "HTTP/1.1 413 Payload Too Large");
    let (status, _) = roundtrip(&handle, "GET", "/healthz", "");
    assert_eq!(status, "HTTP/1.1 200 OK");
    handle.shutdown();
}

#[test]
fn unknown_route_is_a_404_and_counts_as_an_error() {
    let mut handle = spawn_server();
    let before = handle.errors();
    let (status, _) = roundtrip(&handle, "GET", "/definitely-not-a-route", "");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    assert_eq!(
        handle.errors(),
        before + 1,
        "error responses increment the errors counter"
    );
    handle.shutdown();
}

#[test]
fn plan_beyond_the_step_cap_is_a_400() {
    let mut handle = spawn_server();
    let (status, lines) = roundtrip(&handle, "POST", "/plan", "{\"steps\":2001}");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    assert!(
        lines[0].contains("capped at 2000"),
        "reason names the cap: {lines:?}"
    );
    handle.shutdown();
}

#[test]
fn header_flood_is_refused() {
    let mut handle = spawn_server();
    // More headers than MAX_HEADER_COUNT, still under the byte cap.
    let mut payload = String::from("GET /healthz HTTP/1.1\r\n");
    for i in 0..80 {
        payload.push_str(&format!("X-Flood-{i}: 1\r\n"));
    }
    payload.push_str("\r\n");
    assert_eq!(raw(&handle, &payload), "HTTP/1.1 400 Bad Request");

    // A single header far beyond the byte cap is refused too.
    let huge = format!(
        "GET /healthz HTTP/1.1\r\nX-Huge: {}\r\n\r\n",
        "a".repeat(9000)
    );
    assert_eq!(raw(&handle, &huge), "HTTP/1.1 400 Bad Request");

    let (status, _) = roundtrip(&handle, "GET", "/healthz", "");
    assert_eq!(status, "HTTP/1.1 200 OK", "server survives the floods");
    handle.shutdown();
}

#[test]
fn chrome_telemetry_streams_a_trace_array() {
    let mut handle = spawn_server();
    let (status, lines) = roundtrip(
        &handle,
        "POST",
        "/simulate",
        "{\"methodology\":\"parallel\",\"steps\":10,\"telemetry\":\"chrome\"}",
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    let joined = lines.join("\n");
    assert!(joined.starts_with('['), "chrome trace opens an array");
    assert!(joined.contains("\"ph\":"), "trace events present");
    assert!(
        lines
            .last()
            .expect("non-empty")
            .starts_with("{\"event\":\"vehicle\","),
        "summary follows the trace: {lines:?}"
    );
    handle.shutdown();
}
