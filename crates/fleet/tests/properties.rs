//! Property tests for the worker-pool fans: for *any* job count and
//! thread cap — including counts that don't divide evenly and caps
//! wider than the queue — both fans return exactly the serial map, in
//! order.

use otem_fleet::pool::{fan_indexed_capped, fan_stealing};
use proptest::prelude::*;

/// A job function with a non-trivial index dependency, so any
/// index/job mismatch or reordering changes the output.
fn work(i: usize, j: u64) -> u64 {
    j.wrapping_mul(31).wrapping_add(i as u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn capped_fan_matches_the_serial_map(
        jobs in prop::collection::vec(0u64..1_000_000, 0..120),
        threads in 1usize..12,
    ) {
        let serial: Vec<u64> = jobs.iter().enumerate().map(|(i, &j)| work(i, j)).collect();
        prop_assert_eq!(fan_indexed_capped(jobs, threads, work), serial);
    }

    #[test]
    fn stealing_fan_matches_the_serial_map(
        jobs in prop::collection::vec(0u64..1_000_000, 0..120),
        threads in 1usize..12,
    ) {
        let serial: Vec<u64> = jobs.iter().enumerate().map(|(i, &j)| work(i, j)).collect();
        prop_assert_eq!(fan_stealing(jobs, threads, work), serial);
    }

    #[test]
    fn both_fans_run_every_job_exactly_once(
        n in 0usize..150,
        threads in 1usize..12,
    ) {
        for fan in [
            fan_indexed_capped
                as fn(Vec<usize>, usize, fn(usize, usize) -> (usize, usize)) -> Vec<(usize, usize)>,
            fan_stealing,
        ] {
            // Both fans hand each claimed job to exactly one worker (the
            // take() in their job slots panics otherwise), so covering
            // all n ordered slots certifies exactly-once execution.
            let out = fan((0..n).collect(), threads, |i, j| (i, j));
            prop_assert_eq!(out.len(), n);
            for (k, (i, j)) in out.into_iter().enumerate() {
                prop_assert_eq!(i, k);
                prop_assert_eq!(j, k);
            }
        }
    }
}
