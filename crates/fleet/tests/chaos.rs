//! The chaos harness: hostile traffic against a live [`FleetServer`].
//!
//! Every scenario here is an abuse a real deployment sees — malformed
//! heads, trickled bytes, mid-stream disconnects, panicking vehicles,
//! saturation, shutdown races — and every scenario ends the same way:
//! `/healthz` answers `200 {"status":"ok"}`. The abuse *payload order*
//! inside the malformed-traffic sweep is seeded (splitmix64), so a
//! failure reproduces from the seed rather than from thread timing.
//!
//! Scenario timing rests on the server's own knobs (short read
//! timeouts, one-deep queues), never on host speed: the assertions are
//! about *which* response each client draws, not how fast.

use otem_fleet::client::{request, request_with_timeout, BackoffPolicy, RetryClient};
use otem_fleet::{FleetServer, ServerConfig, ServerHandle};
use otem_telemetry::MemorySink;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0xc4a05;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn config(workers: usize, queue_depth: usize, read_timeout_ms: u64) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards: 2,
        max_vehicles: 1_000,
        workers,
        queue_depth,
        read_timeout_ms,
        write_timeout_ms: read_timeout_ms,
        drain_deadline_ms: 5_000,
        ..ServerConfig::default()
    }
}

fn spawn_observed(
    workers: usize,
    queue_depth: usize,
    read_timeout_ms: u64,
) -> (ServerHandle, Arc<MemorySink>) {
    let sink = Arc::new(MemorySink::with_capacity(4_096));
    let handle =
        FleetServer::with_sink(config(workers, queue_depth, read_timeout_ms), sink.clone())
            .spawn()
            .expect("bind chaos server");
    (handle, sink)
}

fn assert_healthy(handle: &ServerHandle, context: &str) {
    let resp = request(handle.addr(), "GET", "/healthz", "")
        .unwrap_or_else(|e| panic!("healthz after {context}: {e}"));
    assert_eq!(resp.status, 200, "unhealthy after {context}");
    assert_eq!(resp.lines, ["{\"status\":\"ok\"}"], "after {context}");
}

/// Sends raw bytes, reads to EOF, returns the status (or `None` if the
/// server dropped the connection without a response).
fn raw_status(handle: &ServerHandle, payload: &[u8]) -> Option<u16> {
    let mut stream = TcpStream::connect(handle.addr()).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ok()?;
    stream.write_all(payload).ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    response.split_whitespace().nth(1)?.parse().ok()
}

#[test]
fn malformed_truncated_and_oversized_requests_never_take_the_server_down() {
    let (mut handle, _sink) = spawn_observed(4, 16, 500);
    let flood = {
        let mut head = String::from("GET /healthz HTTP/1.1\r\n");
        for i in 0..80 {
            head.push_str(&format!("X-Flood-{i}: 1\r\n"));
        }
        head.push_str("\r\n");
        head
    };
    let mut abuses: Vec<(&str, Vec<u8>, Option<u16>)> = vec![
        ("garbage line", b"NONSENSE\r\n\r\n".to_vec(), Some(400)),
        (
            "malformed content-length",
            b"POST /simulate HTTP/1.1\r\nContent-Length: over9000\r\n\r\n".to_vec(),
            Some(400),
        ),
        (
            "negative content-length",
            b"POST /simulate HTTP/1.1\r\nContent-Length: -5\r\n\r\n".to_vec(),
            Some(400),
        ),
        (
            "oversized body",
            b"POST /simulate HTTP/1.1\r\nContent-Length: 9000000\r\n\r\n".to_vec(),
            Some(413),
        ),
        (
            "unknown route",
            b"GET /nope HTTP/1.1\r\n\r\n".to_vec(),
            Some(404),
        ),
        ("header flood", flood.into_bytes(), Some(400)),
        (
            "single huge header",
            format!("GET /healthz HTTP/1.1\r\nX: {}\r\n\r\n", "a".repeat(9_000)).into_bytes(),
            Some(400),
        ),
        (
            // Declares a body then sends half of it and closes: the
            // server reads a short body, fails the parse, and must not
            // wedge. (No status to assert — we hung up.)
            "mid-stream disconnect",
            b"POST /simulate HTTP/1.1\r\nContent-Length: 60\r\n\r\n{\"vehicles\":4".to_vec(),
            None,
        ),
        ("empty payload", Vec::new(), None),
    ];
    let mut rng = SEED;
    for i in (1..abuses.len()).rev() {
        let j = (splitmix64(&mut rng) as usize) % (i + 1);
        abuses.swap(i, j);
    }
    for (name, payload, want) in &abuses {
        let got = raw_status(&handle, payload);
        if let Some(want) = want {
            assert_eq!(got, Some(*want), "{name}: wrong status");
        }
        assert_healthy(&handle, name);
    }
    handle.shutdown();
}

#[test]
fn slow_loris_is_cut_off_without_delaying_concurrent_requests() {
    let (mut handle, sink) = spawn_observed(4, 16, 400);
    let addr = handle.addr();

    // Trickle one byte of the request head at a time, far slower than
    // the read timeout allows overall progress to matter — after the
    // first stall the server answers 408 and hangs up.
    let loris = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("loris connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let head = b"GET /healthz HTTP/1.1\r\n";
        for byte in head {
            if stream.write_all(&[*byte]).is_err() {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        // Stop sending entirely; the read deadline trips now.
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        response
    });

    // While the loris trickles, a 4-worker pool keeps serving everyone
    // else: each healthz must come back well inside the read timeout.
    for i in 0..8 {
        let t0 = std::time::Instant::now();
        assert_healthy(&handle, &format!("concurrent healthz #{i}"));
        assert!(
            t0.elapsed() < Duration::from_millis(2_000),
            "healthz #{i} was starved by a slow-loris client"
        );
    }

    let response = loris.join().expect("loris thread");
    assert!(
        response.contains("408"),
        "stalled client drew a 408: {response:?}"
    );
    assert!(handle.timeouts() >= 1, "timeout counted");
    assert!(
        sink.count_kind("request_timeout") >= 1,
        "timeout event recorded"
    );
    assert_healthy(&handle, "slow loris");
    handle.shutdown();
}

#[test]
fn poisoned_vehicle_yields_structured_error_and_server_keeps_serving() {
    // A configured flight directory also persists each frozen dump to
    // disk (best-effort, directory created on demand).
    let flight_dir = std::env::temp_dir().join(format!("otem-flight-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&flight_dir);
    let mut cfg = config(2, 8, 2_000);
    cfg.flight_dir = flight_dir.to_string_lossy().into_owned();
    let sink = Arc::new(MemorySink::with_capacity(4_096));
    let mut handle = FleetServer::with_sink(cfg, sink.clone())
        .spawn()
        .expect("bind chaos server");
    let resp = request(
        handle.addr(),
        "POST",
        "/simulate",
        "{\"vehicles\":6,\"seed\":7,\"poison_id\":3}",
    )
    .expect("poison campaign");
    assert_eq!(
        resp.status, 200,
        "campaign with one poisoned vehicle still answers"
    );
    assert_eq!(
        resp.lines.len(),
        7,
        "5 summaries + 1 error + trailer: {:?}",
        resp.lines
    );
    // Lines stay in id order with the error record in vehicle 3's slot.
    for (i, line) in resp.lines[..6].iter().enumerate() {
        let want = if i == 3 {
            format!("{{\"event\":\"vehicle_error\",\"id\":{i},\"panicked\":true,")
        } else {
            format!("{{\"event\":\"vehicle\",\"id\":{i},")
        };
        assert!(line.starts_with(&want), "line {i}: {line}");
    }
    assert!(
        resp.lines[3].contains("poison fault"),
        "panic payload surfaced: {}",
        resp.lines[3]
    );
    let trailer = resp.lines.last().expect("trailer");
    assert!(trailer.contains("\"failures\":1"), "{trailer}");
    assert!(trailer.contains("\"vehicle_panics\":1"), "{trailer}");
    assert_eq!(handle.vehicle_panics(), 1);
    assert_eq!(sink.count_kind("panic_caught"), 1);

    // The contained panic froze the flight recorder: /debug/flight now
    // serves a post-mortem dump whose entries (including the trigger)
    // carry the poisoned request's correlation id.
    let flight = request(handle.addr(), "GET", "/debug/flight", "").expect("flight dump");
    assert_eq!(flight.status, 200);
    assert!(
        flight.lines[0].starts_with("{\"flight_dump\":true,\"trigger\":\"panic_caught\","),
        "frozen dump served: {}",
        flight.lines[0]
    );
    let trigger = flight
        .lines
        .iter()
        .find(|l| l.contains("\"event\":{\"event\":\"panic_caught\""))
        .expect("the trigger event is in the dump");
    assert!(
        trigger.contains("\"request_id\":") && !trigger.contains("\"request_id\":0,"),
        "dump entries are stamped with the originating request: {trigger}"
    );

    // The same dump was persisted to the configured flight directory.
    let on_disk = std::fs::read_to_string(flight_dir.join("flight-0000-panic_caught.jsonl"))
        .expect("dump persisted to flight_dir");
    assert!(
        on_disk.starts_with("{\"flight_dump\":true,\"trigger\":\"panic_caught\","),
        "persisted dump carries the header: {on_disk}"
    );
    let _ = std::fs::remove_dir_all(&flight_dir);

    // The next request is served normally — the panic poisoned nothing.
    let clean = request(
        handle.addr(),
        "POST",
        "/simulate",
        "{\"vehicles\":6,\"seed\":7}",
    )
    .expect("clean campaign");
    assert_eq!(clean.status, 200);
    assert_eq!(clean.lines.len(), 7, "6 summaries + trailer");
    assert!(
        clean
            .lines
            .last()
            .expect("trailer")
            .contains("\"failures\":0"),
        "clean campaign has no failures"
    );
    assert_healthy(&handle, "poison campaign");
    handle.shutdown();
}

#[test]
fn saturated_pool_sheds_with_a_retry_hint_and_a_retrying_client_converges() {
    // One worker, one queue slot: two stalled clients occupy both, so
    // the next connection is shed the moment it is accepted.
    let (mut handle, sink) = spawn_observed(1, 1, 600);
    let addr = handle.addr();
    let stalls: Vec<TcpStream> = (0..2)
        .map(|_| TcpStream::connect(addr).expect("stall connects"))
        .collect();

    let mut shed_resp = None;
    let mut probes = Vec::new();
    for attempt in 0..100 {
        match request_with_timeout(
            addr,
            "GET",
            "/healthz",
            "",
            Some(Duration::from_millis(200)),
        ) {
            Ok(resp) if resp.status == 503 => {
                shed_resp = Some(resp);
                break;
            }
            Ok(resp) => probes.push(format!("#{attempt}: {}", resp.status)),
            Err(err) => probes.push(format!("#{attempt}: {err}")),
        }
    }
    let shed =
        shed_resp.unwrap_or_else(|| panic!("saturated pool never shed; probes saw: {probes:?}"));
    assert_eq!(
        shed.retry_after_ms(),
        Some(100),
        "shed body carries retry_after_ms: {:?}",
        shed.lines
    );
    assert!(handle.shed() >= 1);
    assert!(sink.count_kind("request_shed") >= 1, "shed event recorded");

    // A retrying client keeps at it (honouring the hint) and succeeds
    // once the stalled sockets hit their 600 ms read deadline.
    let mut retry = RetryClient::new(
        addr,
        BackoffPolicy {
            base_ms: 100,
            cap_ms: 800,
            max_attempts: 12,
            seed: SEED,
        },
    );
    let resp = retry.send("GET", "/healthz", "").expect("retry transport");
    assert_eq!(resp.status, 200, "retrying client converged");
    drop(stalls);
    assert_healthy(&handle, "saturation");
    handle.shutdown();
}

#[test]
fn graceful_drain_finishes_in_flight_requests() {
    let (mut handle, sink) = spawn_observed(2, 8, 2_000);
    let addr = handle.addr();

    // Several clients in flight while the server is told to drain.
    let clients: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                request_with_timeout(
                    addr,
                    "POST",
                    "/simulate",
                    &format!("{{\"vehicles\":2,\"seed\":{i}}}"),
                    Some(Duration::from_secs(10)),
                )
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    let ack = request(addr, "POST", "/shutdown", "").expect("shutdown ack");
    assert_eq!(ack.status, 200);
    assert_eq!(ack.lines, ["{\"event\":\"shutdown\"}"]);
    handle.shutdown();

    let mut served = 0;
    for client in clients {
        match client.join().expect("client thread") {
            Ok(resp) if resp.status == 200 => {
                assert!(
                    resp.lines
                        .last()
                        .is_some_and(|l| l.contains("\"event\":\"fleet\"")),
                    "drained response complete: {:?}",
                    resp.lines
                );
                served += 1;
            }
            // Shed during drain or raced the closing listener — a clean
            // refusal either way.
            Ok(resp) => assert_eq!(resp.status, 503, "unexpected status during drain"),
            Err(_) => {}
        }
    }
    assert!(served >= 1, "accepted requests were finished, not dropped");
    assert_eq!(sink.count_kind("drain_started"), 1, "drain event recorded");
}
