//! Shared experiment infrastructure for regenerating the OTEM paper's
//! tables and figures.
//!
//! Each binary in `src/bin/` reproduces one exhibit (see DESIGN.md §4);
//! this library holds the common pieces: building controllers by
//! methodology name, running them over standard cycles, and formatting
//! the result tables.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod plot;
pub mod spans;

use otem::policy::{ActiveCooling, Dual, Otem, Parallel};
use otem::{Controller, OtemError, SimulationResult, Simulator, SystemConfig};
use otem_drivecycle::{standard, PowerTrace, Powertrain, StandardCycle, VehicleParams};
use otem_telemetry::Sink;
use otem_units::{Farads, Kelvin};

/// The configuration the cycle-sweep experiments (Figs. 8–9) run under:
/// the default system in a hot, 35 °C climate — the regime where battery
/// cooling is genuinely load-bearing and the paper's consumption gaps
/// between cooled and passive architectures appear on every cycle.
pub fn paper_config() -> SystemConfig {
    SystemConfig::default().with_ambient(Kelvin::from_celsius(35.0))
}

/// [`paper_config`] with a different ultracapacitor size (Table I,
/// Fig. 1 sweeps).
pub fn paper_config_with_capacitance(farads: f64) -> SystemConfig {
    SystemConfig::with_capacitance(Farads::new(farads)).with_ambient(Kelvin::from_celsius(30.0))
}

/// The thermally stressed rig of the paper's Figs. 1, 6, 7 and Table I:
/// city-EV pack + compact vehicle at 30 °C ambient (see
/// `SystemConfig::stress_rig`).
pub fn stress_config() -> SystemConfig {
    SystemConfig::stress_rig()
}

/// [`stress_config`] at a given ultracapacitor size.
pub fn stress_config_with_capacitance(farads: f64) -> SystemConfig {
    SystemConfig {
        capacitance: Farads::new(farads),
        ..SystemConfig::stress_rig()
    }
}

/// Power trace of a standard cycle for the *compact* vehicle that pairs
/// with [`stress_config`].
///
/// # Errors
///
/// Propagates cycle-synthesis errors.
pub fn stress_trace(cycle: StandardCycle, repeats: usize) -> Result<PowerTrace, OtemError> {
    let c = standard(cycle)?.repeat(repeats);
    let train = Powertrain::new(VehicleParams::compact_ev())?;
    Ok(train.power_trace(&c))
}

/// The four methodologies of the paper's comparison (Section IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Methodology {
    /// Parallel architecture, no management \[15\].
    Parallel,
    /// Battery-only with thermostatic active cooling \[25\].
    ActiveCooling,
    /// Dual architecture with temperature-threshold switching \[16\].
    Dual,
    /// The paper's contribution.
    Otem,
}

impl Methodology {
    /// All methodologies in the paper's reporting order.
    pub const ALL: [Methodology; 4] = [
        Methodology::Parallel,
        Methodology::ActiveCooling,
        Methodology::Dual,
        Methodology::Otem,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Parallel => "Parallel",
            Self::ActiveCooling => "ActiveCooling",
            Self::Dual => "Dual",
            Self::Otem => "OTEM",
        }
    }

    /// Builds the controller for this methodology.
    ///
    /// # Errors
    ///
    /// Propagates component validation errors.
    pub fn controller(self, config: &SystemConfig) -> Result<Box<dyn Controller>, OtemError> {
        Ok(match self {
            Self::Parallel => Box::new(Parallel::new(config)?),
            Self::ActiveCooling => Box::new(ActiveCooling::new(config)?),
            Self::Dual => Box::new(Dual::new(config)?),
            Self::Otem => Box::new(Otem::new(config)?),
        })
    }
}

/// Builds the power-request trace for a standard cycle with the default
/// vehicle, repeated `repeats` times.
///
/// # Errors
///
/// Propagates cycle-synthesis errors.
pub fn cycle_trace(cycle: StandardCycle, repeats: usize) -> Result<PowerTrace, OtemError> {
    let c = standard(cycle)?.repeat(repeats);
    let train = Powertrain::new(VehicleParams::midsize_ev())?;
    Ok(train.power_trace(&c))
}

/// Runs one methodology over one trace under the given configuration.
///
/// # Errors
///
/// Propagates controller construction errors.
pub fn run(
    methodology: Methodology,
    config: &SystemConfig,
    trace: &PowerTrace,
) -> Result<SimulationResult, OtemError> {
    let mut controller = methodology.controller(config)?;
    Ok(Simulator::new(config).run(controller.as_mut(), trace))
}

/// [`run`] with structured telemetry streamed into `sink` (see
/// `otem_telemetry`): per-step [`otem_telemetry::Event::StepCompleted`]
/// plus whatever the methodology's controller emits (solver iterations,
/// pool traffic, cooling toggles, ultracapacitor saturation). The result
/// is `PartialEq`-identical to [`run`]'s for any sink.
///
/// # Errors
///
/// Propagates controller construction errors.
pub fn run_with(
    methodology: Methodology,
    config: &SystemConfig,
    trace: &PowerTrace,
    sink: &dyn Sink,
) -> Result<SimulationResult, OtemError> {
    let mut controller = methodology.controller(config)?;
    Ok(Simulator::new(config).run_with(controller.as_mut(), trace, sink))
}

/// Formats a ratio as a percentage with sign.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

// The worker-pool fans moved to `otem_fleet::pool` (PR 6) so the fleet
// engine and the sweep binaries share one implementation; re-exported
// here to keep the sweep binaries' call sites unchanged.
pub use otem_fleet::pool::{fan_indexed, fan_indexed_capped, fan_stealing};

#[cfg(test)]
mod tests {
    use super::*;
    use otem_units::{Farads, Seconds, Watts};

    #[test]
    fn all_methodologies_build() {
        let config = SystemConfig::default();
        for m in Methodology::ALL {
            m.controller(&config)
                .unwrap_or_else(|e| panic!("{}: {e}", m.name()));
        }
    }

    #[test]
    fn fan_indexed_preserves_job_order() {
        let jobs: Vec<usize> = (0..17).collect();
        let fanned = fan_indexed(jobs, |i, j| {
            assert_eq!(i, j, "index matches the job's position");
            3 * j + 1
        });
        let serial: Vec<usize> = (0..17).map(|j| 3 * j + 1).collect();
        assert_eq!(fanned, serial);
        // Degenerate sizes.
        assert_eq!(fan_indexed(vec![5usize], |_, j| j * j), vec![25]);
        assert_eq!(
            fan_indexed(Vec::<usize>::new(), |_, j| j),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn short_run_produces_metrics_for_every_methodology() {
        let config = SystemConfig::with_capacitance(Farads::new(10_000.0));
        let trace = PowerTrace::new(Seconds::new(1.0), vec![Watts::new(25_000.0); 30]);
        for m in [Methodology::Parallel, Methodology::Dual] {
            let result = run(m, &config, &trace).expect("runs");
            assert_eq!(result.records.len(), 30);
            assert!(result.energy().value() > 0.0, "{}", m.name());
        }
    }
}
