//! Minimal terminal plotting for the experiment binaries: Unicode
//! sparklines and multi-series strip charts, so the figure binaries show
//! the *shape* of a trace inline, not just sampled rows.

/// Eight-level block characters, lowest to highest.
const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a sparkline of roughly `width` characters
/// (values are bucket-averaged down to the width).
///
/// Returns an empty string for empty input; a flat series renders at the
/// lowest block level.
pub fn sparkline(values: &[f64], width: usize) -> String {
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let buckets = resample(values, width.min(values.len()));
    let (lo, hi) = bounds(&buckets);
    let span = (hi - lo).max(1e-12);
    buckets
        .iter()
        .map(|v| {
            let idx = (((v - lo) / span) * 7.0).round().clamp(0.0, 7.0) as usize;
            BLOCKS[idx]
        })
        .collect()
}

/// Renders a labelled sparkline with its min/max annotated:
/// `label  ▁▂▅█▆▂  [12.0 … 45.3]`.
pub fn labelled_sparkline(label: &str, values: &[f64], width: usize) -> String {
    let (lo, hi) = bounds(values);
    format!(
        "{label:<14} {}  [{lo:.1} … {hi:.1}]",
        sparkline(values, width)
    )
}

fn resample(values: &[f64], buckets: usize) -> Vec<f64> {
    let n = values.len();
    (0..buckets)
        .map(|b| {
            let start = b * n / buckets;
            let end = (((b + 1) * n) / buckets).max(start + 1).min(n);
            let slice = &values[start..end];
            slice.iter().sum::<f64>() / slice.len() as f64
        })
        .collect()
}

fn bounds(values: &[f64]) -> (f64, f64) {
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if lo.is_finite() && hi.is_finite() {
        (lo, hi)
    } else {
        (0.0, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramps_render_monotonically() {
        let values: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let s = sparkline(&values, 8);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 8);
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[7], '█');
        for w in chars.windows(2) {
            assert!(w[0] <= w[1], "non-monotone: {s}");
        }
    }

    #[test]
    fn flat_series_is_flat() {
        let s = sparkline(&[5.0; 20], 10);
        assert!(s.chars().all(|c| c == '▁'), "{s}");
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert_eq!(sparkline(&[], 10), "");
        assert_eq!(sparkline(&[1.0], 0), "");
    }

    #[test]
    fn short_input_does_not_stretch() {
        let s = sparkline(&[1.0, 2.0], 40);
        assert_eq!(s.chars().count(), 2);
    }

    #[test]
    fn labelled_includes_bounds() {
        let line = labelled_sparkline("temp", &[20.0, 30.0, 25.0], 3);
        assert!(line.contains("temp"));
        assert!(line.contains("[20.0 … 30.0]"));
    }
}
