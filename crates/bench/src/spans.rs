//! Span-trace analysis: ingests the JSONL stream an instrumented run
//! writes (see `otem_telemetry::span`) and turns its `span_start` /
//! `span_end` pairs into the per-phase profile the `trace_report` bin
//! prints and `BENCH_spans.json` records.
//!
//! The vendored `serde` is a derive stub, so the JSONL lines are read
//! with a small hand-rolled field extractor — the span events carry
//! only integers and snake_case names, which keeps that honest.
//!
//! Beyond aggregation, [`analyze`] *validates* the stream: every start
//! must be matched by an end, ends must close innermost-first per lane,
//! and the time attributed to a span's children can never exceed the
//! span's own duration. `scripts/tier1.sh` gates on these checks via
//! `trace_report`, so a broken emitter fails CI rather than producing a
//! quietly nonsensical profile.

use otem_telemetry::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One parsed `span_end` joined with its `span_start`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique span id.
    pub id: u64,
    /// Enclosing span id on the same lane (`0` = root).
    pub parent: u64,
    /// Span name (`"mpc_solve"`, `"rollout"`, …).
    pub name: String,
    /// Lane (thread) the span ran on.
    pub lane: u64,
    /// Open time, ns on the trace's monotonic epoch.
    pub start_ns: u64,
    /// Close time, ns on the trace's monotonic epoch.
    pub end_ns: u64,
    /// `end_ns - start_ns` as emitted.
    pub dur_ns: u64,
    /// Total duration of the span's direct children.
    pub child_ns: u64,
}

impl SpanRecord {
    /// Duration minus time spent in child spans (same lane).
    pub fn self_ns(&self) -> u64 {
        self.dur_ns.saturating_sub(self.child_ns)
    }
}

/// Aggregated statistics for one span name.
#[derive(Debug)]
pub struct PhaseStats {
    /// Span name.
    pub name: String,
    /// Closed spans with this name.
    pub count: u64,
    /// Cumulative duration (includes time inside child spans), ns.
    pub total_ns: u64,
    /// Self time (cumulative minus direct children), ns.
    pub self_ns: u64,
    /// Duration distribution, ns buckets.
    pub hist: Histogram,
}

impl PhaseStats {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            count: 0,
            total_ns: 0,
            self_ns: 0,
            // 1 µs … ~9 minutes in ×2 steps: covers a single rollout up
            // to a whole campaign run at better than 2× resolution.
            hist: Histogram::exponential(1_000.0, 2.0, 40),
        }
    }

    /// Mean duration in ns (0 for an empty phase).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// The result of [`analyze`]: per-phase statistics plus every
/// structural violation found in the stream.
#[derive(Debug)]
pub struct TraceAnalysis {
    /// Per-name statistics, sorted by descending cumulative time.
    pub phases: Vec<PhaseStats>,
    /// Every closed span, in close order.
    pub spans: Vec<SpanRecord>,
    /// Structural violations (empty for a well-formed trace).
    pub errors: Vec<String>,
}

impl TraceAnalysis {
    /// `true` when the stream was balanced and properly nested.
    pub fn is_balanced(&self) -> bool {
        self.errors.is_empty()
    }

    /// Statistics for one span name, if it occurred.
    pub fn phase(&self, name: &str) -> Option<&PhaseStats> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Sum of `dur_ns` across all closed spans with this name.
    pub fn total_ns(&self, name: &str) -> u64 {
        self.phase(name).map_or(0, |p| p.total_ns)
    }

    /// Renders the per-phase table (`trace_report`'s stdout).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<20} {:>8} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}",
            "phase", "count", "total_ms", "self_ms", "mean_us", "p50_us", "p95_us", "p99_us"
        );
        for p in &self.phases {
            let _ = writeln!(
                out,
                "{:<20} {:>8} {:>12.3} {:>12.3} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
                p.name,
                p.count,
                p.total_ns as f64 / 1e6,
                p.self_ns as f64 / 1e6,
                p.mean_ns() / 1e3,
                p.hist.quantile(0.50) / 1e3,
                p.hist.quantile(0.95) / 1e3,
                p.hist.quantile(0.99) / 1e3,
            );
        }
        out
    }

    /// Renders `BENCH_spans.json` (hand-rolled; vendored serde is a
    /// stub).
    pub fn render_json(&self, steps: usize) -> String {
        let mut rows = Vec::with_capacity(self.phases.len());
        for p in &self.phases {
            rows.push(format!(
                concat!(
                    "    {{ \"name\": \"{}\", \"count\": {}, ",
                    "\"total_ms\": {:.4}, \"self_ms\": {:.4}, \"mean_us\": {:.2}, ",
                    "\"p50_us\": {:.2}, \"p95_us\": {:.2}, \"p99_us\": {:.2} }}"
                ),
                p.name,
                p.count,
                p.total_ns as f64 / 1e6,
                p.self_ns as f64 / 1e6,
                p.mean_ns() / 1e3,
                p.hist.quantile(0.50) / 1e3,
                p.hist.quantile(0.95) / 1e3,
                p.hist.quantile(0.99) / 1e3,
            ));
        }
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"span_trace\",\n",
                "  \"steps\": {},\n",
                "  \"spans\": {},\n",
                "  \"balanced\": {},\n",
                "  \"phases\": [\n{}\n  ]\n",
                "}}\n"
            ),
            steps,
            self.spans.len(),
            self.is_balanced(),
            rows.join(",\n")
        )
    }
}

/// A span currently open on some lane.
#[derive(Debug)]
struct OpenSpan {
    id: u64,
    parent: u64,
    name: String,
    start_ns: u64,
    child_ns: u64,
}

/// Analyzes a span JSONL stream (non-span lines are ignored).
///
/// Validation rules, each producing one entry in
/// [`TraceAnalysis::errors`]:
///
/// - a `span_end` whose id is not the innermost open span on its lane
///   (the emitter guarantees innermost-first closing);
/// - an end time earlier than the matching start;
/// - a span whose direct children account for more time than the span
///   itself;
/// - any span still open when the stream ends.
pub fn analyze(lines: impl IntoIterator<Item = String>) -> TraceAnalysis {
    let mut open: BTreeMap<u64, Vec<OpenSpan>> = BTreeMap::new();
    let mut spans: Vec<SpanRecord> = Vec::new();
    let mut errors: Vec<String> = Vec::new();

    for line in lines {
        match json_str(&line, "event") {
            Some("span_start") => {
                let (Some(id), Some(parent), Some(name), Some(lane), Some(t_ns)) = (
                    json_u64(&line, "id"),
                    json_u64(&line, "parent"),
                    json_str(&line, "name"),
                    json_u64(&line, "lane"),
                    json_u64(&line, "t_ns"),
                ) else {
                    errors.push(format!("malformed span_start: {line}"));
                    continue;
                };
                let stack = open.entry(lane).or_default();
                let innermost = stack.last().map_or(0, |s| s.id);
                if parent != innermost {
                    errors.push(format!(
                        "span {id} ({name}) claims parent {parent} but lane {lane}'s \
                         innermost open span is {innermost}"
                    ));
                }
                stack.push(OpenSpan {
                    id,
                    parent,
                    name: name.to_string(),
                    start_ns: t_ns,
                    child_ns: 0,
                });
            }
            Some("span_end") => {
                let (Some(id), Some(lane), Some(t_ns), Some(dur_ns)) = (
                    json_u64(&line, "id"),
                    json_u64(&line, "lane"),
                    json_u64(&line, "t_ns"),
                    json_u64(&line, "dur_ns"),
                ) else {
                    errors.push(format!("malformed span_end: {line}"));
                    continue;
                };
                let stack = open.entry(lane).or_default();
                let Some(top) = stack.pop() else {
                    errors.push(format!("span_end {id} on lane {lane} with no open span"));
                    continue;
                };
                if top.id != id {
                    errors.push(format!(
                        "span_end {id} on lane {lane} but innermost open span is {} ({})",
                        top.id, top.name
                    ));
                    stack.push(top);
                    continue;
                }
                if t_ns < top.start_ns {
                    errors.push(format!(
                        "span {id} ({}) ends at {t_ns} ns, before its start {} ns",
                        top.name, top.start_ns
                    ));
                }
                if top.child_ns > dur_ns {
                    errors.push(format!(
                        "span {id} ({}) lasted {dur_ns} ns but its children total {} ns",
                        top.name, top.child_ns
                    ));
                }
                if let Some(parent) = stack.last_mut() {
                    parent.child_ns += dur_ns;
                }
                spans.push(SpanRecord {
                    id,
                    parent: top.parent,
                    name: top.name,
                    lane,
                    start_ns: top.start_ns,
                    end_ns: t_ns,
                    dur_ns,
                    child_ns: top.child_ns,
                });
            }
            _ => {}
        }
    }

    for (lane, stack) in &open {
        for s in stack {
            errors.push(format!(
                "span {} ({}) on lane {lane} never closed",
                s.id, s.name
            ));
        }
    }

    let mut by_name: BTreeMap<&str, PhaseStats> = BTreeMap::new();
    for s in &spans {
        let p = by_name
            .entry(s.name.as_str())
            .or_insert_with(|| PhaseStats::new(&s.name));
        p.count += 1;
        p.total_ns += s.dur_ns;
        p.self_ns += s.self_ns();
        p.hist.observe(s.dur_ns as f64);
    }
    let mut phases: Vec<PhaseStats> = by_name.into_values().collect();
    phases.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));

    TraceAnalysis {
        phases,
        spans,
        errors,
    }
}

/// Extracts an unsigned integer field (`"key":123`) from one JSON line.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let rest = field_value(line, key)?;
    let digits: &str = {
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        &rest[..end]
    };
    digits.parse().ok()
}

/// Extracts a string field (`"key":"value"`) from one JSON line. Span
/// names are snake_case identifiers, so escapes inside the value are
/// treated as malformed (`None`) rather than unescaped.
fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = field_value(line, key)?.strip_prefix('"')?;
    let end = rest.find(['"', '\\'])?;
    if rest[end..].starts_with('\\') {
        return None;
    }
    Some(&rest[..end])
}

/// The text immediately after `"key":`.
fn field_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)?;
    Some(&line[at + needle.len()..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use otem_telemetry::Event;

    fn lines(events: &[Event]) -> Vec<String> {
        events.iter().map(Event::to_json).collect()
    }

    fn start(id: u64, parent: u64, name: &'static str, lane: u64, t_ns: u64) -> Event {
        Event::SpanStart {
            id,
            parent,
            name,
            lane,
            t_ns,
        }
    }

    fn end(id: u64, name: &'static str, lane: u64, t_ns: u64, dur_ns: u64) -> Event {
        Event::SpanEnd {
            id,
            name,
            lane,
            t_ns,
            dur_ns,
        }
    }

    #[test]
    fn nested_trace_aggregates_self_and_cumulative_time() {
        let a = analyze(lines(&[
            start(1, 0, "solve", 1, 0),
            start(2, 1, "rollout", 1, 100),
            end(2, "rollout", 1, 400, 300),
            start(3, 1, "rollout", 1, 500),
            end(3, "rollout", 1, 700, 200),
            end(1, "solve", 1, 1_000, 1_000),
        ]));
        assert!(a.is_balanced(), "{:?}", a.errors);
        assert_eq!(a.spans.len(), 3);
        let solve = a.phase("solve").expect("solve phase");
        assert_eq!(solve.count, 1);
        assert_eq!(solve.total_ns, 1_000);
        assert_eq!(solve.self_ns, 500, "1000 - two rollouts");
        let rollout = a.phase("rollout").expect("rollout phase");
        assert_eq!(rollout.count, 2);
        assert_eq!(rollout.total_ns, 500);
        assert_eq!(rollout.self_ns, 500, "leaves have no children");
        // Phases sort by descending cumulative time.
        assert_eq!(a.phases[0].name, "solve");
    }

    #[test]
    fn lanes_are_independent_stacks() {
        // Interleaved starts/ends across two lanes — balanced per lane,
        // unordered globally.
        let a = analyze(lines(&[
            start(1, 0, "solve", 1, 0),
            start(2, 0, "rollout", 2, 10),
            start(3, 0, "rollout", 3, 10),
            end(3, "rollout", 3, 60, 50),
            end(2, "rollout", 2, 50, 40),
            end(1, "solve", 1, 100, 100),
        ]));
        assert!(a.is_balanced(), "{:?}", a.errors);
        // Cross-lane spans are roots, not children: solve keeps all its
        // time to itself.
        assert_eq!(a.phase("solve").unwrap().self_ns, 100);
    }

    #[test]
    fn unmatched_start_is_reported() {
        let a = analyze(lines(&[start(1, 0, "solve", 1, 0)]));
        assert!(!a.is_balanced());
        assert!(a.errors[0].contains("never closed"), "{:?}", a.errors);
    }

    #[test]
    fn out_of_order_end_is_reported() {
        let a = analyze(lines(&[
            start(1, 0, "solve", 1, 0),
            start(2, 1, "rollout", 1, 10),
            end(1, "solve", 1, 100, 100), // parent closed before child
        ]));
        assert!(!a.is_balanced());
        assert!(
            a.errors.iter().any(|e| e.contains("innermost open span")),
            "{:?}",
            a.errors
        );
    }

    #[test]
    fn child_time_exceeding_parent_is_reported() {
        let a = analyze(lines(&[
            start(1, 0, "solve", 1, 0),
            start(2, 1, "rollout", 1, 0),
            end(2, "rollout", 1, 500, 500),
            end(1, "solve", 1, 100, 100), // 100 ns parent, 500 ns child
        ]));
        assert!(
            a.errors.iter().any(|e| e.contains("children total"),),
            "{:?}",
            a.errors
        );
    }

    #[test]
    fn non_span_lines_are_ignored() {
        let a = analyze(vec![
            Event::PoolHit.to_json(),
            start(1, 0, "solve", 1, 0).to_json(),
            "not json at all".to_string(),
            end(1, "solve", 1, 10, 10).to_json(),
        ]);
        assert!(a.is_balanced(), "{:?}", a.errors);
        assert_eq!(a.spans.len(), 1);
    }

    #[test]
    fn json_field_extractors_handle_span_lines() {
        let line = start(7, 3, "mpc_solve", 2, 1_500).to_json();
        assert_eq!(json_u64(&line, "id"), Some(7));
        assert_eq!(json_u64(&line, "parent"), Some(3));
        assert_eq!(json_u64(&line, "lane"), Some(2));
        assert_eq!(json_u64(&line, "t_ns"), Some(1_500));
        assert_eq!(json_str(&line, "name"), Some("mpc_solve"));
        assert_eq!(json_str(&line, "event"), Some("span_start"));
        assert_eq!(json_u64(&line, "missing"), None);
        assert_eq!(json_str(&line, "name_with_escape"), None);
    }

    #[test]
    fn report_renders_table_and_json() {
        let a = analyze(lines(&[
            start(1, 0, "solve", 1, 0),
            end(1, "solve", 1, 2_000_000, 2_000_000),
        ]));
        let table = a.render_table();
        assert!(table.contains("phase"), "{table}");
        assert!(table.contains("solve"), "{table}");
        let json = a.render_json(120);
        assert!(json.contains("\"bench\": \"span_trace\""), "{json}");
        assert!(json.contains("\"steps\": 120"), "{json}");
        assert!(json.contains("\"balanced\": true"), "{json}");
        assert!(json.contains("\"name\": \"solve\""), "{json}");
    }
}
