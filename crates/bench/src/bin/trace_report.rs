//! Span-trace profiler for the MPC hot path.
//!
//! Ingests the span JSONL an instrumented run emits (see
//! `otem_telemetry::span` and `otem_bench::spans`), validates that the
//! stream is balanced and properly nested, prints the per-phase table
//! (count, cumulative, self time, mean, p50/p95/p99) and writes
//! `BENCH_spans.json` for cross-PR regression tracking.
//!
//! Usage:
//!
//! - `trace_report --input results/foo.jsonl` — analyze an existing
//!   trace;
//! - `trace_report [--steps N]` (default 120) — drive the OTEM
//!   methodology over the first `N` seconds of US06 on the stress rig,
//!   tracing into `results/trace_spans.jsonl`, then analyze that.
//!
//! Exits nonzero on a structurally invalid trace (unbalanced starts /
//! ends, out-of-order closes, child time exceeding parent time), so
//! `scripts/tier1.sh` can gate on it.

use otem_bench::{spans, stress_config, stress_trace, Methodology};
use otem_drivecycle::{PowerTrace, StandardCycle};
use otem_telemetry::JsonlSink;
use std::io::BufRead as _;

const TRACE_PATH: &str = "results/trace_spans.jsonl";

struct Args {
    input: Option<String>,
    steps: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        input: None,
        steps: 120,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--input" => args.input = it.next(),
            "--steps" => {
                args.steps = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--steps needs a positive integer"));
            }
            "--help" | "-h" => {
                println!("usage: trace_report [--input FILE | --steps N]");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("trace_report: {msg}");
    std::process::exit(2);
}

/// Runs the OTEM methodology over `steps` seconds of US06 on the
/// stress rig, streaming telemetry (spans included) to [`TRACE_PATH`].
fn generate_trace(steps: usize) -> String {
    let config = stress_config();
    let full = stress_trace(StandardCycle::Us06, 1).expect("US06 synthesis");
    let n = steps.min(full.len());
    let trace = PowerTrace::new(full.dt(), full.samples()[..n].to_vec());
    std::fs::create_dir_all("results").expect("results dir");
    let sink = JsonlSink::create(TRACE_PATH).expect("trace file");
    let result = otem_bench::run_with(Methodology::Otem, &config, &trace, &sink)
        .expect("OTEM controller builds");
    assert_eq!(result.records.len(), n, "simulation covered the trace");
    println!(
        "traced {n}-step US06 OTEM run -> {TRACE_PATH} \
         (battery ended at {:.2} degC)",
        result
            .records
            .last()
            .map_or(f64::NAN, |r| { r.state.battery_temp.to_celsius().value() })
    );
    TRACE_PATH.to_string()
}

fn main() {
    let args = parse_args();
    let path = match &args.input {
        Some(p) => p.clone(),
        None => generate_trace(args.steps),
    };

    let file =
        std::fs::File::open(&path).unwrap_or_else(|e| die(&format!("cannot open {path}: {e}")));
    let lines = std::io::BufReader::new(file).lines().map_while(Result::ok);
    let analysis = spans::analyze(lines);

    println!();
    print!("{}", analysis.render_table());
    println!();
    println!(
        "{} spans across {} phases",
        analysis.spans.len(),
        analysis.phases.len()
    );

    std::fs::write("BENCH_spans.json", analysis.render_json(args.steps))
        .expect("write BENCH_spans.json");
    println!("wrote BENCH_spans.json");

    if !analysis.is_balanced() {
        eprintln!("\ntrace is structurally invalid:");
        for e in &analysis.errors {
            eprintln!("  - {e}");
        }
        std::process::exit(1);
    }
}
