//! Performance trajectory for the MPC hot path: serial vs parallel
//! finite-difference gradients, and the reverse-mode adjoint gradient,
//! across horizon lengths.
//!
//! Runs warm-started `Mpc::solve` repetitions at horizons {12, 24, 48}
//! in [`GradientMode::Serial`], [`GradientMode::Parallel`] and
//! [`GradientMode::Adjoint`] and writes `BENCH_mpc.json` (per-solve
//! latency, rollouts/second, rollouts/solve, speedups) so later changes
//! have a baseline to compare against.
//!
//! Usage:
//! `cargo run --release -p otem-bench --bin perf_report -- [threads] [--gradient adjoint]`
//! (thread count defaults to the machine's available parallelism).
//! `--gradient adjoint` runs a quick adjoint-only smoke — used by
//! `scripts/tier1.sh` — that asserts the per-solve rollout count stays
//! horizon-independent and does **not** rewrite `BENCH_mpc.json`.
//!
//! The two FD modes produce bit-identical decisions — asserted here on
//! every repetition — so that comparison is purely about wall time. The
//! adjoint differentiates the executed clamp branch exactly instead of
//! sampling across it, so its decisions are *not* asserted bit-identical
//! to FD; its correctness contract lives in `tests/gradient_parity.rs`
//! and `tests/golden_traces.rs`.

use otem::mpc::{Mpc, MpcConfig, MpcPlant};
use otem::SystemConfig;
use otem_hees::HybridHees;
use otem_solver::GradientMode;
use otem_telemetry::{JsonlSink, NullSink, Sink};
use otem_thermal::{CoolingPlant, ThermalModel, ThermalState};
use otem_units::{Kelvin, Ratio, Seconds, Watts};
use std::time::Instant;

const HORIZONS: [usize; 3] = [12, 24, 48];
const REPS: usize = 8;

fn plant(config: &SystemConfig) -> MpcPlant {
    let mut hees = HybridHees::ev_default(config.capacitance).unwrap();
    hees.set_state(Ratio::new(0.8), Ratio::new(0.6));
    MpcPlant {
        hees,
        thermal: ThermalModel::new(config.thermal_active).unwrap(),
        plant: CoolingPlant::new(config.plant).unwrap(),
        state: ThermalState::uniform(Kelvin::from_celsius(33.0)),
        aging: config.aging,
        soc_min: config.soc_min,
        soe_min: config.soe_min,
        battery_power_max: config.battery_power_max,
        cap_power_max: config.cap_power_max,
    }
}

struct ModeStats {
    mean_ms: f64,
    min_ms: f64,
    rollouts_per_sec: f64,
    rollouts_per_solve: f64,
    /// First decision, for the cross-mode parity check.
    cap_bus: f64,
    cool_duty: f64,
}

fn run_mode(
    p: &MpcPlant,
    loads: &[Watts],
    horizon: usize,
    mode: GradientMode,
    sink: &dyn Sink,
) -> ModeStats {
    let mut mpc = Mpc::new(MpcConfig {
        horizon,
        gradient_mode: mode,
        ..MpcConfig::default()
    });
    let dt = Seconds::new(1.0);
    // Warm-up solve: populates the workspace pool and the warm start, so
    // the timed repetitions measure the steady state. Only this solve is
    // traced — the timed loop below runs unobserved so the telemetry
    // writer cannot pollute the latency numbers.
    let first = mpc.solve_with(p, loads, dt, sink);
    let rollouts_before = mpc.rollouts();
    let mut latencies_ms = Vec::with_capacity(REPS);
    let started = Instant::now();
    for _ in 0..REPS {
        let t0 = Instant::now();
        let d = mpc.solve(p, loads, dt);
        latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        assert!(d.cap_bus.is_finite(), "solve produced a non-finite command");
    }
    let elapsed = started.elapsed().as_secs_f64();
    let rollouts = mpc.rollouts() - rollouts_before;
    ModeStats {
        mean_ms: latencies_ms.iter().sum::<f64>() / REPS as f64,
        min_ms: latencies_ms.iter().copied().fold(f64::INFINITY, f64::min),
        rollouts_per_sec: rollouts as f64 / elapsed,
        rollouts_per_solve: rollouts as f64 / REPS as f64,
        cap_bus: first.cap_bus.value(),
        cool_duty: first.cool_duty,
    }
}

/// Adjoint-only smoke (`--gradient adjoint`): a quick assertion that the
/// tape gradient's per-solve rollout count is small and does not grow
/// with the horizon — the property the adjoint exists for. FD needs
/// `4·horizon` rollouts *per gradient* (≥ 1440/solve at horizon 12 with
/// the 30-iteration default); the adjoint needs one taped rollout per
/// gradient, so a generous `8·iterations` ceiling still separates the
/// two by an order of magnitude.
fn adjoint_smoke(config: &SystemConfig) {
    let p = plant(config);
    let iterations = MpcConfig::default().solver_iterations;
    let ceiling = (8 * iterations) as f64;
    println!(
        "{:<8} {:>12} {:>14} {:>14}",
        "horizon", "adjoint_ms", "adj_ro/s", "adj_ro/solve"
    );
    for horizon in HORIZONS {
        let loads: Vec<Watts> = (0..horizon)
            .map(|k| Watts::new(20_000.0 + 40_000.0 * ((k % 5) as f64 / 4.0)))
            .collect();
        let adj = run_mode(&p, &loads, horizon, GradientMode::Adjoint, &NullSink);
        println!(
            "{:<8} {:>12.3} {:>14.0} {:>14.1}",
            horizon, adj.mean_ms, adj.rollouts_per_sec, adj.rollouts_per_solve
        );
        assert!(
            adj.rollouts_per_solve < ceiling,
            "horizon {horizon}: {} rollouts/solve — adjoint gradient is \
             paying per-coordinate rollouts (FD would need ≥ {})",
            adj.rollouts_per_solve,
            4 * horizon * iterations
        );
    }
    println!("\nadjoint smoke: rollouts/solve horizon-independent, all decisions finite");
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut threads = cores;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--gradient" {
            match args.next().as_deref() {
                Some("adjoint") => smoke = true,
                Some("fd") | Some("all") => smoke = false,
                other => panic!("--gradient expects adjoint|fd|all, got {other:?}"),
            }
        } else if let Ok(n) = arg.parse::<usize>() {
            threads = n;
        } else {
            panic!("unrecognised argument {arg:?}");
        }
    }
    let config = SystemConfig::default();
    if smoke {
        adjoint_smoke(&config);
        return;
    }
    let p = plant(&config);
    std::fs::create_dir_all("results").expect("results dir");
    let sink = JsonlSink::create("results/perf_report_telemetry.jsonl").expect("telemetry file");

    println!(
        "{:<8} {:>11} {:>11} {:>11} {:>12} {:>12} {:>7} {:>7}",
        "horizon", "serial_ms", "par_ms", "adj_ms", "fd_ro/solve", "adj_ro/solve", "par_x", "adj_x"
    );
    let mut rows = Vec::new();
    for horizon in HORIZONS {
        let loads: Vec<Watts> = (0..horizon)
            .map(|k| Watts::new(20_000.0 + 40_000.0 * ((k % 5) as f64 / 4.0)))
            .collect();
        let serial = run_mode(&p, &loads, horizon, GradientMode::Serial, &sink);
        let parallel = run_mode(
            &p,
            &loads,
            horizon,
            GradientMode::Parallel { threads },
            &sink,
        );
        let adjoint = run_mode(&p, &loads, horizon, GradientMode::Adjoint, &sink);
        assert_eq!(
            serial.cap_bus.to_bits(),
            parallel.cap_bus.to_bits(),
            "horizon {horizon}: parallel decision diverged from serial"
        );
        assert_eq!(serial.cool_duty.to_bits(), parallel.cool_duty.to_bits());
        assert!(adjoint.cap_bus.is_finite() && adjoint.cool_duty.is_finite());
        let speedup = serial.mean_ms / parallel.mean_ms;
        let adj_speedup = serial.mean_ms / adjoint.mean_ms;
        let rollout_reduction = serial.rollouts_per_solve / adjoint.rollouts_per_solve;
        println!(
            "{:<8} {:>11.3} {:>11.3} {:>11.3} {:>12.0} {:>12.1} {:>7.2} {:>7.2}",
            horizon,
            serial.mean_ms,
            parallel.mean_ms,
            adjoint.mean_ms,
            serial.rollouts_per_solve,
            adjoint.rollouts_per_solve,
            speedup,
            adj_speedup
        );
        let mode_json = |s: &ModeStats| {
            format!(
                "{{ \"mean_ms\": {:.4}, \"min_ms\": {:.4}, \"rollouts_per_sec\": {:.0}, \"rollouts_per_solve\": {:.1} }}",
                s.mean_ms, s.min_ms, s.rollouts_per_sec, s.rollouts_per_solve
            )
        };
        rows.push(format!(
            concat!(
                "    {{\n",
                "      \"horizon\": {},\n",
                "      \"serial\": {},\n",
                "      \"parallel\": {},\n",
                "      \"adjoint\": {},\n",
                "      \"speedup\": {:.3},\n",
                "      \"fd_vs_adjoint_speedup\": {:.3},\n",
                "      \"rollout_reduction\": {:.1}\n",
                "    }}"
            ),
            horizon,
            mode_json(&serial),
            mode_json(&parallel),
            mode_json(&adjoint),
            speedup,
            adj_speedup,
            rollout_reduction
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"mpc_solve_gradient_modes\",\n",
            "  \"solves_per_mode\": {},\n",
            "  \"cpu_cores\": {},\n",
            "  \"threads\": {},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        REPS,
        cores,
        threads,
        rows.join(",\n")
    );
    std::fs::write("BENCH_mpc.json", &json).expect("write BENCH_mpc.json");
    sink.flush();
    println!("\nwrote BENCH_mpc.json ({threads} threads on {cores} cores)");
    println!("wrote results/perf_report_telemetry.jsonl (warm-up solve traces)");
}
