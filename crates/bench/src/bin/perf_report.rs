//! Performance trajectory for the MPC hot path: serial vs parallel
//! finite-difference gradients across horizon lengths.
//!
//! Runs warm-started `Mpc::solve` repetitions at horizons {12, 24, 48}
//! in [`GradientMode::Serial`] and [`GradientMode::Parallel`] and writes
//! `BENCH_mpc.json` (per-solve latency, rollouts/second, speedup) so
//! later changes have a baseline to compare against.
//!
//! Usage: `cargo run --release -p otem-bench --bin perf_report -- [threads]`
//! (thread count defaults to the machine's available parallelism). The
//! two modes produce bit-identical decisions — asserted here on every
//! repetition — so the comparison is purely about wall time.

use otem::mpc::{Mpc, MpcConfig, MpcPlant};
use otem::SystemConfig;
use otem_hees::HybridHees;
use otem_solver::GradientMode;
use otem_telemetry::{JsonlSink, Sink};
use otem_thermal::{CoolingPlant, ThermalModel, ThermalState};
use otem_units::{Kelvin, Ratio, Seconds, Watts};
use std::time::Instant;

const HORIZONS: [usize; 3] = [12, 24, 48];
const REPS: usize = 8;

fn plant(config: &SystemConfig) -> MpcPlant {
    let mut hees = HybridHees::ev_default(config.capacitance).unwrap();
    hees.set_state(Ratio::new(0.8), Ratio::new(0.6));
    MpcPlant {
        hees,
        thermal: ThermalModel::new(config.thermal_active).unwrap(),
        plant: CoolingPlant::new(config.plant).unwrap(),
        state: ThermalState::uniform(Kelvin::from_celsius(33.0)),
        aging: config.aging,
        soc_min: config.soc_min,
        soe_min: config.soe_min,
        battery_power_max: config.battery_power_max,
        cap_power_max: config.cap_power_max,
    }
}

struct ModeStats {
    mean_ms: f64,
    min_ms: f64,
    rollouts_per_sec: f64,
    /// First decision, for the cross-mode parity check.
    cap_bus: f64,
    cool_duty: f64,
}

fn run_mode(
    p: &MpcPlant,
    loads: &[Watts],
    horizon: usize,
    mode: GradientMode,
    sink: &dyn Sink,
) -> ModeStats {
    let mut mpc = Mpc::new(MpcConfig {
        horizon,
        gradient_mode: mode,
        ..MpcConfig::default()
    });
    let dt = Seconds::new(1.0);
    // Warm-up solve: populates the workspace pool and the warm start, so
    // the timed repetitions measure the steady state. Only this solve is
    // traced — the timed loop below runs unobserved so the telemetry
    // writer cannot pollute the latency numbers.
    let first = mpc.solve_with(p, loads, dt, sink);
    let rollouts_before = mpc.rollouts();
    let mut latencies_ms = Vec::with_capacity(REPS);
    let started = Instant::now();
    for _ in 0..REPS {
        let t0 = Instant::now();
        let d = mpc.solve(p, loads, dt);
        latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        assert!(d.cap_bus.is_finite(), "solve produced a non-finite command");
    }
    let elapsed = started.elapsed().as_secs_f64();
    let rollouts = mpc.rollouts() - rollouts_before;
    ModeStats {
        mean_ms: latencies_ms.iter().sum::<f64>() / REPS as f64,
        min_ms: latencies_ms.iter().copied().fold(f64::INFINITY, f64::min),
        rollouts_per_sec: rollouts as f64 / elapsed,
        cap_bus: first.cap_bus.value(),
        cool_duty: first.cool_duty,
    }
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(cores);
    let config = SystemConfig::default();
    let p = plant(&config);
    std::fs::create_dir_all("results").expect("results dir");
    let sink = JsonlSink::create("results/perf_report_telemetry.jsonl").expect("telemetry file");

    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>14} {:>9}",
        "horizon", "serial_ms", "par_ms", "serial_ro/s", "par_ro/s", "speedup"
    );
    let mut rows = Vec::new();
    for horizon in HORIZONS {
        let loads: Vec<Watts> = (0..horizon)
            .map(|k| Watts::new(20_000.0 + 40_000.0 * ((k % 5) as f64 / 4.0)))
            .collect();
        let serial = run_mode(&p, &loads, horizon, GradientMode::Serial, &sink);
        let parallel = run_mode(
            &p,
            &loads,
            horizon,
            GradientMode::Parallel { threads },
            &sink,
        );
        assert_eq!(
            serial.cap_bus.to_bits(),
            parallel.cap_bus.to_bits(),
            "horizon {horizon}: parallel decision diverged from serial"
        );
        assert_eq!(serial.cool_duty.to_bits(), parallel.cool_duty.to_bits());
        let speedup = serial.mean_ms / parallel.mean_ms;
        println!(
            "{:<8} {:>12.3} {:>12.3} {:>14.0} {:>14.0} {:>9.2}",
            horizon,
            serial.mean_ms,
            parallel.mean_ms,
            serial.rollouts_per_sec,
            parallel.rollouts_per_sec,
            speedup
        );
        rows.push(format!(
            concat!(
                "    {{\n",
                "      \"horizon\": {},\n",
                "      \"serial\": {{ \"mean_ms\": {:.4}, \"min_ms\": {:.4}, \"rollouts_per_sec\": {:.0} }},\n",
                "      \"parallel\": {{ \"mean_ms\": {:.4}, \"min_ms\": {:.4}, \"rollouts_per_sec\": {:.0} }},\n",
                "      \"speedup\": {:.3}\n",
                "    }}"
            ),
            horizon,
            serial.mean_ms,
            serial.min_ms,
            serial.rollouts_per_sec,
            parallel.mean_ms,
            parallel.min_ms,
            parallel.rollouts_per_sec,
            speedup
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"mpc_solve_serial_vs_parallel\",\n",
            "  \"solves_per_mode\": {},\n",
            "  \"cpu_cores\": {},\n",
            "  \"threads\": {},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        REPS,
        cores,
        threads,
        rows.join(",\n")
    );
    std::fs::write("BENCH_mpc.json", &json).expect("write BENCH_mpc.json");
    sink.flush();
    println!("\nwrote BENCH_mpc.json ({threads} threads on {cores} cores)");
    println!("wrote results/perf_report_telemetry.jsonl (warm-up solve traces)");
}
