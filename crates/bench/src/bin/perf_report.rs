//! Performance trajectory for the MPC hot path: serial vs parallel
//! finite-difference gradients, the reverse-mode adjoint gradient, and
//! Gauss-Newton on the adjoint tape, across horizon lengths.
//!
//! Runs warm-started `Mpc::solve` repetitions at horizons {12, 24, 48}
//! in [`GradientMode::Serial`], [`GradientMode::Parallel`] and
//! [`GradientMode::Adjoint`] for the latency table, then re-runs
//! Adjoint vs [`GradientMode::GaussNewton`] under a raised iteration
//! budget to measure *iterations to tolerance*, and writes
//! `BENCH_mpc.json` (per-solve latency, rollouts/second, solves/second,
//! iteration counts, solver-outcome distributions, speedups) so later
//! changes have a baseline to compare against.
//!
//! Usage:
//! `cargo run --release -p otem-bench --bin perf_report -- [threads] [--gradient adjoint|gauss-newton] [--batched]`
//! (thread count defaults to the machine's available parallelism).
//! `--gradient adjoint` runs a quick adjoint-only smoke — used by
//! `scripts/tier1.sh` — that asserts the per-solve rollout count stays
//! horizon-independent; `--gradient gauss-newton` runs a second-order
//! smoke asserting certified convergence in strictly fewer iterations
//! than first-order descent; `--batched` runs the SoA line-search smoke
//! asserting the batched ladder's decisions are bit-identical to the
//! scalar ladder's before timing the two. No smoke rewrites
//! `BENCH_mpc.json`.
//!
//! The two FD modes produce bit-identical decisions — asserted here on
//! every repetition — so that comparison is purely about wall time. The
//! adjoint differentiates the executed clamp branch exactly instead of
//! sampling across it, so its decisions are *not* asserted bit-identical
//! to FD; its correctness contract lives in `tests/gradient_parity.rs`
//! and `tests/golden_traces.rs`.

use otem::mpc::{Mpc, MpcConfig, MpcPlant};
use otem::SystemConfig;
use otem_hees::HybridHees;
use otem_solver::{GradientMode, SolverOutcome};
use otem_telemetry::{JsonlSink, MetricsRegistry, NullSink, Sink};
use otem_thermal::{CoolingPlant, ThermalModel, ThermalState};
use otem_units::{Kelvin, Ratio, Seconds, Watts};
use std::time::Instant;

const HORIZONS: [usize; 3] = [12, 24, 48];
const REPS: usize = 8;

/// Ladder width for the batched line-search rows: deep enough to cover
/// the whole backtracking ladder in one SoA sweep at the default
/// solver settings.
const BATCH_WIDTH: usize = 8;

/// Iteration budget for the iterations-to-tolerance comparison: high
/// enough that termination is decided by convergence, not the cap.
const TOL_BUDGET: usize = 400;

fn plant(config: &SystemConfig) -> MpcPlant {
    let mut hees = HybridHees::ev_default(config.capacitance).unwrap();
    hees.set_state(Ratio::new(0.8), Ratio::new(0.6));
    MpcPlant {
        hees,
        thermal: ThermalModel::new(config.thermal_active).unwrap(),
        plant: CoolingPlant::new(config.plant).unwrap(),
        state: ThermalState::uniform(Kelvin::from_celsius(33.0)),
        aging: config.aging,
        soc_min: config.soc_min,
        soe_min: config.soe_min,
        battery_power_max: config.battery_power_max,
        cap_power_max: config.cap_power_max,
    }
}

/// Count of timed solves by solver outcome — the full termination
/// distribution, recorded per mode per horizon.
#[derive(Default)]
struct OutcomeCounts {
    converged: u64,
    budget_exhausted: u64,
    stalled: u64,
    non_finite: u64,
    deadline_reached: u64,
}

impl OutcomeCounts {
    fn record(&mut self, outcome: SolverOutcome) {
        match outcome {
            SolverOutcome::Converged => self.converged += 1,
            SolverOutcome::BudgetExhausted => self.budget_exhausted += 1,
            SolverOutcome::Stalled => self.stalled += 1,
            SolverOutcome::NonFinite => self.non_finite += 1,
            SolverOutcome::DeadlineReached => self.deadline_reached += 1,
        }
    }

    fn json(&self) -> String {
        format!(
            "{{ \"converged\": {}, \"budget_exhausted\": {}, \"stalled\": {}, \
             \"non_finite\": {}, \"deadline_reached\": {} }}",
            self.converged,
            self.budget_exhausted,
            self.stalled,
            self.non_finite,
            self.deadline_reached
        )
    }

    /// Folds this distribution into `registry` under the same
    /// `otem_solve_outcome_total{mode,outcome}` family the serving
    /// layer exports, so BENCH_mpc.json and live scrapes read
    /// identically.
    fn fold_into(&self, registry: &MetricsRegistry, mode: GradientMode) {
        const HELP: &str = "MPC solve outcomes by gradient mode across the timed solves.";
        for (outcome, n) in [
            ("converged", self.converged),
            ("budget_exhausted", self.budget_exhausted),
            ("stalled", self.stalled),
            ("non_finite", self.non_finite),
            ("deadline_reached", self.deadline_reached),
        ] {
            registry
                .counter(
                    "otem_solve_outcome_total",
                    HELP,
                    &[("mode", mode.name()), ("outcome", outcome)],
                )
                .add(n);
        }
    }
}

struct ModeStats {
    mean_ms: f64,
    min_ms: f64,
    rollouts_per_sec: f64,
    rollouts_per_solve: f64,
    solves_per_sec: f64,
    /// Of the rollouts above, how many per solve went through the SoA
    /// batch kernel (zero for scalar line searches).
    batched_rollouts_per_solve: f64,
    mean_iterations: f64,
    outcomes: OutcomeCounts,
    /// Outcome of the last timed solve (the fully warm-started one).
    last_outcome: SolverOutcome,
    /// First decision, for the cross-mode parity check.
    cap_bus: f64,
    cool_duty: f64,
}

fn run_mode(
    p: &MpcPlant,
    loads: &[Watts],
    horizon: usize,
    mode: GradientMode,
    iterations: usize,
    batch: usize,
    sink: &dyn Sink,
) -> ModeStats {
    let mut mpc = Mpc::new(MpcConfig {
        horizon,
        gradient_mode: mode,
        solver_iterations: iterations,
        batch_line_search: batch,
        ..MpcConfig::default()
    });
    let dt = Seconds::new(1.0);
    // Warm-up solve: populates the workspace pool and the warm start, so
    // the timed repetitions measure the steady state. Only this solve is
    // traced — the timed loop below runs unobserved so the telemetry
    // writer cannot pollute the latency numbers.
    let first = mpc.solve_with(p, loads, dt, sink);
    let rollouts_before = mpc.rollouts();
    let batched_before = mpc.batched_rollouts();
    let mut latencies_ms = Vec::with_capacity(REPS);
    let mut outcomes = OutcomeCounts::default();
    let mut iters_total = 0usize;
    let mut last_outcome = first.outcome;
    let started = Instant::now();
    for _ in 0..REPS {
        let t0 = Instant::now();
        let d = mpc.solve(p, loads, dt);
        latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        assert!(d.cap_bus.is_finite(), "solve produced a non-finite command");
        outcomes.record(d.outcome);
        iters_total += d.iterations;
        last_outcome = d.outcome;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let rollouts = mpc.rollouts() - rollouts_before;
    let batched_rollouts = mpc.batched_rollouts() - batched_before;
    ModeStats {
        mean_ms: latencies_ms.iter().sum::<f64>() / REPS as f64,
        min_ms: latencies_ms.iter().copied().fold(f64::INFINITY, f64::min),
        rollouts_per_sec: rollouts as f64 / elapsed,
        rollouts_per_solve: rollouts as f64 / REPS as f64,
        solves_per_sec: REPS as f64 / elapsed,
        batched_rollouts_per_solve: batched_rollouts as f64 / REPS as f64,
        mean_iterations: iters_total as f64 / REPS as f64,
        outcomes,
        last_outcome,
        cap_bus: first.cap_bus.value(),
        cool_duty: first.cool_duty,
    }
}

/// Adjoint-only smoke (`--gradient adjoint`): a quick assertion that the
/// tape gradient's per-solve rollout count is small and does not grow
/// with the horizon — the property the adjoint exists for. FD needs
/// `4·horizon` rollouts *per gradient* (≥ 1440/solve at horizon 12 with
/// the 30-iteration default); the adjoint needs one taped rollout per
/// gradient, so a generous `8·iterations` ceiling still separates the
/// two by an order of magnitude.
fn adjoint_smoke(config: &SystemConfig) {
    let p = plant(config);
    let iterations = MpcConfig::default().solver_iterations;
    let ceiling = (8 * iterations) as f64;
    println!(
        "{:<8} {:>12} {:>14} {:>14}",
        "horizon", "adjoint_ms", "adj_ro/s", "adj_ro/solve"
    );
    for horizon in HORIZONS {
        let loads: Vec<Watts> = (0..horizon)
            .map(|k| Watts::new(20_000.0 + 40_000.0 * ((k % 5) as f64 / 4.0)))
            .collect();
        let adj = run_mode(
            &p,
            &loads,
            horizon,
            GradientMode::Adjoint,
            iterations,
            0,
            &NullSink,
        );
        println!(
            "{:<8} {:>12.3} {:>14.0} {:>14.1}",
            horizon, adj.mean_ms, adj.rollouts_per_sec, adj.rollouts_per_solve
        );
        assert!(
            adj.rollouts_per_solve < ceiling,
            "horizon {horizon}: {} rollouts/solve — adjoint gradient is \
             paying per-coordinate rollouts (FD would need ≥ {})",
            adj.rollouts_per_solve,
            4 * horizon * iterations
        );
    }
    println!("\nadjoint smoke: rollouts/solve horizon-independent, all decisions finite");
}

/// Gauss-Newton smoke (`--gradient gauss-newton`): under a raised
/// iteration budget at horizon 12, the tape-curvature mode must reach
/// *certified* convergence once warm-started, in strictly fewer
/// iterations than first-order adjoint descent spends on the same
/// problem — the property the mode exists for.
fn gauss_newton_smoke(config: &SystemConfig) {
    let p = plant(config);
    let horizon = 12;
    let loads: Vec<Watts> = (0..horizon)
        .map(|k| Watts::new(20_000.0 + 40_000.0 * ((k % 5) as f64 / 4.0)))
        .collect();
    let adj = run_mode(
        &p,
        &loads,
        horizon,
        GradientMode::Adjoint,
        TOL_BUDGET,
        0,
        &NullSink,
    );
    let gn = run_mode(
        &p,
        &loads,
        horizon,
        GradientMode::GaussNewton,
        TOL_BUDGET,
        0,
        &NullSink,
    );
    println!(
        "horizon {horizon}: adjoint {:.1} it/solve ({}), gauss-newton {:.1} it/solve ({})",
        adj.mean_iterations,
        adj.outcomes.json(),
        gn.mean_iterations,
        gn.outcomes.json()
    );
    assert_eq!(
        gn.last_outcome,
        SolverOutcome::Converged,
        "warm-started Gauss-Newton must certify convergence"
    );
    assert!(
        gn.mean_iterations < adj.mean_iterations,
        "Gauss-Newton used {:.1} iterations/solve vs adjoint's {:.1} — \
         the tape curvature bought nothing",
        gn.mean_iterations,
        adj.mean_iterations
    );
    println!("\ngauss-newton smoke: converged in fewer iterations than first-order descent");
}

/// Batched line-search smoke (`--batched`): the SoA kernel must change
/// no bits — for every horizon, gradient mode, and ladder width the
/// batched solver's decisions are asserted bit-identical to the scalar
/// ladder's — and only then is throughput timed, with the ratio
/// reported honestly whichever way it lands.
fn batched_smoke(config: &SystemConfig) {
    let p = plant(config);
    let iterations = MpcConfig::default().solver_iterations;
    println!(
        "{:<8} {:<13} {:>6} {:>12} {:>12} {:>8}",
        "horizon", "mode", "width", "scalar_ro/s", "batch_ro/s", "ratio"
    );
    for horizon in HORIZONS {
        let loads: Vec<Watts> = (0..horizon)
            .map(|k| Watts::new(20_000.0 + 40_000.0 * ((k % 5) as f64 / 4.0)))
            .collect();
        for mode in [GradientMode::Adjoint, GradientMode::GaussNewton] {
            let scalar = run_mode(&p, &loads, horizon, mode, iterations, 0, &NullSink);
            for width in [4usize, 8] {
                let batched = run_mode(&p, &loads, horizon, mode, iterations, width, &NullSink);
                assert_eq!(
                    scalar.cap_bus.to_bits(),
                    batched.cap_bus.to_bits(),
                    "horizon {horizon} {}: width-{width} batched cap_bus diverged from scalar",
                    mode.name()
                );
                assert_eq!(
                    scalar.cool_duty.to_bits(),
                    batched.cool_duty.to_bits(),
                    "horizon {horizon} {}: width-{width} batched cool_duty diverged from scalar",
                    mode.name()
                );
                assert!(
                    batched.batched_rollouts_per_solve > 0.0,
                    "horizon {horizon} {}: width-{width} run never hit the batch kernel",
                    mode.name()
                );
                assert_eq!(
                    scalar.batched_rollouts_per_solve, 0.0,
                    "scalar run leaked into the batch kernel"
                );
                println!(
                    "{:<8} {:<13} {:>6} {:>12.0} {:>12.0} {:>8.2}",
                    horizon,
                    mode.name(),
                    width,
                    scalar.rollouts_per_sec,
                    batched.rollouts_per_sec,
                    batched.rollouts_per_sec / scalar.rollouts_per_sec
                );
            }
        }
    }
    println!("\nbatched smoke: ladder decisions bit-identical to scalar at every width");
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut threads = cores;
    let mut smoke: Option<&str> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--gradient" {
            match args.next().as_deref() {
                Some("adjoint") => smoke = Some("adjoint"),
                Some("gauss-newton") => smoke = Some("gauss-newton"),
                Some("fd") | Some("all") => smoke = None,
                other => {
                    panic!("--gradient expects adjoint|gauss-newton|fd|all, got {other:?}")
                }
            }
        } else if arg == "--batched" {
            smoke = Some("batched");
        } else if let Ok(n) = arg.parse::<usize>() {
            threads = n;
        } else {
            panic!("unrecognised argument {arg:?}");
        }
    }
    let config = SystemConfig::default();
    match smoke {
        Some("adjoint") => {
            adjoint_smoke(&config);
            return;
        }
        Some("batched") => {
            batched_smoke(&config);
            return;
        }
        Some(_) => {
            gauss_newton_smoke(&config);
            return;
        }
        None => {}
    }
    let p = plant(&config);
    std::fs::create_dir_all("results").expect("results dir");
    let sink = JsonlSink::create("results/perf_report_telemetry.jsonl").expect("telemetry file");

    let default_iters = MpcConfig::default().solver_iterations;
    println!(
        "{:<8} {:>11} {:>11} {:>11} {:>11} {:>8} {:>8} {:>7} {:>7}",
        "horizon", "serial_ms", "par_ms", "adj_ms", "gn_ms", "adj_it", "gn_it", "par_x", "adj_x"
    );
    // Every mode's outcome distribution also folds into one registry
    // snapshot, embedded in the report as the `metrics` object — the
    // same family (and JSON shape) the serving layer exports.
    let registry = MetricsRegistry::new();
    let mut rows = Vec::new();
    for horizon in HORIZONS {
        let loads: Vec<Watts> = (0..horizon)
            .map(|k| Watts::new(20_000.0 + 40_000.0 * ((k % 5) as f64 / 4.0)))
            .collect();
        let serial = run_mode(
            &p,
            &loads,
            horizon,
            GradientMode::Serial,
            default_iters,
            0,
            &sink,
        );
        let parallel = run_mode(
            &p,
            &loads,
            horizon,
            GradientMode::Parallel { threads },
            default_iters,
            0,
            &sink,
        );
        let adjoint = run_mode(
            &p,
            &loads,
            horizon,
            GradientMode::Adjoint,
            default_iters,
            0,
            &sink,
        );
        // Iterations-to-tolerance: same problem, raised budget, so the
        // iteration count — not the cap — decides termination.
        let adjoint_tol = run_mode(
            &p,
            &loads,
            horizon,
            GradientMode::Adjoint,
            TOL_BUDGET,
            0,
            &sink,
        );
        let gauss_newton = run_mode(
            &p,
            &loads,
            horizon,
            GradientMode::GaussNewton,
            TOL_BUDGET,
            0,
            &sink,
        );
        // Batched line search: the same adjoint solve with the ladder
        // evaluated through the SoA kernel. Decisions are asserted
        // bit-identical below, so this row is purely about throughput.
        let adjoint_batched = run_mode(
            &p,
            &loads,
            horizon,
            GradientMode::Adjoint,
            default_iters,
            BATCH_WIDTH,
            &sink,
        );
        serial.outcomes.fold_into(&registry, GradientMode::Serial);
        parallel
            .outcomes
            .fold_into(&registry, GradientMode::Parallel { threads });
        adjoint.outcomes.fold_into(&registry, GradientMode::Adjoint);
        adjoint_tol
            .outcomes
            .fold_into(&registry, GradientMode::Adjoint);
        gauss_newton
            .outcomes
            .fold_into(&registry, GradientMode::GaussNewton);
        assert_eq!(
            serial.cap_bus.to_bits(),
            parallel.cap_bus.to_bits(),
            "horizon {horizon}: parallel decision diverged from serial"
        );
        assert_eq!(serial.cool_duty.to_bits(), parallel.cool_duty.to_bits());
        assert_eq!(
            adjoint.cap_bus.to_bits(),
            adjoint_batched.cap_bus.to_bits(),
            "horizon {horizon}: batched line-search decision diverged from scalar"
        );
        assert_eq!(
            adjoint.cool_duty.to_bits(),
            adjoint_batched.cool_duty.to_bits()
        );
        assert!(
            adjoint_batched.batched_rollouts_per_solve > 0.0,
            "horizon {horizon}: batched row never hit the batch kernel"
        );
        assert!(adjoint.cap_bus.is_finite() && adjoint.cool_duty.is_finite());
        assert!(gauss_newton.cap_bus.is_finite() && gauss_newton.cool_duty.is_finite());
        assert!(
            gauss_newton.mean_iterations < adjoint_tol.mean_iterations,
            "horizon {horizon}: Gauss-Newton used {:.1} iterations/solve vs \
             first-order adjoint's {:.1} under the same {TOL_BUDGET}-iteration budget",
            gauss_newton.mean_iterations,
            adjoint_tol.mean_iterations
        );
        let speedup = serial.mean_ms / parallel.mean_ms;
        let adj_speedup = serial.mean_ms / adjoint.mean_ms;
        let rollout_reduction = serial.rollouts_per_solve / adjoint.rollouts_per_solve;
        let iteration_reduction = adjoint_tol.mean_iterations / gauss_newton.mean_iterations;
        let batched_rollout_ratio = adjoint_batched.rollouts_per_sec / adjoint.rollouts_per_sec;
        println!(
            "{:<8} {:>11.3} {:>11.3} {:>11.3} {:>11.3} {:>8.1} {:>8.1} {:>7.2} {:>7.2}",
            horizon,
            serial.mean_ms,
            parallel.mean_ms,
            adjoint.mean_ms,
            gauss_newton.mean_ms,
            adjoint_tol.mean_iterations,
            gauss_newton.mean_iterations,
            speedup,
            adj_speedup
        );
        println!(
            "          batched line search @ {horizon}: width {BATCH_WIDTH}, \
             {:.0} vs {:.0} rollouts/s ({batched_rollout_ratio:.2}x, bit-identical)",
            adjoint_batched.rollouts_per_sec, adjoint.rollouts_per_sec
        );
        let mode_json = |s: &ModeStats| {
            format!(
                "{{ \"mean_ms\": {:.4}, \"min_ms\": {:.4}, \"rollouts_per_sec\": {:.0}, \
                 \"rollouts_per_solve\": {:.1}, \"solves_per_sec\": {:.1}, \
                 \"batched_rollouts_per_solve\": {:.1}, \
                 \"mean_iterations\": {:.1}, \"outcomes\": {} }}",
                s.mean_ms,
                s.min_ms,
                s.rollouts_per_sec,
                s.rollouts_per_solve,
                s.solves_per_sec,
                s.batched_rollouts_per_solve,
                s.mean_iterations,
                s.outcomes.json()
            )
        };
        rows.push(format!(
            concat!(
                "    {{\n",
                "      \"horizon\": {},\n",
                "      \"serial\": {},\n",
                "      \"parallel\": {},\n",
                "      \"adjoint\": {},\n",
                "      \"adjoint_tol_budget\": {},\n",
                "      \"gauss_newton\": {},\n",
                "      \"adjoint_batched\": {},\n",
                "      \"speedup\": {:.3},\n",
                "      \"fd_vs_adjoint_speedup\": {:.3},\n",
                "      \"rollout_reduction\": {:.1},\n",
                "      \"gn_iteration_reduction\": {:.2},\n",
                "      \"batched_rollout_ratio\": {:.3}\n",
                "    }}"
            ),
            horizon,
            mode_json(&serial),
            mode_json(&parallel),
            mode_json(&adjoint),
            mode_json(&adjoint_tol),
            mode_json(&gauss_newton),
            mode_json(&adjoint_batched),
            speedup,
            adj_speedup,
            rollout_reduction,
            iteration_reduction,
            batched_rollout_ratio
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"mpc_solve_gradient_modes\",\n",
            "  \"solves_per_mode\": {},\n",
            "  \"tol_budget\": {},\n",
            "  \"cpu_cores\": {},\n",
            "  \"threads\": {},\n",
            "  \"resolved_threads\": {},\n",
            "  \"batch_line_search_width\": {},\n",
            "  \"results\": [\n{}\n  ],\n",
            "  \"metrics\": {}\n",
            "}}\n"
        ),
        REPS,
        TOL_BUDGET,
        cores,
        threads,
        otem_solver::resolve_threads(threads),
        BATCH_WIDTH,
        rows.join(",\n"),
        registry.snapshot().render_json()
    );
    std::fs::write("BENCH_mpc.json", &json).expect("write BENCH_mpc.json");
    sink.flush();
    println!("\nwrote BENCH_mpc.json ({threads} threads on {cores} cores)");
    println!("wrote results/perf_report_telemetry.jsonl (warm-up solve traces)");
}
