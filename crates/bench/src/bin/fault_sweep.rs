//! **Fault sweep** — robustness campaign for the degradation supervisor.
//!
//! Runs supervised and unsupervised OTEM through identical seeded fault
//! campaigns (corrupted forecasts, stuck pump under load spikes, starved
//! solver) on the US06 city-EV stress rig, and reports what each fault
//! costs: capacity loss, peak battery temperature, unserved energy, and
//! how often the supervisor's ladder fired.
//!
//! ```sh
//! cargo run --release -p otem-bench --bin fault_sweep
//! ```
//!
//! Machine-readable results stream to `results/fault_sweep.jsonl`.

use otem::mpc::MpcConfig;
use otem::policy::Otem;
use otem::{Simulator, SupervisedOtem, SystemConfig};
use otem_bench::{fan_indexed, stress_config, stress_trace};
use otem_drivecycle::StandardCycle;
use otem_faults::{FaultKind, FaultPlan, FaultedController};
use otem_telemetry::MemorySink;
use std::io::Write as _;

const SEED: u64 = 0xFA_017;

fn mpc() -> MpcConfig {
    MpcConfig {
        horizon: 8,
        solver_iterations: 15,
        ..MpcConfig::default()
    }
}

fn campaigns() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("nominal", FaultPlan::new(SEED)),
        (
            "forecast_nan",
            FaultPlan::new(SEED).inject(FaultKind::ForecastCorrupt, 30, 60),
        ),
        (
            "pump_stuck_spikes",
            FaultPlan::new(SEED)
                .inject(FaultKind::PumpStuck, 20, 80)
                .inject(FaultKind::LoadSpike { power_w: 300_000.0 }, 40, 50),
        ),
        (
            "solver_starved",
            FaultPlan::new(SEED).inject(FaultKind::SolverStarvation { max_iterations: 0 }, 30, 60),
        ),
        (
            "sensor_storm",
            FaultPlan::new(SEED)
                .inject(
                    FaultKind::SensorNoise {
                        temp_sigma_k: 1.5,
                        ratio_sigma: 0.01,
                    },
                    10,
                    110,
                )
                .inject(FaultKind::SensorBias { temp_k: -4.0 }, 60, 100),
        ),
    ]
}

struct Outcome {
    capacity_loss: f64,
    peak_temp_c: f64,
    unserved_j: f64,
    faults_injected: usize,
    rejected: u64,
    fallbacks: u64,
    rearms: u64,
}

fn run(
    config: &SystemConfig,
    trace: &otem_drivecycle::PowerTrace,
    plan: FaultPlan,
    supervised: bool,
) -> Outcome {
    let otem = Otem::with_mpc(config, mpc()).expect("valid controller");
    let sink = MemorySink::new();
    let sim = Simulator::new(config);

    let (result, rejected, fallbacks, rearms) = if supervised {
        let mut harness = FaultedController::new(SupervisedOtem::with_defaults(otem), plan);
        let result = sim.run_with(&mut harness, trace, &sink);
        let sup = harness.into_inner();
        (result, sup.rejected(), sup.fallbacks(), sup.rearms())
    } else {
        let mut harness = FaultedController::new(otem, plan);
        let result = sim.run_with(&mut harness, trace, &sink);
        (result, 0, 0, 0)
    };

    let dt = 1.0;
    let peak_temp_c = result
        .records
        .iter()
        .map(|r| r.state.battery_temp.to_celsius().value())
        .fold(f64::NEG_INFINITY, f64::max);
    let unserved_j = result
        .records
        .iter()
        .map(|r| r.hees.shortfall.value().max(0.0) * dt)
        .sum();

    Outcome {
        capacity_loss: result.capacity_loss(),
        peak_temp_c,
        unserved_j,
        faults_injected: sink.count_kind("fault_injected"),
        rejected,
        fallbacks,
        rearms,
    }
}

fn main() {
    let config = stress_config();
    let trace = stress_trace(StandardCycle::Us06, 1).expect("trace");

    std::fs::create_dir_all("results").expect("results dir");
    let mut jsonl = std::fs::File::create("results/fault_sweep.jsonl").expect("jsonl file");

    println!("# Fault sweep — supervised vs unsupervised OTEM, US06 (city-EV rig)");
    println!(
        "{:>18} {:>12} {:>10} {:>10} {:>12} {:>7} {:>9} {:>9} {:>7}",
        "campaign",
        "controller",
        "Q_loss",
        "Tpeak(°C)",
        "unserved(J)",
        "faults",
        "rejected",
        "fallback",
        "rearm"
    );

    // Each (campaign, controller) run is independent and seeded; fan
    // them across worker threads and emit rows in campaign order.
    let jobs: Vec<(&'static str, FaultPlan, bool)> = campaigns()
        .into_iter()
        .flat_map(|(name, plan)| {
            [false, true]
                .into_iter()
                .map(move |supervised| (name, plan.clone(), supervised))
        })
        .collect();
    let outcomes = fan_indexed(jobs, |_, (name, plan, supervised)| {
        (name, supervised, run(&config, &trace, plan, supervised))
    });

    for (name, supervised, o) in outcomes {
        {
            let controller = if supervised { "supervised" } else { "plain" };
            println!(
                "{:>18} {:>12} {:>10.3e} {:>10.2} {:>12.1} {:>7} {:>9} {:>9} {:>7}",
                name,
                controller,
                o.capacity_loss,
                o.peak_temp_c,
                o.unserved_j,
                o.faults_injected,
                o.rejected,
                o.fallbacks,
                o.rearms
            );
            writeln!(
                jsonl,
                "{{\"campaign\":\"{name}\",\"controller\":\"{controller}\",\
                 \"capacity_loss\":{:e},\"peak_temp_c\":{:.4},\"unserved_j\":{:.3},\
                 \"faults_injected\":{},\"rejected\":{},\"fallbacks\":{},\"rearms\":{}}}",
                o.capacity_loss,
                o.peak_temp_c,
                o.unserved_j,
                o.faults_injected,
                o.rejected,
                o.fallbacks,
                o.rearms
            )
            .expect("jsonl write");
        }
    }

    println!("\nReading: under faults the supervised controller must keep Tpeak bounded and");
    println!("finite with a nonzero fallback count; on the nominal campaign both rows match");
    println!("(the supervisor is bit-transparent when healthy).");
}
