//! **Fig. 7** — Temporal analysis of the TEB preparation: battery
//! temperature, ultracapacitor SoE and the EV power requests under OTEM
//! (US06 x3 on the city-EV stress rig, 25,000 F).
//!
//! The paper's claim: when OTEM sees large requests in the near future,
//! it allocates charge to the ultracapacitor (or pre-cools the battery)
//! *before* they arrive.
//!
//! ```sh
//! cargo run --release -p otem-bench --bin fig7_teb
//! ```

use otem_bench::{run, stress_config, stress_trace, Methodology};
use otem_drivecycle::StandardCycle;

fn main() {
    let config = stress_config();
    let trace = stress_trace(StandardCycle::Us06, 3).expect("trace");
    let r = run(Methodology::Otem, &config, &trace).expect("run");

    println!("# Fig. 7 — OTEM TEB preparation, US06 x3 (city-EV rig), 25,000 F");
    println!(
        "{:>7} {:>10} {:>9} {:>8} {:>11} {:>10}",
        "t(s)", "P_e (kW)", "T_b(°C)", "SoE(%)", "cap (kW)", "cool (kW)"
    );
    for (t, rec) in r.records.iter().enumerate().step_by(60) {
        println!(
            "{:>7} {:>10.1} {:>9.2} {:>8.1} {:>11.1} {:>10.2}",
            t,
            rec.load.value() / 1000.0,
            rec.state.battery_temp.to_celsius().value(),
            rec.state.soe.to_percent(),
            rec.hees.cap_internal.value() / 1000.0,
            rec.cooling_power.value() / 1000.0,
        );
    }

    println!("\n# trace shapes");
    let loads: Vec<f64> = r
        .records
        .iter()
        .map(|rec| rec.load.value() / 1000.0)
        .collect();
    let temps: Vec<f64> = r
        .battery_temps()
        .iter()
        .map(|t| t.to_celsius().value())
        .collect();
    let soes: Vec<f64> = r.soe_series().iter().map(|s| s * 100.0).collect();
    let cooling: Vec<f64> = r
        .records
        .iter()
        .map(|rec| rec.cooling_power.value() / 1000.0)
        .collect();
    println!(
        "{}",
        otem_bench::plot::labelled_sparkline("P_e (kW)", &loads, 72)
    );
    println!(
        "{}",
        otem_bench::plot::labelled_sparkline("T_b (°C)", &temps, 72)
    );
    println!(
        "{}",
        otem_bench::plot::labelled_sparkline("SoE (%)", &soes, 72)
    );
    println!(
        "{}",
        otem_bench::plot::labelled_sparkline("cool (kW)", &cooling, 72)
    );

    // TEB events, via the library's analysis module.
    let report = otem::analysis::teb_report(&r, &otem::analysis::TebCriteria::default());
    println!("\nTEB events:");
    println!(
        "  pre-charge steps ahead of a >25 kW peak : {}",
        report.precharge_events
    );
    println!(
        "  pre-cool steps ahead of a >25 kW peak   : {}",
        report.precool_events
    );
    println!(
        "  >25 kW peaks sharing load with the bank : {} ({:.0}% of peaks)",
        report.peaks_shared,
        report.peak_share_fraction() * 100.0
    );
    let energy = otem::analysis::energy_breakdown(&r);
    println!(
        "  energy: delivered {:.1} MJ, battery loss {:.2} MJ, converter loss {:.2} MJ, cooling {:.2} MJ",
        energy.delivered.value() / 1e6,
        energy.battery_loss.value() / 1e6,
        energy.converter_loss.value() / 1e6,
        energy.cooling.value() / 1e6
    );
    println!("\nShape check (paper): the bank is topped up before large requests and");
    println!("drains through them, keeping the HEES at its most efficient state.");
}
