//! Fleet-scale throughput benchmark: batched campaigns through the
//! sharded engine, plus a loopback round-trip section against the
//! serving layer. Writes `BENCH_fleet.json`.
//!
//! Usage:
//! `cargo run --release -p otem-bench --bin fleet_bench -- [flags]`
//!
//! | flag | effect |
//! |------|--------|
//! | `--smoke` | quick gate for `scripts/tier1.sh`: determinism across schedules/shards + a server round trip; writes nothing |
//! | `--chaos-smoke` | serving-layer robustness gate: malformed traffic, load shedding + retry, poisoned vehicle containment, graceful drain; writes nothing |
//! | `--obs-smoke` | observability gate: scrapes `/metrics`, validates the Prometheus exposition with the test-suite parser, checks `/metrics.json` and span sampling, and asserts a poisoned vehicle freezes a flight-recorder dump attributed to its request id; writes nothing |
//! | `--batch-smoke` | lockstep-engine gate: batched summaries and the fleet checksum must be bit-identical to the scalar engine across lane widths and schedules, a poisoned lane must drop out without perturbing its neighbours, and the batch metric families must surface on a live `/metrics`; only then is throughput timed; writes nothing |
//! | `--vehicles N` | campaign size for `--smoke` (default 64) |
//! | `--full` | adds the 100k-vehicle campaign to the report |
//! | `--seed S` | campaign family (default 42) |
//! | `--shards K` | worker count (default: available parallelism) |
//!
//! Every campaign row records vehicles/sec, steps/sec and the
//! per-vehicle latency tail (p50/p95/p99) under the work-stealing
//! scheduler; the smallest campaign also compares serial vs static vs
//! work-stealing wall time, and every row pins the fleet checksum so a
//! future change that alters any vehicle's record stream shows up as a
//! checksum diff in the committed report.

use otem::mpc::{Clock, VirtualClock};
use otem_fleet::client::{request, BackoffPolicy, RetryClient};
use otem_fleet::protocol::outcomes_json;
use otem_fleet::{
    Campaign, FleetEngine, FleetServer, Methodology, Schedule, ServerConfig, ServerHandle,
    VehicleSpec,
};
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

const SERVER_REQUESTS: usize = 24;
const SERVER_VEHICLES: usize = 32;

/// Lane width for the batched-engine rows: wide enough to amortise the
/// sweep overhead, narrow enough that the tail of a heterogeneous
/// campaign still fills most lanes.
const BATCH_LANES: usize = 8;

struct Args {
    smoke: bool,
    chaos_smoke: bool,
    obs_smoke: bool,
    batch_smoke: bool,
    full: bool,
    vehicles: usize,
    seed: u64,
    shards: usize,
}

fn parse_args() -> Args {
    let mut out = Args {
        smoke: false,
        chaos_smoke: false,
        obs_smoke: false,
        batch_smoke: false,
        full: false,
        vehicles: 64,
        seed: 42,
        shards: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs an integer value"))
        };
        match arg.as_str() {
            "--smoke" => out.smoke = true,
            "--chaos-smoke" => out.chaos_smoke = true,
            "--obs-smoke" => out.obs_smoke = true,
            "--batch-smoke" => out.batch_smoke = true,
            "--full" => out.full = true,
            "--vehicles" => out.vehicles = value("--vehicles") as usize,
            "--seed" => out.seed = value("--seed"),
            "--shards" => out.shards = (value("--shards") as usize).max(1),
            other => panic!("unrecognised argument {other:?}"),
        }
    }
    out
}

fn quantiles_json(latency: &otem_telemetry::Histogram) -> String {
    format!(
        "{{ \"p50\": {:.4}, \"p95\": {:.4}, \"p99\": {:.4} }}",
        latency.quantile(0.50),
        latency.quantile(0.95),
        latency.quantile(0.99)
    )
}

/// One loopback HTTP exchange; returns the response body lines.
fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect to fleet server");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("request written");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response read");
    let (head, payload) = response.split_once("\r\n\r\n").expect("http response");
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "{method} {path} failed: {head}"
    );
    payload.lines().map(str::to_owned).collect()
}

fn spawn_server(shards: usize) -> ServerHandle {
    FleetServer::new(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards,
        max_vehicles: 100_000,
        ..ServerConfig::default()
    })
    .spawn()
    .expect("bind loopback server")
}

/// The tier-1 gate: schedules and shard counts must not change a single
/// bit of any vehicle's summary, and the serving layer must round-trip.
fn smoke(args: &Args) {
    let campaign = Campaign::synthetic(args.vehicles, args.seed);
    let reference = FleetEngine::new(Schedule::Serial).run(&campaign);
    println!(
        "smoke: {} vehicles, {} steps, serial {:.2}s ({:.0} steps/s)",
        args.vehicles,
        reference.total_steps,
        reference.wall_s,
        reference.steps_per_sec()
    );
    for shards in [1usize, 4, 16] {
        for schedule in [
            Schedule::Static { shards },
            Schedule::WorkStealing { shards },
        ] {
            let report = FleetEngine::new(schedule).run(&campaign);
            assert_eq!(
                report.summaries, reference.summaries,
                "{schedule:?} diverged from the serial reference"
            );
            println!(
                "smoke: {:>7}x{:<2} OK  {:.2}s  checksum {:016x}",
                schedule.wire_name(),
                shards,
                report.wall_s,
                report.fleet_checksum()
            );
        }
    }

    // Loopback server round trip: simulate a small fleet and check the
    // served checksum against the in-process engine.
    let mut handle = spawn_server(2);
    let lines = http(handle.addr(), "GET", "/healthz", "");
    assert_eq!(lines, ["{\"status\":\"ok\"}"], "healthz");
    let body = format!("{{\"vehicles\":16,\"seed\":{}}}", args.seed);
    let lines = http(handle.addr(), "POST", "/simulate", &body);
    assert_eq!(lines.len(), 17, "16 summaries + fleet trailer");
    let local = FleetEngine::new(Schedule::Serial).run(&Campaign::synthetic(16, args.seed));
    let want = format!("\"fleet_checksum\":\"{:016x}\"", local.fleet_checksum());
    assert!(
        lines[16].contains(&want),
        "served checksum diverges from the engine: {}",
        lines[16]
    );
    let lines = http(handle.addr(), "POST", "/shutdown", "");
    assert_eq!(lines, ["{\"event\":\"shutdown\"}"], "shutdown ack");
    handle.shutdown();
    println!("smoke: server round trip OK (checksum matched, clean shutdown)");

    // Virtual-clock deadline smoke: deadline-constrained OTEM vehicles
    // on a deterministic clock must reproduce bit-for-bit across
    // schedules and actually exercise the anytime path.
    deadline_smoke(args.seed);
    println!("fleet smoke PASS");
}

/// Each clock read advances 40 µs of virtual time against a 100 µs
/// per-solve budget, so every vehicle hits the deadline path after a
/// couple of solver iterations — deterministically, regardless of host
/// load.
fn deadline_clock(_spec: &VehicleSpec) -> Arc<dyn Clock> {
    Arc::new(VirtualClock::with_tick(40_000))
}

fn deadline_smoke(seed: u64) {
    let mut campaign = Campaign::synthetic(4, seed);
    for spec in &mut campaign.vehicles {
        spec.methodology = Methodology::Otem;
        spec.mpc_deadline_us = 100;
    }
    let reference = FleetEngine::new(Schedule::Serial)
        .with_clock_factory(deadline_clock)
        .run(&campaign);
    assert!(
        reference.solve_outcomes.deadline_reached > 0,
        "virtual clock never tripped the 100 µs deadline: {:?}",
        reference.solve_outcomes
    );
    let stealing = FleetEngine::new(Schedule::WorkStealing { shards: 4 })
        .with_clock_factory(deadline_clock)
        .run(&campaign);
    assert_eq!(
        stealing.summaries, reference.summaries,
        "deadline-constrained summaries diverged across schedules"
    );
    assert_eq!(
        stealing.solve_outcomes, reference.solve_outcomes,
        "deadline-constrained outcome counts diverged across schedules"
    );
    println!(
        "smoke: virtual-clock deadline OK ({} of {} solves deadline-limited, bit-identical)",
        reference.solve_outcomes.deadline_reached,
        reference.solve_outcomes.total()
    );
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn spawn_chaos_server(workers: usize, queue_depth: usize, read_timeout_ms: u64) -> ServerHandle {
    FleetServer::new(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards: 2,
        workers,
        queue_depth,
        read_timeout_ms,
        write_timeout_ms: read_timeout_ms,
        drain_deadline_ms: 2_000,
        ..ServerConfig::default()
    })
    .spawn()
    .expect("bind chaos server")
}

/// Sends raw bytes, then reads to EOF and returns the HTTP status the
/// server answered with (`None` if the connection died first).
fn raw_status(addr: std::net::SocketAddr, payload: &[u8]) -> Option<u16> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .ok()?;
    stream.write_all(payload).ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    response.split_whitespace().nth(1)?.parse().ok()
}

/// The serving-layer robustness gate: a deterministic (seeded) abuse
/// schedule against a live server — malformed traffic, a poisoned
/// vehicle, queue-overflow shedding with a retrying client, and a drain
/// under concurrent load. `/healthz` must answer correctly after every
/// phase.
fn chaos_smoke(args: &Args) {
    use std::time::Duration;

    // Phase 1: malformed traffic. Each abuse draws the documented 4xx
    // and the server stays healthy afterwards.
    let mut handle = spawn_chaos_server(2, 8, 400);
    let addr = handle.addr();
    let flood = {
        let mut head = String::from("GET /healthz HTTP/1.1\r\n");
        for i in 0..100 {
            head.push_str(&format!("X-Flood-{i}: 1\r\n"));
        }
        head.push_str("\r\n");
        head
    };
    let mut abuses: Vec<(&str, String, Option<u16>)> = vec![
        ("garbage request line", "GARBAGE\r\n\r\n".into(), Some(400)),
        (
            "malformed content-length",
            "POST /simulate HTTP/1.1\r\nContent-Length: banana\r\n\r\n".into(),
            Some(400),
        ),
        (
            "oversized body",
            "POST /simulate HTTP/1.1\r\nContent-Length: 2000000\r\n\r\n".into(),
            Some(413),
        ),
        (
            "unknown route",
            "GET /nope HTTP/1.1\r\n\r\n".into(),
            Some(404),
        ),
        ("header flood", flood, Some(400)),
        (
            // The client stalls mid-head and waits: the read deadline
            // trips and the server cuts it off with 408.
            "stalled mid-head",
            "POST /simulate HTTP/1.1\r\nContent-Le".into(),
            Some(408),
        ),
    ];
    // Seeded schedule: the abuse order is deterministic for a given
    // --seed, and different seeds exercise different interleavings.
    let mut rng = args.seed ^ 0xc3a05;
    for i in (1..abuses.len()).rev() {
        let j = (splitmix64(&mut rng) as usize) % (i + 1);
        abuses.swap(i, j);
    }
    for (name, payload, want) in &abuses {
        let got = raw_status(addr, payload.as_bytes());
        if let Some(want) = want {
            assert_eq!(got, Some(*want), "{name}: wrong status");
        }
        let health = request(addr, "GET", "/healthz", "").expect("healthz after abuse");
        assert_eq!(health.status, 200, "{name}: server unhealthy after abuse");
        println!("chaos: {name:<24} -> {got:?}, healthz OK");
    }

    // Phase 2: poisoned vehicle. The campaign answers 200 with N−1
    // summaries plus one structured error record, and the server keeps
    // serving.
    let body = format!("{{\"vehicles\":4,\"seed\":{},\"poison_id\":2}}", args.seed);
    // The vehicle panic is contained by the engine but still reaches the
    // global panic hook, which would spray a backtrace into the gate's
    // output — silence the hook for just this request.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let resp = request(addr, "POST", "/simulate", &body).expect("poison campaign");
    std::panic::set_hook(prev_hook);
    assert_eq!(resp.status, 200, "poisoned campaign still answers 200");
    assert_eq!(resp.lines.len(), 5, "3 summaries + 1 error + trailer");
    let errors: Vec<&String> = resp
        .lines
        .iter()
        .filter(|l| l.starts_with("{\"event\":\"vehicle_error\""))
        .collect();
    assert_eq!(errors.len(), 1, "exactly one vehicle error");
    assert!(
        errors[0].contains("\"id\":2") && errors[0].contains("\"panicked\":true"),
        "structured error record: {}",
        errors[0]
    );
    assert!(
        resp.lines[4].contains("\"vehicle_panics\":1"),
        "trailer tallies the contained panic: {}",
        resp.lines[4]
    );
    assert_eq!(handle.vehicle_panics(), 1);
    let health = request(addr, "GET", "/healthz", "").expect("healthz after poison");
    assert_eq!(health.status, 200);
    handle.shutdown();
    println!("chaos: poisoned vehicle contained (3 summaries + 1 error record)");

    // Phase 3: load shedding. One worker + depth-1 queue, both occupied
    // by stalled clients — further connections draw an immediate 503
    // with a retry hint, and a retrying client converges once the
    // stalls time out.
    let mut handle = spawn_chaos_server(1, 1, 500);
    let addr = handle.addr();
    let stalls: Vec<TcpStream> = (0..2)
        .map(|_| TcpStream::connect(addr).expect("stall connects"))
        .collect();
    let mut saw_shed = false;
    for _ in 0..50 {
        match otem_fleet::client::request_with_timeout(
            addr,
            "GET",
            "/healthz",
            "",
            Some(Duration::from_millis(300)),
        ) {
            Ok(resp) if resp.status == 503 => {
                assert_eq!(
                    resp.retry_after_ms(),
                    Some(100),
                    "shed carries the retry hint: {:?}",
                    resp.lines
                );
                saw_shed = true;
                break;
            }
            _ => {}
        }
    }
    assert!(saw_shed, "saturated pool never shed");
    assert!(handle.shed() >= 1);
    let mut retry = RetryClient::new(
        addr,
        BackoffPolicy {
            base_ms: 100,
            cap_ms: 1_000,
            max_attempts: 10,
            seed: args.seed,
        },
    );
    let resp = retry.send("GET", "/healthz", "").expect("retry transport");
    assert_eq!(
        resp.status, 200,
        "retrying client converges once the stalls expire"
    );
    println!(
        "chaos: shed -> 503 + retry_after_ms, retry client OK in {} attempts",
        retry.last_attempts
    );
    drop(stalls);
    handle.shutdown();

    // Phase 4: graceful drain under load. Concurrent clients race a
    // shutdown; everything accepted before the drain finishes cleanly.
    let mut handle = spawn_chaos_server(2, 8, 1_000);
    let addr = handle.addr();
    let clients: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                otem_fleet::client::request_with_timeout(
                    addr,
                    "POST",
                    "/simulate",
                    &format!("{{\"vehicles\":2,\"seed\":{i}}}"),
                    Some(Duration::from_secs(10)),
                )
            })
        })
        .collect();
    // Give the accept loop a beat to enqueue them, then drain.
    std::thread::sleep(Duration::from_millis(50));
    handle.shutdown();
    let mut served = 0;
    for client in clients {
        match client.join().expect("client thread") {
            Ok(resp) if resp.status == 200 => {
                assert!(
                    resp.lines
                        .last()
                        .is_some_and(|l| l.contains("\"event\":\"fleet\"")),
                    "drained response is complete: {:?}",
                    resp.lines
                );
                served += 1;
            }
            // Shed while draining, or the connection raced the listener
            // closing — both are clean refusals, not hangs.
            Ok(resp) => assert_eq!(resp.status, 503, "unexpected status during drain"),
            Err(_) => {}
        }
    }
    assert!(served >= 1, "drain served the in-flight requests");
    println!("chaos: drain under load OK ({served}/4 served to completion)");
    println!("fleet chaos smoke PASS");
}

/// The observability gate for `scripts/tier1.sh`: boots a live server,
/// drives nominal traffic, scrapes `/metrics`, and validates the
/// exposition on the wire bytes with the same parser the property
/// suite round-trips through; checks `/metrics.json` still serves the
/// legacy JSON; arms span sampling through `/debug/trace`; then
/// injects a poisoned vehicle and asserts the flight recorder froze a
/// dump whose entries carry the poisoned request's correlation id.
fn obs_smoke(args: &Args) {
    use otem_telemetry::promparse::validate_exposition;

    let mut handle = spawn_chaos_server(2, 16, 5_000);
    let addr = handle.addr();

    // Nominal traffic first, so every hot family has samples on the
    // wire: a few campaigns, plus one 404 for the error counter.
    let body = format!("{{\"vehicles\":4,\"seed\":{}}}", args.seed);
    for _ in 0..3 {
        let resp = request(addr, "POST", "/simulate", &body).expect("simulate");
        assert_eq!(resp.status, 200, "nominal campaign refused");
    }
    // A guaranteed-MPC vehicle (the synthetic methodology mix is only
    // ~10 % OTEM, so a tiny campaign may produce zero solves): this
    // populates `otem_solve_outcome_total` deterministically.
    let resp = request(
        addr,
        "POST",
        "/simulate",
        "{\"methodology\":\"otem\",\"steps\":20}",
    )
    .expect("mpc vehicle");
    assert_eq!(resp.status, 200, "MPC vehicle refused");
    let miss = request(addr, "GET", "/nope", "").expect("unknown route answered");
    assert_eq!(miss.status, 404);

    // Scrape and mechanically validate the exposition.
    let exposition = http(addr, "GET", "/metrics", "").join("\n") + "\n";
    let parsed = validate_exposition(&exposition).expect("/metrics is valid Prometheus text");
    let counter = |name: &str| {
        parsed
            .sample(name, &[])
            .unwrap_or_else(|| panic!("{name} missing from /metrics"))
            .value
    };
    assert!(counter("otem_requests_total") >= 4.0, "requests counted");
    assert!(counter("otem_request_errors_total") >= 1.0, "404 counted");
    // The ops counters exist from boot even at zero, so dashboards see
    // the full family set before the first incident.
    for family in [
        "otem_requests_shed_total",
        "otem_request_timeouts_total",
        "otem_request_panics_total",
        "otem_vehicle_panics_total",
    ] {
        let _ = counter(family);
    }
    assert!(counter("otem_uptime_seconds") > 0.0, "uptime ticks");
    // The scrape itself is being handled while the gauge is read.
    assert!(
        counter("otem_in_flight_requests") >= 1.0,
        "scrape in flight"
    );
    let build = parsed
        .families
        .get("otem_build_info")
        .and_then(|f| f.samples.first())
        .expect("build info exported");
    assert!(
        build.label("version").is_some_and(|v| !v.is_empty())
            && build.label("profile").is_some_and(|p| !p.is_empty()),
        "build info carries version and profile labels"
    );
    let solves = parsed
        .families
        .get("otem_solve_outcome_total")
        .expect("solve outcomes exported");
    let total_solves: f64 = solves.samples.iter().map(|s| s.value).sum();
    assert!(total_solves >= 1.0, "campaigns produced solve outcomes");
    assert!(
        solves
            .samples
            .iter()
            .all(|s| s.label("mode").is_some() && s.label("outcome").is_some()),
        "solve outcomes are broken down by mode and outcome"
    );
    let latency_count = parsed
        .sample(
            "otem_request_latency_seconds_count",
            &[("route", "/simulate")],
        )
        .expect("latency histogram covers /simulate")
        .value;
    assert!(latency_count >= 3.0, "campaign latencies observed");
    println!(
        "obs: /metrics exposition valid ({} families)",
        parsed.families.len()
    );

    // The machine-readable JSON snapshot moved to /metrics.json.
    let legacy = http(addr, "GET", "/metrics.json", "");
    assert!(
        legacy[0].starts_with("{\"event\":\"metrics\""),
        "legacy JSON metrics preserved at /metrics.json: {}",
        legacy[0]
    );
    println!("obs: /metrics.json legacy snapshot OK");

    // Span sampling: arm 1-in-1, run a single-vehicle simulation, and
    // the live recorder ring must hold correlated span events.
    let armed = http(addr, "GET", "/debug/trace?sample=1", "");
    assert!(
        armed[0].contains("\"sample\":1"),
        "sampling armed: {}",
        armed[0]
    );
    let resp = request(addr, "POST", "/simulate", "{\"steps\":5}").expect("sampled run");
    assert_eq!(resp.status, 200);
    let spans = http(addr, "GET", "/debug/trace?sample=0", "");
    assert!(
        spans
            .iter()
            .any(|l| l.contains("\"event\":\"span_start\"") && !l.contains("\"request_id\":0,")),
        "sampled spans carry their request id"
    );
    println!("obs: span sampling via /debug/trace OK");

    // Poison phase: the contained vehicle panic freezes the flight
    // recorder, and the dump attributes the incident to its request.
    let poison = format!("{{\"vehicles\":4,\"seed\":{},\"poison_id\":2}}", args.seed);
    // The contained panic still reaches the global hook; silence it so
    // the gate's output stays readable.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let resp = request(addr, "POST", "/simulate", &poison).expect("poison campaign");
    std::panic::set_hook(prev_hook);
    assert_eq!(resp.status, 200, "poisoned campaign still answers 200");
    let flight = http(addr, "GET", "/debug/flight", "");
    assert!(
        flight[0].starts_with("{\"flight_dump\":true,\"trigger\":\"panic_caught\","),
        "flight recorder froze on the contained panic: {}",
        flight[0]
    );
    let trigger = flight
        .iter()
        .find(|l| l.contains("\"event\":{\"event\":\"panic_caught\""))
        .expect("the trigger event is in the dump");
    assert!(
        trigger.contains("\"request_id\":") && !trigger.contains("\"request_id\":0,"),
        "dump entries carry the originating request id: {trigger}"
    );
    println!("obs: flight-recorder dump attributed to request OK");

    let health = request(addr, "GET", "/healthz", "").expect("healthz after poison");
    assert_eq!(health.status, 200, "server healthy after the incident");
    handle.shutdown();
    println!("fleet obs smoke PASS");
}

/// The batched-engine gate for `scripts/tier1.sh`: bit-equality first,
/// timing second. Lockstep lanes must reproduce the scalar engine's
/// summaries and fleet checksum exactly across lane widths and
/// schedules, every healthy step must be accounted to a lockstep
/// sweep, a poisoned lane must be contained without perturbing its
/// neighbours, and the batch metric families must surface on a live
/// server's `/metrics` when lanes are configured. Only after all of
/// that does the gate time scalar vs batched sweeps — and it reports
/// the ratio honestly whichever way it lands.
fn batch_smoke(args: &Args) {
    use otem_telemetry::promparse::validate_exposition;

    let campaign = Campaign::synthetic(args.vehicles, args.seed);
    let reference = FleetEngine::new(Schedule::Serial).run(&campaign);
    assert_eq!(
        reference.batch_sweeps, 0,
        "scalar engine ran lockstep sweeps"
    );
    for lanes in [2usize, 4, BATCH_LANES] {
        for schedule in [Schedule::Serial, Schedule::WorkStealing { shards: 4 }] {
            let report = FleetEngine::new(schedule)
                .with_batch_lanes(lanes)
                .run(&campaign);
            assert_eq!(
                report.summaries, reference.summaries,
                "{schedule:?} x {lanes} lanes diverged from the scalar engine"
            );
            assert_eq!(
                report.fleet_checksum(),
                reference.fleet_checksum(),
                "{schedule:?} x {lanes} lanes changed the fleet checksum"
            );
            assert_eq!(
                report.batched_steps, report.total_steps,
                "{schedule:?} x {lanes} lanes: steps escaped the lockstep sweeps"
            );
            assert!(report.batch_sweeps > 0, "no lockstep sweeps recorded");
            let occupancy = report.mean_batch_occupancy();
            assert!(
                occupancy > 0.0 && occupancy <= lanes as f64,
                "mean occupancy {occupancy:.2} outside (0, {lanes}]"
            );
            println!(
                "batch: {:>7} x {lanes} lanes OK  checksum {:016x}  occupancy {occupancy:.2}",
                schedule.wire_name(),
                report.fleet_checksum()
            );
        }
    }

    // Throughput, measured only now that equality is pinned: the same
    // serial schedule with and without lockstep lanes. The ratio is
    // informational — the gate asserts bits, not speed.
    let batched = FleetEngine::new(Schedule::Serial)
        .with_batch_lanes(BATCH_LANES)
        .run(&campaign);
    println!(
        "batch: serial scalar {:.2}s vs {BATCH_LANES}-lane {:.2}s ({:.2}x, {:.1} vs {:.1} vehicles/s)",
        reference.wall_s,
        batched.wall_s,
        reference.wall_s / batched.wall_s,
        batched.vehicles_per_sec(),
        reference.vehicles_per_sec()
    );

    // Live-server phase: with lanes configured, a campaign must light
    // up the batch metric families on /metrics, and a poisoned lane
    // must still be contained to its own error record.
    let mut handle = FleetServer::new(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards: 2,
        batch_lanes: 4,
        ..ServerConfig::default()
    })
    .spawn()
    .expect("bind batched server");
    let addr = handle.addr();
    let body = format!("{{\"vehicles\":8,\"seed\":{}}}", args.seed);
    let resp = request(addr, "POST", "/simulate", &body).expect("batched campaign");
    assert_eq!(resp.status, 200, "batched campaign refused");
    assert_eq!(resp.lines.len(), 9, "8 summaries + fleet trailer");
    let exposition = http(addr, "GET", "/metrics", "").join("\n") + "\n";
    let parsed = validate_exposition(&exposition).expect("/metrics is valid Prometheus text");
    let batched_total = parsed
        .sample("otem_batched_rollouts_total", &[])
        .expect("otem_batched_rollouts_total missing from /metrics")
        .value;
    assert!(batched_total > 0.0, "no batched rollouts counted");
    let occupancy_count = parsed
        .sample("otem_rollout_batch_occupancy_count", &[])
        .expect("otem_rollout_batch_occupancy missing from /metrics")
        .value;
    assert!(occupancy_count > 0.0, "no occupancy samples observed");
    println!(
        "batch: /metrics surfaces otem_batched_rollouts_total={batched_total:.0}, \
         occupancy samples={occupancy_count:.0}"
    );

    let poison = format!("{{\"vehicles\":4,\"seed\":{},\"poison_id\":2}}", args.seed);
    // The contained panic still reaches the global hook; silence it so
    // the gate's output stays readable.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let resp = request(addr, "POST", "/simulate", &poison).expect("poison campaign");
    std::panic::set_hook(prev_hook);
    assert_eq!(
        resp.status, 200,
        "poisoned batched campaign still answers 200"
    );
    assert_eq!(resp.lines.len(), 5, "3 summaries + 1 error + trailer");
    let errors = resp
        .lines
        .iter()
        .filter(|l| l.starts_with("{\"event\":\"vehicle_error\""))
        .count();
    assert_eq!(errors, 1, "exactly one lane fell out of the batch");
    let health = request(addr, "GET", "/healthz", "").expect("healthz after poison");
    assert_eq!(health.status, 200, "server healthy after the poisoned lane");
    handle.shutdown();
    println!("batch: poisoned lane contained, server healthy");
    println!("fleet batch smoke PASS");
}

/// Folds a campaign's solve-outcome tally into `registry` under the
/// same `otem_solve_outcome_total{mode,outcome}` family the server
/// exports, so BENCH rows and live scrapes read identically.
fn fold_outcomes(
    registry: &otem_telemetry::MetricsRegistry,
    mode: &str,
    outcomes: &otem_fleet::SolveOutcomes,
) {
    const HELP: &str = "MPC solve outcomes by gradient mode across the benchmark campaigns.";
    for (outcome, n) in [
        ("converged", outcomes.converged),
        ("budget_exhausted", outcomes.budget_exhausted),
        ("stalled", outcomes.stalled),
        ("non_finite", outcomes.non_finite),
        ("deadline_reached", outcomes.deadline_reached),
    ] {
        registry
            .counter(
                "otem_solve_outcome_total",
                HELP,
                &[("mode", mode), ("outcome", outcome)],
            )
            .add(n);
    }
}

fn bench(args: &Args) {
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut sizes = vec![1_000usize, 10_000];
    if args.full {
        sizes.push(100_000);
    }
    // Campaign outcomes and loopback latency fold into one registry
    // snapshot, embedded in the report as the `metrics` object — the
    // same shape `/metrics.json` serves, so dashboards can ingest both.
    let registry = otem_telemetry::MetricsRegistry::new();
    let campaign_mode = otem::mpc::MpcConfig::default().gradient_mode.name();

    println!(
        "{:<9} {:>10} {:>9} {:>11} {:>11} {:>9} {:>9} {:>9} {:>9}",
        "vehicles", "steps", "wall_s", "veh/s", "steps/s", "p50_ms", "p95_ms", "p99_ms", "solves"
    );
    let mut rows = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let campaign = Campaign::synthetic(n, args.seed);
        let report = FleetEngine::new(Schedule::WorkStealing {
            shards: args.shards,
        })
        .run(&campaign);
        fold_outcomes(&registry, campaign_mode, &report.solve_outcomes);
        println!(
            "{:<9} {:>10} {:>9.2} {:>11.1} {:>11.0} {:>9.3} {:>9.3} {:>9.3} {:>9}",
            n,
            report.total_steps,
            report.wall_s,
            report.vehicles_per_sec(),
            report.steps_per_sec(),
            report.latency_ms.quantile(0.50),
            report.latency_ms.quantile(0.95),
            report.latency_ms.quantile(0.99),
            report.solve_outcomes.total()
        );
        // Schedule comparison on the smallest campaign only: the point
        // is the *relative* cost of static chunking vs stealing on a
        // heterogeneous fleet, which doesn't need the big runs.
        let comparison = if i == 0 {
            let serial = FleetEngine::new(Schedule::Serial).run(&campaign);
            let fixed = FleetEngine::new(Schedule::Static {
                shards: args.shards,
            })
            .run(&campaign);
            assert_eq!(serial.summaries, report.summaries, "steal diverged");
            assert_eq!(fixed.summaries, report.summaries, "static diverged");
            println!(
                "          schedules @ {n}: serial {:.2}s, static {:.2}s, steal {:.2}s",
                serial.wall_s, fixed.wall_s, report.wall_s
            );
            format!(
                ",\n      \"schedule_wall_s\": {{ \"serial\": {:.4}, \"static\": {:.4}, \"steal\": {:.4} }}",
                serial.wall_s, fixed.wall_s, report.wall_s
            )
        } else {
            String::new()
        };
        // Batched-engine row: same campaign, same stealing schedule,
        // lockstep lanes on. Summaries and the checksum are asserted
        // bit-identical first, so the row is purely about throughput —
        // whichever way the ratio lands, it is reported as measured.
        let batched = FleetEngine::new(Schedule::WorkStealing {
            shards: args.shards,
        })
        .with_batch_lanes(BATCH_LANES)
        .run(&campaign);
        assert_eq!(
            batched.summaries, report.summaries,
            "batched engine diverged at {n} vehicles"
        );
        assert_eq!(batched.batched_steps, batched.total_steps);
        println!(
            "          batched @ {n}: {BATCH_LANES} lanes, {:.1} vs {:.1} vehicles/s \
             ({:.2}x, occupancy {:.2}, bit-identical)",
            batched.vehicles_per_sec(),
            report.vehicles_per_sec(),
            batched.vehicles_per_sec() / report.vehicles_per_sec(),
            batched.mean_batch_occupancy()
        );
        rows.push(format!(
            concat!(
                "    {{\n",
                "      \"vehicles\": {},\n",
                "      \"total_steps\": {},\n",
                "      \"schedule\": \"steal\",\n",
                "      \"wall_s\": {:.4},\n",
                "      \"vehicles_per_sec\": {:.2},\n",
                "      \"steps_per_sec\": {:.1},\n",
                "      \"latency_ms\": {},\n",
                "      \"solve_outcomes\": {},\n",
                "      \"fleet_checksum\": \"{:016x}\",\n",
                "      \"batched\": {{ \"lanes\": {}, \"wall_s\": {:.4}, ",
                "\"vehicles_per_sec\": {:.2}, \"steps_per_sec\": {:.1}, ",
                "\"mean_batch_occupancy\": {:.3}, \"batch_sweeps\": {}, ",
                "\"speedup_vs_scalar\": {:.3} }}{}\n",
                "    }}"
            ),
            n,
            report.total_steps,
            report.wall_s,
            report.vehicles_per_sec(),
            report.steps_per_sec(),
            quantiles_json(&report.latency_ms),
            outcomes_json(&report.solve_outcomes),
            report.fleet_checksum(),
            BATCH_LANES,
            batched.wall_s,
            batched.vehicles_per_sec(),
            batched.steps_per_sec(),
            batched.mean_batch_occupancy(),
            batched.batch_sweeps,
            report.wall_s / batched.wall_s,
            comparison
        ));
    }

    // Serving-layer tail latency: loopback requests against a live
    // server through the retrying client (the production access path —
    // on clean traffic every request succeeds on attempt 1, so the
    // retry layer adds nothing to the measured latency).
    let mut handle = spawn_server(args.shards);
    let request_latency = otem_telemetry::Histogram::exponential(0.01, 2.0, 23);
    let client_latency = registry.histogram(
        "otem_client_request_latency_seconds",
        "Loopback request latency observed by the bench client.",
        &[("route", "/simulate")],
        otem_telemetry::Histogram::exponential(1e-5, 2.0, 22).bounds(),
    );
    let body = format!("{{\"vehicles\":{SERVER_VEHICLES},\"seed\":{}}}", args.seed);
    let mut client = RetryClient::new(handle.addr(), BackoffPolicy::default());
    for _ in 0..SERVER_REQUESTS {
        let t0 = Instant::now();
        let response = client
            .send("POST", "/simulate", &body)
            .expect("live-server request");
        let elapsed = t0.elapsed().as_secs_f64();
        request_latency.observe(elapsed * 1e3);
        client_latency.observe(elapsed);
        assert_eq!(response.status, 200, "clean traffic is never refused");
        assert_eq!(response.lines.len(), SERVER_VEHICLES + 1);
    }
    // `/metrics` speaks Prometheus now; validate the scrape mechanically
    // and report what the server says it served.
    let exposition = http(handle.addr(), "GET", "/metrics", "").join("\n") + "\n";
    let scraped = otem_telemetry::promparse::validate_exposition(&exposition)
        .expect("live /metrics is valid Prometheus text");
    let served = scraped
        .sample("otem_requests_total", &[])
        .map_or(0.0, |s| s.value);
    println!(
        "server: {SERVER_REQUESTS} x {SERVER_VEHICLES}-vehicle requests, \
         p50 {:.2} ms, p99 {:.2} ms",
        request_latency.quantile(0.50),
        request_latency.quantile(0.99)
    );
    println!(
        "server: /metrics scrape valid ({} families, {served:.0} requests served)",
        scraped.families.len()
    );
    handle.shutdown();

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"fleet_engine\",\n",
            "  \"seed\": {},\n",
            "  \"cpu_cores\": {},\n",
            "  \"shards\": {},\n",
            "  \"resolved_workers\": {},\n",
            "  \"batch_lanes\": {},\n",
            "  \"campaigns\": [\n{}\n  ],\n",
            "  \"server\": {{\n",
            "    \"requests\": {},\n",
            "    \"vehicles_per_request\": {},\n",
            "    \"request_latency_ms\": {}\n",
            "  }},\n",
            "  \"metrics\": {}\n",
            "}}\n"
        ),
        args.seed,
        cores,
        args.shards,
        otem_fleet::pool::resolve_workers(args.shards),
        BATCH_LANES,
        rows.join(",\n"),
        SERVER_REQUESTS,
        SERVER_VEHICLES,
        quantiles_json(&request_latency),
        registry.snapshot().render_json()
    );
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    println!(
        "\nwrote BENCH_fleet.json ({} shards on {cores} cores)",
        args.shards
    );
}

fn main() {
    let args = parse_args();
    if args.smoke {
        smoke(&args);
    } else if args.chaos_smoke {
        chaos_smoke(&args);
    } else if args.obs_smoke {
        obs_smoke(&args);
    } else if args.batch_smoke {
        batch_smoke(&args);
    } else {
        bench(&args);
    }
}
