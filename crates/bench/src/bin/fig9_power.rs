//! **Fig. 9** — Average power consumption (EV + cooling system) per
//! methodology per drive cycle.
//!
//! Paper headline: methodologies with active cooling consume more, but
//! OTEM undercuts the pure active-cooling system by 12.1 % on average
//! because the HEES contributes.
//!
//! ```sh
//! cargo run --release -p otem-bench --bin fig9_power
//! ```

use otem_bench::{cycle_trace, paper_config, run, Methodology};
use otem_drivecycle::StandardCycle;

fn repeats(cycle: StandardCycle) -> usize {
    match cycle {
        StandardCycle::Udds | StandardCycle::La92 => 2,
        StandardCycle::Hwfet => 4,
        _ => 5,
    }
}

fn main() {
    let config = paper_config();
    println!("# Fig. 9 — average power consumption (kW), including cooling");
    println!(
        "{:<7} {:>10} {:>14} {:>8} {:>8}",
        "cycle", "Parallel", "ActiveCooling", "Dual", "OTEM"
    );
    let mut otem_vs_cooling = Vec::new();
    for cycle in StandardCycle::ALL {
        let trace = cycle_trace(cycle, repeats(cycle)).expect("trace");
        let mut row = format!("{:<7}", cycle.spec().name);
        let mut cooling_power = 0.0;
        for m in Methodology::ALL {
            let r = run(m, &config, &trace).expect("run");
            let kw = r.average_power().value() / 1000.0;
            match m {
                Methodology::ActiveCooling => cooling_power = kw,
                Methodology::Otem => otem_vs_cooling.push(kw / cooling_power - 1.0),
                _ => {}
            }
            let width = match m {
                Methodology::Parallel => 10,
                Methodology::ActiveCooling => 14,
                _ => 8,
            };
            row.push_str(&format!(" {:>width$.2}", kw));
        }
        println!("{row}");
    }
    let avg = otem_vs_cooling.iter().sum::<f64>() / otem_vs_cooling.len() as f64;
    println!(
        "\nOTEM average power vs pure ActiveCooling: {:+.1}% (paper: −12.1%)",
        avg * 100.0
    );
    println!("Shape check: cooling-equipped methodologies consume more than passive");
    println!("ones; OTEM pays less of that premium than pure active cooling.");
}
