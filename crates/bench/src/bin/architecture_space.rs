//! **Extension experiment** — architecture design space: the paper
//! declares HEES design-space exploration out of scope but claims its
//! methodology "will be economical for any design variation". This
//! binary walks the variation axis: fully-passive parallel, both
//! semi-active wirings (one converter), and the fully-active hybrid
//! under OTEM, on the same US06 stress route.
//!
//! The semi-active architectures run a simple peak-shaving rule (the
//! bank takes whatever exceeds a battery comfort threshold and recharges
//! below it) — the kind of heuristic those topologies ship with.
//!
//! ```sh
//! cargo run --release -p otem-bench --bin architecture_space
//! ```

use otem::SystemConfig;
use otem_battery::AgingModel;
use otem_bench::{run, stress_config, stress_trace, Methodology};
use otem_drivecycle::StandardCycle;
use otem_hees::SemiActiveHees;
use otem_thermal::{ThermalModel, ThermalState};
use otem_units::{Ratio, Seconds, Watts};

/// Runs a semi-active architecture under its natural heuristic and
/// returns (capacity loss, average power kW, peak temp °C, shortfall
/// fraction of route energy).
///
/// * cap-converted: the bank shaves load above the battery's comfort
///   threshold (while it has charge), soaks regen, and recharges gently
///   during lulls — falling back to the battery when empty.
/// * battery-converted: the battery (behind its converter) carries a
///   smoothed base load; the direct bank absorbs every transient by
///   circuit role.
fn run_semi_active(
    mut hees: SemiActiveHees,
    config: &SystemConfig,
    trace: &otem_drivecycle::PowerTrace,
) -> (f64, f64, f64, f64) {
    hees.set_state(config.initial_soc, config.initial_soe);
    let thermal = ThermalModel::new(config.thermal_passive).expect("thermal");
    let mut state = ThermalState::uniform(config.ambient);
    let mut aging = AgingModel::new(config.aging);
    let comfort = Watts::new(18_000.0);
    let recharge = Watts::new(-6_000.0);
    let dt = Seconds::new(1.0);
    let mut energy = 0.0;
    let mut shortfall = 0.0;
    let mut load_energy = 0.0;
    let mut peak_temp = state.battery;
    let cap_converted = hees.side() == otem_hees::ConvertedSide::Ultracap;
    // Smoothed base load for the battery-converted wiring.
    let mut base = 0.0;

    for t in 0..trace.len() {
        let load = trace.get(t);
        let bank_has_charge = hees.soe() > Ratio::from_percent(24.0);
        let converted = if cap_converted {
            // Converted storage = the bank.
            if load > comfort && bank_has_charge {
                load - comfort
            } else if load.value() < 0.0 {
                load // all regen into the bank
            } else if hees.soe() < Ratio::from_percent(85.0) && load < comfort {
                recharge
            } else {
                Watts::ZERO
            }
        } else {
            // Converted storage = the battery: carry a slow-filtered,
            // non-negative base load; the direct bank takes transients.
            base += 0.05 * (load.value().max(0.0) - base);
            let mut share = Watts::new(base);
            if !bank_has_charge && load > share {
                share = load; // bank empty: battery must carry everything
            }
            share
        };
        let step = hees.step(load, converted, state.battery, dt);
        state = thermal.step_crank_nicolson(state, step.battery_heat, state.coolant, dt);
        peak_temp = peak_temp.max(state.battery);
        aging.accumulate(state.battery, step.battery_c_rate, dt);
        energy += step.hees_power().value() * dt.value();
        shortfall += step.shortfall.value().max(0.0) * dt.value();
        load_energy += load.value().max(0.0) * dt.value();
    }
    (
        aging.cumulative_loss(),
        energy / trace.duration().value(),
        peak_temp.to_celsius().value(),
        shortfall / load_energy.max(1.0),
    )
}

fn main() {
    let config = stress_config();
    let trace = stress_trace(StandardCycle::Us06, 3).expect("trace");

    println!("# Architecture design space, US06 x3 (city-EV rig)");
    println!(
        "{:<34} {:>12} {:>10} {:>10} {:>10}",
        "architecture / controller", "Q_loss", "avgP (kW)", "Tpeak(°C)", "unserved"
    );

    let parallel = run(Methodology::Parallel, &config, &trace).expect("run");
    println!(
        "{:<34} {:>12.4e} {:>10.2} {:>10.1} {:>9.1}%",
        "passive parallel (no converter)",
        parallel.capacity_loss(),
        parallel.average_power().value() / 1000.0,
        parallel.peak_battery_temp().to_celsius().value(),
        parallel.shortfall_energy().value() / parallel.energy().value().max(1.0) * 100.0
    );

    let (loss, avg, tp, unserved) = run_semi_active(
        SemiActiveHees::cap_converted(config.capacitance).expect("arch"),
        &config,
        &trace,
    );
    println!(
        "{:<34} {:>12.4e} {:>10.2} {:>10.1} {:>9.1}%",
        "semi-active, cap converted",
        loss,
        avg / 1000.0,
        tp,
        unserved * 100.0
    );

    let (loss, avg, tp, unserved) = run_semi_active(
        SemiActiveHees::battery_converted(config.capacitance).expect("arch"),
        &config,
        &trace,
    );
    println!(
        "{:<34} {:>12.4e} {:>10.2} {:>10.1} {:>9.1}%",
        "semi-active, battery converted",
        loss,
        avg / 1000.0,
        tp,
        unserved * 100.0
    );

    let otem = run(Methodology::Otem, &config, &trace).expect("run");
    println!(
        "{:<34} {:>12.4e} {:>10.2} {:>10.1} {:>9.1}%",
        "fully active hybrid + OTEM",
        otem.capacity_loss(),
        otem.average_power().value() / 1000.0,
        otem.peak_battery_temp().to_celsius().value(),
        otem.shortfall_energy().value() / otem.energy().value().max(1.0) * 100.0
    );

    println!("\nReading (measured, and worth being honest about): a well-tuned");
    println!("peak-shaving rule on the cap-converted semi-active wiring caps the");
    println!("battery near 1C and beats OTEM's default tuning on capacity loss at");
    println!("lower average power — C-rate capping is a very strong lever under an");
    println!("I^1.15 stress law. OTEM still holds the lowest temperature and is the");
    println!("only controller that also manages the thermal constraint actively;");
    println!("the paper's comparison set (parallel/dual/cooling) does not include");
    println!("this design point, and neither does its claim set.");
}
