//! **Ablation** — Eq. 19 cost weights: the `w2` (battery-wear) weight
//! trades HEES energy against lifetime. Sweeping it exposes the Pareto
//! front the paper's fixed weights pick one point of.
//!
//! ```sh
//! cargo run --release -p otem-bench --bin ablation_weights
//! ```

use otem::mpc::MpcConfig;
use otem::policy::Otem;
use otem::Simulator;
use otem_bench::{cycle_trace, paper_config};
use otem_drivecycle::StandardCycle;

fn main() {
    let config = paper_config();
    let trace = cycle_trace(StandardCycle::Us06, 2).expect("trace");

    println!("# Ablation — lifetime weight w2, US06 x2");
    println!(
        "{:>10} {:>12} {:>10} {:>10} {:>10}",
        "w2", "Q_loss", "avgP (kW)", "cool (MJ)", "Tpeak(°C)"
    );
    for w2 in [0.0, 1.0e12, 5.0e12, 2.0e13] {
        let mpc = MpcConfig {
            w2,
            ..MpcConfig::default()
        };
        let mut otem = Otem::with_mpc(&config, mpc).expect("controller");
        let r = Simulator::new(&config).run(&mut otem, &trace);
        println!(
            "{:>10.1e} {:>12.4e} {:>10.2} {:>10.2} {:>10.2}",
            w2,
            r.capacity_loss(),
            r.average_power().value() / 1000.0,
            r.cooling_energy().value() / 1e6,
            r.peak_battery_temp().to_celsius().value()
        );
    }
    println!("\nExpected: larger w2 buys battery lifetime with energy (more cooling,");
    println!("more ultracapacitor routing); w2 = 0 degenerates to energy-only management.");
}
