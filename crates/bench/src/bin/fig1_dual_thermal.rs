//! **Fig. 1** — Battery temperature under the dual architecture for
//! different ultracapacitor sizes (one US06 pass on the city-EV stress rig).
//!
//! The paper's motivational case study: small banks deplete before the
//! battery cools, the recharge cycle heats it further, and the safe
//! threshold gets violated; only large banks hold the line.
//!
//! ```sh
//! cargo run --release -p otem-bench --bin fig1_dual_thermal
//! ```

use otem::policy::Dual;
use otem::Simulator;
use otem_bench::{stress_config_with_capacitance, stress_trace};
use otem_drivecycle::StandardCycle;
use otem_units::Kelvin;

fn main() {
    let sizes = [5_000.0, 10_000.0, 15_000.0, 25_000.0];
    let trace = stress_trace(StandardCycle::Us06, 1).expect("trace");
    let limit = Kelvin::from_celsius(40.0);

    let mut series = Vec::new();
    for &farads in &sizes {
        let config = stress_config_with_capacitance(farads);
        let mut dual = Dual::new(&config).expect("controller");
        let r = Simulator::new(&config).run(&mut dual, &trace);
        series.push((farads, r));
    }

    println!("# Fig. 1 — battery temperature, dual architecture, US06 x1 (city-EV rig)");
    print!("{:>7}", "t(s)");
    for &(farads, _) in &series {
        print!(" {:>9}", format!("{:.0}F", farads));
    }
    println!("   (temperatures in °C; safe limit 40 °C)");
    let n = series[0].1.records.len();
    for t in (0..n).step_by(30) {
        print!("{:>7}", t);
        for (_, r) in &series {
            print!(
                " {:>9.2}",
                r.records[t].state.battery_temp.to_celsius().value()
            );
        }
        println!();
    }

    println!(
        "\n{:>9} {:>10} {:>12} {:>14}",
        "size (F)", "Tpeak(°C)", "t>40°C (s)", "cap fallbacks"
    );
    for (farads, r) in &series {
        // Fallbacks: steps where the policy wanted the cap but the battery
        // had to serve while hot (> 37 °C) — the Fig. 1 failure mode.
        let fallbacks = r
            .records
            .iter()
            .filter(|rec| {
                rec.state.battery_temp > Kelvin::from_celsius(37.0)
                    && rec.hees.battery_internal.value() > 0.0
            })
            .count();
        println!(
            "{:>9.0} {:>10.2} {:>12.0} {:>14}",
            farads,
            r.peak_battery_temp().to_celsius().value(),
            r.time_above(limit).value(),
            fallbacks
        );
    }
    println!("\nShape check (paper): violations shrink with bank size, but even the");
    println!("largest bank cannot eliminate them — the paper's Fig. 1 conclusion that");
    println!("ultracapacitors alone are unreliable and active cooling is necessary.");
}
