//! **Ablation** — MPC control-window length: how much of OTEM's benefit
//! comes from look-ahead (the TEB idea needs enough horizon to see the
//! peaks coming)?
//!
//! ```sh
//! cargo run --release -p otem-bench --bin ablation_horizon
//! ```

use otem::mpc::MpcConfig;
use otem::policy::Otem;
use otem::Simulator;
use otem_bench::{cycle_trace, paper_config};
use otem_drivecycle::StandardCycle;

fn main() {
    let config = paper_config();
    let trace = cycle_trace(StandardCycle::Us06, 2).expect("trace");

    println!("# Ablation — MPC horizon length, US06 x2");
    println!(
        "{:>9} {:>12} {:>10} {:>10} {:>10}",
        "N (s)", "Q_loss", "avgP (kW)", "short(MJ)", "time (s)"
    );
    for horizon in [1usize, 3, 6, 12, 24] {
        let mpc = MpcConfig {
            horizon,
            ..MpcConfig::default()
        };
        let mut otem = Otem::with_mpc(&config, mpc).expect("controller");
        let start = std::time::Instant::now();
        let r = Simulator::new(&config).run(&mut otem, &trace);
        println!(
            "{:>9} {:>12.4e} {:>10.2} {:>10.3} {:>10.1}",
            horizon,
            r.capacity_loss(),
            r.average_power().value() / 1000.0,
            r.shortfall_energy().value() / 1e6,
            start.elapsed().as_secs_f64()
        );
    }
    println!("\nExpected: longer windows buy lower loss/shortfall at linear compute cost,");
    println!("saturating once the window covers the pulse lead time.");
}
