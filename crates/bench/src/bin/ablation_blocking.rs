//! **Ablation** — move blocking: covering a long control window with
//! coarse decision blocks buys most of the long-horizon benefit at a
//! fraction of the optimisation cost.
//!
//! ```sh
//! cargo run --release -p otem-bench --bin ablation_blocking
//! ```

use otem::mpc::MpcConfig;
use otem::policy::Otem;
use otem::Simulator;
use otem_bench::{stress_config, stress_trace};
use otem_drivecycle::StandardCycle;

fn main() {
    let config = stress_config();
    let trace = stress_trace(StandardCycle::Us06, 2).expect("trace");

    println!("# Ablation — move blocking (window = horizon × block), US06 x2 stress rig");
    println!(
        "{:>8} {:>7} {:>9} {:>12} {:>10} {:>10}",
        "horizon", "block", "window(s)", "Q_loss", "avgP (kW)", "time (s)"
    );
    for (horizon, block) in [(6usize, 1usize), (12, 1), (24, 1), (6, 4), (12, 5), (12, 2)] {
        let mpc = MpcConfig {
            horizon,
            block_size: block,
            ..MpcConfig::default()
        };
        let mut otem = Otem::with_mpc(&config, mpc).expect("controller");
        let start = std::time::Instant::now();
        let r = Simulator::new(&config).run(&mut otem, &trace);
        println!(
            "{:>8} {:>7} {:>9} {:>12.4e} {:>10.2} {:>10.1}",
            horizon,
            block,
            horizon * block,
            r.capacity_loss(),
            r.average_power().value() / 1000.0,
            start.elapsed().as_secs_f64()
        );
    }
    println!("\nMeasured finding: on this pulse-dominated problem, blocking *hurts* —");
    println!("pooling the forecast smears the second-scale pulses the ultracapacitor");
    println!("exists to absorb, so a flat 12 s window beats blocked 24–60 s windows.");
    println!("The window's grain matters as much as its length; the paper's 1 s");
    println!("control period is load-bearing.");
}
