//! **Table I** — Influence of the ultracapacitor size: average power and
//! capacity loss (relative to Parallel @ 25,000 F = 100) for the
//! Parallel, Dual and OTEM methodologies on US06.
//!
//! Paper shape: shrinking the bank hurts Parallel and Dual sharply,
//! while OTEM, with its active cooling fallback, is nearly
//! size-independent.
//!
//! ```sh
//! cargo run --release -p otem-bench --bin table1_ucap_sweep
//! ```

use otem_bench::{run, stress_config_with_capacitance, stress_trace, Methodology};
use otem_drivecycle::StandardCycle;

fn main() {
    let sizes = [5_000.0, 10_000.0, 20_000.0, 25_000.0];
    let methodologies = [Methodology::Parallel, Methodology::Dual, Methodology::Otem];
    let trace = stress_trace(StandardCycle::Us06, 3).expect("trace");

    // Reference: Parallel at 25,000 F.
    let reference = run(
        Methodology::Parallel,
        &stress_config_with_capacitance(25_000.0),
        &trace,
    )
    .expect("reference")
    .capacity_loss();

    println!("# Table I — ultracapacitor size sweep, US06 x3 (city-EV rig)");
    println!(
        "{:>9} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "", "avg power (W)", "", "", "capacity loss (%)", "", ""
    );
    println!(
        "{:>9} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "size (F)", "Parallel", "Dual", "OTEM", "Parallel", "Dual", "OTEM"
    );
    for &farads in &sizes {
        let config = stress_config_with_capacitance(farads);
        let mut powers = Vec::new();
        let mut losses = Vec::new();
        for &m in &methodologies {
            let r = run(m, &config, &trace).expect("run");
            powers.push(r.average_power().value());
            losses.push(r.capacity_loss() / reference * 100.0);
        }
        println!(
            "{:>9.0} | {:>9.0} {:>9.0} {:>9.0} | {:>9.2} {:>9.2} {:>9.2}",
            farads, powers[0], powers[1], powers[2], losses[0], losses[1], losses[2]
        );
    }
    println!("\nShape check (paper Table I): OTEM has the lowest capacity loss at every");
    println!("size; even its 5,000 F point beats the other architectures at 25,000 F —");
    println!("the active-cooling fallback decouples OTEM from the bank size, while the");
    println!("parallel architecture is the most size-dependent.");
}
