//! **Table I** — Influence of the ultracapacitor size: average power and
//! capacity loss (relative to Parallel @ 25,000 F = 100) for the
//! Parallel, Dual and OTEM methodologies on US06.
//!
//! Paper shape: shrinking the bank hurts Parallel and Dual sharply,
//! while OTEM, with its active cooling fallback, is nearly
//! size-independent.
//!
//! ```sh
//! cargo run --release -p otem-bench --bin table1_ucap_sweep
//! ```

use otem_bench::{fan_indexed, run, stress_config_with_capacitance, stress_trace, Methodology};
use otem_drivecycle::StandardCycle;

fn main() {
    let sizes = [5_000.0, 10_000.0, 20_000.0, 25_000.0];
    let methodologies = [Methodology::Parallel, Methodology::Dual, Methodology::Otem];
    let trace = stress_trace(StandardCycle::Us06, 3).expect("trace");

    // The whole grid fans across worker threads; results are indexed
    // size-major so the table prints in the paper's order. The
    // reference cell (Parallel @ 25,000 F) is part of the grid.
    let jobs: Vec<(f64, Methodology)> = sizes
        .into_iter()
        .flat_map(|farads| methodologies.into_iter().map(move |m| (farads, m)))
        .collect();
    let reference_at = jobs
        .iter()
        .position(|&(f, m)| f == 25_000.0 && m == Methodology::Parallel)
        .expect("reference cell in grid");
    let cells = fan_indexed(jobs, |_, (farads, m)| {
        let r = run(m, &stress_config_with_capacitance(farads), &trace).expect("run");
        (r.average_power().value(), r.capacity_loss())
    });
    let reference = cells[reference_at].1;

    println!("# Table I — ultracapacitor size sweep, US06 x3 (city-EV rig)");
    println!(
        "{:>9} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "", "avg power (W)", "", "", "capacity loss (%)", "", ""
    );
    println!(
        "{:>9} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "size (F)", "Parallel", "Dual", "OTEM", "Parallel", "Dual", "OTEM"
    );
    for (row, &farads) in sizes.iter().enumerate() {
        let row = &cells[row * methodologies.len()..(row + 1) * methodologies.len()];
        let losses: Vec<f64> = row.iter().map(|c| c.1 / reference * 100.0).collect();
        println!(
            "{:>9.0} | {:>9.0} {:>9.0} {:>9.0} | {:>9.2} {:>9.2} {:>9.2}",
            farads, row[0].0, row[1].0, row[2].0, losses[0], losses[1], losses[2]
        );
    }
    println!("\nShape check (paper Table I): OTEM has the lowest capacity loss at every");
    println!("size; even its 5,000 F point beats the other architectures at 25,000 F —");
    println!("the active-cooling fallback decouples OTEM from the bank size, while the");
    println!("parallel architecture is the most size-dependent.");
}
