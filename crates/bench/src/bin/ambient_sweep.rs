//! **Extension experiment** — environment temperature sweep (the paper
//! evaluates "different environment temperatures" without printing the
//! table): at hot ambient the passive architectures bake, pure cooling
//! gets expensive, and OTEM's joint management pays off most.
//!
//! ```sh
//! cargo run --release -p otem-bench --bin ambient_sweep
//! ```

use otem::SystemConfig;
use otem_bench::{cycle_trace, fan_indexed, run, Methodology};
use otem_drivecycle::StandardCycle;
use otem_units::Kelvin;

fn main() {
    let trace = cycle_trace(StandardCycle::Us06, 3).expect("trace");
    println!("# Ambient-temperature sweep, US06 x3");
    println!(
        "{:>9} {:>14} {:>12} {:>10} {:>10} {:>10}",
        "T_amb", "methodology", "Q_loss", "avgP (kW)", "cool (MJ)", "Tpeak(°C)"
    );
    // Every (ambient, methodology) cell is an independent closed-loop
    // run; fan them across worker threads, keeping the table order.
    let jobs: Vec<(f64, Methodology)> = [10.0, 25.0, 35.0]
        .into_iter()
        .flat_map(|celsius| Methodology::ALL.into_iter().map(move |m| (celsius, m)))
        .collect();
    let rows = fan_indexed(jobs, |_, (celsius, m)| {
        let config = SystemConfig::default().with_ambient(Kelvin::from_celsius(celsius));
        let r = run(m, &config, &trace).expect("run");
        (
            celsius,
            m,
            r.capacity_loss(),
            r.average_power().value() / 1000.0,
            r.cooling_energy().value() / 1e6,
            r.peak_battery_temp().to_celsius().value(),
        )
    });
    for (celsius, m, loss, avg_kw, cool_mj, peak_c) in rows {
        println!(
            "{:>8.0}° {:>14} {:>12.4e} {:>10.2} {:>10.2} {:>10.2}",
            celsius,
            m.name(),
            loss,
            avg_kw,
            cool_mj,
            peak_c
        );
    }
    println!("\nExpected: losses grow with ambient for every methodology (Arrhenius);");
    println!("OTEM's advantage over the baselines widens at hot ambient, where it");
    println!("blends cooling and the ultracapacitor instead of relying on either alone.");
}
