//! **Fig. 8** — Battery capacity-loss ratio of each methodology relative
//! to the parallel architecture, across the standard drive cycles.
//!
//! Paper headline: OTEM reduces capacity loss by 16.38 % on average
//! versus the parallel architecture (and far more versus the others).
//!
//! ```sh
//! cargo run --release -p otem-bench --bin fig8_lifetime
//! ```

use otem_bench::{cycle_trace, paper_config, run, run_with, Methodology};
use otem_drivecycle::StandardCycle;
use otem_telemetry::JsonlSink;

/// Repeats chosen so every route lasts roughly 40–50 minutes, enough to
/// exercise the thermal dynamics (the paper drives "multiple drive
/// cycles").
fn repeats(cycle: StandardCycle) -> usize {
    match cycle {
        StandardCycle::Udds | StandardCycle::La92 => 2,
        StandardCycle::Hwfet => 4,
        _ => 5,
    }
}

fn main() {
    let config = paper_config();
    std::fs::create_dir_all("results").expect("results dir");
    // Telemetry is captured for one representative cycle (US06) so the
    // JSONL logs stay bounded; the other cycles run uninstrumented.
    let run_cycle = |m: Methodology, cycle: StandardCycle, trace: &otem_drivecycle::PowerTrace| {
        if cycle == StandardCycle::Us06 {
            let path = format!("results/fig8_us06_{}.jsonl", m.name().to_lowercase());
            let sink = JsonlSink::create(&path).expect("telemetry file");
            run_with(m, &config, trace, &sink).expect("run")
        } else {
            run(m, &config, trace).expect("run")
        }
    };
    println!("# Fig. 8 — capacity loss relative to Parallel (= 100)");
    println!(
        "{:<7} {:>10} {:>14} {:>8} {:>8}",
        "cycle", "Parallel", "ActiveCooling", "Dual", "OTEM"
    );
    let mut otem_ratios = Vec::new();
    let mut dual_ratios = Vec::new();
    for cycle in StandardCycle::ALL {
        let trace = cycle_trace(cycle, repeats(cycle)).expect("trace");
        let base = run_cycle(Methodology::Parallel, cycle, &trace);
        let mut row = format!("{:<7} {:>10.1}", cycle.spec().name, 100.0);
        for m in [
            Methodology::ActiveCooling,
            Methodology::Dual,
            Methodology::Otem,
        ] {
            let r = run_cycle(m, cycle, &trace);
            let ratio = r.capacity_loss() / base.capacity_loss() * 100.0;
            match m {
                Methodology::Otem => otem_ratios.push(ratio),
                Methodology::Dual => dual_ratios.push(ratio),
                _ => {}
            }
            let width = if m == Methodology::ActiveCooling {
                14
            } else {
                8
            };
            row.push_str(&format!(" {:>width$.1}", ratio));
        }
        println!("{row}");
    }
    let otem_avg = otem_ratios.iter().sum::<f64>() / otem_ratios.len() as f64;
    let dual_avg = dual_ratios.iter().sum::<f64>() / dual_ratios.len() as f64;
    println!(
        "\nOTEM average capacity loss vs Parallel : {:.1} (paper: 83.6, i.e. −16.38%)",
        otem_avg
    );
    println!("Dual average capacity loss vs Parallel : {dual_avg:.1}");
    println!("Shape check: OTEM is the best (or tied-best) methodology on every cycle,");
    println!("and the only one that also holds the battery inside its thermal limits.");
}
