//! **Fig. 6** — Battery temperature trace for every methodology
//! (US06 x3 on the city-EV stress rig, 25,000 F).
//!
//! The paper's point: the dual architecture only *reacts* at its
//! threshold, while OTEM proactively keeps the battery cooler to extend
//! its lifetime.
//!
//! ```sh
//! cargo run --release -p otem-bench --bin fig6_temperature
//! ```

use otem_bench::{run_with, stress_config, stress_trace, Methodology};
use otem_drivecycle::StandardCycle;
use otem_telemetry::JsonlSink;

fn main() {
    let config = stress_config();
    let trace = stress_trace(StandardCycle::Us06, 3).expect("trace");

    std::fs::create_dir_all("results").expect("results dir");
    let results: Vec<_> = Methodology::ALL
        .iter()
        .map(|&m| {
            // Each methodology streams its full event log (per-step
            // telemetry plus controller internals) next to the figure.
            let path = format!("results/fig6_{}.jsonl", m.name().to_lowercase());
            let sink = JsonlSink::create(&path).expect("telemetry file");
            run_with(m, &config, &trace, &sink).expect("run")
        })
        .collect();

    println!("# Fig. 6 — battery temperature by methodology, US06 x3 (city-EV rig), 25,000 F (°C)");
    print!("{:>7}", "t(s)");
    for r in &results {
        print!(" {:>14}", r.methodology);
    }
    println!();
    let n = results[0].records.len();
    for t in (0..n).step_by(60) {
        print!("{:>7}", t);
        for r in &results {
            print!(
                " {:>14.2}",
                r.records[t].state.battery_temp.to_celsius().value()
            );
        }
        println!();
    }

    println!("\n# temperature shapes (full traces)");
    for r in &results {
        let temps: Vec<f64> = r
            .battery_temps()
            .iter()
            .map(|t| t.to_celsius().value())
            .collect();
        println!(
            "{}",
            otem_bench::plot::labelled_sparkline(r.methodology, &temps, 72)
        );
    }

    println!(
        "\n{:>14} {:>10} {:>12} {:>12}",
        "methodology", "Tpeak(°C)", "Tmean(°C)", "Q_loss"
    );
    for r in &results {
        let mean = r
            .battery_temps()
            .iter()
            .map(|t| t.to_celsius().value())
            .sum::<f64>()
            / r.records.len() as f64;
        println!(
            "{:>14} {:>10.2} {:>12.2} {:>12.4e}",
            r.methodology,
            r.peak_battery_temp().to_celsius().value(),
            mean,
            r.capacity_loss()
        );
    }
    println!("\nShape check (paper): Dual reacts at its threshold; OTEM holds the lowest");
    println!("managed temperature and the lowest capacity loss.");
}
