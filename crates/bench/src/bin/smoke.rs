//! Developer smoke test: one US06 pass per methodology, printing the
//! headline metrics (fast shape check before the full experiments).

use otem::SystemConfig;
use otem_bench::{cycle_trace, run, Methodology};
use otem_drivecycle::StandardCycle;
use otem_units::Kelvin;

fn main() {
    let config = SystemConfig::default();
    let repeats: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);
    let stress = std::env::args()
        .nth(2)
        .map(|a| a == "stress")
        .unwrap_or(false);
    let (config, trace) = if stress {
        (
            otem_bench::stress_config(),
            otem_bench::stress_trace(StandardCycle::Us06, repeats).expect("trace"),
        )
    } else {
        (
            config,
            cycle_trace(StandardCycle::Us06, repeats).expect("trace"),
        )
    };
    println!(
        "{:<14} {:>12} {:>10} {:>10} {:>9} {:>8} {:>10} {:>10}",
        "methodology", "loss", "avgP_kW", "coolE_MJ", "Tpeak_C", "Tmean_C", "t>40C_s", "short_MJ"
    );
    for m in Methodology::ALL {
        let start = std::time::Instant::now();
        let r = run(m, &config, &trace).expect("run");
        println!(
            "{:<14} {:>12.4e} {:>10.2} {:>10.2} {:>9.1} {:>8.1} {:>10.0} {:>10.3}  ({:.1}s)",
            m.name(),
            r.capacity_loss(),
            r.average_power().value() / 1000.0,
            r.cooling_energy().value() / 1e6,
            r.peak_battery_temp().to_celsius().value(),
            r.battery_temps()
                .iter()
                .map(|t| t.to_celsius().value())
                .sum::<f64>()
                / r.records.len().max(1) as f64,
            r.time_above(Kelvin::from_celsius(40.0)).value(),
            r.shortfall_energy().value() / 1e6,
            start.elapsed().as_secs_f64(),
        );
    }
}
