//! **Ablation** — forecast quality: OTEM assumes the EV power requests
//! are predictable (route + power-train model). How gracefully does it
//! degrade when the forecast is noisy or absent?
//!
//! ```sh
//! cargo run --release -p otem-bench --bin ablation_forecast_noise
//! ```

use otem::policy::Otem;
use otem::{Controller, Simulator, StepRecord, SystemState};
use otem_bench::{cycle_trace, paper_config};
use otem_drivecycle::StandardCycle;
use otem_units::{Seconds, Watts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Wraps OTEM, corrupting the forecast it sees with multiplicative noise
/// (σ as a fraction), or zeroing it entirely.
struct NoisyForecast {
    inner: Otem,
    sigma: f64,
    zero: bool,
    rng: StdRng,
}

impl Controller for NoisyForecast {
    fn name(&self) -> &'static str {
        "OTEM(noisy)"
    }

    fn step(&mut self, load: Watts, forecast: &[Watts], dt: Seconds) -> StepRecord {
        let corrupted: Vec<Watts> = if self.zero {
            vec![Watts::ZERO; forecast.len()]
        } else {
            forecast
                .iter()
                .map(|p| {
                    let factor = 1.0 + self.rng.gen_range(-1.0..1.0) * self.sigma;
                    *p * factor
                })
                .collect()
        };
        self.inner.step(load, &corrupted, dt)
    }

    fn state(&self) -> SystemState {
        self.inner.state()
    }
}

fn main() {
    let config = paper_config();
    let trace = cycle_trace(StandardCycle::Us06, 2).expect("trace");
    let sim = Simulator::new(&config);

    println!("# Ablation — forecast corruption, US06 x2");
    println!(
        "{:>14} {:>12} {:>10} {:>10}",
        "forecast", "Q_loss", "avgP (kW)", "short(MJ)"
    );
    for (label, sigma, zero) in [
        ("perfect", 0.0, false),
        ("σ = 10%", 0.10, false),
        ("σ = 30%", 0.30, false),
        ("σ = 60%", 0.60, false),
        ("none (zero)", 0.0, true),
    ] {
        let mut controller = NoisyForecast {
            inner: Otem::new(&config).expect("controller"),
            sigma,
            zero,
            rng: StdRng::seed_from_u64(99),
        };
        let r = sim.run(&mut controller, &trace);
        println!(
            "{:>14} {:>12.4e} {:>10.2} {:>10.3}",
            label,
            r.capacity_loss(),
            r.average_power().value() / 1000.0,
            r.shortfall_energy().value() / 1e6
        );
    }
    println!("\nExpected: graceful degradation — moderate noise barely matters (the");
    println!("TEB margins absorb it); no forecast forfeits the pre-charging benefit.");
}
