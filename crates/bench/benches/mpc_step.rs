//! One MPC solve (the per-control-period cost of OTEM) versus horizon
//! length — the controller must fit inside the 1 s control period with
//! ample margin.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use otem::mpc::{Mpc, MpcConfig, MpcPlant};
use otem::SystemConfig;
use otem_hees::HybridHees;
use otem_solver::GradientMode;
use otem_thermal::{CoolingPlant, ThermalModel, ThermalState};
use otem_units::{Kelvin, Ratio, Seconds, Watts};

fn plant(config: &SystemConfig) -> MpcPlant {
    let mut hees = HybridHees::ev_default(config.capacitance).unwrap();
    hees.set_state(Ratio::new(0.8), Ratio::new(0.6));
    MpcPlant {
        hees,
        thermal: ThermalModel::new(config.thermal_active).unwrap(),
        plant: CoolingPlant::new(config.plant).unwrap(),
        state: ThermalState::uniform(Kelvin::from_celsius(33.0)),
        aging: config.aging,
        soc_min: config.soc_min,
        soe_min: config.soe_min,
        battery_power_max: config.battery_power_max,
        cap_power_max: config.cap_power_max,
    }
}

fn bench_mpc(c: &mut Criterion) {
    let config = SystemConfig::default();
    let p = plant(&config);
    let mut group = c.benchmark_group("mpc_solve");
    group.sample_size(10);
    for horizon in [6usize, 12, 24] {
        let loads: Vec<Watts> = (0..horizon)
            .map(|k| Watts::new(20_000.0 + 40_000.0 * ((k % 5) as f64 / 4.0)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(horizon), &horizon, |b, _| {
            let mut mpc = Mpc::new(MpcConfig {
                horizon,
                ..MpcConfig::default()
            });
            b.iter(|| mpc.solve(&p, &loads, Seconds::new(1.0)));
        });
    }
    group.finish();
}

/// Serial vs parallel finite-difference gradients vs the reverse-mode
/// adjoint at a fixed horizon. The two FD modes produce bit-identical
/// decisions (see the parity tests in `otem::mpc`), so their difference
/// is pure wall time; the adjoint replaces `4·horizon` FD rollouts per
/// gradient with one taped rollout (DESIGN.md §8), which is where its
/// order-of-magnitude gap comes from.
fn bench_gradient_modes(c: &mut Criterion) {
    let config = SystemConfig::default();
    let p = plant(&config);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut group = c.benchmark_group("mpc_gradient_mode");
    group.sample_size(10);
    for horizon in [12usize, 24] {
        let loads: Vec<Watts> = (0..horizon)
            .map(|k| Watts::new(20_000.0 + 40_000.0 * ((k % 5) as f64 / 4.0)))
            .collect();
        for (label, mode) in [
            ("serial", GradientMode::Serial),
            ("parallel", GradientMode::Parallel { threads }),
            ("adjoint", GradientMode::Adjoint),
        ] {
            group.bench_with_input(BenchmarkId::new(label, horizon), &horizon, |b, _| {
                let mut mpc = Mpc::new(MpcConfig {
                    horizon,
                    gradient_mode: mode,
                    ..MpcConfig::default()
                });
                b.iter(|| mpc.solve(&p, &loads, Seconds::new(1.0)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mpc, bench_gradient_modes);
criterion_main!(benches);
