//! SoA batch kernel vs N scalar rollouts — the per-candidate cost of a
//! line-search ladder, measured at the kernel level (no solver on top).
//!
//! `batch/N` runs `rollout_cost_batch` once over N lanes; `scalar/N`
//! runs `rollout_cost` N times over the same candidate matrix. Both
//! produce bit-identical costs (pinned in `tests/batch_parity.rs`), so
//! the comparison is purely about the lockstep layout's amortisation
//! of per-rollout overhead and locality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use otem::batch::rollout_cost_batch;
use otem::mpc::{rollout_cost, MpcConfig, MpcPlant};
use otem::SystemConfig;
use otem_hees::HybridHees;
use otem_thermal::{CoolingPlant, ThermalModel, ThermalState};
use otem_units::{Kelvin, Ratio, Seconds, Watts};

fn plant(config: &SystemConfig) -> MpcPlant {
    let mut hees = HybridHees::ev_default(config.capacitance).unwrap();
    hees.set_state(Ratio::new(0.8), Ratio::new(0.6));
    MpcPlant {
        hees,
        thermal: ThermalModel::new(config.thermal_active).unwrap(),
        plant: CoolingPlant::new(config.plant).unwrap(),
        state: ThermalState::uniform(Kelvin::from_celsius(33.0)),
        aging: config.aging,
        soc_min: config.soc_min,
        soe_min: config.soe_min,
        battery_power_max: config.battery_power_max,
        cap_power_max: config.cap_power_max,
    }
}

/// Deterministic splitmix64 candidate matrix.
fn candidates(lanes: usize, horizon: usize, mut state: u64) -> Vec<f64> {
    (0..lanes * 2 * horizon)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
        })
        .collect()
}

fn bench_batch_rollout(c: &mut Criterion) {
    let config = SystemConfig::default();
    let p = plant(&config);
    let horizon = 24;
    let cfg = MpcConfig {
        horizon,
        ..MpcConfig::default()
    };
    let dt = Seconds::new(1.0);
    let loads: Vec<Watts> = (0..horizon)
        .map(|k| Watts::new(20_000.0 + 40_000.0 * ((k % 5) as f64 / 4.0)))
        .collect();

    let mut group = c.benchmark_group("batch_rollout");
    for lanes in [2usize, 4, 8, 16] {
        let zs = candidates(lanes, horizon, 0x0b_a7c4);
        group.bench_with_input(BenchmarkId::new("batch", lanes), &lanes, |b, _| {
            let mut out = vec![0.0; lanes];
            b.iter(|| rollout_cost_batch(&p, &loads, dt, &cfg, &zs, lanes, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("scalar", lanes), &lanes, |b, _| {
            let mut out = vec![0.0; lanes];
            b.iter(|| {
                for lane in 0..lanes {
                    out[lane] = rollout_cost(
                        &p,
                        &loads,
                        dt,
                        &cfg,
                        &zs[lane * 2 * horizon..(lane + 1) * 2 * horizon],
                    );
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_rollout);
criterion_main!(benches);
