//! Drive-cycle synthesis and power-trace generation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use otem_drivecycle::{standard, synthesize, Powertrain, StandardCycle, VehicleParams};
use std::hint::black_box;

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize");
    for cycle in [StandardCycle::Us06, StandardCycle::Udds] {
        group.bench_with_input(
            BenchmarkId::from_parameter(cycle.spec().name.clone()),
            &cycle,
            |b, &cycle| {
                let spec = cycle.spec();
                b.iter(|| black_box(synthesize(&spec, cycle.seed()).unwrap()));
            },
        );
    }
    group.finish();

    c.bench_function("power_trace_us06", |b| {
        let cycle = standard(StandardCycle::Us06).unwrap();
        let train = Powertrain::new(VehicleParams::midsize_ev()).unwrap();
        b.iter(|| black_box(train.power_trace(&cycle)));
    });
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
