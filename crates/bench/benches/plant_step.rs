//! Plant-model micro-benchmarks: one hybrid-HEES power-split step and
//! one Crank–Nicolson thermal step — the inner loop of every rollout.

use criterion::{criterion_group, criterion_main, Criterion};
use otem_hees::{HybridCommand, HybridHees};
use otem_thermal::{ThermalModel, ThermalParams, ThermalState};
use otem_units::{Farads, Kelvin, Ratio, Seconds, Watts};
use std::hint::black_box;

fn bench_plant(c: &mut Criterion) {
    c.bench_function("hybrid_hees_step", |b| {
        let mut hees = HybridHees::ev_default(Farads::new(25_000.0)).unwrap();
        hees.set_state(Ratio::new(0.8), Ratio::new(0.6));
        let cmd = HybridCommand {
            battery_bus: Watts::new(30_000.0),
            cap_bus: Watts::new(10_000.0),
        };
        let temp = Kelvin::from_celsius(30.0);
        b.iter(|| {
            let mut h = hees.clone();
            black_box(h.step(black_box(cmd), temp, Seconds::new(1.0)))
        });
    });

    c.bench_function("thermal_crank_nicolson_step", |b| {
        let model = ThermalModel::new(ThermalParams::ev_pack()).unwrap();
        let state = ThermalState::uniform(Kelvin::from_celsius(30.0));
        b.iter(|| {
            black_box(model.step_crank_nicolson(
                black_box(state),
                Watts::new(2_000.0),
                Kelvin::from_celsius(18.0),
                Seconds::new(1.0),
            ))
        });
    });

    c.bench_function("battery_draw_power", |b| {
        let pack = otem_battery::BatteryPack::new(
            otem_battery::CellParams::ncr18650a(),
            otem_battery::PackConfig::compact_ev(),
        )
        .unwrap();
        let temp = Kelvin::from_celsius(30.0);
        b.iter(|| black_box(pack.draw_power(Watts::new(45_000.0), temp)));
    });
}

criterion_group!(benches, bench_plant);
criterion_main!(benches);
