//! The Eq. 10–13 parallel current-split solve (the per-step work of the
//! Parallel baseline) and the dual architecture's switched step.

use criterion::{criterion_group, criterion_main, Criterion};
use otem_hees::{DualHees, DualMode, ParallelHees};
use otem_units::{Farads, Kelvin, Ratio, Seconds, Watts};
use std::hint::black_box;

fn bench_split(c: &mut Criterion) {
    c.bench_function("parallel_circuit_step", |b| {
        let mut hees = ParallelHees::ev_default(Farads::new(25_000.0)).unwrap();
        hees.set_state(Ratio::new(0.8), Ratio::new(0.7));
        let temp = Kelvin::from_celsius(30.0);
        b.iter(|| {
            let mut h = hees.clone();
            black_box(h.step(Watts::new(35_000.0), temp, Seconds::new(1.0)))
        });
    });

    c.bench_function("dual_switched_step", |b| {
        let mut hees = DualHees::ev_default(Farads::new(25_000.0)).unwrap();
        hees.set_state(Ratio::new(0.8), Ratio::new(0.7));
        let temp = Kelvin::from_celsius(30.0);
        b.iter(|| {
            let mut h = hees.clone();
            black_box(h.step(
                DualMode::BatteryRecharging(8_000.0),
                Watts::new(35_000.0),
                temp,
                Seconds::new(1.0),
            ))
        });
    });
}

criterion_group!(benches, bench_split);
criterion_main!(benches);
