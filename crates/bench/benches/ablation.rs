//! Design-choice ablation benchmarks: Crank–Nicolson vs forward Euler,
//! and warm- vs cold-started MPC solves.

use criterion::{criterion_group, criterion_main, Criterion};
use otem::mpc::{Mpc, MpcConfig, MpcPlant};
use otem::SystemConfig;
use otem_hees::HybridHees;
use otem_thermal::{CoolingPlant, ThermalModel, ThermalParams, ThermalState};
use otem_units::{Kelvin, Ratio, Seconds, Watts};
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    // Discretisation: CN pays a 2×2 solve per step; Euler does not. The
    // accuracy difference is covered by the thermal crate's tests — here
    // we show the cost difference is negligible.
    let model = ThermalModel::new(ThermalParams::ev_pack()).unwrap();
    let state = ThermalState::uniform(Kelvin::from_celsius(30.0));
    c.bench_function("discretisation/crank_nicolson", |b| {
        b.iter(|| {
            black_box(model.step_crank_nicolson(
                black_box(state),
                Watts::new(2_000.0),
                Kelvin::from_celsius(15.0),
                Seconds::new(1.0),
            ))
        })
    });
    c.bench_function("discretisation/euler", |b| {
        b.iter(|| {
            black_box(model.step_euler(
                black_box(state),
                Watts::new(2_000.0),
                Kelvin::from_celsius(15.0),
                Seconds::new(1.0),
            ))
        })
    });

    // Warm start: re-solving a shifted problem from the previous plan
    // versus from scratch.
    let config = SystemConfig::default();
    let mut hees = HybridHees::ev_default(config.capacitance).unwrap();
    hees.set_state(Ratio::new(0.8), Ratio::new(0.6));
    let plant = MpcPlant {
        hees,
        thermal: ThermalModel::new(config.thermal_active).unwrap(),
        plant: CoolingPlant::new(config.plant).unwrap(),
        state: ThermalState::uniform(Kelvin::from_celsius(33.0)),
        aging: config.aging,
        soc_min: config.soc_min,
        soe_min: config.soe_min,
        battery_power_max: config.battery_power_max,
        cap_power_max: config.cap_power_max,
    };
    let loads: Vec<Watts> = (0..12)
        .map(|k| Watts::new(15_000.0 + 35_000.0 * ((k % 4) as f64 / 3.0)))
        .collect();

    let mut mpc_group = c.benchmark_group("mpc");
    mpc_group.sample_size(10);
    mpc_group.bench_function("warm_start", |b| {
        let mut mpc = Mpc::new(MpcConfig::default());
        mpc.solve(&plant, &loads, Seconds::new(1.0)); // prime the plan
        b.iter(|| black_box(mpc.solve(&plant, &loads, Seconds::new(1.0))));
    });
    mpc_group.bench_function("cold_start", |b| {
        b.iter(|| {
            let mut mpc = Mpc::new(MpcConfig::default());
            black_box(mpc.solve(&plant, &loads, Seconds::new(1.0)))
        });
    });
    mpc_group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
