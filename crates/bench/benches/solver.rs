//! NLP-solver micro-benchmarks on reference problems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use otem_solver::{Bounds, FnObjective, Lbfgs, NelderMead, ProjectedGradient};
use std::hint::black_box;

fn rosenbrock(x: &[f64]) -> f64 {
    x.windows(2)
        .map(|w| 100.0 * (w[1] - w[0] * w[0]).powi(2) + (1.0 - w[0]).powi(2))
        .sum()
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("rosenbrock");
    for n in [2usize, 10] {
        group.bench_with_input(BenchmarkId::new("lbfgs", n), &n, |b, &n| {
            let f = FnObjective::new(rosenbrock);
            b.iter(|| black_box(Lbfgs::default().minimize(&f, &vec![-1.2; n])));
        });
        group.bench_with_input(BenchmarkId::new("projected_gradient", n), &n, |b, &n| {
            let f = FnObjective::new(rosenbrock);
            let bounds = Bounds::unbounded(n);
            b.iter(|| {
                black_box(ProjectedGradient::default().minimize(&f, &bounds, &vec![-1.2; n]))
            });
        });
    }
    group.finish();

    c.bench_function("nelder_mead_quadratic_4d", |b| {
        let f = FnObjective::new(|x: &[f64]| x.iter().map(|v| (v - 1.0).powi(2)).sum());
        b.iter(|| black_box(NelderMead::default().minimize(&f, &[0.0; 4])));
    });

    c.bench_function("box_qp_20d", |b| {
        let f = FnObjective::new(|x: &[f64]| {
            x.iter()
                .enumerate()
                .map(|(i, &v)| (i + 1) as f64 * (v - 0.7).powi(2))
                .sum()
        });
        let bounds = Bounds::uniform(20, 0.0, 0.5); // active at the bound
        b.iter(|| black_box(ProjectedGradient::default().minimize(&f, &bounds, &[0.0; 20])));
    });
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
