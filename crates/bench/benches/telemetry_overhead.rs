//! Cost of the telemetry layer on the simulation hot loop.
//!
//! Three variants of the same short closed-loop run:
//!
//! * `uninstrumented` — the plain [`otem_bench::run`] path,
//! * `null_sink` — [`otem_bench::run_with`] and a [`NullSink`] (the
//!   zero-cost contract: this must be indistinguishable from the first),
//! * `memory_sink` — [`otem_bench::run_with`] and a [`MemorySink`] (the
//!   price of actually capturing every event).

use criterion::{criterion_group, criterion_main, Criterion};
use otem::{Simulator, SystemConfig};
use otem_bench::Methodology;
use otem_drivecycle::PowerTrace;
use otem_telemetry::{MemorySink, NullSink};
use otem_units::{Seconds, Watts};

/// A synthetic urban-ish load pattern, long enough that the per-step
/// dispatch cost dominates over controller construction.
fn trace() -> PowerTrace {
    let samples: Vec<Watts> = (0..600)
        .map(|k| Watts::new(8_000.0 + 30_000.0 * ((k % 7) as f64 / 6.0)))
        .collect();
    PowerTrace::new(Seconds::new(1.0), samples)
}

fn bench_overhead(c: &mut Criterion) {
    let config = SystemConfig::default();
    let trace = trace();
    // Parallel is the cheapest controller, so the sink dispatch is the
    // largest *fraction* of its step — the worst case for overhead.
    let m = Methodology::Parallel;
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);

    group.bench_function("uninstrumented", |b| {
        b.iter(|| {
            let mut controller = m.controller(&config).expect("controller");
            Simulator::new(&config).run(controller.as_mut(), &trace)
        });
    });
    group.bench_function("null_sink", |b| {
        b.iter(|| {
            let mut controller = m.controller(&config).expect("controller");
            Simulator::new(&config).run_with(controller.as_mut(), &trace, &NullSink)
        });
    });
    group.bench_function("memory_sink", |b| {
        b.iter(|| {
            let sink = MemorySink::new();
            let mut controller = m.controller(&config).expect("controller");
            Simulator::new(&config).run_with(controller.as_mut(), &trace, &sink)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
