//! Property-based tests for the ultracapacitor bank.

use otem_ultracap::{UltracapBank, UltracapParams};
use otem_units::{Farads, Ratio, Seconds, Watts};
use proptest::prelude::*;

fn bank_at(farads: f64, soe: f64) -> UltracapBank {
    let mut b = UltracapBank::new(UltracapParams::paper_bank(Farads::new(farads))).unwrap();
    b.set_soe(Ratio::new(soe));
    b
}

proptest! {
    #[test]
    fn soe_stays_in_unit_interval(
        farads in 1_000.0..30_000.0f64,
        soe in 0.0..=1.0f64,
        p_kw in -50.0..50.0f64,
        dt in 0.1..10.0f64,
    ) {
        let mut b = bank_at(farads, soe);
        if let Ok(draw) = b.draw_power(Watts::new(p_kw * 1000.0)) {
            b.integrate(draw, Seconds::new(dt));
            prop_assert!((0.0..=1.0).contains(&b.soe().value()));
        }
    }

    #[test]
    fn voltage_monotonic_in_soe(s1 in 0.0..=1.0f64, s2 in 0.0..=1.0f64) {
        let b1 = bank_at(25_000.0, s1);
        let b2 = bank_at(25_000.0, s2);
        if s1 < s2 {
            prop_assert!(b1.voltage() <= b2.voltage());
        }
        prop_assert!(b1.voltage().value() <= b1.params().rated_voltage.value() + 1e-12);
    }

    #[test]
    fn energy_bookkeeping_is_exact_without_resistance(
        soe in 0.3..0.9f64,
        p_kw in 1.0..40.0f64,
        dt in 0.5..5.0f64,
    ) {
        let mut b = bank_at(25_000.0, soe);
        let before = b.stored_energy().value();
        if let Ok(draw) = b.draw_power(Watts::new(p_kw * 1000.0)) {
            b.integrate(draw, Seconds::new(dt));
            let after = b.stored_energy().value();
            let drained = before - after;
            // Discharge plus the (tiny) self-discharge leak over dt.
            let tau = b.params().leakage_time_constant;
            let expected = before - (before - p_kw * 1000.0 * dt) * (-dt / tau).exp();
            prop_assert!(
                (drained - expected).abs() < 1e-6 * expected.max(1.0),
                "drained {drained} expected {expected}"
            );
        }
    }

    #[test]
    fn discharge_feasibility_matches_reported_limit(
        soe in 0.01..1.0f64,
        frac in 0.1..2.0f64,
    ) {
        let b = bank_at(25_000.0, soe);
        let limit = b.max_discharge_power();
        let req = Watts::new(limit.value() * frac);
        let result = b.draw_power(req);
        if frac <= 1.0 {
            prop_assert!(result.is_ok(), "{frac} of limit rejected");
        } else {
            prop_assert!(result.is_err(), "{frac} of limit accepted");
        }
    }
}
