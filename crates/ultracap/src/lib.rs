//! Ultracapacitor bank model for the OTEM electric-vehicle simulator.
//!
//! Implements Section II-B of the OTEM paper (DATE 2016), Eq. 6–9:
//!
//! * energy capacity `E_cap = ½·C·V_r²`,
//! * terminal voltage `V_cap = V_r·√(SoE)` — the *voltage swing* that
//!   degrades DC/DC conversion efficiency when the bank is over-used,
//! * state-of-energy integration `SoE ← SoE − ∫ V·I / E_cap`.
//!
//! The paper omits the bank's internal resistance (≈ 2.2 mΩ per cell,
//! negligible) and its heat generation; so does this model, but an
//! optional series resistance is supported for sensitivity studies.
//!
//! # Examples
//!
//! ```
//! use otem_ultracap::{UltracapBank, UltracapParams};
//! use otem_units::{Farads, Ratio, Seconds, Volts, Watts};
//!
//! # fn main() -> Result<(), otem_ultracap::UltracapError> {
//! let mut bank = UltracapBank::new(UltracapParams::paper_bank(Farads::new(25_000.0)))?;
//! bank.set_soe(Ratio::from_percent(80.0));
//! let draw = bank.draw_power(Watts::new(15_000.0))?;
//! bank.integrate(draw, Seconds::new(1.0));
//! assert!(bank.soe() < Ratio::from_percent(80.0));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod bank;
mod error;
pub mod kernel;
mod params;

pub use bank::{CapDraw, CapDrawPartials, UltracapBank};
pub use error::UltracapError;
pub use params::UltracapParams;
