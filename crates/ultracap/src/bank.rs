//! The bank state machine: state of energy, voltage swing, power draws.

use crate::error::UltracapError;
use crate::params::UltracapParams;
use otem_units::{Amps, Joules, Ratio, Seconds, Volts, Watts};
use serde::{Deserialize, Serialize};

/// A resolved ultracapacitor operating point for one power request.
///
/// Produced by [`UltracapBank::draw_power`]; apply with
/// [`UltracapBank::integrate`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapDraw {
    /// Power at the bank terminals (positive = discharge).
    pub terminal_power: Watts,
    /// Energy-store power `V_cap·I_cap` — what the SoE integral sees
    /// (Eq. 9). Equals terminal power plus resistive loss.
    pub internal_power: Watts,
    /// Bank current `I_cap` (Eq. 7), positive = discharge.
    pub current: Amps,
    /// Open-circuit bank voltage `V_cap = V_r·√SoE` (Eq. 8).
    pub voltage: Volts,
}

impl CapDraw {
    /// A zero/no-op draw.
    pub const IDLE: Self = Self {
        terminal_power: Watts::ZERO,
        internal_power: Watts::ZERO,
        current: Amps::ZERO,
        voltage: Volts::ZERO,
    };

    /// Resistive loss inside the bank.
    pub fn loss(&self) -> Watts {
        self.internal_power - self.terminal_power
    }
}

/// Partial derivatives of a resolved [`CapDraw`], row per output,
/// columns over the inputs `[∂/∂power, ∂/∂SoE]`.
///
/// Produced by [`UltracapBank::draw_partials`] for the adjoint
/// gradient's backward sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapDrawPartials {
    /// Energy-store power `V·I` sensitivities (what the SoE integral sees).
    pub internal_power: [f64; 2],
    /// Bank current sensitivities.
    pub current: [f64; 2],
}

/// An ultracapacitor bank with its state of energy.
///
/// Sign convention: positive power/current **discharges** the bank.
///
/// # Examples
///
/// ```
/// use otem_ultracap::{UltracapBank, UltracapParams};
/// use otem_units::{Ratio, Seconds, Watts};
///
/// # fn main() -> Result<(), otem_ultracap::UltracapError> {
/// let mut bank = UltracapBank::new(UltracapParams::default())?;
/// bank.set_soe(Ratio::from_percent(40.0));
/// let draw = bank.draw_power(Watts::new(-5_000.0))?; // pre-charge the bank
/// bank.integrate(draw, Seconds::new(2.0));
/// assert!(bank.soe() > Ratio::from_percent(40.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UltracapBank {
    params: UltracapParams,
    soe: Ratio,
}

impl UltracapBank {
    /// Builds a fully charged bank.
    ///
    /// # Errors
    ///
    /// Returns [`UltracapError::InvalidParameter`] if the parameters fail
    /// validation.
    pub fn new(params: UltracapParams) -> Result<Self, UltracapError> {
        params.validate()?;
        Ok(Self {
            params,
            soe: Ratio::ONE,
        })
    }

    /// The bank's parameters.
    pub fn params(&self) -> &UltracapParams {
        &self.params
    }

    /// Present state of energy (Eq. 9).
    pub fn soe(&self) -> Ratio {
        self.soe
    }

    /// Overrides the state of energy.
    pub fn set_soe(&mut self, soe: Ratio) {
        self.soe = soe;
    }

    /// Stored energy right now: `SoE · E_cap`.
    pub fn stored_energy(&self) -> Joules {
        Joules::new(self.soe * self.params.energy_capacity().value())
    }

    /// Open-circuit bank voltage `V_cap = V_r·√(SoE)` (Eq. 8). This is
    /// the voltage swing that the DC/DC converter efficiency model keys
    /// off.
    pub fn voltage(&self) -> Volts {
        Volts::new(crate::kernel::bank_voltage(
            self.params.rated_voltage.value(),
            self.soe.value(),
        ))
    }

    /// Maximum discharge power deliverable right now: limited by the
    /// interface power rating and by what would drain the bank within one
    /// second (a conservative depletion guard so a draw can always be
    /// integrated at 1 Hz).
    pub fn max_discharge_power(&self) -> Watts {
        let depletion_limited = self.stored_energy().value(); // J drainable in 1 s
        Watts::new(self.params.max_power.value().min(depletion_limited))
    }

    /// Maximum charge power acceptable right now (mirror of
    /// [`Self::max_discharge_power`] against the remaining headroom).
    pub fn max_charge_power(&self) -> Watts {
        let headroom = self.params.energy_capacity().value() - self.stored_energy().value();
        Watts::new(self.params.max_power.value().min(headroom))
    }

    /// Resolves a terminal power request into an operating point.
    ///
    /// # Errors
    ///
    /// Returns [`UltracapError::PowerInfeasible`] when a discharge exceeds
    /// [`Self::max_discharge_power`] or a charge exceeds
    /// [`Self::max_charge_power`].
    pub fn draw_power(&self, power: Watts) -> Result<CapDraw, UltracapError> {
        let p = power.value();
        if p == 0.0 {
            return Ok(CapDraw {
                voltage: self.voltage(),
                ..CapDraw::IDLE
            });
        }
        if p > 0.0 && power > self.max_discharge_power() {
            return Err(UltracapError::PowerInfeasible {
                requested: power,
                available: self.max_discharge_power(),
            });
        }
        if p < 0.0 && power.abs() > self.max_charge_power() {
            return Err(UltracapError::PowerInfeasible {
                requested: power,
                available: self.max_charge_power(),
            });
        }
        let v = self.voltage().value();
        if v <= 0.0 && p > 0.0 {
            return Err(UltracapError::PowerInfeasible {
                requested: power,
                available: Watts::ZERO,
            });
        }
        // With the (tiny) series resistance: P = V·I − R·I². The
        // zero-resistance branch floors a depleted bank's voltage at 5 %
        // of rated to avoid a singularity when accepting charge.
        let r = self.params.series_resistance;
        let i = match crate::kernel::bank_current(p, v, r, self.params.rated_voltage.value()) {
            Some(i) => i,
            None => {
                return Err(UltracapError::PowerInfeasible {
                    requested: power,
                    available: Watts::new(v * v / (4.0 * r)),
                });
            }
        };
        Ok(CapDraw {
            terminal_power: power,
            internal_power: Watts::new(v * i),
            current: Amps::new(i),
            voltage: Volts::new(v),
        })
    }

    /// Slope of the open-circuit voltage in the state of energy,
    /// `dV/dSoE = V_r/(2·√SoE)`. Guarded to zero on a fully depleted
    /// bank, where the square root is not differentiable — the adjoint
    /// must stay finite even at the saturation boundary.
    pub fn voltage_slope(&self) -> f64 {
        let soe = self.soe.value();
        if soe > 0.0 {
            self.params.rated_voltage.value() / (2.0 * soe.sqrt())
        } else {
            0.0
        }
    }

    /// Slope of [`UltracapBank::max_discharge_power`] in the state of
    /// energy: `E_cap` when the depletion guard binds, zero when the
    /// interface power rating does.
    pub fn discharge_limit_slope(&self) -> f64 {
        if self.stored_energy().value() < self.params.max_power.value() {
            self.params.energy_capacity().value()
        } else {
            0.0
        }
    }

    /// Slope of [`UltracapBank::max_charge_power`] in the state of
    /// energy: `−E_cap` when the headroom guard binds, zero when the
    /// interface power rating does.
    pub fn charge_limit_slope(&self) -> f64 {
        let headroom = self.params.energy_capacity().value() - self.stored_energy().value();
        if headroom < self.params.max_power.value() {
            -self.params.energy_capacity().value()
        } else {
            0.0
        }
    }

    /// Partial derivatives of the operating point
    /// [`UltracapBank::draw_power`] resolves, columns over
    /// `[∂/∂power, ∂/∂SoE]`. Differentiates exactly the branch the
    /// forward call executes (including the depleted-bank voltage floor
    /// of the zero-resistance model). Returns `None` where the forward
    /// call errors or sits on a non-differentiable boundary.
    pub fn draw_partials(&self, power: Watts) -> Option<CapDrawPartials> {
        let p = power.value();
        let v = self.voltage().value();
        let dv = self.voltage_slope();
        if v <= 0.0 && p > 0.0 {
            return None;
        }
        let r = self.params.series_resistance;
        if r == 0.0 {
            let floor = 0.05 * self.params.rated_voltage.value();
            if v > floor {
                // i = p/v, internal = v·(p/v): unit power sensitivity,
                // flat in SoE.
                Some(CapDrawPartials {
                    internal_power: [1.0, 0.0],
                    current: [1.0 / v, -p / (v * v) * dv],
                })
            } else {
                // Below the voltage floor: i = p/floor, internal = v·p/floor.
                Some(CapDrawPartials {
                    internal_power: [v / floor, p / floor * dv],
                    current: [1.0 / floor, 0.0],
                })
            }
        } else {
            let disc = v * v - 4.0 * r * p;
            if disc <= 0.0 {
                return None;
            }
            let sqrt_d = disc.sqrt();
            let i = (v - sqrt_d) / (2.0 * r);
            let di_dp = 1.0 / sqrt_d;
            let di_dv = (1.0 - v / sqrt_d) / (2.0 * r);
            Some(CapDrawPartials {
                internal_power: [v * di_dp, (i + v * di_dv) * dv],
                current: [di_dp, di_dv * dv],
            })
        }
    }

    /// Applies a resolved operating point for one time step: advances the
    /// SoE integral (Eq. 9) including the self-discharge leak, clamped
    /// to `[0, 1]`.
    pub fn integrate(&mut self, draw: CapDraw, dt: Seconds) {
        let e_cap = self.params.energy_capacity().value();
        self.soe = Ratio::new(crate::kernel::soe_after_step(
            self.soe.value(),
            draw.internal_power.value(),
            dt.value(),
            e_cap,
            self.params.leakage_time_constant,
        ));
    }

    /// Lets the bank idle (no power exchange) for the given duration:
    /// only the self-discharge leak acts.
    pub fn idle(&mut self, dt: Seconds) {
        self.integrate(CapDraw::IDLE, dt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otem_units::Farads;

    fn bank() -> UltracapBank {
        UltracapBank::new(UltracapParams::default()).expect("valid")
    }

    #[test]
    fn voltage_follows_square_root_of_soe() {
        let mut b = bank();
        assert_eq!(b.voltage(), b.params().rated_voltage);
        b.set_soe(Ratio::new(0.25));
        assert!((b.voltage().value() - 8.0).abs() < 1e-12); // 16 · √0.25
        b.set_soe(Ratio::ZERO);
        assert_eq!(b.voltage().value(), 0.0);
    }

    #[test]
    fn discharge_lowers_soe_by_energy_fraction() {
        let mut b = bank();
        let e_cap = b.params().energy_capacity().value();
        let draw = b.draw_power(Watts::new(10_000.0)).expect("feasible");
        b.integrate(draw, Seconds::new(10.0));
        let expected =
            (1.0 - 10_000.0 * 10.0 / e_cap) * (-10.0 / b.params().leakage_time_constant).exp();
        assert!((b.soe().value() - expected).abs() < 1e-9);
    }

    #[test]
    fn charge_raises_soe_and_clamps() {
        let mut b = bank();
        b.set_soe(Ratio::new(0.5));
        let draw = b.draw_power(Watts::new(-20_000.0)).expect("feasible");
        b.integrate(draw, Seconds::new(5.0));
        assert!(b.soe().value() > 0.5);
        // Overcharging clamps at 100 %.
        for _ in 0..10_000 {
            if let Ok(d) = b.draw_power(Watts::new(-20_000.0)) {
                b.integrate(d, Seconds::new(10.0));
            } else {
                break;
            }
        }
        assert!(b.soe() <= Ratio::ONE);
    }

    #[test]
    fn depleted_bank_rejects_discharge() {
        let mut b = bank();
        b.set_soe(Ratio::ZERO);
        let err = b.draw_power(Watts::new(1_000.0)).unwrap_err();
        assert!(matches!(err, UltracapError::PowerInfeasible { .. }));
    }

    #[test]
    fn full_bank_rejects_charge() {
        let b = bank();
        assert!(b.draw_power(Watts::new(-1_000.0)).is_err());
    }

    #[test]
    fn power_limit_enforced_both_directions() {
        let mut b = bank();
        b.set_soe(Ratio::HALF);
        let limit = b.params().max_power.value();
        assert!(b.draw_power(Watts::new(limit * 1.01)).is_err());
        assert!(b.draw_power(Watts::new(-limit * 1.01)).is_err());
        assert!(b.draw_power(Watts::new(limit * 0.5)).is_ok());
    }

    #[test]
    fn small_bank_depletes_fast_large_bank_rides_through() {
        // The Fig. 1 premise: at a sustained 15 kW overflow, the 5,000 F
        // bank dies within a US06 aggressive phase (~60 s), the 25,000 F
        // bank does not.
        let sustain = Watts::new(15_000.0);
        let seconds_alive = |farads: f64| -> u32 {
            let mut b = UltracapBank::new(UltracapParams::paper_bank(Farads::new(farads))).unwrap();
            let mut t = 0;
            while t < 600 {
                match b.draw_power(sustain) {
                    Ok(d) => b.integrate(d, Seconds::new(1.0)),
                    Err(_) => break,
                }
                t += 1;
            }
            t
        };
        let small = seconds_alive(5_000.0);
        let large = seconds_alive(25_000.0);
        assert!(small < 60, "5 kF bank lasted {small} s");
        assert!(large > 180, "25 kF bank lasted only {large} s");
    }

    #[test]
    fn zero_power_is_identity() {
        let b = bank();
        let d = b.draw_power(Watts::ZERO).expect("always feasible");
        assert_eq!(d.current, Amps::ZERO);
        assert_eq!(d.voltage, b.voltage());
    }

    #[test]
    fn series_resistance_creates_loss() {
        let params = UltracapParams {
            series_resistance: 2.0e-4,
            ..UltracapParams::default()
        };
        let mut b = UltracapBank::new(params).unwrap();
        b.set_soe(Ratio::new(0.8));
        let d = b.draw_power(Watts::new(10_000.0)).expect("feasible");
        assert!(d.loss().value() > 0.0);
        // Loss is I²R.
        let expected = d.current.value().powi(2) * 2.0e-4;
        assert!((d.loss().value() - expected).abs() < 1e-6);
    }

    #[test]
    fn idle_bank_leaks_slowly() {
        let mut b = bank();
        b.set_soe(Ratio::new(0.8));
        // One hour of idling: a 40 h time constant loses ≈ 2.5 %.
        b.idle(Seconds::new(3600.0));
        let expected = 0.8 * (-1.0f64 / 40.0).exp();
        assert!((b.soe().value() - expected).abs() < 1e-9);
        assert!(b.soe().value() > 0.77);
    }

    #[test]
    fn leak_is_negligible_at_control_timescales() {
        let mut b = bank();
        b.set_soe(Ratio::new(0.8));
        b.idle(Seconds::new(1.0));
        assert!((b.soe().value() - 0.8).abs() < 1e-5);
    }

    #[test]
    fn stored_energy_tracks_soe() {
        let mut b = bank();
        b.set_soe(Ratio::new(0.3));
        let expected = 0.3 * b.params().energy_capacity().value();
        assert!((b.stored_energy().value() - expected).abs() < 1e-9);
    }

    fn fd_columns(b: &UltracapBank, p: f64) -> ([f64; 2], [f64; 2]) {
        let h_p = 1.0e-2;
        let h_s = 1.0e-8;
        let at = |bank: &UltracapBank, power: f64| -> (f64, f64) {
            let d = bank.draw_power(Watts::new(power)).expect("feasible");
            (d.internal_power.value(), d.current.value())
        };
        let (ip_hi, i_hi) = at(b, p + h_p);
        let (ip_lo, i_lo) = at(b, p - h_p);
        let mut hi = b.clone();
        hi.set_soe(Ratio::new(b.soe().value() + h_s));
        let mut lo = b.clone();
        lo.set_soe(Ratio::new(b.soe().value() - h_s));
        let (ip_sh, i_sh) = at(&hi, p);
        let (ip_sl, i_sl) = at(&lo, p);
        (
            [(ip_hi - ip_lo) / (2.0 * h_p), (ip_sh - ip_sl) / (2.0 * h_s)],
            [(i_hi - i_lo) / (2.0 * h_p), (i_sh - i_sl) / (2.0 * h_s)],
        )
    }

    fn assert_close(analytic: f64, fd: f64, what: &str) {
        // Absolute floor: the SoE column differences ~1e4 W values over
        // a 2e-8 step, so one ulp of roundoff already shows up as ~1e-4
        // of spurious FD "slope" — below that, FD noise is not signal.
        let tol = 1e-4 * fd.abs() + 2.0e-4;
        assert!(
            (analytic - fd).abs() <= tol,
            "{what}: analytic {analytic} vs FD {fd}"
        );
    }

    #[test]
    fn draw_partials_match_finite_differences_zero_resistance() {
        for (soe, p) in [(0.6, 12_000.0), (0.6, -9_000.0), (0.2, 4_000.0)] {
            let mut b = bank();
            b.set_soe(Ratio::new(soe));
            let partials = b.draw_partials(Watts::new(p)).expect("differentiable");
            let (fd_ip, fd_i) = fd_columns(&b, p);
            assert_close(partials.internal_power[0], fd_ip[0], "∂internal/∂p");
            assert_close(partials.internal_power[1], fd_ip[1], "∂internal/∂soe");
            assert_close(partials.current[0], fd_i[0], "∂i/∂p");
            assert_close(partials.current[1], fd_i[1], "∂i/∂soe");
        }
    }

    #[test]
    fn draw_partials_follow_the_voltage_floor_branch() {
        // Below 5 % of rated voltage (SoE < 0.0025) the zero-resistance
        // model pins the current denominator to the floor; only charging
        // is feasible there.
        let mut b = bank();
        b.set_soe(Ratio::new(1.0e-3));
        let p = -1_000.0;
        let partials = b.draw_partials(Watts::new(p)).expect("differentiable");
        let floor = 0.05 * b.params().rated_voltage.value();
        let v = b.voltage().value();
        assert!(v < floor, "test must exercise the floor branch");
        assert!((partials.internal_power[0] - v / floor).abs() < 1e-12);
        let (fd_ip, fd_i) = fd_columns(&b, p);
        assert_close(partials.internal_power[0], fd_ip[0], "∂internal/∂p");
        assert_close(partials.internal_power[1], fd_ip[1], "∂internal/∂soe");
        assert_close(partials.current[0], fd_i[0], "∂i/∂p");
        assert_close(partials.current[1], fd_i[1], "∂i/∂soe");
    }

    #[test]
    fn draw_partials_match_finite_differences_with_resistance() {
        let params = UltracapParams {
            series_resistance: 2.0e-4,
            ..UltracapParams::default()
        };
        for (soe, p) in [(0.8, 10_000.0), (0.5, -15_000.0)] {
            let mut b = UltracapBank::new(params).unwrap();
            b.set_soe(Ratio::new(soe));
            let partials = b.draw_partials(Watts::new(p)).expect("differentiable");
            let (fd_ip, fd_i) = fd_columns(&b, p);
            assert_close(partials.internal_power[0], fd_ip[0], "∂internal/∂p");
            assert_close(partials.internal_power[1], fd_ip[1], "∂internal/∂soe");
            assert_close(partials.current[0], fd_i[0], "∂i/∂p");
            assert_close(partials.current[1], fd_i[1], "∂i/∂soe");
        }
    }

    #[test]
    fn draw_partials_none_on_infeasible_branches() {
        let mut b = bank();
        b.set_soe(Ratio::ZERO);
        assert!(b.draw_partials(Watts::new(1_000.0)).is_none());
        let params = UltracapParams {
            series_resistance: 0.1,
            ..UltracapParams::default()
        };
        let mut r = UltracapBank::new(params).unwrap();
        r.set_soe(Ratio::new(0.5));
        // Past the quadratic's vertex the forward solve errors too.
        let v = r.voltage().value();
        let over = v * v / (4.0 * 0.1) * 1.5;
        assert!(r.draw_partials(Watts::new(over)).is_none());
    }

    #[test]
    fn envelope_limit_slopes_track_the_active_constraint() {
        let e_cap = bank().params().energy_capacity().value();
        let max_p = bank().params().max_power.value();

        // Nearly depleted: discharge is energy-limited, charge power-limited.
        let mut low = bank();
        low.set_soe(Ratio::new(0.5 * max_p / e_cap));
        assert_eq!(low.discharge_limit_slope(), e_cap);
        assert_eq!(low.charge_limit_slope(), 0.0);

        // Nearly full: charge is headroom-limited, discharge power-limited.
        let mut high = bank();
        high.set_soe(Ratio::new(1.0 - 0.5 * max_p / e_cap));
        assert_eq!(high.discharge_limit_slope(), 0.0);
        assert_eq!(high.charge_limit_slope(), -e_cap);

        // FD check on the energy-limited sides.
        let h = 1e-7;
        let at = |soe: f64| {
            let mut b = bank();
            b.set_soe(Ratio::new(soe));
            (
                b.max_discharge_power().value(),
                b.max_charge_power().value(),
            )
        };
        let s = low.soe().value();
        let fd_dis = (at(s + h).0 - at(s - h).0) / (2.0 * h);
        assert!((low.discharge_limit_slope() - fd_dis).abs() <= 1e-3 * e_cap);
        let s = high.soe().value();
        let fd_chg = (at(s + h).1 - at(s - h).1) / (2.0 * h);
        assert!((high.charge_limit_slope() - fd_chg).abs() <= 1e-3 * e_cap);
    }

    #[test]
    fn voltage_slope_matches_finite_difference_and_is_finite_when_empty() {
        let mut b = bank();
        b.set_soe(Ratio::new(0.36));
        let h = 1e-8;
        let at = |soe: f64| {
            let mut c = bank();
            c.set_soe(Ratio::new(soe));
            c.voltage().value()
        };
        let fd = (at(0.36 + h) - at(0.36 - h)) / (2.0 * h);
        assert!((b.voltage_slope() - fd).abs() <= 1e-4 * fd.abs());
        b.set_soe(Ratio::ZERO);
        assert_eq!(b.voltage_slope(), 0.0);
    }
}
