//! The bank state machine: state of energy, voltage swing, power draws.

use crate::error::UltracapError;
use crate::params::UltracapParams;
use otem_units::{Amps, Joules, Ratio, Seconds, Volts, Watts};
use serde::{Deserialize, Serialize};

/// A resolved ultracapacitor operating point for one power request.
///
/// Produced by [`UltracapBank::draw_power`]; apply with
/// [`UltracapBank::integrate`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapDraw {
    /// Power at the bank terminals (positive = discharge).
    pub terminal_power: Watts,
    /// Energy-store power `V_cap·I_cap` — what the SoE integral sees
    /// (Eq. 9). Equals terminal power plus resistive loss.
    pub internal_power: Watts,
    /// Bank current `I_cap` (Eq. 7), positive = discharge.
    pub current: Amps,
    /// Open-circuit bank voltage `V_cap = V_r·√SoE` (Eq. 8).
    pub voltage: Volts,
}

impl CapDraw {
    /// A zero/no-op draw.
    pub const IDLE: Self = Self {
        terminal_power: Watts::ZERO,
        internal_power: Watts::ZERO,
        current: Amps::ZERO,
        voltage: Volts::ZERO,
    };

    /// Resistive loss inside the bank.
    pub fn loss(&self) -> Watts {
        self.internal_power - self.terminal_power
    }
}

/// An ultracapacitor bank with its state of energy.
///
/// Sign convention: positive power/current **discharges** the bank.
///
/// # Examples
///
/// ```
/// use otem_ultracap::{UltracapBank, UltracapParams};
/// use otem_units::{Ratio, Seconds, Watts};
///
/// # fn main() -> Result<(), otem_ultracap::UltracapError> {
/// let mut bank = UltracapBank::new(UltracapParams::default())?;
/// bank.set_soe(Ratio::from_percent(40.0));
/// let draw = bank.draw_power(Watts::new(-5_000.0))?; // pre-charge the bank
/// bank.integrate(draw, Seconds::new(2.0));
/// assert!(bank.soe() > Ratio::from_percent(40.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UltracapBank {
    params: UltracapParams,
    soe: Ratio,
}

impl UltracapBank {
    /// Builds a fully charged bank.
    ///
    /// # Errors
    ///
    /// Returns [`UltracapError::InvalidParameter`] if the parameters fail
    /// validation.
    pub fn new(params: UltracapParams) -> Result<Self, UltracapError> {
        params.validate()?;
        Ok(Self {
            params,
            soe: Ratio::ONE,
        })
    }

    /// The bank's parameters.
    pub fn params(&self) -> &UltracapParams {
        &self.params
    }

    /// Present state of energy (Eq. 9).
    pub fn soe(&self) -> Ratio {
        self.soe
    }

    /// Overrides the state of energy.
    pub fn set_soe(&mut self, soe: Ratio) {
        self.soe = soe;
    }

    /// Stored energy right now: `SoE · E_cap`.
    pub fn stored_energy(&self) -> Joules {
        Joules::new(self.soe * self.params.energy_capacity().value())
    }

    /// Open-circuit bank voltage `V_cap = V_r·√(SoE)` (Eq. 8). This is
    /// the voltage swing that the DC/DC converter efficiency model keys
    /// off.
    pub fn voltage(&self) -> Volts {
        self.params.rated_voltage * self.soe.value().sqrt()
    }

    /// Maximum discharge power deliverable right now: limited by the
    /// interface power rating and by what would drain the bank within one
    /// second (a conservative depletion guard so a draw can always be
    /// integrated at 1 Hz).
    pub fn max_discharge_power(&self) -> Watts {
        let depletion_limited = self.stored_energy().value(); // J drainable in 1 s
        Watts::new(self.params.max_power.value().min(depletion_limited))
    }

    /// Maximum charge power acceptable right now (mirror of
    /// [`Self::max_discharge_power`] against the remaining headroom).
    pub fn max_charge_power(&self) -> Watts {
        let headroom = self.params.energy_capacity().value() - self.stored_energy().value();
        Watts::new(self.params.max_power.value().min(headroom))
    }

    /// Resolves a terminal power request into an operating point.
    ///
    /// # Errors
    ///
    /// Returns [`UltracapError::PowerInfeasible`] when a discharge exceeds
    /// [`Self::max_discharge_power`] or a charge exceeds
    /// [`Self::max_charge_power`].
    pub fn draw_power(&self, power: Watts) -> Result<CapDraw, UltracapError> {
        let p = power.value();
        if p == 0.0 {
            return Ok(CapDraw {
                voltage: self.voltage(),
                ..CapDraw::IDLE
            });
        }
        if p > 0.0 && power > self.max_discharge_power() {
            return Err(UltracapError::PowerInfeasible {
                requested: power,
                available: self.max_discharge_power(),
            });
        }
        if p < 0.0 && power.abs() > self.max_charge_power() {
            return Err(UltracapError::PowerInfeasible {
                requested: power,
                available: self.max_charge_power(),
            });
        }
        let v = self.voltage().value();
        if v <= 0.0 && p > 0.0 {
            return Err(UltracapError::PowerInfeasible {
                requested: power,
                available: Watts::ZERO,
            });
        }
        // With the (tiny) series resistance: P = V·I − R·I².
        let r = self.params.series_resistance;
        let i = if r == 0.0 {
            // Depleted bank accepting charge: current through the
            // converter at (near-)zero voltage is modelled at rated
            // voltage to avoid a singularity; the SoE integral uses
            // internal power anyway.
            p / v.max(0.05 * self.params.rated_voltage.value())
        } else {
            let disc = v * v - 4.0 * r * p;
            if disc < 0.0 {
                return Err(UltracapError::PowerInfeasible {
                    requested: power,
                    available: Watts::new(v * v / (4.0 * r)),
                });
            }
            (v - disc.sqrt()) / (2.0 * r)
        };
        Ok(CapDraw {
            terminal_power: power,
            internal_power: Watts::new(v * i),
            current: Amps::new(i),
            voltage: Volts::new(v),
        })
    }

    /// Applies a resolved operating point for one time step: advances the
    /// SoE integral (Eq. 9) including the self-discharge leak, clamped
    /// to `[0, 1]`.
    pub fn integrate(&mut self, draw: CapDraw, dt: Seconds) {
        let e_cap = self.params.energy_capacity().value();
        let delta = draw.internal_power.value() * dt.value() / e_cap;
        let leak = (-dt.value() / self.params.leakage_time_constant).exp();
        self.soe = Ratio::new((self.soe.value() - delta) * leak);
    }

    /// Lets the bank idle (no power exchange) for the given duration:
    /// only the self-discharge leak acts.
    pub fn idle(&mut self, dt: Seconds) {
        self.integrate(CapDraw::IDLE, dt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otem_units::Farads;

    fn bank() -> UltracapBank {
        UltracapBank::new(UltracapParams::default()).expect("valid")
    }

    #[test]
    fn voltage_follows_square_root_of_soe() {
        let mut b = bank();
        assert_eq!(b.voltage(), b.params().rated_voltage);
        b.set_soe(Ratio::new(0.25));
        assert!((b.voltage().value() - 8.0).abs() < 1e-12); // 16 · √0.25
        b.set_soe(Ratio::ZERO);
        assert_eq!(b.voltage().value(), 0.0);
    }

    #[test]
    fn discharge_lowers_soe_by_energy_fraction() {
        let mut b = bank();
        let e_cap = b.params().energy_capacity().value();
        let draw = b.draw_power(Watts::new(10_000.0)).expect("feasible");
        b.integrate(draw, Seconds::new(10.0));
        let expected =
            (1.0 - 10_000.0 * 10.0 / e_cap) * (-10.0 / b.params().leakage_time_constant).exp();
        assert!((b.soe().value() - expected).abs() < 1e-9);
    }

    #[test]
    fn charge_raises_soe_and_clamps() {
        let mut b = bank();
        b.set_soe(Ratio::new(0.5));
        let draw = b.draw_power(Watts::new(-20_000.0)).expect("feasible");
        b.integrate(draw, Seconds::new(5.0));
        assert!(b.soe().value() > 0.5);
        // Overcharging clamps at 100 %.
        for _ in 0..10_000 {
            if let Ok(d) = b.draw_power(Watts::new(-20_000.0)) {
                b.integrate(d, Seconds::new(10.0));
            } else {
                break;
            }
        }
        assert!(b.soe() <= Ratio::ONE);
    }

    #[test]
    fn depleted_bank_rejects_discharge() {
        let mut b = bank();
        b.set_soe(Ratio::ZERO);
        let err = b.draw_power(Watts::new(1_000.0)).unwrap_err();
        assert!(matches!(err, UltracapError::PowerInfeasible { .. }));
    }

    #[test]
    fn full_bank_rejects_charge() {
        let b = bank();
        assert!(b.draw_power(Watts::new(-1_000.0)).is_err());
    }

    #[test]
    fn power_limit_enforced_both_directions() {
        let mut b = bank();
        b.set_soe(Ratio::HALF);
        let limit = b.params().max_power.value();
        assert!(b.draw_power(Watts::new(limit * 1.01)).is_err());
        assert!(b.draw_power(Watts::new(-limit * 1.01)).is_err());
        assert!(b.draw_power(Watts::new(limit * 0.5)).is_ok());
    }

    #[test]
    fn small_bank_depletes_fast_large_bank_rides_through() {
        // The Fig. 1 premise: at a sustained 15 kW overflow, the 5,000 F
        // bank dies within a US06 aggressive phase (~60 s), the 25,000 F
        // bank does not.
        let sustain = Watts::new(15_000.0);
        let seconds_alive = |farads: f64| -> u32 {
            let mut b = UltracapBank::new(UltracapParams::paper_bank(Farads::new(farads))).unwrap();
            let mut t = 0;
            while t < 600 {
                match b.draw_power(sustain) {
                    Ok(d) => b.integrate(d, Seconds::new(1.0)),
                    Err(_) => break,
                }
                t += 1;
            }
            t
        };
        let small = seconds_alive(5_000.0);
        let large = seconds_alive(25_000.0);
        assert!(small < 60, "5 kF bank lasted {small} s");
        assert!(large > 180, "25 kF bank lasted only {large} s");
    }

    #[test]
    fn zero_power_is_identity() {
        let b = bank();
        let d = b.draw_power(Watts::ZERO).expect("always feasible");
        assert_eq!(d.current, Amps::ZERO);
        assert_eq!(d.voltage, b.voltage());
    }

    #[test]
    fn series_resistance_creates_loss() {
        let params = UltracapParams {
            series_resistance: 2.0e-4,
            ..UltracapParams::default()
        };
        let mut b = UltracapBank::new(params).unwrap();
        b.set_soe(Ratio::new(0.8));
        let d = b.draw_power(Watts::new(10_000.0)).expect("feasible");
        assert!(d.loss().value() > 0.0);
        // Loss is I²R.
        let expected = d.current.value().powi(2) * 2.0e-4;
        assert!((d.loss().value() - expected).abs() < 1e-6);
    }

    #[test]
    fn idle_bank_leaks_slowly() {
        let mut b = bank();
        b.set_soe(Ratio::new(0.8));
        // One hour of idling: a 40 h time constant loses ≈ 2.5 %.
        b.idle(Seconds::new(3600.0));
        let expected = 0.8 * (-1.0f64 / 40.0).exp();
        assert!((b.soe().value() - expected).abs() < 1e-9);
        assert!(b.soe().value() > 0.77);
    }

    #[test]
    fn leak_is_negligible_at_control_timescales() {
        let mut b = bank();
        b.set_soe(Ratio::new(0.8));
        b.idle(Seconds::new(1.0));
        assert!((b.soe().value() - 0.8).abs() < 1e-5);
    }

    #[test]
    fn stored_energy_tracks_soe() {
        let mut b = bank();
        b.set_soe(Ratio::new(0.3));
        let expected = 0.3 * b.params().energy_capacity().value();
        assert!((b.stored_energy().value() - expected).abs() < 1e-9);
    }
}
