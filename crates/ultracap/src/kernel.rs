//! Scalar-generic ultracapacitor step math.
//!
//! The voltage-swing law, the current solve and the SoE integral of
//! Eq. 7–9, written once against [`otem_units::Scalar`] and monomorphised
//! per scalar type. The concrete `f64` methods on [`crate::UltracapBank`]
//! delegate here — the `f64` instantiation performs the *same operations
//! in the same order* as the pre-refactor hand-written code, so delegation
//! is bit-identical (the contract the golden traces pin).

use otem_units::Scalar;

/// Open-circuit bank voltage (Eq. 8): `V_cap = V_r·√SoE`.
#[inline]
pub fn bank_voltage<S: Scalar>(rated_voltage: S, soe: S) -> S {
    rated_voltage * soe.sqrt()
}

/// Bank current for a terminal power request `p` at voltage `v` (Eq. 7).
/// With zero series resistance the current is `P/V`, with the denominator
/// floored at 5 % of rated voltage so a depleted bank accepting charge
/// stays non-singular. With resistance, the stable root of
/// `P = V·I − R·I²`; `None` past the vertex `V²/(4R)`.
#[inline]
pub fn bank_current<S: Scalar>(p: S, v: S, r: S, rated_voltage: S) -> Option<S> {
    if r == S::ZERO {
        return Some(p / v.max(S::from_f64(0.05) * rated_voltage));
    }
    let disc = v * v - S::from_f64(4.0) * r * p;
    if disc < S::ZERO {
        return None;
    }
    Some((v - disc.sqrt()) / (S::from_f64(2.0) * r))
}

/// One SoE integration step (Eq. 9) including the self-discharge leak:
/// `SoE⁺ = (SoE − P_int·dt/E_cap) · e^{−dt/τ}`. The caller clamps to
/// `[0, 1]`.
#[inline]
pub fn soe_after_step<S: Scalar>(
    soe: S,
    internal_power: S,
    dt: S,
    energy_capacity: S,
    leakage_time_constant: S,
) -> S {
    let delta = internal_power * dt / energy_capacity;
    let leak = (-dt / leakage_time_constant).exp();
    (soe - delta) * leak
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltage_follows_square_root() {
        assert!((bank_voltage(16.0_f64, 0.25) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn resistive_root_reproduces_the_request() {
        let (v, r) = (14.0_f64, 2.0e-4);
        let i = bank_current(10_000.0, v, r, 16.0).expect("feasible");
        assert!((v * i - r * i * i - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn depleted_bank_charge_is_floored_not_singular() {
        let i = bank_current(-1_000.0_f64, 0.0, 0.0, 16.0).expect("floored");
        assert!(i.is_finite() && i < 0.0);
    }

    #[test]
    fn leak_discounts_the_integral() {
        let next = soe_after_step(0.8_f64, 0.0, 3600.0, 1.0e6, 40.0 * 3600.0);
        assert!((next - 0.8 * (-1.0_f64 / 40.0).exp()).abs() < 1e-12);
    }

    #[cfg(feature = "f32")]
    #[test]
    fn f32_lanes_track_f64_within_single_precision() {
        let wide = bank_current(10_000.0_f64, 14.0, 2.0e-4, 16.0).unwrap();
        let narrow = bank_current(10_000.0_f32, 14.0, 2.0e-4, 16.0).unwrap() as f64;
        assert!(
            (wide - narrow).abs() < 1e-3 * wide.abs(),
            "{wide} vs {narrow}"
        );
    }
}
