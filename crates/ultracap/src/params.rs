//! Ultracapacitor bank parameters (paper Eq. 6).

use crate::error::UltracapError;
use otem_units::{Farads, Joules, Volts, Watts};
use serde::{Deserialize, Serialize};

/// Parameters of an ultracapacitor bank.
///
/// The paper characterises banks by a single capacitance figure
/// (5,000–25,000 F, Maxwell BC-series cells) at a rated voltage; usable
/// energy is `½·C·V_r²` (Eq. 6). The bank voltage is cell-referenced —
/// see DESIGN.md §3 for the sizing substitution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UltracapParams {
    /// Rated capacitance `C_cap` (paper Table I sweeps this).
    pub capacitance: Farads,
    /// Rated (full) voltage `V_r`.
    pub rated_voltage: Volts,
    /// Series resistance; ≈ 2.2 mΩ, may be zero (the paper omits it).
    pub series_resistance: f64,
    /// Maximum power magnitude the bank interface sustains, either
    /// direction (converter/cabling limit).
    pub max_power: Watts,
    /// Self-discharge time constant (s): stored energy decays as
    /// `exp(−t/τ)` while the bank idles. Ultracapacitors leak noticeably
    /// faster than batteries (hours–days), which is why *when* to
    /// pre-charge matters, not just whether.
    pub leakage_time_constant: f64,
}

impl UltracapParams {
    /// The paper's bank at a given capacitance: rated voltage chosen so
    /// the 25,000 F reference bank stores ≈ 890 Wh — large enough to ride
    /// out a US06 pulse train, while 5,000 F (≈ 178 Wh) depletes within
    /// one aggressive phase, reproducing the Fig. 1 behaviour.
    pub fn paper_bank(capacitance: Farads) -> Self {
        Self {
            capacitance,
            rated_voltage: Volts::new(16.0),
            series_resistance: 0.0,
            max_power: Watts::new(90_000.0),
            leakage_time_constant: 40.0 * 3600.0, // ≈ 1.7 days
        }
    }

    /// Energy capacity `E_cap = ½·C·V_r²` (Eq. 6).
    pub fn energy_capacity(&self) -> Joules {
        Joules::new(0.5 * self.capacitance.value() * self.rated_voltage.value().powi(2))
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`UltracapError::InvalidParameter`] for non-positive
    /// capacitance, rated voltage or power limit, or a negative series
    /// resistance.
    pub fn validate(&self) -> Result<(), UltracapError> {
        if self.capacitance.value() <= 0.0 {
            return Err(UltracapError::InvalidParameter {
                name: "capacitance",
                value: self.capacitance.value(),
                constraint: "> 0 F",
            });
        }
        if self.rated_voltage.value() <= 0.0 {
            return Err(UltracapError::InvalidParameter {
                name: "rated_voltage",
                value: self.rated_voltage.value(),
                constraint: "> 0 V",
            });
        }
        if self.series_resistance < 0.0 {
            return Err(UltracapError::InvalidParameter {
                name: "series_resistance",
                value: self.series_resistance,
                constraint: ">= 0 Ω",
            });
        }
        if self.max_power.value() <= 0.0 {
            return Err(UltracapError::InvalidParameter {
                name: "max_power",
                value: self.max_power.value(),
                constraint: "> 0 W",
            });
        }
        if self.leakage_time_constant <= 0.0 || !self.leakage_time_constant.is_finite() {
            return Err(UltracapError::InvalidParameter {
                name: "leakage_time_constant",
                value: self.leakage_time_constant,
                constraint: "> 0 s and finite",
            });
        }
        Ok(())
    }
}

impl Default for UltracapParams {
    /// The paper's reference 25,000 F bank.
    fn default() -> Self {
        Self::paper_bank(Farads::new(25_000.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_capacity_formula() {
        let p = UltracapParams::paper_bank(Farads::new(25_000.0));
        let e = p.energy_capacity();
        assert_eq!(e.value(), 0.5 * 25_000.0 * 16.0 * 16.0);
        // ≈ 889 Wh
        assert!((e.to_watt_hours() - 888.9).abs() < 1.0);
    }

    #[test]
    fn small_bank_is_an_order_of_magnitude_smaller() {
        let small = UltracapParams::paper_bank(Farads::new(5_000.0)).energy_capacity();
        let large = UltracapParams::paper_bank(Farads::new(25_000.0)).energy_capacity();
        assert!((large.value() / small.value() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn leakage_must_be_positive() {
        let p = UltracapParams {
            leakage_time_constant: 0.0,
            ..UltracapParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_rejects_nonphysical_values() {
        let p = UltracapParams {
            capacitance: Farads::new(0.0),
            ..UltracapParams::default()
        };
        assert!(p.validate().is_err());

        let p = UltracapParams {
            series_resistance: -0.1,
            ..UltracapParams::default()
        };
        assert!(p.validate().is_err());

        assert!(UltracapParams::default().validate().is_ok());
    }
}
