//! Error type for the ultracapacitor model.

use otem_units::Watts;
use std::error::Error;
use std::fmt;

/// Errors returned by the ultracapacitor bank model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum UltracapError {
    /// A parameter was outside its physically meaningful range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// The requested power cannot be sustained at the present state of
    /// energy (the bank is depleted, or the request exceeds its power
    /// limit).
    PowerInfeasible {
        /// The power that was requested.
        requested: Watts,
        /// The maximum deliverable power right now.
        available: Watts,
    },
}

impl fmt::Display for UltracapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(
                f,
                "invalid ultracapacitor parameter {name} = {value}: must satisfy {constraint}"
            ),
            Self::PowerInfeasible {
                requested,
                available,
            } => write!(
                f,
                "requested ultracapacitor power {requested:.1} exceeds deliverable {available:.1}"
            ),
        }
    }
}

impl Error for UltracapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_parameter() {
        let e = UltracapError::InvalidParameter {
            name: "capacitance",
            value: 0.0,
            constraint: "> 0 F",
        };
        assert!(e.to_string().contains("capacitance"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<UltracapError>();
    }
}
