//! Optimality-gap benchmark: how close does receding-horizon OTEM get to
//! the clairvoyant DP split on pure HEES energy?
//!
//! OTEM optimises lifetime *and* energy under a short window; the DP
//! planner optimises energy alone with the whole route in hand. The gap
//! between them bounds what the missing future knowledge (and the
//! lifetime weighting) costs in energy terms.

use otem::mpc::MpcConfig;
use otem::planner::{plan_split, PlannerConfig};
use otem::policy::Otem;
use otem::{Simulator, SystemConfig};
use otem_drivecycle::PowerTrace;
use otem_units::{Seconds, Watts};

fn pulsed_trace() -> PowerTrace {
    let mut samples = Vec::new();
    for _ in 0..8 {
        samples.extend(vec![Watts::new(4_000.0); 12]);
        samples.extend(vec![Watts::new(70_000.0); 4]);
        samples.extend(vec![Watts::new(-25_000.0); 4]);
    }
    PowerTrace::new(Seconds::new(1.0), samples)
}

#[test]
fn otem_energy_is_within_reach_of_the_clairvoyant_bound() {
    let config = SystemConfig::default();
    let trace = pulsed_trace();

    let plan = plan_split(
        &config,
        &trace,
        &PlannerConfig {
            soe_levels: 21,
            actions: 9,
        },
    )
    .expect("plan");

    // OTEM with the lifetime weight off — the energy-only comparison.
    let mpc = MpcConfig {
        horizon: 8,
        solver_iterations: 15,
        w2: 0.0,
        ..MpcConfig::default()
    };
    let mut otem = Otem::with_mpc(&config, mpc).expect("controller");
    let r = Simulator::new(&config).run(&mut otem, &trace);
    let otem_energy = r.energy().value();

    assert!(plan.energy.value() > 0.0);
    // OTEM cannot beat the clairvoyant plan by more than grid noise…
    assert!(
        otem_energy > plan.energy.value() * 0.93,
        "OTEM {otem_energy:.0} J implausibly beat the DP bound {:.0} J",
        plan.energy.value()
    );
    // …and a healthy controller lands within ~25 % of it.
    assert!(
        otem_energy < plan.energy.value() * 1.25,
        "OTEM {otem_energy:.0} J vs clairvoyant {:.0} J — gap too large",
        plan.energy.value()
    );
}
