//! Failure injection: controllers must degrade gracefully — never panic,
//! never emit non-finite state — under hostile inputs (impossible loads,
//! broken forecasts, depleted storage, extreme ambient).

use otem::mpc::MpcConfig;
use otem::policy::{ActiveCooling, Dual, Otem, Parallel};
use otem::{Controller, Simulator, SystemConfig};
use otem_drivecycle::PowerTrace;
use otem_units::{Farads, Kelvin, Ratio, Seconds, Watts};

fn tiny_mpc() -> MpcConfig {
    MpcConfig {
        horizon: 4,
        solver_iterations: 8,
        ..MpcConfig::default()
    }
}

fn assert_sane(records: &[otem::StepRecord], who: &str) {
    for (t, rec) in records.iter().enumerate() {
        assert!(
            rec.state.battery_temp.value().is_finite(),
            "{who}: temp diverged at {t}"
        );
        assert!(
            (0.0..=1.0).contains(&rec.state.soc.value()),
            "{who}: SoC escaped at {t}"
        );
        assert!(
            (0.0..=1.0).contains(&rec.state.soe.value()),
            "{who}: SoE escaped at {t}"
        );
        assert!(
            rec.hees.delivered.is_finite() && rec.hees.battery_heat.is_finite(),
            "{who}: non-finite power at {t}"
        );
    }
}

#[test]
fn impossible_megawatt_load_is_clamped_not_fatal() {
    let config = SystemConfig::default();
    let sim = Simulator::new(&config);
    let trace = PowerTrace::new(Seconds::new(1.0), vec![Watts::new(5.0e6); 20]);

    let mut controllers: Vec<Box<dyn Controller>> = vec![
        Box::new(Parallel::new(&config).unwrap()),
        Box::new(ActiveCooling::new(&config).unwrap()),
        Box::new(Dual::new(&config).unwrap()),
        Box::new(Otem::with_mpc(&config, tiny_mpc()).unwrap()),
    ];
    for controller in controllers.iter_mut() {
        let r = sim.run(controller.as_mut(), &trace);
        assert_sane(&r.records, r.methodology);
        assert!(
            r.shortfall_energy().value() > 0.0,
            "{}: a 5 MW request must shortfall",
            r.methodology
        );
    }
}

#[test]
fn violent_regen_is_absorbed_or_rejected_cleanly() {
    let config = SystemConfig::default();
    let sim = Simulator::new(&config);
    let trace = PowerTrace::new(Seconds::new(1.0), vec![Watts::new(-2.0e6); 20]);
    let mut controllers: Vec<Box<dyn Controller>> = vec![
        Box::new(Parallel::new(&config).unwrap()),
        Box::new(Dual::new(&config).unwrap()),
        Box::new(Otem::with_mpc(&config, tiny_mpc()).unwrap()),
    ];
    for controller in controllers.iter_mut() {
        let r = sim.run(controller.as_mut(), &trace);
        assert_sane(&r.records, r.methodology);
    }
}

#[test]
fn otem_with_depleted_storage_limps_home() {
    let config = SystemConfig {
        initial_soc: Ratio::from_percent(22.0), // just above the floor
        initial_soe: Ratio::from_percent(20.0),
        ..SystemConfig::default()
    };
    let sim = Simulator::new(&config);
    let trace = PowerTrace::new(Seconds::new(1.0), vec![Watts::new(15_000.0); 60]);
    let mut otem = Otem::with_mpc(&config, tiny_mpc()).unwrap();
    let r = sim.run(&mut otem, &trace);
    assert_sane(&r.records, "OTEM");
    // The load is feasible on the battery alone: no meaningful shortfall.
    assert!(r.shortfall_energy().value() < 0.05 * r.energy().value());
}

#[test]
fn garbage_forecast_does_not_break_the_mpc() {
    let config = SystemConfig::default();
    let mut otem = Otem::with_mpc(&config, tiny_mpc()).unwrap();
    // Forecast full of absurd values, including sign flips.
    let forecast = vec![
        Watts::new(1.0e9),
        Watts::new(-1.0e9),
        Watts::new(0.0),
        Watts::new(7.0e8),
    ];
    for _ in 0..10 {
        let rec = otem.step(Watts::new(10_000.0), &forecast, Seconds::new(1.0));
        assert!(rec.hees.delivered.is_finite());
        assert!(rec.state.battery_temp.value().is_finite());
    }
}

#[test]
fn arctic_and_desert_ambients_stay_stable() {
    for celsius in [-20.0, 45.0] {
        // temp_max must stay above ambient for the config to validate;
        // relax it for the desert case.
        let config = SystemConfig {
            temp_max: Kelvin::from_celsius(celsius + 15.0),
            ..SystemConfig::default().with_ambient(Kelvin::from_celsius(celsius))
        };
        let sim = Simulator::new(&config);
        let trace = PowerTrace::new(Seconds::new(1.0), vec![Watts::new(30_000.0); 120]);
        let mut controllers: Vec<Box<dyn Controller>> = vec![
            Box::new(Parallel::new(&config).unwrap()),
            Box::new(ActiveCooling::new(&config).unwrap()),
            Box::new(Otem::with_mpc(&config, tiny_mpc()).unwrap()),
        ];
        for controller in controllers.iter_mut() {
            let r = sim.run(controller.as_mut(), &trace);
            assert_sane(&r.records, r.methodology);
        }
    }
}

#[test]
fn microscopic_ultracapacitor_does_not_sink_otem() {
    let config = SystemConfig {
        capacitance: Farads::new(50.0), // 3 orders below the paper's range
        ..SystemConfig::default()
    };
    let sim = Simulator::new(&config);
    let trace = PowerTrace::new(Seconds::new(1.0), vec![Watts::new(25_000.0); 60]);
    let mut otem = Otem::with_mpc(&config, tiny_mpc()).unwrap();
    let r = sim.run(&mut otem, &trace);
    assert_sane(&r.records, "OTEM");
    assert!(r.shortfall_energy().value() < 0.05 * r.energy().value());
}

#[test]
fn zero_length_and_single_sample_routes() {
    let config = SystemConfig::default();
    let sim = Simulator::new(&config);
    for n in [0usize, 1] {
        let trace = PowerTrace::new(Seconds::new(1.0), vec![Watts::new(5_000.0); n]);
        let mut otem = Otem::with_mpc(&config, tiny_mpc()).unwrap();
        let r = sim.run(&mut otem, &trace);
        assert_eq!(r.records.len(), n);
    }
}
