//! Property tests under adversarial inputs: every controller, stepped
//! directly with megawatt spikes, empty or zero forecasts, and tiny
//! solver budgets, must keep its reported record physical — all fields
//! finite, SoC/SoE in `[0, 1]`, temperatures plausible.
//!
//! Unlike `policy_properties.rs` (which drives plausible traces through
//! the simulator), this suite bypasses the simulator and feeds the
//! controllers inputs no drive cycle would produce.

use otem::mpc::MpcConfig;
use otem::policy::{ActiveCooling, Dual, Otem, Parallel};
use otem::{Controller, SupervisedOtem, SystemConfig};
use otem_units::{Seconds, Watts};
use proptest::prelude::*;

/// Load samples spanning ±1 MW — far beyond any bus or pack limit.
fn extreme_loads() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            Just(0.0),
            -1_000_000.0..1_000_000.0f64,
            Just(1_000_000.0),
            Just(-1_000_000.0),
        ],
        3..12,
    )
}

/// Forecast shapes: empty, all-zero, or echoing the (extreme) loads.
#[derive(Debug, Clone, Copy)]
enum ForecastShape {
    Empty,
    Zero,
    Echo,
}

fn forecast_shape() -> impl Strategy<Value = ForecastShape> {
    prop_oneof![
        Just(ForecastShape::Empty),
        Just(ForecastShape::Zero),
        Just(ForecastShape::Echo),
    ]
}

fn tiny_mpc() -> MpcConfig {
    MpcConfig {
        horizon: 3,
        solver_iterations: 4,
        ..MpcConfig::default()
    }
}

fn assert_record_physical(rec: &otem::StepRecord) -> Result<(), TestCaseError> {
    prop_assert!(rec.load.is_finite());
    prop_assert!(rec.hees.delivered.is_finite());
    prop_assert!(rec.hees.shortfall.is_finite());
    prop_assert!(rec.hees.battery_internal.is_finite());
    prop_assert!(rec.hees.cap_internal.is_finite());
    prop_assert!(rec.hees.battery_heat.is_finite());
    prop_assert!(rec.hees.battery_c_rate.is_finite());
    prop_assert!(rec.cooling_power.is_finite());
    prop_assert!(rec.cooling_power.value() >= 0.0);
    prop_assert!((0.0..=1.0).contains(&rec.state.soc.value()));
    prop_assert!((0.0..=1.0).contains(&rec.state.soe.value()));
    prop_assert!(rec.state.battery_temp.value().is_finite());
    prop_assert!(rec.state.coolant_temp.value().is_finite());
    prop_assert!((150.0..600.0).contains(&rec.state.battery_temp.value()));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_controllers_survive_megawatt_spikes(
        loads in extreme_loads(),
        shape in forecast_shape(),
    ) {
        let config = SystemConfig::default();
        let mut controllers: Vec<Box<dyn Controller>> = vec![
            Box::new(Parallel::new(&config).unwrap()),
            Box::new(ActiveCooling::new(&config).unwrap()),
            Box::new(Dual::new(&config).unwrap()),
            Box::new(Otem::with_mpc(&config, tiny_mpc()).unwrap()),
        ];
        let dt = Seconds::new(1.0);
        for controller in controllers.iter_mut() {
            for (k, &l) in loads.iter().enumerate() {
                let forecast: Vec<Watts> = match shape {
                    ForecastShape::Empty => Vec::new(),
                    ForecastShape::Zero => vec![Watts::ZERO; 3],
                    ForecastShape::Echo => loads
                        .iter()
                        .cycle()
                        .skip(k + 1)
                        .take(3)
                        .map(|&w| Watts::new(w))
                        .collect(),
                };
                let rec = controller.step(Watts::new(l), &forecast, dt);
                assert_record_physical(&rec)?;
            }
            let state = controller.state();
            prop_assert!((0.0..=1.0).contains(&state.soc.value()));
            prop_assert!((0.0..=1.0).contains(&state.soe.value()));
            prop_assert!(state.battery_temp.value().is_finite());
        }
    }

    #[test]
    fn supervised_otem_survives_megawatt_spikes(loads in extreme_loads()) {
        let config = SystemConfig::default();
        let mut sup = SupervisedOtem::with_defaults(
            Otem::with_mpc(&config, tiny_mpc()).unwrap(),
        );
        let dt = Seconds::new(1.0);
        for &l in &loads {
            let rec = sup.step(Watts::new(l), &[Watts::new(l); 3], dt);
            assert_record_physical(&rec)?;
        }
    }
}
