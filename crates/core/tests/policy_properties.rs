//! Property tests on the controllers: state invariants must hold for
//! arbitrary load profiles.

use otem::planner::{plan_split, PlannerConfig};
use otem::policy::{ActiveCooling, Dual, Parallel};
use otem::{Controller, Simulator, SystemConfig};
use otem_drivecycle::PowerTrace;
use otem_units::{Seconds, Watts};
use proptest::prelude::*;

fn arbitrary_trace() -> impl Strategy<Value = PowerTrace> {
    prop::collection::vec(-60_000.0..90_000.0f64, 10..120).prop_map(|samples| {
        PowerTrace::new(
            Seconds::new(1.0),
            samples.into_iter().map(Watts::new).collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn baselines_keep_states_bounded(trace in arbitrary_trace()) {
        let config = SystemConfig::default();
        let sim = Simulator::new(&config);
        let mut controllers: Vec<Box<dyn Controller>> = vec![
            Box::new(Parallel::new(&config).unwrap()),
            Box::new(ActiveCooling::new(&config).unwrap()),
            Box::new(Dual::new(&config).unwrap()),
        ];
        for controller in controllers.iter_mut() {
            let r = sim.run(controller.as_mut(), &trace);
            for rec in &r.records {
                prop_assert!((0.0..=1.0).contains(&rec.state.soc.value()));
                prop_assert!((0.0..=1.0).contains(&rec.state.soe.value()));
                prop_assert!(rec.state.battery_temp.value().is_finite());
                prop_assert!((200.0..500.0).contains(&rec.state.battery_temp.value()));
                prop_assert!(rec.hees.battery_heat.value().is_finite());
            }
            prop_assert!(r.capacity_loss().is_finite());
            prop_assert!(r.capacity_loss() >= 0.0);
        }
    }

    #[test]
    fn capacity_loss_monotone_in_route_length(
        samples in prop::collection::vec(5_000.0..50_000.0f64, 40..80),
        split in 10..30usize,
    ) {
        // Driving a prefix of a route can never lose more capacity than
        // driving the whole route.
        let config = SystemConfig::default();
        let sim = Simulator::new(&config);
        let full = PowerTrace::new(
            Seconds::new(1.0),
            samples.iter().copied().map(Watts::new).collect(),
        );
        let prefix = PowerTrace::new(
            Seconds::new(1.0),
            samples[..split].iter().copied().map(Watts::new).collect(),
        );
        let mut a = Dual::new(&config).unwrap();
        let mut b = Dual::new(&config).unwrap();
        let full_loss = sim.run(&mut a, &full).capacity_loss();
        let prefix_loss = sim.run(&mut b, &prefix).capacity_loss();
        prop_assert!(full_loss >= prefix_loss);
    }

    #[test]
    fn clairvoyant_plan_never_loses_to_battery_only(
        pulse_kw in 30.0..80.0f64,
        base_kw in 1.0..10.0f64,
        period in 4..10usize,
    ) {
        // The DP may always choose cap_bus = 0 everywhere, so its energy
        // can never exceed the battery-only split (up to grid noise).
        let config = SystemConfig::default();
        let mut samples = Vec::new();
        for k in 0..48 {
            let w = if k % period == 0 { pulse_kw } else { base_kw };
            samples.push(otem_units::Watts::new(w * 1000.0));
        }
        let trace = PowerTrace::new(Seconds::new(1.0), samples);
        let plan = plan_split(
            &config,
            &trace,
            &PlannerConfig { soe_levels: 11, actions: 5 },
        )
        .unwrap();

        let mut plant = otem_hees::HybridHees::ev_default(config.capacitance).unwrap();
        plant.set_state(config.initial_soc, config.initial_soe);
        let mut battery_only = 0.0;
        for t in 0..trace.len() {
            let step = plant.step(
                otem_hees::HybridCommand {
                    battery_bus: trace.get(t),
                    cap_bus: otem_units::Watts::ZERO,
                },
                config.ambient,
                Seconds::new(1.0),
            );
            battery_only += step.hees_power().value();
        }
        prop_assert!(
            plan.energy.value() <= battery_only * 1.02,
            "plan {:.0} J worse than battery-only {battery_only:.0} J",
            plan.energy.value()
        );
    }

    #[test]
    fn dual_never_uses_cap_when_cold_and_full(
        samples in prop::collection::vec(1_000.0..30_000.0f64, 20..60),
    ) {
        // Below its hot threshold with a full bank, the dual policy keeps
        // the battery as the source (it may recharge, never discharge the
        // bank).
        let config = SystemConfig::default();
        let sim = Simulator::new(&config);
        let trace = PowerTrace::new(
            Seconds::new(1.0),
            samples.into_iter().map(Watts::new).collect(),
        );
        let mut dual = Dual::new(&config).unwrap();
        let r = sim.run(&mut dual, &trace);
        for rec in &r.records {
            if rec.state.battery_temp < otem_units::Kelvin::from_celsius(31.0) {
                prop_assert!(
                    rec.hees.cap_internal.value() <= 1e-9,
                    "bank discharged while cold: {:?}",
                    rec.hees.cap_internal
                );
            }
        }
    }
}
