//! System-wide configuration shared by every controller.

use crate::error::OtemError;
use otem_battery::{AgingParams, CellParams, PackConfig};
use otem_thermal::{PlantParams, ThermalParams};
use otem_units::{Farads, Kelvin, Ratio, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Everything the experiments vary, in one place: storage sizing,
/// environment, safety constraints and the control period.
///
/// The defaults reproduce the paper's reference setup: a Tesla-S-like
/// pack, a 25,000 F (cell-referenced) ultracapacitor bank, 25 °C ambient,
/// and the paper's constraint set C1–C7 (Section III-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Battery cell parameters.
    pub cell: CellParams,
    /// Pack topology.
    pub pack: PackConfig,
    /// Ultracapacitor capacitance label (the paper's 5,000–25,000 F).
    pub capacitance: Farads,
    /// Aging coefficients for the capacity-loss metric (Eq. 5).
    pub aging: AgingParams,
    /// Thermal parameters of the actively cooled pack.
    pub thermal_active: ThermalParams,
    /// Thermal parameters without a cooling loop (Parallel/Dual).
    pub thermal_passive: ThermalParams,
    /// Cooling plant (cooler + pump) parameters.
    pub plant: PlantParams,
    /// Ambient / initial temperature.
    pub ambient: Kelvin,
    /// C1 upper bound: maximum safe battery temperature.
    pub temp_max: Kelvin,
    /// C4 lower bound on battery state of charge.
    pub soc_min: Ratio,
    /// C5 lower bound on ultracapacitor state of energy.
    pub soe_min: Ratio,
    /// C6: battery bus-power limit.
    pub battery_power_max: Watts,
    /// C7: ultracapacitor bus-power limit.
    pub cap_power_max: Watts,
    /// Control period Δt (Eq. 17).
    pub dt: Seconds,
    /// Initial battery state of charge.
    pub initial_soc: Ratio,
    /// Initial ultracapacitor state of energy.
    pub initial_soe: Ratio,
}

impl SystemConfig {
    /// Builds the paper's reference configuration with the given
    /// ultracapacitor size.
    pub fn with_capacitance(capacitance: Farads) -> Self {
        Self {
            capacitance,
            ..Self::default()
        }
    }

    /// The thermally stressed configuration of the paper's motivational
    /// and temperature experiments (Figs. 1, 6, 7, Table I): a city-EV
    /// pack (96s × 16p, ≈ 17 kWh) whose cells run near 1C sustained with
    /// multi-C pulses, the matching fast thermal lumps, and a 30 °C
    /// ambient. Pair with a compact vehicle
    /// (`VehicleParams::compact_ev`) when building the power trace.
    pub fn stress_rig() -> Self {
        let ambient = Kelvin::from_celsius(30.0);
        Self {
            pack: PackConfig::city_ev(),
            thermal_active: ThermalParams::city_pack().with_ambient(ambient),
            thermal_passive: ThermalParams::city_pack_passive().with_ambient(ambient),
            ambient,
            battery_power_max: Watts::new(90_000.0),
            ..Self::default()
        }
    }

    /// Overrides the ambient (and initial) temperature: the paper
    /// evaluates "different environment temperatures".
    pub fn with_ambient(mut self, ambient: Kelvin) -> Self {
        self.ambient = ambient;
        self.thermal_active = self.thermal_active.with_ambient(ambient);
        self.thermal_passive = self.thermal_passive.with_ambient(ambient);
        self
    }

    /// Validates cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns [`OtemError::InvalidConfig`] for inconsistent bounds and
    /// propagates component validation errors.
    pub fn validate(&self) -> Result<(), OtemError> {
        self.cell.validate()?;
        self.pack.validate()?;
        self.aging.validate()?;
        self.thermal_active.validate()?;
        self.thermal_passive.validate()?;
        self.plant.validate()?;
        if self.capacitance.value() <= 0.0 {
            return Err(OtemError::InvalidConfig {
                field: "capacitance",
                constraint: "> 0 F",
            });
        }
        if self.temp_max <= self.ambient {
            return Err(OtemError::InvalidConfig {
                field: "temp_max",
                constraint: "> ambient",
            });
        }
        if self.dt.value() <= 0.0 {
            return Err(OtemError::InvalidConfig {
                field: "dt",
                constraint: "> 0 s",
            });
        }
        if self.initial_soc < self.soc_min {
            return Err(OtemError::InvalidConfig {
                field: "initial_soc",
                constraint: ">= soc_min",
            });
        }
        if self.battery_power_max.value() <= 0.0 || self.cap_power_max.value() <= 0.0 {
            return Err(OtemError::InvalidConfig {
                field: "power limits",
                constraint: "> 0 W",
            });
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        let ambient = Kelvin::from_celsius(25.0);
        Self {
            cell: CellParams::ncr18650a(),
            pack: PackConfig::compact_ev(),
            capacitance: Farads::new(25_000.0),
            aging: AgingParams::default(),
            thermal_active: ThermalParams::ev_pack().with_ambient(ambient),
            thermal_passive: ThermalParams::ev_pack_passive().with_ambient(ambient),
            plant: PlantParams::ev_plant(),
            ambient,
            temp_max: Kelvin::from_celsius(40.0),
            soc_min: Ratio::from_percent(20.0),
            soe_min: Ratio::from_percent(20.0),
            battery_power_max: Watts::new(160_000.0),
            cap_power_max: Watts::new(90_000.0),
            dt: Seconds::new(1.0),
            initial_soc: Ratio::ONE,
            initial_soe: Ratio::ONE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        SystemConfig::default().validate().expect("valid default");
    }

    #[test]
    fn stress_rig_validates_and_is_hotter() {
        let rig = SystemConfig::stress_rig();
        rig.validate().expect("valid");
        assert!(rig.ambient > SystemConfig::default().ambient);
        assert!(rig.pack.cell_count() < SystemConfig::default().pack.cell_count());
    }

    #[test]
    fn capacitance_override() {
        let c = SystemConfig::with_capacitance(Farads::new(5_000.0));
        assert_eq!(c.capacitance, Farads::new(5_000.0));
        c.validate().expect("still valid");
    }

    #[test]
    fn ambient_override_propagates_to_thermal() {
        let hot = Kelvin::from_celsius(35.0);
        let c = SystemConfig::default().with_ambient(hot);
        assert_eq!(c.ambient, hot);
        assert_eq!(c.thermal_active.ambient_temperature, hot);
        assert_eq!(c.thermal_passive.ambient_temperature, hot);
    }

    #[test]
    fn inconsistent_bounds_rejected() {
        let below_ambient = SystemConfig {
            temp_max: Kelvin::from_celsius(10.0),
            ..SystemConfig::default()
        };
        assert!(below_ambient.validate().is_err());

        let below_soc_floor = SystemConfig {
            initial_soc: Ratio::from_percent(10.0),
            ..SystemConfig::default()
        };
        assert!(below_soc_floor.validate().is_err());

        let zero_dt = SystemConfig {
            dt: Seconds::ZERO,
            ..SystemConfig::default()
        };
        assert!(zero_dt.validate().is_err());
    }
}
