//! The OTEM model-predictive optimisation (paper Section III-B,
//! Eq. 17–19).
//!
//! # Transcription
//!
//! The paper states the OCP over state variables `x = [T_b, T_c, SoE,
//! SoC]`, control inputs `i = [T_i, P_bat, P_cap]` and auxiliaries, with
//! the discretised dynamics as equality constraints (Eq. 18) and the
//! weighted cost of Eq. 19. We solve the same problem by **single
//! shooting**: the dynamics are eliminated by forward simulation of the
//! component models, leaving a box-constrained problem in the genuinely
//! free inputs —
//!
//! * `u_cap[k]` — the ultracapacitor's bus-side power share (the bus
//!   power balance then pins the battery's share:
//!   `P_bat = P_e + P_c + P_m − P_cap`), and
//! * `u_cool[k]` — the cooler duty in `[0, 1]` (scaling the inlet
//!   temperature drop, and thereby `P_c`, within actuator limits);
//!
//! state constraints C1/C4/C5/C6 become smooth quadratic penalties. The
//! box-constrained NLP is solved with [`otem_solver::ProjectedGradient`],
//! warm-started from the previous period's shifted solution (standard
//! receding-horizon practice).

use otem_battery::AgingParams;
use otem_hees::{HeesSnapshot, HybridHees};
use otem_solver::{
    Bounds, CurvatureObjective, Deadline, GaussNewton, GradientMode, NumericalGradient, Objective,
    ProjectedGradient, Solution, SolverOutcome,
};
pub use otem_solver::{Clock, MonotonicClock, VirtualClock};
use otem_telemetry::{span, Event, NullSink, Sink};
use otem_thermal::{CoolingPlant, ThermalModel, ThermalState};
use otem_units::{Kelvin, Ratio, Seconds, Watts};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Tuning of the OTEM optimisation (Eq. 19 weights, horizon, penalties).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MpcConfig {
    /// Control window length `N` (steps of `dt`).
    pub horizon: usize,
    /// `w1`: weight on cooling energy `P_c·Δt` (per joule).
    pub w1: f64,
    /// `w2`: weight on battery capacity loss `Q_loss` (joule-equivalents
    /// per unit loss fraction — prices battery wear against energy).
    pub w2: f64,
    /// `w3`: weight on HEES energy `dE_bat + dE_cap` (per joule).
    pub w3: f64,
    /// Soft ceiling for the battery temperature (a margin below the hard
    /// C1 limit).
    pub temp_soft: Kelvin,
    /// Penalty weight per K² of soft-ceiling violation per step.
    pub temp_penalty: f64,
    /// Penalty weight per unit² of SoC/SoE bound violation per step.
    pub state_penalty: f64,
    /// Penalty weight per W² of unserved load per step.
    pub shortfall_penalty: f64,
    /// Penalty weight per W² of battery bus-power limit violation.
    pub power_penalty: f64,
    /// Inner solver iteration budget per control period.
    pub solver_iterations: usize,
    /// Whether to warm-start from the shifted previous solution.
    pub warm_start: bool,
    /// Terminal-cost tail (s): the end-of-horizon battery temperature is
    /// priced as if it persisted this long, so the controller sees the
    /// value of pre-cooling beyond its own window (thermal time
    /// constants far exceed practical horizons).
    pub terminal_tail: f64,
    /// Move blocking: each of the `horizon` decision blocks spans this
    /// many control periods, so the window covers `horizon × block_size`
    /// seconds at the optimisation cost of `horizon` steps. The first
    /// block's move is applied for one control period and the problem is
    /// re-solved (standard receding-horizon practice).
    pub block_size: usize,
    /// How the gradient of the rollout objective is evaluated.
    /// [`GradientMode::Serial`] is plain central finite differences
    /// (`4·horizon` rollouts per gradient); [`GradientMode::Parallel`]
    /// fans those coordinates out across scoped threads with
    /// bit-identical results, cutting solve latency roughly by the
    /// thread count; [`GradientMode::Adjoint`] replaces finite
    /// differences entirely with a hand-derived reverse-mode sweep —
    /// one taped rollout per gradient regardless of the horizon (see
    /// `adjoint` module), matching FD to ~1e-6 relative error away from
    /// penalty kinks; [`GradientMode::GaussNewton`] additionally
    /// assembles a Gauss-Newton curvature matrix from the *same* tape
    /// and solves with a projected Levenberg–Marquardt step.
    pub gradient_mode: GradientMode,
    /// Optional per-solve compute budget in nanoseconds (the *anytime*
    /// contract): the inner solver polls its [`Clock`] once per outer
    /// iteration and, when the budget expires, returns the best iterate
    /// found so far with [`SolverOutcome::DeadlineReached`] — finite,
    /// inside the box, never worse than the projected warm start.
    /// `None` disables the deadline.
    pub deadline_ns: Option<u64>,
    /// Line-search batch width for the inner solver: `0` (or `1`)
    /// keeps the scalar one-candidate-at-a-time backtracking ladder;
    /// `≥ 2` speculatively evaluates that many ladder rungs per call
    /// through the structure-of-arrays batched rollout kernel (see the
    /// `batch` module). The accepted iterate is bit-identical either
    /// way — lanes run the same scalar step body — only the number of
    /// speculative evaluations differs.
    pub batch_line_search: usize,
}

impl Default for MpcConfig {
    fn default() -> Self {
        Self {
            horizon: 12,
            w1: 1.0,
            w2: 8.0e12,
            w3: 1.0,
            temp_soft: Kelvin::from_celsius(38.0),
            temp_penalty: 5.0e5,
            state_penalty: 1.0e10,
            shortfall_penalty: 1.0e-2,
            power_penalty: 1.0e-3,
            solver_iterations: 30,
            warm_start: true,
            terminal_tail: 600.0,
            block_size: 1,
            gradient_mode: GradientMode::Serial,
            deadline_ns: None,
            batch_line_search: 0,
        }
    }
}

/// Everything the rollout needs to predict the plant over the horizon.
#[derive(Debug, Clone)]
pub struct MpcPlant {
    /// The hybrid architecture (cloned per rollout; cheap).
    pub hees: HybridHees,
    /// The actively cooled thermal model.
    pub thermal: ThermalModel,
    /// The cooling plant (cooler + pump).
    pub plant: CoolingPlant,
    /// Current thermal state.
    pub state: ThermalState,
    /// Aging coefficients for the `Q_loss` cost term.
    pub aging: AgingParams,
    /// C4 lower bound on SoC.
    pub soc_min: Ratio,
    /// C5 lower bound on SoE.
    pub soe_min: Ratio,
    /// C6 battery bus-power limit.
    pub battery_power_max: Watts,
    /// C7 ultracapacitor bus-power limit.
    pub cap_power_max: Watts,
}

/// One period's optimised control move.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MpcDecision {
    /// Bus-side ultracapacitor power for the coming period (positive =
    /// the bank serves the bus).
    pub cap_bus: Watts,
    /// Cooler duty in `[0, 1]`.
    pub cool_duty: f64,
    /// Diagnostics: cost at the solution.
    pub cost: f64,
    /// Diagnostics: solver iterations consumed.
    pub iterations: usize,
    /// Diagnostics: how the solver terminated.
    pub outcome: SolverOutcome,
}

impl MpcDecision {
    /// Whether the solver met tolerance (legacy convenience over
    /// [`MpcDecision::outcome`]).
    pub fn converged(&self) -> bool {
        self.outcome == SolverOutcome::Converged
    }
}

/// The receding-horizon optimiser (Algorithm 1 lines 13–14).
#[derive(Debug, Clone)]
pub struct Mpc {
    config: MpcConfig,
    previous: Option<Vec<f64>>,
    solver: ProjectedGradient,
    /// Runtime ceiling on solver iterations (below the configured
    /// budget); `None` means the configured budget applies. Exists so a
    /// fault-injection harness can starve the solver without rebuilding
    /// the controller.
    iteration_cap: Option<usize>,
    /// Runtime tightening of the per-solve deadline (ns); combined with
    /// the configured [`MpcConfig::deadline_ns`] by taking the minimum,
    /// so a fault can only shrink the budget. `None` restores the
    /// configured deadline.
    deadline_cap: Option<u64>,
    /// Time source the deadline is measured against: the monotonic
    /// clock in production, a [`otem_solver::VirtualClock`] in tests
    /// (making deadline behaviour bit-reproducible).
    clock: Arc<dyn Clock>,
    // Cached per-solve buffers: the problem dimension is fixed by the
    // config, so bounds and the warm-start vector are built once and
    // reused across every control period.
    bounds: Bounds,
    x0: Vec<f64>,
    pool: WorkspacePool,
}

impl Mpc {
    /// Builds an optimiser with the given tuning.
    pub fn new(config: MpcConfig) -> Self {
        let solver = ProjectedGradient {
            max_iterations: config.solver_iterations,
            tolerance: 1e-5,
            gradient_mode: config.gradient_mode,
            batch_width: config.batch_line_search,
            ..ProjectedGradient::default()
        };
        let n = config.horizon;
        let mut lower = vec![-1.0; n];
        lower.extend(std::iter::repeat_n(0.0, n));
        let mut upper = vec![1.0; n];
        upper.extend(std::iter::repeat_n(1.0, n));
        Self {
            config,
            previous: None,
            solver,
            iteration_cap: None,
            deadline_cap: None,
            clock: Arc::new(MonotonicClock::new()),
            bounds: Bounds::new(lower, upper),
            x0: vec![0.0; 2 * n],
            pool: WorkspacePool::new(),
        }
    }

    /// The tuning in use.
    pub fn config(&self) -> &MpcConfig {
        &self.config
    }

    /// Clears the warm-start memory (e.g. when the route changes).
    pub fn reset(&mut self) {
        self.previous = None;
    }

    /// Caps the per-period solver iterations below the configured budget
    /// (`None` restores the configured budget). A cap of zero makes every
    /// solve return its warm start unimproved — the "starved solver"
    /// degradation mode the supervisor must detect.
    pub fn set_iteration_cap(&mut self, cap: Option<usize>) {
        self.iteration_cap = cap;
    }

    /// The currently active iteration cap, if any.
    pub fn iteration_cap(&self) -> Option<usize> {
        self.iteration_cap
    }

    /// Tightens the per-solve deadline below the configured
    /// [`MpcConfig::deadline_ns`] (`None` restores the configured
    /// value). A zero budget makes every solve return its projected
    /// warm start with [`SolverOutcome::DeadlineReached`] — the
    /// "deadline-missed" degradation mode the supervisor must detect.
    pub fn set_deadline_ns(&mut self, deadline_ns: Option<u64>) {
        self.deadline_cap = deadline_ns;
    }

    /// The per-solve deadline budget currently in force (runtime cap
    /// combined with the configured value by minimum), if any.
    pub fn deadline_ns(&self) -> Option<u64> {
        match (self.deadline_cap, self.config.deadline_ns) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Replaces the time source the deadline is measured against.
    /// Production keeps the default [`MonotonicClock`]; tests inject a
    /// [`otem_solver::VirtualClock`] so deadline-triggered paths are
    /// deterministic and bit-reproducible.
    pub fn set_clock(&mut self, clock: Arc<dyn Clock>) {
        self.clock = clock;
    }

    /// Total plant rollouts performed by [`Mpc::solve`] so far — the
    /// MPC's unit of work (each objective evaluation simulates the whole
    /// horizon once). Benchmarks divide this by wall time to report
    /// rollouts/second.
    pub fn rollouts(&self) -> u64 {
        self.pool.rollouts.load(Ordering::Relaxed)
    }

    /// The subset of [`Mpc::rollouts`] that ran through the batched
    /// lockstep kernel (each lane of a batched line-search evaluation
    /// counts as one rollout). Zero unless
    /// [`MpcConfig::batch_line_search`] is `≥ 2`.
    pub fn batched_rollouts(&self) -> u64 {
        self.pool.batched_rollouts.load(Ordering::Relaxed)
    }

    /// Solves the control window given the plant snapshot and the load
    /// forecast (`loads[0]` is the period being decided). Returns the
    /// first move, retaining the full solution as the next warm start.
    pub fn solve(&mut self, plant: &MpcPlant, loads: &[Watts], dt: Seconds) -> MpcDecision {
        self.solve_with(plant, loads, dt, &NullSink)
    }

    /// [`Mpc::solve`] with telemetry: the solve streams
    /// [`Event::SolverIteration`] / [`Event::GradientEval`] from the
    /// inner solver, [`Event::PoolHit`] / [`Event::PoolMiss`] from the
    /// rollout workspace pool, and [`Event::BoundClamp`] when the
    /// applied first move sits pinned on a box bound (saturated
    /// ultracapacitor share at ±1, cooler duty at its ceiling — the
    /// always-active idle duty floor is deliberately not reported).
    ///
    /// Observation only: for any sink the returned [`MpcDecision`] is
    /// bit-identical to [`Mpc::solve`]'s.
    pub fn solve_with(
        &mut self,
        plant: &MpcPlant,
        loads: &[Watts],
        dt: Seconds,
        sink: &dyn Sink,
    ) -> MpcDecision {
        let _solve_span = span(sink, "mpc_solve");
        let n = self.config.horizon;

        // Decision vector layout: [cap_share_0..n-1, cool_duty_0..n-1],
        // cap shares normalised by the C7 limit into [-1, 1].
        {
            let _warm_span = span(sink, "warm_start");
            self.x0.clear();
            self.x0.resize(2 * n, 0.0);
            if self.config.warm_start {
                if let Some(prev) = &self.previous {
                    warm_start_shift(&mut self.x0, prev, n, self.config.block_size);
                }
            }
        }

        {
            let _pool_span = span(sink, "pool");
            self.pool.rebind(&plant.hees);
        }
        let objective = RolloutObjective {
            plant,
            loads,
            dt,
            config: &self.config,
            pool: &self.pool,
            start: plant.hees.snapshot(),
            sink,
        };
        let mut solver = self.solver;
        if let Some(cap) = self.iteration_cap {
            solver.max_iterations = solver.max_iterations.min(cap);
        }
        let deadline = self
            .deadline_ns()
            .map(|budget| Deadline::after(self.clock.as_ref(), budget));
        let Solution {
            x,
            value,
            iterations,
            outcome,
        } = if self.config.gradient_mode == GradientMode::GaussNewton {
            let gauss_newton = GaussNewton {
                max_iterations: solver.max_iterations,
                tolerance: solver.tolerance,
                batch_width: self.config.batch_line_search,
                ..GaussNewton::default()
            };
            gauss_newton.minimize_within(
                &objective,
                &self.bounds,
                &self.x0,
                sink,
                deadline.as_ref(),
            )
        } else {
            solver.minimize_sync_within(&objective, &self.bounds, &self.x0, sink, deadline.as_ref())
        };
        sink.record(Event::SolveOutcome {
            outcome: outcome.name(),
            mode: self.config.gradient_mode.name(),
            iterations: iterations as u64,
        });

        if x[0] == -1.0 || x[0] == 1.0 {
            sink.record(Event::BoundClamp {
                index: 0,
                raw: x[0] * plant.cap_power_max.value(),
                bound: x[0],
            });
        }
        if x[n] == 1.0 {
            sink.record(Event::BoundClamp {
                index: n as u64,
                raw: x[n],
                bound: 1.0,
            });
        }

        let decision = MpcDecision {
            cap_bus: Watts::new(x[0] * plant.cap_power_max.value()),
            cool_duty: x[n],
            cost: value,
            iterations,
            outcome,
        };
        self.previous = Some(x);
        decision
    }
}

/// Warm-starts `x0` from the previous period's plan `prev` (both laid out
/// as `[cap_share_0..n-1, cool_duty_0..n-1]`).
///
/// One *control period* has elapsed since `prev` was planned, but each
/// decision block spans `block` periods — so the plan must advance by the
/// fraction `1/block` of a block, not a whole block. A whole-index shift
/// (the `block == 1` case) would discard `block − 1` periods of
/// still-valid plan; instead each block is blended with its successor in
/// proportion to how far the elapsed period has slid the window:
/// `x0[k] = (1 − 1/block)·prev[k] + (1/block)·prev[k+1]`, with the tail
/// block repeated.
fn warm_start_shift(x0: &mut [f64], prev: &[f64], n: usize, block: usize) {
    debug_assert_eq!(x0.len(), 2 * n);
    debug_assert_eq!(prev.len(), 2 * n);
    let block = block.max(1);
    if block == 1 {
        for k in 0..n - 1 {
            x0[k] = prev[k + 1];
            x0[n + k] = prev[n + k + 1];
        }
    } else {
        let frac = 1.0 / block as f64;
        for k in 0..n - 1 {
            x0[k] = (1.0 - frac) * prev[k] + frac * prev[k + 1];
            x0[n + k] = (1.0 - frac) * prev[n + k] + frac * prev[n + k + 1];
        }
    }
    x0[n - 1] = prev[n - 1];
    x0[2 * n - 1] = prev[2 * n - 1];
}

/// Per-evaluation scratch owned by one worker: a long-lived plant model
/// that is rewound with [`HybridHees::restore`] before every rollout
/// (instead of deep-cloning the plant per evaluation) plus a perturbation
/// buffer for finite differences. Once warm, evaluating the objective or
/// one gradient coordinate touches no allocator.
struct RolloutWorkspace {
    hees: HybridHees,
    xp: Vec<f64>,
    /// Adjoint tape: per-step Jacobian records written by the forward
    /// pass and consumed by the backward sweep. Retains its capacity
    /// across solves, so steady-state adjoint gradients allocate
    /// nothing.
    tape: Vec<crate::adjoint::TapeStep>,
    /// Forward-sensitivity buffers for the Gauss-Newton curvature sweep
    /// over the same tape; likewise capacity-retaining.
    curvature: crate::adjoint::CurvatureScratch,
    /// Structure-of-arrays lane state for batched line-search
    /// evaluations; likewise capacity-retaining.
    batch: crate::batch::BatchState,
}

/// Shared pool of [`RolloutWorkspace`]s, sized on demand (one per
/// concurrently evaluating thread) and retained across solves.
struct WorkspacePool {
    slots: Mutex<Vec<RolloutWorkspace>>,
    rollouts: AtomicU64,
    /// How many of `rollouts` ran through the batched lockstep kernel
    /// (each batched lane counts as one rollout).
    batched_rollouts: AtomicU64,
}

impl WorkspacePool {
    fn new() -> Self {
        Self {
            slots: Mutex::new(Vec::new()),
            rollouts: AtomicU64::new(0),
            batched_rollouts: AtomicU64::new(0),
        }
    }

    /// Drops pooled workspaces whose plant no longer matches `source`
    /// beyond its mutable state — after syncing state, any surviving
    /// difference means the caller switched to a differently-parameterised
    /// plant, and reusing the workspace would silently roll out the wrong
    /// model. Runs once per solve over at most a handful of slots.
    fn rebind(&self, source: &HybridHees) {
        let snapshot = source.snapshot();
        // Poisoning is not corruption here: every critical section is a
        // plain Vec push/pop, and a panicking evaluation thread leaves the
        // pool contents valid (at worst a workspace is lost to the
        // panicking thread). Recover the guard instead of cascading the
        // panic into every later solve.
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        slots.retain_mut(|ws| {
            ws.hees.restore(snapshot);
            ws.hees == *source
        });
    }

    /// Pops a pooled workspace, or builds one from `source` on first use
    /// (the only time a plant clone happens). `sink` learns which way it
    /// went — a warm pool records only [`Event::PoolHit`]s.
    fn take(&self, source: &HybridHees, sink: &dyn Sink) -> RolloutWorkspace {
        let pooled = self.slots.lock().unwrap_or_else(|e| e.into_inner()).pop();
        match pooled {
            Some(ws) => {
                sink.record(Event::PoolHit);
                ws
            }
            None => {
                sink.record(Event::PoolMiss);
                RolloutWorkspace {
                    hees: source.clone(),
                    xp: Vec::new(),
                    tape: Vec::new(),
                    curvature: crate::adjoint::CurvatureScratch::default(),
                    batch: crate::batch::BatchState::new(),
                }
            }
        }
    }

    fn put(&self, workspace: RolloutWorkspace) {
        self.slots
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(workspace);
    }
}

impl Clone for WorkspacePool {
    // Workspaces are lazily rebuilt caches; a clone starts empty but
    // carries the rollout count so the work statistic stays monotone.
    fn clone(&self) -> Self {
        Self {
            slots: Mutex::new(Vec::new()),
            rollouts: AtomicU64::new(self.rollouts.load(Ordering::Relaxed)),
            batched_rollouts: AtomicU64::new(self.batched_rollouts.load(Ordering::Relaxed)),
        }
    }
}

impl std::fmt::Debug for WorkspacePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkspacePool")
            .field("slots", &self.slots.lock().map(|s| s.len()).unwrap_or(0))
            .field("rollouts", &self.rollouts.load(Ordering::Relaxed))
            .field(
                "batched_rollouts",
                &self.batched_rollouts.load(Ordering::Relaxed),
            )
            .finish()
    }
}

struct RolloutObjective<'a> {
    plant: &'a MpcPlant,
    loads: &'a [Watts],
    dt: Seconds,
    config: &'a MpcConfig,
    pool: &'a WorkspacePool,
    /// The plant's state when the solve began; every rollout starts by
    /// rewinding its workspace here, exactly like a fresh clone would.
    start: HeesSnapshot,
    /// Telemetry sink for pool traffic ([`Event::PoolHit`] /
    /// [`Event::PoolMiss`]); shared with every gradient worker, so it
    /// must be [`Sync`] (which the [`Sink`] trait requires).
    sink: &'a dyn Sink,
}

impl RolloutObjective<'_> {
    /// One rollout through a workspace plant: rewind, simulate, score.
    fn eval_with(&self, hees: &mut HybridHees, z: &[f64]) -> f64 {
        hees.restore(self.start);
        self.pool.rollouts.fetch_add(1, Ordering::Relaxed);
        rollout_cost_with(self.plant, hees, self.loads, self.dt, self.config, z)
    }

    /// Central differences over the coordinate window starting at `start`,
    /// through one pooled workspace. Runs on the caller's thread — under
    /// [`GradientMode::Parallel`] that is a scoped worker, so the
    /// `rollout` span lands on that worker's lane.
    fn gradient_window(&self, x: &[f64], grad_chunk: &mut [f64], start: usize) {
        let _rollout_span = span(self.sink, "rollout");
        let mut ws = self.pool.take(&self.plant.hees, self.sink);
        ws.xp.clear();
        ws.xp.extend_from_slice(x);
        let RolloutWorkspace { hees, xp, .. } = &mut ws;
        NumericalGradient::central_range(xp, grad_chunk, start, |z| self.eval_with(hees, z));
        self.pool.put(ws);
    }

    /// Reverse-mode gradient: one taped forward rollout plus an
    /// allocation-free backward sweep — the whole gradient for the price
    /// of a single rollout, independent of the horizon length.
    fn gradient_adjoint(&self, x: &[f64], grad: &mut [f64]) {
        let _rollout_span = span(self.sink, "rollout");
        let mut ws = self.pool.take(&self.plant.hees, self.sink);
        let RolloutWorkspace { hees, tape, .. } = &mut ws;
        hees.restore(self.start);
        self.pool.rollouts.fetch_add(1, Ordering::Relaxed);
        crate::adjoint::rollout_cost_taped(
            self.plant,
            hees,
            self.loads,
            self.dt,
            self.config,
            x,
            Some(tape),
        );
        crate::adjoint::adjoint_sweep(self.plant, self.loads, self.dt, self.config, tape, grad);
        self.pool.put(ws);
    }
}

impl Objective for RolloutObjective<'_> {
    fn value(&self, z: &[f64]) -> f64 {
        let _rollout_span = span(self.sink, "rollout");
        let mut ws = self.pool.take(&self.plant.hees, self.sink);
        let cost = self.eval_with(&mut ws.hees, z);
        self.pool.put(ws);
        cost
    }

    /// Batched line-search evaluation: all candidate rollouts advance in
    /// lockstep through the structure-of-arrays kernel (`batch` module)
    /// instead of looping [`Objective::value`]. Each lane runs the same
    /// scalar step body, so per-lane costs are bit-identical to the
    /// scalar path; only the traversal order (step-major instead of
    /// lane-major) differs.
    fn value_batch(&self, points: &[f64], m: usize, out: &mut [f64]) {
        assert_eq!(
            points.len(),
            out.len() * m,
            "batched point matrix must be lanes × m"
        );
        let _rollout_span = span(self.sink, "rollout");
        let lanes = out.len();
        let mut ws = self.pool.take(&self.plant.hees, self.sink);
        let RolloutWorkspace { hees, batch, .. } = &mut ws;
        hees.restore(self.start);
        self.pool
            .rollouts
            .fetch_add(lanes as u64, Ordering::Relaxed);
        self.pool
            .batched_rollouts
            .fetch_add(lanes as u64, Ordering::Relaxed);
        self.sink.record(Event::BatchEvaluated {
            lanes: lanes as u64,
            width: self.config.batch_line_search.max(lanes) as u64,
        });
        crate::batch::rollout_cost_batch_with(
            self.plant,
            hees,
            self.loads,
            self.dt,
            self.config,
            points,
            lanes,
            batch,
            out,
        );
        self.pool.put(ws);
    }

    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        self.gradient_with(x, grad, self.config.gradient_mode);
    }

    // Explicit impl so both modes run through pooled workspaces: the
    // default parallel path would clone the perturbation point per call
    // and the default serial path would deep-clone the plant per rollout.
    fn gradient_with(&self, x: &[f64], grad: &mut [f64], mode: GradientMode) {
        assert_eq!(grad.len(), x.len(), "gradient buffer length mismatch");
        let n = x.len();
        let threads = match mode {
            GradientMode::Adjoint | GradientMode::GaussNewton => {
                self.gradient_adjoint(x, grad);
                return;
            }
            GradientMode::Serial => 1,
            GradientMode::Parallel { threads } => {
                otem_solver::resolve_threads(threads).clamp(1, n.max(1))
            }
        };
        if threads <= 1 {
            self.gradient_window(x, grad, 0);
            return;
        }
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (idx, grad_chunk) in grad.chunks_mut(chunk).enumerate() {
                scope.spawn(move || self.gradient_window(x, grad_chunk, idx * chunk));
            }
        });
    }
}

impl CurvatureObjective for RolloutObjective<'_> {
    /// One taped rollout, then *two* consumers of the same tape: the
    /// backward sweep for the gradient and the forward sensitivity
    /// sweep for the Gauss-Newton curvature. No extra rollouts, no new
    /// model derivatives.
    fn gradient_and_curvature(&self, x: &[f64], grad: &mut [f64], hess: &mut [f64]) {
        assert_eq!(grad.len(), x.len(), "gradient buffer length mismatch");
        assert_eq!(hess.len(), x.len() * x.len(), "curvature buffer mismatch");
        let _rollout_span = span(self.sink, "rollout");
        let mut ws = self.pool.take(&self.plant.hees, self.sink);
        let RolloutWorkspace {
            hees,
            tape,
            curvature,
            ..
        } = &mut ws;
        hees.restore(self.start);
        self.pool.rollouts.fetch_add(1, Ordering::Relaxed);
        crate::adjoint::rollout_cost_taped(
            self.plant,
            hees,
            self.loads,
            self.dt,
            self.config,
            x,
            Some(tape),
        );
        crate::adjoint::adjoint_sweep(self.plant, self.loads, self.dt, self.config, tape, grad);
        crate::adjoint::tape_curvature(
            self.plant,
            self.loads,
            self.dt,
            self.config,
            tape,
            curvature,
            hess,
        );
        self.pool.put(ws);
    }
}

/// Simulates the horizon under the candidate controls and returns the
/// Eq. 19 cost plus constraint penalties.
///
/// Clones the plant's HEES once per call; the MPC's inner loop avoids
/// even that by routing through a pooled workspace instead
/// (see [`Mpc::solve`]).
pub fn rollout_cost(
    plant: &MpcPlant,
    loads: &[Watts],
    dt: Seconds,
    config: &MpcConfig,
    z: &[f64],
) -> f64 {
    let mut hees = plant.hees.clone();
    rollout_cost_with(plant, &mut hees, loads, dt, config, z)
}

/// [`rollout_cost`] against a caller-provided HEES instance, which must
/// already be in the plant's start state (`hees == plant.hees`); it is
/// left in the end-of-horizon state. Allocation-free.
///
/// The implementation lives in [`crate::adjoint`] (untaped mode) so the
/// adjoint's forward pass and the plain objective are the same code —
/// bit-identical by construction.
fn rollout_cost_with(
    plant: &MpcPlant,
    hees: &mut HybridHees,
    loads: &[Watts],
    dt: Seconds,
    config: &MpcConfig,
    z: &[f64],
) -> f64 {
    crate::adjoint::rollout_cost_taped(plant, hees, loads, dt, config, z, None)
}

/// Reverse-mode gradient of [`rollout_cost`]: one taped forward rollout
/// plus a backward sweep through the components' analytic Jacobians.
/// Writes `∂J/∂z` into `grad` (layout `[cap_share_0..n-1,
/// cool_duty_0..n-1]`, length `2·horizon`) and returns the cost at `z`.
///
/// Clones the plant's HEES once per call; the MPC's inner loop avoids
/// even that by routing through a pooled workspace instead (see
/// [`GradientMode::Adjoint`]). Matches finite differences to ~1e-6
/// relative error away from the objective's penalty kinks, at a cost
/// independent of the horizon length.
pub fn rollout_gradient_adjoint(
    plant: &MpcPlant,
    loads: &[Watts],
    dt: Seconds,
    config: &MpcConfig,
    z: &[f64],
    grad: &mut [f64],
) -> f64 {
    let mut hees = plant.hees.clone();
    let mut tape = Vec::with_capacity(config.horizon);
    let cost =
        crate::adjoint::rollout_cost_taped(plant, &mut hees, loads, dt, config, z, Some(&mut tape));
    crate::adjoint::adjoint_sweep(plant, loads, dt, config, &tape, grad);
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use otem_units::Farads;

    fn plant(config: &SystemConfig) -> MpcPlant {
        let mut hees = HybridHees::ev_default(Farads::new(25_000.0)).unwrap();
        hees.set_state(config.initial_soc, Ratio::new(0.6));
        MpcPlant {
            hees,
            thermal: ThermalModel::new(config.thermal_active).unwrap(),
            plant: CoolingPlant::new(config.plant).unwrap(),
            state: ThermalState::uniform(config.ambient),
            aging: config.aging,
            soc_min: config.soc_min,
            soe_min: config.soe_min,
            battery_power_max: config.battery_power_max,
            cap_power_max: config.cap_power_max,
        }
    }

    #[test]
    fn idle_horizon_prefers_doing_nothing() {
        let config = SystemConfig::default();
        let p = plant(&config);
        let mut mpc = Mpc::new(MpcConfig {
            horizon: 6,
            ..MpcConfig::default()
        });
        let loads = vec![Watts::ZERO; 6];
        let d = mpc.solve(&p, &loads, Seconds::new(1.0));
        assert!(
            d.cap_bus.value().abs() < 2_000.0,
            "idle cap command {:?}",
            d.cap_bus
        );
        assert!(d.cool_duty < 0.1, "idle cooling duty {}", d.cool_duty);
    }

    #[test]
    fn hot_battery_triggers_cooling_or_cap_use() {
        let config = SystemConfig::default();
        let mut p = plant(&config);
        p.state = ThermalState::uniform(Kelvin::from_celsius(39.5));
        let mut mpc = Mpc::new(MpcConfig {
            horizon: 6,
            ..MpcConfig::default()
        });
        let loads = vec![Watts::new(40_000.0); 6];
        let d = mpc.solve(&p, &loads, Seconds::new(1.0));
        assert!(
            d.cool_duty > 0.3 || d.cap_bus.value() > 10_000.0,
            "hot battery ignored: duty {} cap {:?}",
            d.cool_duty,
            d.cap_bus
        );
    }

    #[test]
    fn upcoming_peak_prepares_teb() {
        // Quiet now, 80 kW pulse later in the window: the solution should
        // either pre-charge the bank now (negative cap power) or plan to
        // discharge it during the pulse.
        let config = SystemConfig::default();
        let mut p = plant(&config);
        p.hees.set_state(Ratio::ONE, Ratio::new(0.4)); // bank part-empty
        let mut mpc = Mpc::new(MpcConfig {
            horizon: 10,
            ..MpcConfig::default()
        });
        let mut loads = vec![Watts::new(2_000.0); 10];
        for sample in loads.iter_mut().skip(5) {
            *sample = Watts::new(80_000.0);
        }
        let d = mpc.solve(&p, &loads, Seconds::new(1.0));
        // Inspect the retained full plan: cap must serve during the pulse.
        let plan = mpc.previous.clone().expect("plan retained");
        let served: f64 = plan[5..10].iter().sum();
        assert!(
            served > 0.2 || d.cap_bus.value() < -500.0,
            "no TEB preparation: plan {plan:?}"
        );
    }

    #[test]
    fn warm_start_reuses_previous_plan() {
        let config = SystemConfig::default();
        let p = plant(&config);
        let mut mpc = Mpc::new(MpcConfig {
            horizon: 6,
            ..MpcConfig::default()
        });
        let loads = vec![Watts::new(20_000.0); 6];
        let first = mpc.solve(&p, &loads, Seconds::new(1.0));
        let second = mpc.solve(&p, &loads, Seconds::new(1.0));
        // Warm-started re-solve of the same problem should converge at
        // least as fast.
        assert!(second.iterations <= first.iterations + 5);
        mpc.reset();
        assert!(mpc.previous.is_none());
    }

    #[test]
    fn terminal_tail_makes_sustained_cooling_profitable() {
        // The design note in DESIGN.md §5: without the terminal cost a
        // short window cannot see that cooling pays off; with it, the
        // full-cooling rollout must under-cost the no-cooling rollout on
        // a warm battery — and the tail's nominal C-rate must come from
        // the load, not from the cooling-induced battery current. The
        // effect needs the stress rig's fast thermal response (a 284 kJ/K
        // premium pack barely moves in 12 s either way).
        let config = SystemConfig::stress_rig();
        let mut p = plant(&config);
        p.state = ThermalState::uniform(Kelvin::from_celsius(36.0));
        let n = 12;
        let loads = vec![Watts::new(15_000.0); n];
        let dt = Seconds::new(1.0);
        let mut z_cool = vec![0.0; 2 * n];
        z_cool[n..].fill(1.0);
        let z_off = vec![0.0; 2 * n];

        let with_tail = MpcConfig {
            horizon: n,
            ..MpcConfig::default()
        };
        let cool = rollout_cost(&p, &loads, dt, &with_tail, &z_cool);
        let idle = rollout_cost(&p, &loads, dt, &with_tail, &z_off);
        assert!(
            cool < idle,
            "tail should make cooling profitable: cool {cool:.4e} vs idle {idle:.4e}"
        );

        let no_tail = MpcConfig {
            horizon: n,
            terminal_tail: 0.0,
            ..MpcConfig::default()
        };
        let cool_nt = rollout_cost(&p, &loads, dt, &no_tail, &z_cool);
        let idle_nt = rollout_cost(&p, &loads, dt, &no_tail, &z_off);
        assert!(
            cool_nt > idle_nt,
            "without the tail a 12 s window cannot justify cooling:              cool {cool_nt:.4e} vs idle {idle_nt:.4e}"
        );
    }

    #[test]
    fn block_size_extends_the_window() {
        // With block_size the same decision vector spans a longer window;
        // sanity: solving still returns finite, bounded commands.
        let config = SystemConfig::default();
        let p = plant(&config);
        let mut mpc = Mpc::new(MpcConfig {
            horizon: 6,
            block_size: 5,
            ..MpcConfig::default()
        });
        let loads = vec![Watts::new(20_000.0); 6];
        let d = mpc.solve(&p, &loads, Seconds::new(5.0));
        assert!(d.cap_bus.is_finite());
        assert!((0.0..=1.0).contains(&d.cool_duty));
        assert!(d.cap_bus.abs() <= p.cap_power_max + Watts::new(1e-6));
    }

    #[test]
    fn pooled_rollouts_match_clone_based_rollouts_bitwise() {
        // The pooled snapshot/restore path must be indistinguishable from
        // a fresh plant clone per evaluation — including on reuse, when
        // the workspace still carries the previous rollout's end state.
        let config = SystemConfig::default();
        let mut p = plant(&config);
        p.hees.set_state(Ratio::new(0.9), Ratio::new(0.45));
        let cfg = MpcConfig {
            horizon: 6,
            ..MpcConfig::default()
        };
        let loads: Vec<Watts> = (0..6).map(|k| Watts::new(8_000.0 * k as f64)).collect();
        let dt = Seconds::new(1.0);
        let pool = WorkspacePool::new();
        let objective = RolloutObjective {
            plant: &p,
            loads: &loads,
            dt,
            config: &cfg,
            pool: &pool,
            start: p.hees.snapshot(),
            sink: &NullSink,
        };
        let mut z = vec![0.0; 12];
        for (i, zi) in z.iter_mut().enumerate() {
            *zi = if i < 6 {
                0.1 * i as f64 - 0.2
            } else {
                0.15 * (i - 6) as f64
            };
        }
        for _ in 0..3 {
            let pooled = objective.value(&z);
            let cloned = rollout_cost(&p, &loads, dt, &cfg, &z);
            assert_eq!(pooled.to_bits(), cloned.to_bits());
        }
        assert_eq!(objective.pool.rollouts.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn parallel_gradient_is_bit_identical_for_the_rollout_objective() {
        let config = SystemConfig::default();
        let mut p = plant(&config);
        p.hees.set_state(Ratio::new(0.8), Ratio::new(0.5));
        p.state = ThermalState::uniform(Kelvin::from_celsius(33.0));
        let cfg = MpcConfig {
            horizon: 8,
            ..MpcConfig::default()
        };
        let loads: Vec<Watts> = (0..8)
            .map(|k| Watts::new(5_000.0 + 9_000.0 * (k % 3) as f64))
            .collect();
        let dt = Seconds::new(1.0);
        let pool = WorkspacePool::new();
        let objective = RolloutObjective {
            plant: &p,
            loads: &loads,
            dt,
            config: &cfg,
            pool: &pool,
            start: p.hees.snapshot(),
            sink: &NullSink,
        };
        let dim = 16;
        let z: Vec<f64> = (0..dim)
            .map(|i| {
                if i < 8 {
                    0.05 * i as f64 - 0.15
                } else {
                    0.1 * (i - 8) as f64
                }
            })
            .collect();

        // Reference: plain finite differences over the public clone-based
        // rollout_cost — the pooled paths must reproduce it bit-for-bit.
        let reference_f =
            otem_solver::FnObjective::new(|zz: &[f64]| rollout_cost(&p, &loads, dt, &cfg, zz));
        let mut reference = vec![0.0; dim];
        NumericalGradient::central(&reference_f, &z, &mut reference);

        let mut serial = vec![0.0; dim];
        objective.gradient_with(&z, &mut serial, GradientMode::Serial);
        assert_eq!(
            serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "pooled serial gradient deviates from clone-based reference"
        );

        for threads in [2, 3, 4, 16] {
            let mut parallel = vec![0.0; dim];
            objective.gradient_with(&z, &mut parallel, GradientMode::Parallel { threads });
            assert_eq!(
                parallel.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn parallel_solve_decisions_are_bit_identical_to_serial() {
        let config = SystemConfig::default();
        let mut p = plant(&config);
        p.state = ThermalState::uniform(Kelvin::from_celsius(36.0));
        let loads: Vec<Watts> = (0..8)
            .map(|k| Watts::new(if k >= 4 { 70_000.0 } else { 3_000.0 }))
            .collect();
        let mut serial_mpc = Mpc::new(MpcConfig {
            horizon: 8,
            ..MpcConfig::default()
        });
        let mut parallel_mpc = Mpc::new(MpcConfig {
            horizon: 8,
            gradient_mode: GradientMode::Parallel { threads: 4 },
            ..MpcConfig::default()
        });
        // Several warm-started periods: divergence anywhere would compound.
        for _ in 0..3 {
            let a = serial_mpc.solve(&p, &loads, Seconds::new(1.0));
            let b = parallel_mpc.solve(&p, &loads, Seconds::new(1.0));
            assert_eq!(a.cap_bus.value().to_bits(), b.cap_bus.value().to_bits());
            assert_eq!(a.cool_duty.to_bits(), b.cool_duty.to_bits());
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
            assert_eq!(a.iterations, b.iterations);
            assert_eq!(a.outcome, b.outcome);
        }
        assert!(serial_mpc.rollouts() > 0);
        assert_eq!(serial_mpc.rollouts(), parallel_mpc.rollouts());
    }

    #[test]
    fn warm_start_shift_blends_fractionally_under_blocking() {
        let n = 4;
        let prev: Vec<f64> = vec![
            0.8, 0.4, -0.6, 0.2, // cap shares
            0.1, 0.9, 0.3, 0.7, // duties
        ];
        // block_size 1: whole-index shift, tail repeated.
        let mut shifted = vec![0.0; 2 * n];
        warm_start_shift(&mut shifted, &prev, n, 1);
        assert_eq!(shifted, vec![0.4, -0.6, 0.2, 0.2, 0.9, 0.3, 0.7, 0.7]);
        // block_size 4: one elapsed period is a quarter block, so the
        // plan advances by a quarter of the gap to the next block instead
        // of throwing three still-valid periods away.
        let mut blended = vec![0.0; 2 * n];
        warm_start_shift(&mut blended, &prev, n, 4);
        let expect = |a: f64, b: f64| 0.75 * a + 0.25 * b;
        for (k, &want) in [
            expect(0.8, 0.4),
            expect(0.4, -0.6),
            expect(-0.6, 0.2),
            0.2,
            expect(0.1, 0.9),
            expect(0.9, 0.3),
            expect(0.3, 0.7),
            0.7,
        ]
        .iter()
        .enumerate()
        {
            assert!((blended[k] - want).abs() < 1e-15, "k = {k}");
        }
    }

    #[test]
    fn workspace_pool_rebinds_on_plant_change() {
        // A pooled workspace built against one plant must not survive a
        // switch to a differently-parameterised plant.
        let config = SystemConfig::default();
        let p = plant(&config);
        let pool = WorkspacePool::new();
        let ws = pool.take(&p.hees, &NullSink);
        pool.put(ws);
        pool.rebind(&p.hees);
        assert_eq!(pool.slots.lock().unwrap().len(), 1, "same plant retained");

        let mut other = HybridHees::ev_default(Farads::new(5_000.0)).unwrap();
        other.set_state(Ratio::new(0.7), Ratio::new(0.7));
        pool.rebind(&other);
        assert_eq!(
            pool.slots.lock().unwrap().len(),
            0,
            "different capacitance must evict the stale workspace"
        );
    }

    #[test]
    fn observed_solve_is_bit_identical_and_traces_pool_traffic() {
        use otem_telemetry::MemorySink;
        let config = SystemConfig::default();
        let mut p = plant(&config);
        p.state = ThermalState::uniform(Kelvin::from_celsius(36.0));
        let loads = vec![Watts::new(30_000.0); 6];
        let cfg = MpcConfig {
            horizon: 6,
            ..MpcConfig::default()
        };
        let mut plain_mpc = Mpc::new(cfg);
        let mut observed_mpc = Mpc::new(cfg);
        let sink = MemorySink::new();
        for period in 0..2 {
            let plain = plain_mpc.solve(&p, &loads, Seconds::new(1.0));
            let observed = observed_mpc.solve_with(&p, &loads, Seconds::new(1.0), &sink);
            assert_eq!(
                plain.cap_bus.value().to_bits(),
                observed.cap_bus.value().to_bits(),
                "period {period}"
            );
            assert_eq!(plain.cool_duty.to_bits(), observed.cool_duty.to_bits());
            assert_eq!(plain.cost.to_bits(), observed.cost.to_bits());
            assert_eq!(plain.iterations, observed.iterations);
        }
        // Every solver iteration and every workspace-pool access left a
        // trace; after the first gradient fan-out the pool stays warm.
        assert!(sink.count_kind("solver_iteration") > 0);
        assert!(sink.count_kind("gradient_eval") > 0);
        let hits = sink.count_kind("pool_hit");
        let misses = sink.count_kind("pool_miss");
        assert_eq!(misses, 1, "serial mode needs exactly one workspace");
        assert!(hits > misses, "pool should run warm: {hits} hits");
    }

    #[test]
    fn observed_solve_nests_phase_spans_under_mpc_solve() {
        use otem_telemetry::{Event as TEvent, MemorySink};
        let config = SystemConfig::default();
        let p = plant(&config);
        let loads = vec![Watts::new(30_000.0); 6];
        let mut mpc = Mpc::new(MpcConfig {
            horizon: 6,
            solver_iterations: 4,
            ..MpcConfig::default()
        });
        let sink = MemorySink::new();
        mpc.solve_with(&p, &loads, Seconds::new(1.0), &sink);
        let events = sink.events();
        let starts: Vec<(&str, u64, u64)> = events
            .iter()
            .filter_map(|e| match e {
                TEvent::SpanStart {
                    name, id, parent, ..
                } => Some((*name, *id, *parent)),
                _ => None,
            })
            .collect();
        let (_, solve_id, solve_parent) = *starts
            .iter()
            .find(|(name, ..)| *name == "mpc_solve")
            .expect("mpc_solve span");
        assert_eq!(solve_parent, 0, "mpc_solve is the root here");
        for phase in ["warm_start", "pool"] {
            let (_, _, parent) = *starts
                .iter()
                .find(|(name, ..)| *name == phase)
                .unwrap_or_else(|| panic!("missing {phase} span"));
            assert_eq!(parent, solve_id, "{phase} must nest under mpc_solve");
        }
        for phase in ["iteration", "gradient", "line_search", "rollout"] {
            assert!(
                starts.iter().any(|(name, ..)| *name == phase),
                "missing {phase} span"
            );
        }
        // Balanced: every start has its end.
        assert_eq!(
            sink.count_kind("span_start"),
            sink.count_kind("span_end"),
            "unbalanced span stream"
        );
    }

    #[test]
    fn parallel_gradient_rollout_spans_carry_distinct_lanes() {
        use otem_telemetry::{Event as TEvent, MemorySink};
        let config = SystemConfig::default();
        let p = plant(&config);
        let loads = vec![Watts::new(30_000.0); 6];
        let mut mpc = Mpc::new(MpcConfig {
            horizon: 6,
            solver_iterations: 4,
            gradient_mode: GradientMode::Parallel { threads: 4 },
            ..MpcConfig::default()
        });
        let sink = MemorySink::new();
        mpc.solve_with(&p, &loads, Seconds::new(1.0), &sink);
        let mut lanes = std::collections::BTreeSet::new();
        for e in sink.events() {
            if let TEvent::SpanStart { name, lane, .. } = e {
                if name == "rollout" {
                    lanes.insert(lane);
                }
            }
        }
        assert!(
            lanes.len() >= 2,
            "parallel gradient workers must appear on distinct lanes, got {lanes:?}"
        );
    }

    #[test]
    fn poisoned_pool_recovers_instead_of_cascading() {
        // A panicking evaluation thread poisons the slots mutex; the pool
        // must keep working (its invariants are plain Vec contents), not
        // turn every subsequent solve into a panic.
        let config = SystemConfig::default();
        let p = plant(&config);
        let pool = WorkspacePool::new();
        let ws = pool.take(&p.hees, &NullSink);
        pool.put(ws);

        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = pool.slots.lock().unwrap();
            panic!("poison the pool");
        }));
        assert!(poison.is_err());
        assert!(pool.slots.lock().is_err(), "mutex should be poisoned");

        // All three entry points still function on the poisoned mutex.
        pool.rebind(&p.hees);
        let ws = pool.take(&p.hees, &NullSink);
        pool.put(ws);

        // And a full solve through the poisoned pool still succeeds.
        let mut mpc = Mpc::new(MpcConfig {
            horizon: 4,
            ..MpcConfig::default()
        });
        let _guard_poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = mpc.pool.slots.lock().unwrap();
            panic!("poison the solver's pool");
        }));
        let loads = vec![Watts::new(10_000.0); 4];
        let d = mpc.solve(&p, &loads, Seconds::new(1.0));
        assert!(d.cap_bus.is_finite());
        assert!(d.cost.is_finite());
    }

    #[test]
    fn iteration_cap_starves_the_solver_structurally() {
        let config = SystemConfig::default();
        let mut p = plant(&config);
        p.state = ThermalState::uniform(Kelvin::from_celsius(36.0));
        let loads = vec![Watts::new(40_000.0); 6];
        let mut mpc = Mpc::new(MpcConfig {
            horizon: 6,
            ..MpcConfig::default()
        });
        mpc.set_iteration_cap(Some(0));
        assert_eq!(mpc.iteration_cap(), Some(0));
        let starved = mpc.solve(&p, &loads, Seconds::new(1.0));
        assert_eq!(starved.iterations, 0);
        assert_eq!(starved.outcome, SolverOutcome::BudgetExhausted);
        assert!(!starved.converged());

        // Lifting the cap restores the configured budget.
        mpc.set_iteration_cap(None);
        let restored = mpc.solve(&p, &loads, Seconds::new(1.0));
        assert!(restored.iterations > 0);
    }

    #[test]
    fn adjoint_gradient_matches_finite_differences() {
        // The backward sweep must reproduce central differences to
        // roundoff at interior points of every penalty branch. Exercise
        // warm/hot thermal states, part-empty stores, and a load profile
        // that drives both legs.
        let config = SystemConfig::default();
        for (celsius, soc, soe) in [(33.0, 0.8, 0.5), (39.0, 0.9, 0.25), (25.0, 0.35, 0.85)] {
            let mut p = plant(&config);
            p.hees.set_state(Ratio::new(soc), Ratio::new(soe));
            p.state = ThermalState::uniform(Kelvin::from_celsius(celsius));
            let n = 8;
            let cfg = MpcConfig {
                horizon: n,
                ..MpcConfig::default()
            };
            let loads: Vec<Watts> = (0..n)
                .map(|k| Watts::new(4_000.0 + 11_000.0 * (k % 3) as f64))
                .collect();
            let dt = Seconds::new(1.0);
            // Interior points only: z[k] = 0 sits exactly on the
            // converter's no-load-loss ramp kink, where central FD
            // averages two one-sided slopes and neither is the adjoint's.
            let z: Vec<f64> = (0..2 * n)
                .map(|i| {
                    if i < n {
                        0.07 * i as f64 - 0.215
                    } else {
                        0.09 * (i - n) as f64 + 0.05
                    }
                })
                .collect();

            let mut adjoint = vec![0.0; 2 * n];
            let cost = rollout_gradient_adjoint(&p, &loads, dt, &cfg, &z, &mut adjoint);
            assert_eq!(
                cost.to_bits(),
                rollout_cost(&p, &loads, dt, &cfg, &z).to_bits(),
                "taped forward pass must be bit-identical to the objective"
            );

            // Richardson-extrapolated central differences: the w2 aging
            // term's Arrhenius curvature makes plain FD at h ≈ 6e-6 carry
            // ~1e-6 relative truncation error of its own, which would
            // drown the comparison. O(h⁴) extrapolation pins the true
            // derivative well below the 1e-6 assertion.
            let fd = richardson_gradient(&z, |zz| rollout_cost(&p, &loads, dt, &cfg, zz));

            let scale = fd.iter().fold(1.0_f64, |m, g| m.max(g.abs()));
            for (i, (a, f)) in adjoint.iter().zip(fd.iter()).enumerate() {
                assert!(
                    (a - f).abs() <= 1e-6 * scale,
                    "coordinate {i} at {celsius} °C: adjoint {a:.9e} vs FD {f:.9e}"
                );
            }
        }
    }

    /// O(h⁴) Richardson-extrapolated central differences — the reference
    /// the adjoint is pinned against in tests.
    fn richardson_gradient(z: &[f64], mut f: impl FnMut(&[f64]) -> f64) -> Vec<f64> {
        let h = 1e-4;
        let mut zp = z.to_vec();
        let mut grad = vec![0.0; z.len()];
        for (i, g) in grad.iter_mut().enumerate() {
            let orig = zp[i];
            let mut central = |step: f64| {
                zp[i] = orig + step;
                let fp = f(&zp);
                zp[i] = orig - step;
                let fm = f(&zp);
                zp[i] = orig;
                (fp - fm) / (2.0 * step)
            };
            let coarse = central(h);
            let fine = central(h / 2.0);
            *g = (4.0 * fine - coarse) / 3.0;
        }
        grad
    }

    #[test]
    fn adjoint_solve_slashes_rollouts_per_solve() {
        // The whole point: an FD gradient costs 4·horizon rollouts, the
        // adjoint one. Over identical solve sequences the rollout meter
        // must drop by at least 10×.
        let config = SystemConfig::default();
        let mut p = plant(&config);
        p.state = ThermalState::uniform(Kelvin::from_celsius(36.0));
        let loads: Vec<Watts> = (0..12)
            .map(|k| Watts::new(if k >= 6 { 60_000.0 } else { 5_000.0 }))
            .collect();
        let mut fd_mpc = Mpc::new(MpcConfig {
            horizon: 12,
            ..MpcConfig::default()
        });
        let mut adj_mpc = Mpc::new(MpcConfig {
            horizon: 12,
            gradient_mode: GradientMode::Adjoint,
            ..MpcConfig::default()
        });
        for _ in 0..3 {
            let a = fd_mpc.solve(&p, &loads, Seconds::new(1.0));
            let b = adj_mpc.solve(&p, &loads, Seconds::new(1.0));
            assert!(a.cap_bus.is_finite() && b.cap_bus.is_finite());
        }
        let fd = fd_mpc.rollouts() as f64;
        let adj = adj_mpc.rollouts() as f64;
        assert!(
            fd >= 10.0 * adj,
            "expected ≥10× fewer rollouts: FD {fd} vs adjoint {adj}"
        );
        // And the adjoint solve must land on a comparable optimum: both
        // controllers see the same plant, so the first moves should
        // agree to solver tolerance.
        let a = fd_mpc.solve(&p, &loads, Seconds::new(1.0));
        let b = adj_mpc.solve(&p, &loads, Seconds::new(1.0));
        assert!(
            (a.cool_duty - b.cool_duty).abs() < 0.15
                && (a.cap_bus.value() - b.cap_bus.value()).abs()
                    < 0.05 * p.cap_power_max.value().max(1.0),
            "adjoint optimum diverged: FD ({:?}, {}) vs adjoint ({:?}, {})",
            a.cap_bus,
            a.cool_duty,
            b.cap_bus,
            b.cool_duty
        );
    }

    #[test]
    fn adjoint_mode_runs_through_the_workspace_pool() {
        use otem_telemetry::MemorySink;
        let config = SystemConfig::default();
        let mut p = plant(&config);
        p.state = ThermalState::uniform(Kelvin::from_celsius(36.0));
        let loads = vec![Watts::new(30_000.0); 6];
        let mut mpc = Mpc::new(MpcConfig {
            horizon: 6,
            gradient_mode: GradientMode::Adjoint,
            ..MpcConfig::default()
        });
        let sink = MemorySink::new();
        for _ in 0..2 {
            let d = mpc.solve_with(&p, &loads, Seconds::new(1.0), &sink);
            assert!(d.cost.is_finite());
        }
        // Adjoint mode is single-threaded: one workspace, allocated on
        // first use and then recycled (the tape rides inside it).
        assert_eq!(sink.count_kind("pool_miss"), 1);
        assert!(sink.count_kind("pool_hit") > 0);
        // Telemetry keeps flowing unchanged through the same spans.
        assert!(sink.count_kind("gradient_eval") > 0);
        assert!(sink.count_kind("solver_iteration") > 0);
    }

    #[test]
    fn gauss_newton_mode_converges_where_first_order_exhausts_its_budget() {
        // Nominal regime (33 °C, mixed traction load): the aging term
        // dominates the objective and its eigen-clipped curvature rides
        // the tape, so the second-order mode certifies convergence in a
        // fraction of the first-order iteration spend. Measured on this
        // rig: Gauss-Newton converges in ~60–70 iterations per solve
        // while spectral projected descent burns the full 400-iteration
        // budget without reaching tolerance.
        let config = SystemConfig::default();
        let mut p = plant(&config);
        p.state = ThermalState::uniform(Kelvin::from_celsius(33.0));
        let loads: Vec<Watts> = (0..12)
            .map(|k| Watts::new(20_000.0 + 40_000.0 * ((k % 5) as f64 / 4.0)))
            .collect();
        let mut adj = Mpc::new(MpcConfig {
            horizon: 12,
            solver_iterations: 400,
            gradient_mode: GradientMode::Adjoint,
            ..MpcConfig::default()
        });
        let mut gn = Mpc::new(MpcConfig {
            horizon: 12,
            solver_iterations: 400,
            gradient_mode: GradientMode::GaussNewton,
            ..MpcConfig::default()
        });
        let (mut adj_iters, mut gn_iters) = (0usize, 0usize);
        let mut last = None;
        for _ in 0..4 {
            let a = adj.solve(&p, &loads, Seconds::new(1.0));
            let b = gn.solve(&p, &loads, Seconds::new(1.0));
            assert!(a.cap_bus.is_finite() && b.cap_bus.is_finite());
            assert!((0.0..=1.0).contains(&b.cool_duty), "{b:?}");
            adj_iters += a.iterations;
            gn_iters += b.iterations;
            last = Some(b.outcome);
        }
        assert_eq!(last, Some(SolverOutcome::Converged));
        assert!(
            gn_iters < adj_iters,
            "Gauss-Newton spent {gn_iters} iterations, adjoint {adj_iters}"
        );
    }

    #[test]
    fn gauss_newton_mode_stays_usable_on_the_hot_rig() {
        // Thermally saturated rig (39 °C, soft ceiling active): the
        // relu-penalty `r·∇²r` Newton term missing from the tape is
        // large here, so no iteration advantage is claimed — but every
        // solve must stay finite, in-bounds, and usable, with warm
        // starts carrying across solves.
        let config = SystemConfig::stress_rig();
        let mut p = plant(&config);
        p.state = ThermalState::uniform(Kelvin::from_celsius(39.0));
        let loads: Vec<Watts> = (0..12)
            .map(|k| Watts::new(20_000.0 + 40_000.0 * ((k % 5) as f64 / 4.0)))
            .collect();
        let mut gn = Mpc::new(MpcConfig {
            horizon: 12,
            solver_iterations: 400,
            gradient_mode: GradientMode::GaussNewton,
            ..MpcConfig::default()
        });
        let mut prev_cost = f64::INFINITY;
        for _ in 0..4 {
            let b = gn.solve(&p, &loads, Seconds::new(1.0));
            assert!(b.cap_bus.is_finite(), "{b:?}");
            assert!((0.0..=1.0).contains(&b.cool_duty), "{b:?}");
            assert!(b.outcome.is_usable(), "{b:?}");
            // Warm-started repeats of the identical problem never
            // regress the achieved cost by more than float noise.
            assert!(b.cost <= prev_cost * (1.0 + 1e-9), "{b:?}");
            prev_cost = b.cost;
        }
    }

    #[test]
    fn tape_curvature_is_symmetric_psd_and_matches_fd_on_penalties() {
        // Penalty-only objective just above the soft ceiling: the
        // Gauss-Newton matrix of `p·relu(r)²` terms is `Σ 2p·∇r∇rᵀ`,
        // which drops the `r·∇²r` Newton term. That dropped term scales
        // linearly with the residual, so in the small-residual regime
        // (ceiling barely exceeded, gentle heating) the second
        // difference of the exact cost must land within the loose band;
        // far above the ceiling the truncation dominates by design.
        let config = SystemConfig::stress_rig();
        let mut p = plant(&config);
        p.state = ThermalState::uniform(Kelvin::from_celsius(38.01));
        let n = 6;
        let cfg = MpcConfig {
            horizon: n,
            w1: 0.0,
            w2: 0.0,
            w3: 0.0,
            terminal_tail: 0.0,
            ..MpcConfig::default()
        };
        let loads = vec![Watts::new(20_000.0); n];
        let dt = Seconds::new(1.0);
        let z: Vec<f64> = (0..2 * n)
            .map(|i| {
                if i < n {
                    0.06 * i as f64 - 0.18
                } else {
                    0.02 * (i - n) as f64 + 0.05
                }
            })
            .collect();
        let m = 2 * n;

        let mut hees = p.hees.clone();
        let mut tape = Vec::new();
        crate::adjoint::rollout_cost_taped(&p, &mut hees, &loads, dt, &cfg, &z, Some(&mut tape));
        let mut scratch = crate::adjoint::CurvatureScratch::default();
        let mut hess = vec![0.0; m * m];
        crate::adjoint::tape_curvature(&p, &loads, dt, &cfg, &tape, &mut scratch, &mut hess);

        assert!(hess.iter().all(|v| v.is_finite()));
        let scale = hess.iter().fold(0.0_f64, |acc, v| acc.max(v.abs()));
        assert!(scale > 0.0, "stressed rig must activate some penalty");
        for i in 0..m {
            assert!(hess[i * m + i] >= 0.0, "negative diagonal at {i}");
            for j in 0..m {
                assert!(
                    (hess[i * m + j] - hess[j * m + i]).abs() <= 1e-9 * scale,
                    "asymmetry at ({i}, {j})"
                );
            }
        }

        // Directional curvature against second differences of the exact
        // penalty-only cost. The Gauss-Newton matrix drops the
        // `r·∇²r` term, so agree loosely but decisively.
        let f = |zz: &[f64]| rollout_cost(&p, &loads, dt, &cfg, zz);
        let d: Vec<f64> = (0..m).map(|i| ((i % 3) as f64 - 1.0) * 0.5).collect();
        let h = 1e-5;
        let (mut zp, mut zm) = (z.clone(), z.clone());
        for i in 0..m {
            zp[i] += h * d[i];
            zm[i] -= h * d[i];
        }
        let fd_curv = (f(&zp) - 2.0 * f(&z) + f(&zm)) / (h * h);
        let gn_curv: f64 = (0..m)
            .map(|i| d[i] * (0..m).map(|j| hess[i * m + j] * d[j]).sum::<f64>())
            .sum();
        assert!(
            gn_curv > 0.0 && fd_curv > 0.0,
            "expected positive curvature: GN {gn_curv:.3e} FD {fd_curv:.3e}"
        );
        assert!(
            (gn_curv - fd_curv).abs() <= 0.5 * fd_curv.abs(),
            "curvature mismatch: GN {gn_curv:.3e} vs FD {fd_curv:.3e}"
        );
    }

    #[test]
    fn zero_deadline_returns_warm_start_with_deadline_outcome() {
        use otem_solver::VirtualClock;
        let config = SystemConfig::default();
        let mut p = plant(&config);
        p.state = ThermalState::uniform(Kelvin::from_celsius(36.0));
        let loads = vec![Watts::new(40_000.0); 6];
        let mut mpc = Mpc::new(MpcConfig {
            horizon: 6,
            gradient_mode: GradientMode::Adjoint,
            ..MpcConfig::default()
        });
        mpc.set_clock(Arc::new(VirtualClock::new()));
        mpc.set_deadline_ns(Some(0));
        assert_eq!(mpc.deadline_ns(), Some(0));
        let d = mpc.solve(&p, &loads, Seconds::new(1.0));
        assert_eq!(d.outcome, SolverOutcome::DeadlineReached);
        assert_eq!(d.iterations, 0);
        assert!(d.cap_bus.is_finite() && d.cost.is_finite());
        assert!((0.0..=1.0).contains(&d.cool_duty));

        // Lifting the runtime cap restores the (absent) configured
        // deadline and the solver runs to tolerance again.
        mpc.set_deadline_ns(None);
        assert_eq!(mpc.deadline_ns(), None);
        let restored = mpc.solve(&p, &loads, Seconds::new(1.0));
        assert!(restored.iterations > 0);
        assert_ne!(restored.outcome, SolverOutcome::DeadlineReached);
    }

    #[test]
    fn virtual_clock_deadline_solves_are_bit_identical() {
        use otem_solver::VirtualClock;
        let config = SystemConfig::default();
        let mut p = plant(&config);
        p.state = ThermalState::uniform(Kelvin::from_celsius(36.0));
        let loads = vec![Watts::new(40_000.0); 6];
        let run = || {
            let mut mpc = Mpc::new(MpcConfig {
                horizon: 6,
                gradient_mode: GradientMode::Adjoint,
                deadline_ns: Some(3),
                ..MpcConfig::default()
            });
            // One tick per clock read makes "time" a deterministic
            // function of the solver's own polling sequence.
            mpc.set_clock(Arc::new(VirtualClock::with_tick(1)));
            mpc.solve(&p, &loads, Seconds::new(1.0))
        };
        let (a, b) = (run(), run());
        assert_eq!(a.outcome, SolverOutcome::DeadlineReached);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.cap_bus.value().to_bits(), b.cap_bus.value().to_bits());
        assert_eq!(a.cool_duty.to_bits(), b.cool_duty.to_bits());
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
    }

    #[test]
    fn every_solve_emits_one_solve_outcome_event() {
        use otem_telemetry::MemorySink;
        let config = SystemConfig::default();
        let p = plant(&config);
        let loads = vec![Watts::new(20_000.0); 6];
        let mut mpc = Mpc::new(MpcConfig {
            horizon: 6,
            gradient_mode: GradientMode::Adjoint,
            ..MpcConfig::default()
        });
        let sink = MemorySink::new();
        for _ in 0..3 {
            mpc.solve_with(&p, &loads, Seconds::new(1.0), &sink);
        }
        assert_eq!(sink.count_kind("solve_outcome"), 3);
    }

    #[test]
    fn rollout_cost_penalises_shortfall() {
        let config = SystemConfig::default();
        let mut p = plant(&config);
        p.hees.set_state(Ratio::ONE, Ratio::new(0.01)); // bank empty
        let cfg = MpcConfig {
            horizon: 3,
            ..MpcConfig::default()
        };
        let loads = vec![Watts::new(20_000.0); 3];
        // Command the empty bank to serve everything: big shortfall.
        let mut z = vec![0.0; 6];
        z[0] = 0.5;
        z[1] = 0.5;
        z[2] = 0.5;
        let bad = rollout_cost(&p, &loads, Seconds::new(1.0), &cfg, &z);
        let good = rollout_cost(&p, &loads, Seconds::new(1.0), &cfg, &[0.0; 6]);
        assert!(bad > good, "shortfall not penalised: {bad} vs {good}");
    }

    /// Batched line search is an execution strategy, not a different
    /// algorithm: for every gradient mode the decisions of a batched MPC
    /// must be bit-identical to the scalar MPC's over a whole receding-
    /// horizon run, and the batched-rollout counter must prove the
    /// lockstep kernel actually ran.
    #[test]
    fn batched_line_search_solves_bit_identical_to_scalar() {
        let config = SystemConfig::default();
        let mut p = plant(&config);
        p.state = ThermalState::uniform(Kelvin::from_celsius(36.0));
        let dt = Seconds::new(1.0);
        let loads: Vec<Watts> = (0..8)
            .map(|k| Watts::new(8_000.0 + 9_000.0 * (k % 3) as f64))
            .collect();
        for mode in [
            GradientMode::Serial,
            GradientMode::Adjoint,
            GradientMode::GaussNewton,
        ] {
            for width in [2usize, 5] {
                let mut scalar = Mpc::new(MpcConfig {
                    horizon: 8,
                    gradient_mode: mode,
                    ..MpcConfig::default()
                });
                let mut batched = Mpc::new(MpcConfig {
                    horizon: 8,
                    gradient_mode: mode,
                    batch_line_search: width,
                    ..MpcConfig::default()
                });
                for _ in 0..3 {
                    let a = scalar.solve(&p, &loads, dt);
                    let b = batched.solve(&p, &loads, dt);
                    assert_eq!(
                        a.cap_bus.value().to_bits(),
                        b.cap_bus.value().to_bits(),
                        "cap_bus diverged ({mode:?}, width {width})"
                    );
                    assert_eq!(
                        a.cool_duty.to_bits(),
                        b.cool_duty.to_bits(),
                        "cool_duty diverged ({mode:?}, width {width})"
                    );
                    assert_eq!(
                        a.cost.to_bits(),
                        b.cost.to_bits(),
                        "cost diverged ({mode:?}, width {width})"
                    );
                    assert_eq!(a.iterations, b.iterations, "iterations ({mode:?})");
                    assert_eq!(a.outcome, b.outcome, "outcome ({mode:?})");
                }
                assert_eq!(scalar.batched_rollouts(), 0, "scalar MPC must not batch");
                assert!(
                    batched.batched_rollouts() > 0,
                    "batched kernel never ran ({mode:?}, width {width})"
                );
            }
        }
    }
}
