//! Reverse-mode (adjoint) gradient of the MPC rollout objective.
//!
//! Finite differences price a gradient at `4·horizon` rollouts (central
//! differences over `2·horizon` coordinates). The adjoint method gets
//! the same gradient from **one** rollout: a forward pass records, per
//! horizon step, the exact Jacobian of the executed branch of every
//! component model (the *tape*), and a backward sweep chain-rules the
//! stage costs and the terminal TEB penalty through that tape back to
//! the decision vector.
//!
//! # Derivation sketch
//!
//! Write the rollout as a chain of per-step maps. Step `k` consumes the
//! state `s_k = (T_b, T_c, SoC, SoE)` and the decisions
//! `(u_k, d_k) = (z[k], z[n+k])`, produces `s_{k+1}` and a stage cost
//! `ℓ_k`, and the horizon ends with the terminal tail `ℓ_N(T_b)`. The
//! adjoint `λ_k = ∂(ℓ_k + … + ℓ_N)/∂s_k` satisfies the backward
//! recursion
//!
//! ```text
//! λ_N = ∂ℓ_N/∂s_N,      λ_k = (∂s_{k+1}/∂s_k)ᵀ λ_{k+1} + ∂ℓ_k/∂s_k,
//! ∂J/∂(u_k, d_k) = (∂s_{k+1}/∂(u_k, d_k))ᵀ λ_{k+1} + ∂ℓ_k/∂(u_k, d_k),
//! ```
//!
//! where every factor is assembled from the analytic per-branch partials
//! the component crates expose: [`otem_hees::HeesStepJacobian`] for the
//! power split, [`otem_thermal::CrankNicolsonJacobian`] for the thermal
//! update, [`otem_battery::AgingParams::loss_rate_and_partials`] for the
//! wear term, and the cooling-plant slopes for the actuation chain. The
//! objective is piecewise-smooth (`relu²` penalties, per-branch clamps);
//! the sweep differentiates exactly the branch the forward pass
//! executed, so away from the measure-zero kink set the result matches
//! finite differences to roundoff.
//!
//! *On* the kink set — which the solver's all-zero cold start sits
//! squarely on — no subgradient choice is canonical, so the sweep adopts
//! the conventions a central finite difference implies: half the
//! one-sided slope where the duty clamp flattens one leg of the stencil,
//! and the mean of the one-sided slopes across the converter's
//! zero-transfer kink (see [`otem_hees::HybridHees::step_with_jacobian`]).
//! The golden traces were blessed under finite-difference gradients;
//! matching their subgradient conventions keeps both gradient modes on
//! the same closed-loop trajectory.
//!
//! The forward pass here **is** the MPC's rollout: [`rollout_cost_taped`]
//! with `tape = None` is the cost evaluation
//! ([`crate::mpc::rollout_cost`] delegates to it), and with a tape it
//! runs the identical arithmetic through
//! [`otem_hees::HybridHees::step_with_jacobian`] — bit-identical results
//! by construction, so taping cannot perturb the objective.

use crate::mpc::{MpcConfig, MpcPlant};
use otem_hees::{HeesStepJacobian, HybridCommand, HybridHees};
use otem_thermal::ThermalState;
use otem_units::{Kelvin, Seconds, Watts, GAS_CONSTANT};

/// One horizon step's forward-pass record: everything the backward sweep
/// needs to differentiate the branch that actually executed.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TapeStep {
    /// Exact partials of the HEES power split at the executed branch.
    jac: HeesStepJacobian,
    /// Post-step battery temperature (K) — state of the stage aging cost
    /// and the soft-ceiling penalty.
    battery_post: f64,
    /// Battery per-cell C-rate of the step.
    c_rate: f64,
    /// Unserved load (W); its penalty is active iff positive.
    shortfall: f64,
    /// Post-step state of charge.
    soc_post: f64,
    /// Post-step state of energy.
    soe_post: f64,
    /// Commanded battery bus power (W) — state of the C6 penalty.
    battery_bus: f64,
    /// Cooler duty after clamping to `[0, 1]`.
    duty: f64,
    /// Achievable inlet drop `T_o − coldest(T_o)` (K).
    delta: f64,
    /// `∂coldest/∂T_o` at the outlet — branch indicator of the plant.
    dcoldest: f64,
    /// Whether the cooler drew power (`duty·Δ > 0`) — or would at any
    /// positive duty (`duty = 0`, `Δ > 0`): the branch a one-sided duty
    /// perturbation executes, which is what the duty gradient prices.
    cooler_active: bool,
    /// Chain factor of the duty clamp, matched to the central-difference
    /// subgradient convention the golden traces were blessed with: `1`
    /// strictly inside `(0, 1)`, `½` exactly *on* a bound (a central
    /// difference has one leg flattened by the clamp, halving the
    /// one-sided slope), `0` beyond the clamp.
    duty_gain: f64,
}

/// Simulates the horizon under the candidate controls `z` and returns
/// the Eq. 19 cost plus constraint penalties — the single rollout
/// implementation behind both the MPC objective and the adjoint forward
/// pass. With `tape = Some(..)` each step additionally records a
/// [`TapeStep`] (the vector is cleared first and its capacity reused);
/// the forward arithmetic is identical either way.
///
/// `hees` must already be in the plant's start state
/// (`hees == plant.hees`); it is left in the end-of-horizon state.
/// Allocation-free once the tape has reached horizon capacity.
pub(crate) fn rollout_cost_taped(
    plant: &MpcPlant,
    hees: &mut HybridHees,
    loads: &[Watts],
    dt: Seconds,
    config: &MpcConfig,
    z: &[f64],
    mut tape: Option<&mut Vec<TapeStep>>,
) -> f64 {
    let n = config.horizon;
    debug_assert_eq!(z.len(), 2 * n);
    let mut state = plant.state;
    let mut cost = 0.0;
    if let Some(t) = tape.as_deref_mut() {
        t.clear();
    }

    for k in 0..n {
        let load = loads.get(k).copied().unwrap_or(Watts::ZERO);
        state = rollout_stage(
            plant,
            hees,
            state,
            load,
            z[k],
            z[n + k],
            dt,
            config,
            &mut cost,
            tape.as_deref_mut(),
        );
    }

    rollout_terminal(plant, loads, n, state, dt, config, &mut cost);
    cost
}

/// One horizon step of the rollout: actuation chain, HEES power split,
/// thermal update, and the Eq. 19 stage cost — the *single* per-step
/// body shared by the scalar rollout above and the batched SoA kernel
/// ([`crate::batch`]), so the two are bit-identical by construction.
///
/// Accumulates directly into the caller's `cost` (preserving the scalar
/// path's float summation order) and returns the post-step thermal
/// state. `z_cap`/`z_duty` are the step's raw decision entries
/// (`z[k]`, `z[n + k]`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn rollout_stage(
    plant: &MpcPlant,
    hees: &mut HybridHees,
    mut state: ThermalState,
    load: Watts,
    z_cap: f64,
    z_duty: f64,
    dt: Seconds,
    config: &MpcConfig,
    cost: &mut f64,
    tape: Option<&mut Vec<TapeStep>>,
) -> ThermalState {
    let dtv = dt.value();
    let cap_bus = Watts::new(z_cap * plant.cap_power_max.value());
    let duty = z_duty.clamp(0.0, 1.0);

    // Cooling actuation: duty scales the inlet drop toward the
    // coldest achievable; price it with Eq. 16.
    let outlet = state.coolant;
    let coldest = plant.plant.coldest_inlet(outlet);
    let inlet = Kelvin::new(outlet.value() - duty * (outlet.value() - coldest.value()));
    let action = plant.plant.actuate(outlet, inlet);
    // Smooth relaxation of the pump's on/off behaviour: the rollout
    // prices the pump proportionally to the duty so the objective
    // stays differentiable at duty = 0 (the applied move re-imposes
    // the real on/off gate).
    let cooling_electric = action.cooler_power + action.pump_power * duty;

    // Bus power balance pins the battery's share.
    let battery_bus = load + cooling_electric - cap_bus;
    let command = HybridCommand {
        battery_bus,
        cap_bus,
    };
    let (step, jac) = if tape.is_some() {
        hees.step_with_jacobian(command, state.battery, dt)
    } else {
        (
            hees.step(command, state.battery, dt),
            HeesStepJacobian::default(),
        )
    };

    state = plant
        .thermal
        .step_crank_nicolson(state, step.battery_heat, action.inlet, dt);

    // --- Eq. 19 terms ---------------------------------------------
    *cost += config.w1 * cooling_electric.value() * dtv;
    let loss = plant.aging.loss_rate(state.battery, step.battery_c_rate) * dtv;
    *cost += config.w2 * loss;
    *cost += config.w3 * step.hees_power().value() * dtv;

    // --- Constraint penalties ---------------------------------------
    let over_t = (state.battery.value() - config.temp_soft.value()).max(0.0);
    *cost += config.temp_penalty * over_t * over_t;

    let soc_short = (plant.soc_min.value() - hees.soc().value()).max(0.0);
    let soe_short = (plant.soe_min.value() - hees.soe().value()).max(0.0);
    *cost += config.state_penalty * (soc_short * soc_short + soe_short * soe_short);

    *cost += config.shortfall_penalty * step.shortfall.value().powi(2);

    let over_p = (battery_bus.value().abs() - plant.battery_power_max.value()).max(0.0);
    *cost += config.power_penalty * over_p * over_p;

    if let Some(t) = tape {
        t.push(TapeStep {
            jac,
            battery_post: state.battery.value(),
            c_rate: step.battery_c_rate,
            shortfall: step.shortfall.value(),
            soc_post: hees.soc().value(),
            soe_post: hees.soe().value(),
            battery_bus: battery_bus.value(),
            duty,
            delta: outlet.value() - coldest.value(),
            dcoldest: plant.plant.coldest_inlet_slope(outlet),
            cooler_active: action.cooler_power.value() > 0.0 || (duty == 0.0 && outlet > coldest),
            duty_gain: {
                let raw = z_duty;
                if raw == 0.0 || raw == 1.0 {
                    0.5
                } else if (0.0..=1.0).contains(&raw) {
                    1.0
                } else {
                    0.0
                }
            },
        });
    }
    state
}

/// Terminal cost: the horizon is far shorter than the pack's thermal
/// time constant, so value the end-of-horizon temperature as if the
/// route's stress persisted for `terminal_tail` seconds. The nominal
/// C-rate is derived from the *load forecast alone* — deliberately
/// excluding the cooling-induced battery current, which would
/// otherwise make the tail punish the very cooling that lowers the
/// terminal temperature. Like [`rollout_stage`], accumulates directly
/// into the caller's `cost` so scalar and batched paths sum in the
/// same order.
pub(crate) fn rollout_terminal(
    plant: &MpcPlant,
    loads: &[Watts],
    n: usize,
    state: ThermalState,
    dt: Seconds,
    config: &MpcConfig,
    cost: &mut f64,
) {
    if config.terminal_tail > 0.0 {
        let c_load = terminal_c_rate(plant, loads, n);
        *cost += config.w2 * plant.aging.loss_rate(state.battery, c_load) * config.terminal_tail;
        let over_t = (state.battery.value() - config.temp_soft.value()).max(0.0);
        *cost +=
            config.temp_penalty * over_t * over_t * (config.terminal_tail / dt.value().max(1e-9));
    }
}

/// The terminal tail's nominal per-cell C-rate — a constant of the load
/// forecast and the *unrolled* plant, shared between the forward cost
/// and the backward sweep.
fn terminal_c_rate(plant: &MpcPlant, loads: &[Watts], n: usize) -> f64 {
    let mean_load: f64 = loads.iter().take(n).map(|p| p.value().abs()).sum::<f64>() / n as f64;
    let pack = plant.hees.battery();
    let pack_voltage = pack.open_circuit_voltage().value().max(1.0);
    let cell_current = mean_load / pack_voltage / pack.config().parallel as f64;
    (cell_current / pack.cell().effective_capacity().value()).max(0.2)
}

/// Backward sweep over a recorded tape: chain-rules every stage cost and
/// the terminal tail back through the thermal, HEES, and cooling-plant
/// Jacobians, writing `∂J/∂z` into `grad` (layout
/// `[cap_share_0..n-1, cool_duty_0..n-1]`). One pass, no rollouts.
pub(crate) fn adjoint_sweep(
    plant: &MpcPlant,
    loads: &[Watts],
    dt: Seconds,
    config: &MpcConfig,
    tape: &[TapeStep],
    grad: &mut [f64],
) {
    let n = tape.len();
    debug_assert_eq!(n, config.horizon);
    debug_assert_eq!(grad.len(), 2 * n);
    if n == 0 {
        return;
    }
    let dtv = dt.value();
    let jt = plant.thermal.crank_nicolson_jacobian(dt);
    let pp = plant.plant.params();
    let flow_over_eff = pp.flow_capacity.value() / pp.efficiency.value();
    let pump = pp.pump_power.value();
    let cap_max = plant.cap_power_max.value();

    // Adjoints of the *post-step* state (T_b, T_c, SoC, SoE), seeded by
    // the terminal tail (a function of the final battery temperature
    // alone — its nominal C-rate is a constant of the forecast).
    let (mut l_tb, mut l_tc, mut l_s, mut l_e) = (0.0, 0.0, 0.0, 0.0);
    if config.terminal_tail > 0.0 {
        let c_load = terminal_c_rate(plant, loads, n);
        let tb_n = tape[n - 1].battery_post;
        let (_, d_temp, _) = plant
            .aging
            .loss_rate_and_partials(Kelvin::new(tb_n), c_load);
        l_tb += config.w2 * d_temp * config.terminal_tail;
        let over_t = (tb_n - config.temp_soft.value()).max(0.0);
        l_tb += 2.0 * config.temp_penalty * over_t * (config.terminal_tail / dtv.max(1e-9));
    }

    for k in (0..n).rev() {
        let t = &tape[k];
        let j = &t.jac;

        // Total adjoints of the post-step state: the incoming λ plus the
        // stage cost's own dependence on it (aging and soft penalties).
        let (_, d_loss_t, d_loss_c) = plant
            .aging
            .loss_rate_and_partials(Kelvin::new(t.battery_post), t.c_rate);
        let over_t = (t.battery_post - config.temp_soft.value()).max(0.0);
        let g_tb = l_tb + config.w2 * dtv * d_loss_t + 2.0 * config.temp_penalty * over_t;
        let g_tc = l_tc;
        let soc_short = (plant.soc_min.value() - t.soc_post).max(0.0);
        let soe_short = (plant.soe_min.value() - t.soe_post).max(0.0);
        let g_s = l_s - 2.0 * config.state_penalty * soc_short;
        let g_e = l_e - 2.0 * config.state_penalty * soe_short;

        // Adjoints of the HEES step outputs. The shortfall penalty sees
        // `sf = relu(net − delivered)`; the thermal Jacobian routes the
        // battery heat and the achieved inlet into both temperatures.
        let l_delivered = -2.0 * config.shortfall_penalty * t.shortfall;
        let l_net = 2.0 * config.shortfall_penalty * t.shortfall;
        let l_internal = config.w3 * dtv;
        let l_crate = config.w2 * dtv * d_loss_c;
        let l_heat = g_tb * jt.d_battery_heat[0] + g_tc * jt.d_battery_heat[1];
        let g_inlet = g_tb * jt.d_inlet[0] + g_tc * jt.d_inlet[1];

        // Pull the output adjoints through the HEES Jacobian onto its
        // five input columns [P_bat, P_cap, T_pre, SoC_pre, SoE_pre].
        let mut a = [0.0; 5];
        for (col, acc) in a.iter_mut().enumerate() {
            *acc = l_delivered * j.delivered[col]
                + l_internal * (j.battery_internal[col] + j.cap_internal[col])
                + l_heat * j.battery_heat[col]
                + l_crate * j.battery_c_rate[col]
                + g_s * j.soc_next[col]
                + g_e * j.soe_next[col];
        }
        let over_p = (t.battery_bus.abs() - plant.battery_power_max.value()).max(0.0);
        let a_pb = a[HeesStepJacobian::IN_BATTERY_BUS]
            + l_net
            + 2.0 * config.power_penalty * over_p * t.battery_bus.signum();
        let a_pc = a[HeesStepJacobian::IN_CAP_BUS] + l_net;

        // Decision gradients. The bus balance `P_bat = load + CE − P_cap`
        // makes the cap share push the two legs in opposite directions;
        // the duty reaches the cost through the cooling-electric power
        // (w1 term and the bus balance) and the achieved inlet.
        grad[k] = cap_max * (a_pc - a_pb);

        let a_ce = config.w1 * dtv + a_pb;
        let active = if t.cooler_active { 1.0 } else { 0.0 };
        let d_ce_d_duty = active * flow_over_eff * t.delta + pump;
        let d_inlet_d_duty = -t.delta;
        grad[n + k] = t.duty_gain * (a_ce * d_ce_d_duty + g_inlet * d_inlet_d_duty);

        // Chain to the pre-step state. The coolant temperature feeds the
        // thermal map directly *and* the actuation chain (outlet →
        // coldest → Δ → inlet, cooling power); the HEES step saw the
        // pre-step battery temperature and states of charge/energy.
        let d_inlet_d_tc = 1.0 - t.duty * (1.0 - t.dcoldest);
        let d_ce_d_tc = active * flow_over_eff * t.duty * (1.0 - t.dcoldest);
        l_tb =
            g_tb * jt.d_battery[0] + g_tc * jt.d_coolant[0] + a[HeesStepJacobian::IN_TEMPERATURE];
        l_tc = g_tb * jt.d_battery[1]
            + g_tc * jt.d_coolant[1]
            + a_ce * d_ce_d_tc
            + g_inlet * d_inlet_d_tc;
        l_s = a[HeesStepJacobian::IN_SOC];
        l_e = a[HeesStepJacobian::IN_SOE];
    }
}

/// Scratch buffers for [`tape_curvature`] — the sensitivity matrix and
/// residual rows, reused across solves so the forward sweep is
/// allocation-free at steady state.
#[derive(Debug, Default, Clone)]
pub(crate) struct CurvatureScratch {
    /// `∂T_b/∂z` of the current step's post-state, one entry per column.
    s_tb: Vec<f64>,
    /// `∂T_c/∂z`.
    s_tc: Vec<f64>,
    /// `∂SoC/∂z`.
    s_soc: Vec<f64>,
    /// `∂SoE/∂z`.
    s_soe: Vec<f64>,
    /// Gradient row of the shortfall residual `net − delivered`.
    row_sf: Vec<f64>,
    /// Gradient row of the bus-power residual `|P_bat| − P_max`.
    row_p: Vec<f64>,
    /// Gradient row of the stage aging loss `ℓ(T_b, c)`.
    row_aging: Vec<f64>,
}

impl CurvatureScratch {
    fn reset(&mut self, m: usize) {
        for v in [
            &mut self.s_tb,
            &mut self.s_tc,
            &mut self.s_soc,
            &mut self.s_soe,
            &mut self.row_sf,
            &mut self.row_p,
            &mut self.row_aging,
        ] {
            v.clear();
            v.resize(m, 0.0);
        }
    }
}

/// Generalized Gauss-Newton curvature of the rollout objective from the
/// *same* tape the gradient sweep consumes — no new model derivatives.
///
/// Every constraint penalty in the objective is a genuine weighted
/// square `p·relu(r)²`, so its Gauss-Newton block is the exact
/// positive-semidefinite outer product `2p·∇r∇rᵀ` of the residual
/// gradient at the executed branch. The residual gradients come from a
/// *forward* sensitivity recursion over the tape: the per-step HEES and
/// Crank–Nicolson Jacobians push `∂(T_b, T_c, SoC, SoE)/∂z` from step
/// to step using exactly the chain factors [`adjoint_sweep`] applies
/// backwards, so gradient and curvature describe the same linearised
/// rollout.
///
/// The `w1`/`w3` economic terms are outer-linear in the model outputs
/// and contribute no Gauss-Newton curvature. The `w2` aging loss is the
/// separable Arrhenius/power-law product `ℓ(T, c) = g(T)·h(c)`, whose
/// *exact* outer Hessian over `(T, c)` follows from the first partials
/// and the public coefficients alone:
///
/// ```text
/// ∂²ℓ/∂T²  = (ℓ_T²/ℓ)·(1 − 2RT/l₂)     ∂²ℓ/∂T∂c = ℓ_T·ℓ_c/ℓ
/// ∂²ℓ/∂c²  = (ℓ_c²/ℓ)·(l₃−1)/l₃
/// ```
///
/// The product is not jointly convex (the 2×2 is indefinite), so the
/// negative eigenvalue is clipped to zero and the dominant eigenpair
/// becomes a rank-one update in decision space — the nearest PSD
/// curvature with the correct relative scale between the temperature
/// and C-rate directions. Where neither a penalty nor the aging term
/// carries curvature the matrix is zero and the Gauss-Newton solver's
/// damping floor degrades it to a spectral gradient step.
///
/// Writes the row-major `2n × 2n` matrix into `hess` (zeroed first).
/// `O(n²)` propagation plus rank-one updates for active residuals only.
pub(crate) fn tape_curvature(
    plant: &MpcPlant,
    loads: &[Watts],
    dt: Seconds,
    config: &MpcConfig,
    tape: &[TapeStep],
    scratch: &mut CurvatureScratch,
    hess: &mut [f64],
) {
    let n = tape.len();
    let m = 2 * n;
    debug_assert_eq!(hess.len(), m * m);
    hess.fill(0.0);
    if n == 0 {
        return;
    }
    let dtv = dt.value();
    let jt = plant.thermal.crank_nicolson_jacobian(dt);
    let pp = plant.plant.params();
    let flow_over_eff = pp.flow_capacity.value() / pp.efficiency.value();
    let pump = pp.pump_power.value();
    let cap_max = plant.cap_power_max.value();
    scratch.reset(m);

    for (k, t) in tape.iter().enumerate().take(n) {
        let j = &t.jac;
        let active = if t.cooler_active { 1.0 } else { 0.0 };
        let d_ce_d_duty = active * flow_over_eff * t.delta + pump;
        let d_ce_d_tc = active * flow_over_eff * t.duty * (1.0 - t.dcoldest);
        let d_inlet_d_duty = -t.delta;
        let d_inlet_d_tc = 1.0 - t.duty * (1.0 - t.dcoldest);
        let p_sign = t.battery_bus.signum();
        let aging = aging_eigenpair(plant, config, t.battery_post, t.c_rate);

        for col in 0..m {
            let d_cap = if col == k { cap_max } else { 0.0 };
            let d_duty = if col == n + k { t.duty_gain } else { 0.0 };
            let s_tb = scratch.s_tb[col];
            let s_tc = scratch.s_tc[col];

            // The actuation chain, mirroring the backward sweep's
            // factors in forward direction.
            let d_ce = d_ce_d_duty * d_duty + d_ce_d_tc * s_tc;
            let d_inlet = d_inlet_d_duty * d_duty + d_inlet_d_tc * s_tc;
            let d_pb = d_ce - d_cap;

            let mut v = [0.0; 5];
            v[HeesStepJacobian::IN_BATTERY_BUS] = d_pb;
            v[HeesStepJacobian::IN_CAP_BUS] = d_cap;
            v[HeesStepJacobian::IN_TEMPERATURE] = s_tb;
            v[HeesStepJacobian::IN_SOC] = scratch.s_soc[col];
            v[HeesStepJacobian::IN_SOE] = scratch.s_soe[col];
            let dot = |row: &[f64; 5]| row.iter().zip(&v).map(|(a, b)| a * b).sum::<f64>();
            let d_heat = dot(&j.battery_heat);
            let d_delivered = dot(&j.delivered);

            scratch.s_soc[col] = dot(&j.soc_next);
            scratch.s_soe[col] = dot(&j.soe_next);
            scratch.s_tb[col] = jt.d_battery[0] * s_tb
                + jt.d_battery[1] * s_tc
                + jt.d_battery_heat[0] * d_heat
                + jt.d_inlet[0] * d_inlet;
            scratch.s_tc[col] = jt.d_coolant[0] * s_tb
                + jt.d_coolant[1] * s_tc
                + jt.d_battery_heat[1] * d_heat
                + jt.d_inlet[1] * d_inlet;
            scratch.row_sf[col] = d_ce - d_delivered;
            scratch.row_p[col] = p_sign * d_pb;
            if let Some((e_t, e_c, _)) = aging {
                scratch.row_aging[col] = e_t * scratch.s_tb[col] + e_c * dot(&j.battery_c_rate);
            }
        }

        if let Some((_, _, lam)) = aging {
            rank_one(hess, &scratch.row_aging, config.w2 * dtv * lam);
        }

        // Rank-one Gauss-Newton blocks for the penalties whose branch is
        // active at this step (matching the relu convention of the cost
        // and the backward sweep: strictly positive residual).
        let over_t = (t.battery_post - config.temp_soft.value()).max(0.0);
        if over_t > 0.0 {
            let mut w = 2.0 * config.temp_penalty;
            if k == n - 1 && config.terminal_tail > 0.0 {
                // The terminal soft-ceiling penalty shares the stage
                // residual at the last step; its weight simply adds.
                w += 2.0 * config.temp_penalty * (config.terminal_tail / dtv.max(1e-9));
            }
            rank_one(hess, &scratch.s_tb, w);
        }
        let soc_short = (plant.soc_min.value() - t.soc_post).max(0.0);
        if soc_short > 0.0 {
            rank_one(hess, &scratch.s_soc, 2.0 * config.state_penalty);
        }
        let soe_short = (plant.soe_min.value() - t.soe_post).max(0.0);
        if soe_short > 0.0 {
            rank_one(hess, &scratch.s_soe, 2.0 * config.state_penalty);
        }
        if t.shortfall > 0.0 {
            rank_one(hess, &scratch.row_sf, 2.0 * config.shortfall_penalty);
        }
        let over_p = (t.battery_bus.abs() - plant.battery_power_max.value()).max(0.0);
        if over_p > 0.0 {
            rank_one(hess, &scratch.row_p, 2.0 * config.power_penalty);
        }
    }

    // Terminal aging tail: a function of the final battery temperature
    // alone (its nominal C-rate is a constant of the forecast), so its
    // exact temperature curvature rides on the final sensitivity row.
    if config.w2 > 0.0 && config.terminal_tail > 0.0 {
        let c_load = terminal_c_rate(plant, loads, n);
        let tb_n = tape[n - 1].battery_post;
        let (loss, d_temp, _) = plant
            .aging
            .loss_rate_and_partials(Kelvin::new(tb_n), c_load);
        if loss > 1e-30 {
            let t_val = tb_n.max(200.0);
            let a = (1.0 - 2.0 * GAS_CONSTANT * t_val / plant.aging.l2).max(0.0);
            let w = config.w2 * config.terminal_tail * a * d_temp * d_temp / loss;
            rank_one(hess, &scratch.s_tb, w);
        }
    }
}

/// The PSD-projected outer Hessian of the stage aging loss over
/// `(T_b, c)`: clips the (always-present, the product is not jointly
/// convex) negative eigenvalue and returns the dominant eigenpair as
/// `(e_T, e_c, λ₊)`, or `None` when the term carries no curvature
/// (`w₂ = 0`, zero loss, or a degenerate eigenvector).
fn aging_eigenpair(
    plant: &MpcPlant,
    config: &MpcConfig,
    battery_post: f64,
    c_rate: f64,
) -> Option<(f64, f64, f64)> {
    if config.w2 <= 0.0 {
        return None;
    }
    let (loss, d_t, d_c) = plant
        .aging
        .loss_rate_and_partials(Kelvin::new(battery_post), c_rate);
    if loss <= 1e-30 {
        return None;
    }
    let t_val = battery_post.max(200.0);
    let p = (d_t * d_t / loss) * (1.0 - 2.0 * GAS_CONSTANT * t_val / plant.aging.l2).max(0.0);
    let q = d_t * d_c / loss;
    let r = (d_c * d_c / loss) * (plant.aging.l3 - 1.0).max(0.0) / plant.aging.l3;
    let disc = ((p - r) * (p - r) + 4.0 * q * q).sqrt();
    let lam = 0.5 * (p + r + disc);
    if lam.is_nan() || lam <= 0.0 {
        return None;
    }
    // The better-conditioned of the two eigenvector formulas.
    let (e_t, e_c) = if (lam - r).abs() >= (lam - p).abs() {
        (lam - r, q)
    } else {
        (q, lam - p)
    };
    let norm = e_t.hypot(e_c);
    if norm.is_nan() || norm <= 0.0 {
        return None;
    }
    Some((e_t / norm, e_c / norm, lam))
}

/// `hess += w · row ⊗ row`, skipping zero entries (residual rows are
/// sparse early in the horizon: only already-seen decisions have
/// non-zero sensitivity).
fn rank_one(hess: &mut [f64], row: &[f64], w: f64) {
    let m = row.len();
    for i in 0..m {
        let wi = w * row[i];
        if wi == 0.0 {
            continue;
        }
        for col in 0..m {
            hess[i * m + col] += wi * row[col];
        }
    }
}
