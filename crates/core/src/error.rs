//! Top-level error type aggregating the component crates'.

use std::error::Error;
use std::fmt;

/// Errors surfaced by controller construction and simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OtemError {
    /// A component model rejected its parameters.
    Battery(otem_battery::BatteryError),
    /// The ultracapacitor model rejected its parameters.
    Ultracap(otem_ultracap::UltracapError),
    /// A converter rejected its parameters.
    Converter(otem_converter::ConverterError),
    /// The thermal plant rejected its parameters.
    Thermal(otem_thermal::ThermalError),
    /// The HEES layer reported an error.
    Hees(otem_hees::HeesError),
    /// The drive-cycle substrate reported an error.
    Cycle(otem_drivecycle::CycleError),
    /// A configuration field was out of range.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// The optimiser produced an unusable result (rejected by the
    /// supervisor's decision validation).
    Solver {
        /// What the validator objected to (stable snake_case token,
        /// mirrored into [`otem_telemetry::Event::DecisionRejected`]).
        reason: &'static str,
    },
    /// A quantity that must be finite was NaN or infinite.
    NonFinite {
        /// Which quantity went non-finite.
        quantity: &'static str,
    },
}

impl fmt::Display for OtemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Battery(e) => write!(f, "battery: {e}"),
            Self::Ultracap(e) => write!(f, "ultracapacitor: {e}"),
            Self::Converter(e) => write!(f, "converter: {e}"),
            Self::Thermal(e) => write!(f, "thermal plant: {e}"),
            Self::Hees(e) => write!(f, "HEES: {e}"),
            Self::Cycle(e) => write!(f, "drive cycle: {e}"),
            Self::InvalidConfig { field, constraint } => {
                write!(
                    f,
                    "invalid configuration: {field} must satisfy {constraint}"
                )
            }
            Self::Solver { reason } => write!(f, "solver: {reason}"),
            Self::NonFinite { quantity } => write!(f, "non-finite {quantity}"),
        }
    }
}

impl Error for OtemError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Battery(e) => Some(e),
            Self::Ultracap(e) => Some(e),
            Self::Converter(e) => Some(e),
            Self::Thermal(e) => Some(e),
            Self::Hees(e) => Some(e),
            Self::Cycle(e) => Some(e),
            Self::InvalidConfig { .. } | Self::Solver { .. } | Self::NonFinite { .. } => None,
        }
    }
}

impl From<otem_battery::BatteryError> for OtemError {
    fn from(e: otem_battery::BatteryError) -> Self {
        Self::Battery(e)
    }
}
impl From<otem_ultracap::UltracapError> for OtemError {
    fn from(e: otem_ultracap::UltracapError) -> Self {
        Self::Ultracap(e)
    }
}
impl From<otem_converter::ConverterError> for OtemError {
    fn from(e: otem_converter::ConverterError) -> Self {
        Self::Converter(e)
    }
}
impl From<otem_thermal::ThermalError> for OtemError {
    fn from(e: otem_thermal::ThermalError) -> Self {
        Self::Thermal(e)
    }
}
impl From<otem_hees::HeesError> for OtemError {
    fn from(e: otem_hees::HeesError) -> Self {
        Self::Hees(e)
    }
}
impl From<otem_drivecycle::CycleError> for OtemError {
    fn from(e: otem_drivecycle::CycleError) -> Self {
        Self::Cycle(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OtemError>();
    }

    #[test]
    fn solver_and_non_finite_display_their_context() {
        let s = OtemError::Solver {
            reason: "non_finite_cost",
        };
        assert_eq!(s.to_string(), "solver: non_finite_cost");
        assert!(s.source().is_none());

        let n = OtemError::NonFinite {
            quantity: "battery temperature",
        };
        assert_eq!(n.to_string(), "non-finite battery temperature");
        assert!(n.source().is_none());
    }

    #[test]
    fn wrapping_preserves_source() {
        let e = OtemError::from(otem_thermal::ThermalError::InvalidParameter {
            name: "x",
            value: 0.0,
            constraint: "> 0",
        });
        assert!(e.source().is_some());
    }
}
