//! Graceful degradation for the OTEM MPC: a supervisor that validates
//! every optimiser decision and every post-step plant state, swaps in a
//! rule-based fallback when the optimiser misbehaves, and re-arms the
//! MPC once it proves healthy again.
//!
//! # Why
//!
//! The MPC is the paper's contribution, but it is also the system's
//! least robust component: a corrupted forecast, a starved solver or a
//! drifted sensor can make it emit NaN costs, saturated nonsense
//! commands, or plans computed against a plant that no longer exists.
//! An EV cannot stop driving because its optimiser did — the paper's
//! own baselines show that a dumb thermostatic rule keeps the pack
//! alive, just sub-optimally. The supervisor encodes exactly that
//! degradation ladder:
//!
//! 1. **Validate** each [`MpcDecision`] (finite, in actuator bounds,
//!    solver outcome usable) before it touches the plant, and each
//!    post-step [`SystemState`] (finite, physical temperatures, SoC/SoE
//!    in `[0, 1]`) after it did.
//! 2. **Reject & fall back**: a failed check disengages the MPC and
//!    routes the same plant through a Dual-style thermostatic rule
//!    (33 °C / 31 °C cooling hysteresis, slow bank recharge) via
//!    [`Otem::apply_with`] — physically identical steps, dumber numbers.
//! 3. **Re-arm with backoff**: after a cooldown the supervisor probes
//!    the MPC each period without applying its output; `rearm_after`
//!    consecutive healthy probes re-engage it. Every new rejection
//!    doubles the cooldown up to `max_backoff`.
//!
//! On a healthy trajectory the supervisor is exact: it calls
//! [`Otem::plan_with`] then [`Otem::apply_with`], which is definitionally
//! [`Otem::step_with`], so supervised and unsupervised nominal traces are
//! bit-identical (pinned by the golden-trace suite).
//!
//! Telemetry: [`Event::DecisionRejected`], [`Event::FallbackEngaged`]
//! and [`Event::MpcRearmed`] narrate the ladder.

use crate::controller::{Controller, PlantFault, StepRecord, SystemState};
use crate::error::OtemError;
use crate::mpc::MpcDecision;
use crate::policy::Otem;
use otem_solver::SolverOutcome;
use otem_telemetry::{span, Event, NullSink, Sink};
use otem_units::{Kelvin, Ratio, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Tuning of the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SupervisorConfig {
    /// Hard ceiling on a *plausible* battery temperature: anything above
    /// is a broken model or runaway plant, not weather.
    pub temp_hard_max: Kelvin,
    /// Hard floor on a plausible battery temperature.
    pub temp_hard_min: Kelvin,
    /// Consecutive healthy MPC probes required to re-arm after a
    /// fallback episode.
    pub rearm_after: u64,
    /// Cooldown (steps of pure fallback, no probing) after the first
    /// rejection; doubles per episode.
    pub initial_backoff: u64,
    /// Ceiling on the cooldown growth.
    pub max_backoff: u64,
    /// Fallback thermostat: engage full cooling at/above this.
    pub fallback_on: Kelvin,
    /// Fallback thermostat: release cooling at/below this.
    pub fallback_off: Kelvin,
    /// Fallback bank-recharge power while below the target.
    pub recharge_power: Watts,
    /// Fallback bank level above which recharging stops.
    pub recharge_target: Ratio,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            temp_hard_max: Kelvin::from_celsius(60.0),
            temp_hard_min: Kelvin::from_celsius(-30.0),
            rearm_after: 5,
            initial_backoff: 4,
            max_backoff: 64,
            fallback_on: Kelvin::from_celsius(33.0),
            fallback_off: Kelvin::from_celsius(31.0),
            recharge_power: Watts::new(6_000.0),
            recharge_target: Ratio::from_percent(95.0),
        }
    }
}

/// Slack on the `[0, 1]` SoC/SoE checks and the unit-interval duty
/// check: the integrators legitimately overshoot by rounding error.
const UNIT_EPS: f64 = 1e-6;

/// Checks an optimiser decision before it is allowed to actuate the
/// plant.
///
/// # Errors
///
/// [`OtemError::NonFinite`] when a commanded quantity is NaN/infinite;
/// [`OtemError::Solver`] when a command leaves its actuator bounds or
/// the solver outcome is structurally unusable (`non_finite` outcome, or
/// a zero-iteration budget exhaustion / deadline miss — the starved- or
/// throttled-solver signatures, where the "solution" is just the warm
/// start echoed back). A deadline reached *after* at least one
/// iteration is nominal anytime behaviour: the decision is the best
/// feasible iterate so far and passes.
pub fn validate_decision(decision: &MpcDecision, cap_power_max: Watts) -> Result<(), OtemError> {
    if !decision.cap_bus.is_finite() {
        return Err(OtemError::NonFinite {
            quantity: "cap_bus",
        });
    }
    if !decision.cool_duty.is_finite() {
        return Err(OtemError::NonFinite {
            quantity: "cool_duty",
        });
    }
    if !decision.cost.is_finite() {
        return Err(OtemError::NonFinite { quantity: "cost" });
    }
    if decision.cap_bus.value().abs() > cap_power_max.value() * (1.0 + UNIT_EPS) {
        return Err(OtemError::Solver {
            reason: "cap_bus_out_of_bounds",
        });
    }
    if !(-UNIT_EPS..=1.0 + UNIT_EPS).contains(&decision.cool_duty) {
        return Err(OtemError::Solver {
            reason: "cool_duty_out_of_bounds",
        });
    }
    if decision.outcome == SolverOutcome::NonFinite {
        return Err(OtemError::Solver {
            reason: "solver_non_finite",
        });
    }
    if decision.iterations == 0 && decision.outcome == SolverOutcome::BudgetExhausted {
        return Err(OtemError::Solver {
            reason: "solver_starved",
        });
    }
    if decision.iterations == 0 && decision.outcome == SolverOutcome::DeadlineReached {
        return Err(OtemError::Solver {
            reason: "solver_deadline",
        });
    }
    Ok(())
}

/// Checks the plant state after a step: everything finite, temperatures
/// physically plausible, SoC/SoE inside the unit interval.
///
/// # Errors
///
/// [`OtemError::NonFinite`] / [`OtemError::Solver`] naming the failed
/// quantity or bound.
pub fn validate_state(state: &SystemState, config: &SupervisorConfig) -> Result<(), OtemError> {
    if !state.battery_temp.value().is_finite() {
        return Err(OtemError::NonFinite {
            quantity: "battery_temp",
        });
    }
    if !state.coolant_temp.value().is_finite() {
        return Err(OtemError::NonFinite {
            quantity: "coolant_temp",
        });
    }
    if !state.soc.value().is_finite() {
        return Err(OtemError::NonFinite { quantity: "soc" });
    }
    if !state.soe.value().is_finite() {
        return Err(OtemError::NonFinite { quantity: "soe" });
    }
    if state.battery_temp > config.temp_hard_max || state.battery_temp < config.temp_hard_min {
        return Err(OtemError::Solver {
            reason: "battery_temp_out_of_bounds",
        });
    }
    let unit = -UNIT_EPS..=1.0 + UNIT_EPS;
    if !unit.contains(&state.soc.value()) {
        return Err(OtemError::Solver {
            reason: "soc_out_of_bounds",
        });
    }
    if !unit.contains(&state.soe.value()) {
        return Err(OtemError::Solver {
            reason: "soe_out_of_bounds",
        });
    }
    Ok(())
}

/// Stable snake_case token for a validation failure, mirrored into
/// [`Event::DecisionRejected`].
fn reject_reason(error: &OtemError) -> &'static str {
    match error {
        OtemError::Solver { reason } => reason,
        OtemError::NonFinite { quantity } => quantity,
        _ => "invalid",
    }
}

/// [`Otem`] wrapped in the degradation ladder described at the module
/// level. Implements [`Controller`], so it drops into the simulator and
/// the experiment tables anywhere plain OTEM does.
#[derive(Debug, Clone)]
pub struct SupervisedOtem {
    inner: Otem,
    config: SupervisorConfig,
    step: u64,
    armed: bool,
    /// Remaining pure-fallback steps before probing resumes.
    cooldown: u64,
    /// Cooldown length the *next* episode will start with.
    backoff: u64,
    healthy_streak: u64,
    fallback_cooling: bool,
    rejected: u64,
    fallbacks: u64,
    rearms: u64,
}

impl SupervisedOtem {
    /// Wraps an OTEM controller with the given ladder tuning.
    pub fn new(inner: Otem, config: SupervisorConfig) -> Self {
        Self {
            inner,
            config,
            step: 0,
            armed: true,
            cooldown: 0,
            backoff: config.initial_backoff.max(1),
            healthy_streak: 0,
            fallback_cooling: false,
            rejected: 0,
            fallbacks: 0,
            rearms: 0,
        }
    }

    /// Wraps with the default ladder tuning.
    pub fn with_defaults(inner: Otem) -> Self {
        Self::new(inner, SupervisorConfig::default())
    }

    /// Whether the MPC currently drives the plant (vs the fallback).
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Decisions rejected by validation so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Fallback episodes engaged so far.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// Times the MPC was re-armed after proving healthy.
    pub fn rearms(&self) -> u64 {
        self.rearms
    }

    /// The ladder tuning in use.
    pub fn supervisor_config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// The wrapped controller.
    pub fn inner(&self) -> &Otem {
        &self.inner
    }

    fn engage_fallback(&mut self, step: u64, sink: &dyn Sink) {
        self.fallbacks += 1;
        self.armed = false;
        self.healthy_streak = 0;
        self.cooldown = self.backoff;
        sink.record(Event::FallbackEngaged {
            step,
            backoff_steps: self.backoff,
        });
        self.backoff = (self.backoff * 2).min(self.config.max_backoff.max(1));
        // Whatever the MPC planned before failing was planned under
        // fault; do not let it warm-start the re-armed solves.
        self.inner.reset_mpc();
    }

    fn reject(&mut self, error: &OtemError, step: u64, sink: &dyn Sink) {
        self.rejected += 1;
        sink.record(Event::DecisionRejected {
            step,
            reason: reject_reason(error),
        });
        self.engage_fallback(step, sink);
    }

    /// The Dual-style thermostatic command on the wrapped plant:
    /// hysteretic full cooling, slow bank recharge while below target.
    fn fallback_step(&mut self, load: Watts, dt: Seconds, sink: &dyn Sink) -> StepRecord {
        // Degraded-time accounting: every period the rule-based fallback
        // drives the plant is wrapped in this span, so fault campaigns
        // can report *time spent degraded* straight from the trace.
        let _fallback_span = span(sink, "supervisor_fallback");
        let measured = self.inner.state();
        if measured.battery_temp >= self.config.fallback_on {
            self.fallback_cooling = true;
        } else if measured.battery_temp <= self.config.fallback_off {
            self.fallback_cooling = false;
        }
        let duty = if self.fallback_cooling { 1.0 } else { 0.0 };
        let cap_bus = if measured.soe < self.config.recharge_target && load.value() >= 0.0 {
            Watts::new(-self.config.recharge_power.value())
        } else {
            Watts::ZERO
        };
        self.inner.apply_with(load, cap_bus, duty, dt, sink)
    }

    /// Post-step state check; a violation engages the fallback for the
    /// *next* steps (the physics of this one already happened).
    fn check_state(&mut self, record: StepRecord, step: u64, sink: &dyn Sink) -> StepRecord {
        if let Err(e) = validate_state(&record.state, &self.config) {
            if self.armed {
                self.reject(&e, step, sink);
            }
        }
        record
    }
}

impl Controller for SupervisedOtem {
    fn name(&self) -> &'static str {
        "OTEM+Supervisor"
    }

    fn step(&mut self, load: Watts, forecast: &[Watts], dt: Seconds) -> StepRecord {
        self.step_with(load, forecast, dt, &NullSink)
    }

    fn step_with(
        &mut self,
        load: Watts,
        forecast: &[Watts],
        dt: Seconds,
        sink: &dyn Sink,
    ) -> StepRecord {
        let step = self.step;
        self.step += 1;
        let cap_limit = self.inner.system_config().cap_power_max;

        if self.armed {
            let decision = self.inner.plan_with(load, forecast, dt, sink);
            return match validate_decision(&decision, cap_limit) {
                Ok(()) => {
                    let record =
                        self.inner
                            .apply_with(load, decision.cap_bus, decision.cool_duty, dt, sink);
                    self.check_state(record, step, sink)
                }
                Err(e) => {
                    self.reject(&e, step, sink);
                    self.fallback_step(load, dt, sink)
                }
            };
        }

        // Disarmed: serve the cooldown, then probe the MPC each period
        // (its output is validated but discarded) until it has been
        // healthy `rearm_after` periods in a row.
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return self.fallback_step(load, dt, sink);
        }
        // The probe span covers the speculative solve, its validation,
        // and whichever path follows (the re-arming apply or another
        // fallback period) — the tail of the degraded episode.
        let _probe_span = span(sink, "supervisor_probe");
        let decision = self.inner.plan_with(load, forecast, dt, sink);
        match validate_decision(&decision, cap_limit) {
            Ok(()) => {
                self.healthy_streak += 1;
                if self.healthy_streak >= self.config.rearm_after {
                    self.armed = true;
                    self.rearms += 1;
                    sink.record(Event::MpcRearmed {
                        step,
                        healthy_steps: self.healthy_streak,
                    });
                    self.healthy_streak = 0;
                    self.backoff = self.config.initial_backoff.max(1);
                    // The probe that closed the streak is healthy: apply
                    // it — the MPC is driving again from this period.
                    let record =
                        self.inner
                            .apply_with(load, decision.cap_bus, decision.cool_duty, dt, sink);
                    return self.check_state(record, step, sink);
                }
                self.fallback_step(load, dt, sink)
            }
            Err(e) => {
                self.reject(&e, step, sink);
                self.fallback_step(load, dt, sink)
            }
        }
    }

    fn state(&self) -> SystemState {
        self.inner.state()
    }

    fn inject(&mut self, fault: PlantFault) -> bool {
        self.inner.inject(fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::mpc::MpcConfig;
    use otem_telemetry::MemorySink;

    fn otem() -> Otem {
        Otem::with_mpc(
            &SystemConfig::default(),
            MpcConfig {
                horizon: 4,
                solver_iterations: 8,
                ..MpcConfig::default()
            },
        )
        .expect("valid")
    }

    fn healthy_decision() -> MpcDecision {
        MpcDecision {
            cap_bus: Watts::new(1_000.0),
            cool_duty: 0.5,
            cost: 10.0,
            iterations: 3,
            outcome: SolverOutcome::Converged,
        }
    }

    #[test]
    fn decision_validation_rejects_each_failure_mode() {
        let cap = Watts::new(50_000.0);
        assert!(validate_decision(&healthy_decision(), cap).is_ok());
        // Budget exhaustion with real iterations is nominal for the MPC.
        assert!(validate_decision(
            &MpcDecision {
                outcome: SolverOutcome::BudgetExhausted,
                ..healthy_decision()
            },
            cap
        )
        .is_ok());
        // Anytime deadline behaviour: a deadline reached after real
        // iterations returns the best feasible iterate — accepted.
        assert!(validate_decision(
            &MpcDecision {
                outcome: SolverOutcome::DeadlineReached,
                ..healthy_decision()
            },
            cap
        )
        .is_ok());

        let cases = [
            (
                MpcDecision {
                    cap_bus: Watts::new(f64::NAN),
                    ..healthy_decision()
                },
                "cap_bus",
            ),
            (
                MpcDecision {
                    cool_duty: f64::INFINITY,
                    ..healthy_decision()
                },
                "cool_duty",
            ),
            (
                MpcDecision {
                    cost: f64::NAN,
                    ..healthy_decision()
                },
                "cost",
            ),
            (
                MpcDecision {
                    cap_bus: Watts::new(60_000.0),
                    ..healthy_decision()
                },
                "cap_bus_out_of_bounds",
            ),
            (
                MpcDecision {
                    cool_duty: 1.5,
                    ..healthy_decision()
                },
                "cool_duty_out_of_bounds",
            ),
            (
                MpcDecision {
                    outcome: SolverOutcome::NonFinite,
                    ..healthy_decision()
                },
                "solver_non_finite",
            ),
            (
                MpcDecision {
                    iterations: 0,
                    outcome: SolverOutcome::BudgetExhausted,
                    ..healthy_decision()
                },
                "solver_starved",
            ),
            (
                MpcDecision {
                    iterations: 0,
                    outcome: SolverOutcome::DeadlineReached,
                    ..healthy_decision()
                },
                "solver_deadline",
            ),
        ];
        for (decision, want) in cases {
            let err = validate_decision(&decision, cap).unwrap_err();
            assert_eq!(reject_reason(&err), want, "{decision:?}");
        }
    }

    #[test]
    fn state_validation_guards_physics() {
        let config = SupervisorConfig::default();
        let good = SystemState {
            battery_temp: Kelvin::from_celsius(30.0),
            coolant_temp: Kelvin::from_celsius(28.0),
            soe: Ratio::new(0.5),
            soc: Ratio::new(0.9),
        };
        assert!(validate_state(&good, &config).is_ok());

        let hot = SystemState {
            battery_temp: Kelvin::from_celsius(80.0),
            ..good
        };
        assert_eq!(
            reject_reason(&validate_state(&hot, &config).unwrap_err()),
            "battery_temp_out_of_bounds"
        );
        let nan = SystemState {
            battery_temp: Kelvin::new(f64::NAN),
            ..good
        };
        assert_eq!(
            reject_reason(&validate_state(&nan, &config).unwrap_err()),
            "battery_temp"
        );
        // SoC/SoE cannot leave [0, 1] through the `Ratio` type (its
        // constructor clamps, NaN becomes zero) — the validator's checks
        // on them are defence in depth against a future representation
        // change, not a reachable state today.
        assert!(validate_state(
            &SystemState {
                soc: Ratio::new(-0.2),
                ..good
            },
            &config
        )
        .is_ok());
    }

    #[test]
    fn starved_solver_triggers_fallback_and_rearm_with_backoff() {
        let mut sup = SupervisedOtem::new(
            otem(),
            SupervisorConfig {
                rearm_after: 2,
                initial_backoff: 2,
                max_backoff: 8,
                ..SupervisorConfig::default()
            },
        );
        let sink = MemorySink::new();
        let forecast = vec![Watts::new(15_000.0); 4];
        let dt = Seconds::new(1.0);

        // Healthy period first.
        let rec = sup.step_with(Watts::new(15_000.0), &forecast, dt, &sink);
        assert!(sup.is_armed());
        assert!(rec.state.soc.value().is_finite());

        // Starve the solver: every decision is now `solver_starved`.
        assert!(sup.inject(PlantFault::SolverIterationCap(Some(0))));
        let _ = sup.step_with(Watts::new(15_000.0), &forecast, dt, &sink);
        assert!(!sup.is_armed(), "starved decision must disengage the MPC");
        assert_eq!(sup.rejected(), 1);
        assert_eq!(sup.fallbacks(), 1);
        assert_eq!(sink.count_kind("decision_rejected"), 1);
        assert_eq!(sink.count_kind("fallback_engaged"), 1);

        // Cooldown (2 steps) then a failed probe doubles the backoff.
        for _ in 0..3 {
            let r = sup.step_with(Watts::new(15_000.0), &forecast, dt, &sink);
            assert!(r.state.soc.value().is_finite());
        }
        assert!(sup.fallbacks() >= 2, "failed probe starts a new episode");

        // Heal the solver; after the cooldown, two healthy probes re-arm.
        assert!(sup.inject(PlantFault::SolverIterationCap(None)));
        for _ in 0..12 {
            let _ = sup.step_with(Watts::new(15_000.0), &forecast, dt, &sink);
            if sup.is_armed() {
                break;
            }
        }
        assert!(sup.is_armed(), "healthy solver must re-arm");
        assert_eq!(sup.rearms(), 1);
        assert_eq!(sink.count_kind("mpc_rearmed"), 1);
    }

    #[test]
    fn deadline_miss_walks_the_same_ladder_as_starvation() {
        // A zero-nanosecond deadline makes every solve return its warm
        // start with `DeadlineReached` at iteration 0 — the throttled
        // compute-platform signature. The supervisor must walk the exact
        // rejection → fallback → re-arm ladder it uses for starvation,
        // with the `solver_deadline` reason on the rejection events.
        let mut sup = SupervisedOtem::new(
            otem(),
            SupervisorConfig {
                rearm_after: 2,
                initial_backoff: 2,
                max_backoff: 8,
                ..SupervisorConfig::default()
            },
        );
        let sink = MemorySink::new();
        let forecast = vec![Watts::new(15_000.0); 4];
        let dt = Seconds::new(1.0);

        let _ = sup.step_with(Watts::new(15_000.0), &forecast, dt, &sink);
        assert!(sup.is_armed());

        assert!(sup.inject(PlantFault::SolverDeadlineNs(Some(0))));
        let _ = sup.step_with(Watts::new(15_000.0), &forecast, dt, &sink);
        assert!(!sup.is_armed(), "missed deadline must disengage the MPC");
        assert_eq!(sup.rejected(), 1);
        assert_eq!(sink.count_kind("decision_rejected"), 1);
        assert_eq!(sink.count_kind("fallback_engaged"), 1);

        // Restore compute headroom; the MPC proves healthy and re-arms.
        assert!(sup.inject(PlantFault::SolverDeadlineNs(None)));
        for _ in 0..12 {
            let _ = sup.step_with(Watts::new(15_000.0), &forecast, dt, &sink);
            if sup.is_armed() {
                break;
            }
        }
        assert!(sup.is_armed(), "restored deadline must re-arm");
        assert_eq!(sup.rearms(), 1);
        assert_eq!(sink.count_kind("mpc_rearmed"), 1);
    }

    #[test]
    fn healthy_run_never_touches_the_ladder() {
        let mut sup = SupervisedOtem::with_defaults(otem());
        let sink = MemorySink::new();
        let forecast = vec![Watts::new(20_000.0); 4];
        for _ in 0..5 {
            let _ = sup.step_with(Watts::new(20_000.0), &forecast, Seconds::new(1.0), &sink);
        }
        assert!(sup.is_armed());
        assert_eq!(sup.rejected(), 0);
        assert_eq!(sup.fallbacks(), 0);
        assert_eq!(sink.count_kind("decision_rejected"), 0);
        assert_eq!(sink.count_kind("fallback_engaged"), 0);
    }
}
