//! Structure-of-arrays batched rollout kernel: advance N candidate
//! rollouts in lockstep.
//!
//! The MPC's inner loop evaluates the same horizon under many nearby
//! decision vectors — Armijo step-size ladders, trust-region
//! candidates, finite-difference stencils. Evaluated one at a time,
//! every candidate pays the full per-rollout overhead (workspace
//! checkout, plant rewind, a fresh pass over the load forecast) and
//! walks the whole model state through cache once per candidate.
//!
//! This module keeps the *lanes* (candidates) resident in
//! structure-of-arrays buffers — one contiguous `Vec<f64>` per state
//! component — and advances all of them through one horizon step before
//! moving to the next step. The per-step physics is **not** duplicated:
//! every lane runs through [`crate::adjoint`]'s `rollout_stage`, the
//! exact function the scalar rollout calls, against a single shared
//! plant whose mutable state (SoC, SoE) is swapped per lane visit.
//! Because each lane executes the same operations in the same order as
//! a scalar rollout of its decision vector, **every f64 lane is
//! bit-identical to the scalar path** — the property the batch-parity
//! tests pin. The speedup comes from amortised overhead and locality,
//! not from reassociating any arithmetic.
//!
//! Lane masking: the rollout physics is total (infeasible power demands
//! surface as shortfall cost, not errors), so lanes never fault
//! mid-horizon and no mask is needed inside the kernel. Consumers that
//! *can* fault a lane (the fleet engine's panic isolation) drop the
//! lane from the lockstep set on the spot and report it exactly as the
//! scalar path would — same structured failure, same deterministic
//! step, no rerun — so the surviving lanes and the telemetry stream
//! are untouched.

use crate::adjoint::{rollout_stage, rollout_terminal};
use crate::mpc::{MpcConfig, MpcPlant};
use otem_hees::HybridHees;
use otem_thermal::ThermalState;
use otem_units::{Kelvin, Ratio, Seconds, Watts};

/// Structure-of-arrays state for a batch of candidate rollouts: one
/// contiguous buffer per state component, indexed by lane. Buffers
/// retain their capacity across rollouts, so a warm batch evaluation
/// allocates nothing.
#[derive(Debug, Default, Clone)]
pub struct BatchState {
    /// Battery state of charge per lane.
    soc: Vec<f64>,
    /// Ultracapacitor state of energy per lane.
    soe: Vec<f64>,
    /// Battery lump temperature (K) per lane.
    t_batt: Vec<f64>,
    /// In-pack coolant lump temperature (K) per lane.
    t_cool: Vec<f64>,
    /// Accumulated Eq. 19 cost per lane.
    cost: Vec<f64>,
}

impl BatchState {
    /// An empty batch; lanes are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of active lanes.
    pub fn lanes(&self) -> usize {
        self.cost.len()
    }

    /// Accumulated per-lane costs (valid after the terminal step).
    pub fn costs(&self) -> &[f64] {
        &self.cost
    }

    /// Re-seeds every lane from the shared start state: `hees` must be
    /// in the rollout's start state, `state` is the thermal start.
    /// Reuses buffer capacity.
    fn reset(&mut self, lanes: usize, hees: &HybridHees, state: ThermalState) {
        let soc = hees.soc().value();
        let soe = hees.soe().value();
        for (buf, seed) in [
            (&mut self.soc, soc),
            (&mut self.soe, soe),
            (&mut self.t_batt, state.battery.value()),
            (&mut self.t_cool, state.coolant.value()),
            (&mut self.cost, 0.0),
        ] {
            buf.clear();
            buf.resize(lanes, seed);
        }
    }
}

/// Advances a [`BatchState`] through the horizon one step at a time,
/// all lanes in lockstep. Borrows one plant instance whose mutable
/// state is swapped per lane visit — the same rewind-instead-of-clone
/// trick the scalar workspace pool uses, applied per lane.
#[derive(Debug)]
pub struct BatchStep<'a> {
    plant: &'a MpcPlant,
    hees: &'a mut HybridHees,
    dt: Seconds,
    config: &'a MpcConfig,
}

impl<'a> BatchStep<'a> {
    /// A stepper over `plant` for one batched rollout. `hees` must
    /// already be in the plant's start state (`hees == plant.hees`); it
    /// is used as the per-lane scratch plant and left in the last
    /// lane's end-of-horizon state.
    pub fn new(
        plant: &'a MpcPlant,
        hees: &'a mut HybridHees,
        dt: Seconds,
        config: &'a MpcConfig,
    ) -> Self {
        Self {
            plant,
            hees,
            dt,
            config,
        }
    }

    /// Advances every lane through horizon step `k`. `zs` is the flat
    /// lane-major decision matrix (`lanes × 2·horizon`; lane `l`'s
    /// vector is `zs[l·2n .. (l+1)·2n]` in the usual
    /// `[cap_share_0..n-1, cool_duty_0..n-1]` layout) and `load` the
    /// step's forecast load, shared by all lanes.
    pub fn advance(&mut self, batch: &mut BatchState, k: usize, load: Watts, zs: &[f64]) {
        let n = self.config.horizon;
        let m = 2 * n;
        debug_assert!(k < n);
        debug_assert_eq!(zs.len(), batch.lanes() * m);
        for l in 0..batch.lanes() {
            let z = &zs[l * m..(l + 1) * m];
            // Swap the lane's storage state into the shared plant. Both
            // components were last written from a `Ratio` (clamped to
            // [0, 1]), so the f64 round-trip through `Ratio::new` is
            // exact and the lane resumes bit-identically.
            self.hees
                .set_state(Ratio::new(batch.soc[l]), Ratio::new(batch.soe[l]));
            let state = ThermalState {
                battery: Kelvin::new(batch.t_batt[l]),
                coolant: Kelvin::new(batch.t_cool[l]),
            };
            let next = rollout_stage(
                self.plant,
                self.hees,
                state,
                load,
                z[k],
                z[n + k],
                self.dt,
                self.config,
                &mut batch.cost[l],
                None,
            );
            batch.soc[l] = self.hees.soc().value();
            batch.soe[l] = self.hees.soe().value();
            batch.t_batt[l] = next.battery.value();
            batch.t_cool[l] = next.coolant.value();
        }
    }

    /// Applies the terminal tail cost to every lane (call once, after
    /// the last [`BatchStep::advance`]).
    pub fn finish(&mut self, batch: &mut BatchState, loads: &[Watts]) {
        let n = self.config.horizon;
        for l in 0..batch.lanes() {
            let state = ThermalState {
                battery: Kelvin::new(batch.t_batt[l]),
                coolant: Kelvin::new(batch.t_cool[l]),
            };
            rollout_terminal(
                self.plant,
                loads,
                n,
                state,
                self.dt,
                self.config,
                &mut batch.cost[l],
            );
        }
    }
}

/// [`rollout_cost_batch`] against a caller-provided scratch plant and
/// batch workspace — the allocation-free path the MPC objective routes
/// through. `hees` must already be in the plant's start state.
#[allow(clippy::too_many_arguments)]
pub(crate) fn rollout_cost_batch_with(
    plant: &MpcPlant,
    hees: &mut HybridHees,
    loads: &[Watts],
    dt: Seconds,
    config: &MpcConfig,
    zs: &[f64],
    lanes: usize,
    batch: &mut BatchState,
    out: &mut [f64],
) {
    let n = config.horizon;
    assert_eq!(
        zs.len(),
        lanes * 2 * n,
        "batched decision matrix must be lanes × 2·horizon"
    );
    assert_eq!(out.len(), lanes, "output buffer length mismatch");
    batch.reset(lanes, hees, plant.state);
    let mut step = BatchStep::new(plant, hees, dt, config);
    for k in 0..n {
        let load = loads.get(k).copied().unwrap_or(Watts::ZERO);
        step.advance(batch, k, load, zs);
    }
    step.finish(batch, loads);
    out.copy_from_slice(&batch.cost);
}

/// Evaluates the Eq. 19 rollout cost for `lanes` candidate decision
/// vectors in one lockstep pass, writing one cost per lane into `out`.
///
/// `zs` is the flat lane-major decision matrix (`lanes × 2·horizon`).
/// Each lane's cost is bit-identical to
/// [`crate::mpc::rollout_cost`] of that lane's vector — this entry
/// point clones the plant's HEES once per call; the MPC's inner loop
/// avoids even that by routing through a pooled workspace instead.
pub fn rollout_cost_batch(
    plant: &MpcPlant,
    loads: &[Watts],
    dt: Seconds,
    config: &MpcConfig,
    zs: &[f64],
    lanes: usize,
    out: &mut [f64],
) {
    let mut hees = plant.hees.clone();
    let mut batch = BatchState::new();
    rollout_cost_batch_with(
        plant, &mut hees, loads, dt, config, zs, lanes, &mut batch, out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::mpc::rollout_cost;
    use otem_thermal::{CoolingPlant, ThermalModel};
    use otem_units::Farads;

    fn plant() -> MpcPlant {
        let config = SystemConfig::default();
        let mut hees = HybridHees::ev_default(Farads::new(25_000.0)).unwrap();
        hees.set_state(config.initial_soc, Ratio::new(0.6));
        MpcPlant {
            hees,
            thermal: ThermalModel::new(config.thermal_active).unwrap(),
            plant: CoolingPlant::new(config.plant).unwrap(),
            state: ThermalState::uniform(config.ambient),
            aging: config.aging,
            soc_min: config.soc_min,
            soe_min: config.soe_min,
            battery_power_max: config.battery_power_max,
            cap_power_max: config.cap_power_max,
        }
    }

    #[test]
    fn lanes_match_scalar_rollouts_bitwise() {
        let plant = plant();
        let config = MpcConfig {
            horizon: 6,
            ..MpcConfig::default()
        };
        let n = config.horizon;
        let dt = Seconds::new(1.0);
        let loads: Vec<Watts> = (0..n)
            .map(|k| Watts::new(8_000.0 + 900.0 * k as f64))
            .collect();

        let lanes = 5;
        let mut zs = vec![0.0; lanes * 2 * n];
        for (l, z) in zs.chunks_exact_mut(2 * n).enumerate() {
            for k in 0..n {
                z[k] = 0.15 * l as f64 - 0.2 + 0.01 * k as f64;
                z[n + k] = 0.22 * l as f64;
            }
        }

        let mut out = vec![0.0; lanes];
        rollout_cost_batch(&plant, &loads, dt, &config, &zs, lanes, &mut out);
        for (l, z) in zs.chunks_exact(2 * n).enumerate() {
            let scalar = rollout_cost(&plant, &loads, dt, &config, z);
            assert_eq!(
                out[l].to_bits(),
                scalar.to_bits(),
                "lane {l}: batched {} vs scalar {scalar}",
                out[l]
            );
        }
    }

    #[test]
    fn single_lane_batch_is_the_scalar_rollout() {
        let plant = plant();
        let config = MpcConfig::default();
        let n = config.horizon;
        let dt = Seconds::new(1.0);
        let loads = vec![Watts::new(12_000.0); n];
        let z: Vec<f64> = (0..2 * n).map(|i| (i as f64 * 0.37).sin() * 0.5).collect();

        let mut out = [0.0];
        rollout_cost_batch(&plant, &loads, dt, &config, &z, 1, &mut out);
        assert_eq!(
            out[0].to_bits(),
            rollout_cost(&plant, &loads, dt, &config, &z).to_bits()
        );
    }
}
