//! The closed-loop simulation engine — the paper's Algorithm 1 outer
//! loop, generalised over methodologies.

use crate::config::SystemConfig;
use crate::controller::Controller;
use crate::metrics::SimulationResult;
use otem_battery::AgingModel;
use otem_drivecycle::PowerTrace;
use otem_telemetry::{span, Event, NullSink, Sink};
use serde::{Deserialize, Serialize};

/// Scalar outcome of a streamed run (see [`Simulator::run_each`]):
/// what the closed loop accumulated without retaining per-step records.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunTotals {
    /// Steps executed (equals the trace length).
    pub steps: usize,
    /// Accumulated battery capacity loss (fraction of rated capacity) —
    /// the paper's `Q_loss` output, bit-identical to
    /// [`crate::SimulationResult::capacity_loss`] for the same run.
    pub capacity_loss: f64,
}

/// Drives a [`Controller`] over a [`PowerTrace`], accumulating the
/// paper's outputs (`Q_loss`, `Energy`) and the full step records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Simulator {
    config: SystemConfig,
    /// How many future samples the controller gets to see each step
    /// (Algorithm 1 lines 11–12 fill the control window from `P̂_e`).
    pub forecast_len: usize,
}

impl Simulator {
    /// Builds a simulator for the given system configuration.
    pub fn new(config: &SystemConfig) -> Self {
        Self {
            config: config.clone(),
            forecast_len: 64,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Runs the full route: for each sample, hand the controller the
    /// load and its forecast window, apply the step, and integrate the
    /// capacity-loss model (Eq. 5) against the realised battery
    /// temperature and C-rate.
    pub fn run(&self, controller: &mut dyn Controller, trace: &PowerTrace) -> SimulationResult {
        self.run_with(controller, trace, &NullSink)
    }

    /// [`Simulator::run`] with telemetry: every step emits one
    /// [`Event::StepCompleted`] into `sink`, and the sink is handed to
    /// the controller (via [`Controller::step_with`]) so instrumented
    /// controllers can trace their solver and plant internals.
    ///
    /// The sink is strictly observational: for any sink the returned
    /// [`SimulationResult`] is `PartialEq`-identical to
    /// [`Simulator::run`] — the contract the `telemetry_parity`
    /// integration test pins.
    pub fn run_with(
        &self,
        controller: &mut dyn Controller,
        trace: &PowerTrace,
        sink: &dyn Sink,
    ) -> SimulationResult {
        let mut records = Vec::with_capacity(trace.len());
        let totals = self.run_each(controller, trace, sink, |_, record| records.push(*record));
        SimulationResult {
            methodology: controller.name(),
            dt: self.config.dt,
            records,
            capacity_loss: totals.capacity_loss,
        }
    }

    /// The streaming core of [`Simulator::run_with`]: identical step
    /// loop, but each [`StepRecord`](crate::StepRecord) is handed to
    /// `observe` instead of retained. This is the entry point for
    /// fleet-scale batch runs, where keeping every vehicle's full record
    /// vector would dominate memory (100k vehicles × hundreds of steps)
    /// — the observer folds whatever summary it needs and the records
    /// are gone.
    ///
    /// [`Simulator::run_with`] is implemented on top of this method
    /// (its observer pushes into a `Vec`), so the records a streaming
    /// observer sees are bit-identical to a retained run's — the
    /// contract the fleet determinism tests pin across shard counts.
    pub fn run_each(
        &self,
        controller: &mut dyn Controller,
        trace: &PowerTrace,
        sink: &dyn Sink,
        mut observe: impl FnMut(usize, &crate::StepRecord),
    ) -> RunTotals {
        let mut cursor = self.cursor();
        while cursor.advance(controller, trace, sink, &mut observe) {}
        cursor.finish(sink)
    }

    /// A suspended run at step zero: the step loop of
    /// [`Simulator::run_each`] handed out one [`RunCursor::advance`] at
    /// a time, so a caller can interleave several vehicles' steps
    /// (the fleet engine's lockstep batches). A fully drained cursor
    /// produces [`RunTotals`] bit-identical to [`Simulator::run_each`]
    /// — the advance body *is* `run_each`'s loop body.
    pub fn cursor(&self) -> RunCursor {
        RunCursor {
            aging: AgingModel::new(self.config.aging),
            dt: self.config.dt,
            forecast_len: self.forecast_len,
            t: 0,
        }
    }
}

/// The resumable step loop of [`Simulator::run_each`]: holds exactly
/// the loop state (`t` and the aging integrator), borrowing nothing, so
/// a batch of cursors can be advanced in lockstep against their own
/// controllers and traces.
#[derive(Debug)]
pub struct RunCursor {
    aging: AgingModel,
    dt: otem_units::Seconds,
    forecast_len: usize,
    t: usize,
}

impl RunCursor {
    /// Steps executed so far.
    pub fn steps(&self) -> usize {
        self.t
    }

    /// Runs one closed-loop step — the exact body of
    /// [`Simulator::run_each`]'s loop — and returns `true`, or returns
    /// `false` without side effects once the trace is exhausted.
    pub fn advance(
        &mut self,
        controller: &mut dyn Controller,
        trace: &PowerTrace,
        sink: &dyn Sink,
        mut observe: impl FnMut(usize, &crate::StepRecord),
    ) -> bool {
        let t = self.t;
        if t >= trace.len() {
            return false;
        }
        let _step_span = span(sink, "sim_step");
        let load = trace.get(t);
        let forecast = trace.window(t + 1, self.forecast_len);
        let record = controller.step_with(load, &forecast, self.dt, sink);
        self.aging.accumulate(
            record.state.battery_temp,
            record.hees.battery_c_rate,
            self.dt,
        );
        sink.record(Event::StepCompleted {
            step: t as u64,
            load_w: record.load.value(),
            delivered_w: record.hees.delivered.value(),
            shortfall_w: record.hees.shortfall.value(),
            cooling_w: record.cooling_power.value(),
            battery_temp_k: record.state.battery_temp.value(),
            soc: record.state.soc.value(),
            soe: record.state.soe.value(),
        });
        observe(t, &record);
        self.t += 1;
        true
    }

    /// Flushes the sink and closes the run. `steps` equals the trace
    /// length when the cursor was drained to completion.
    pub fn finish(self, sink: &dyn Sink) -> RunTotals {
        sink.flush();
        RunTotals {
            steps: self.t,
            capacity_loss: self.aging.cumulative_loss(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Parallel;
    use otem_units::{Seconds, Watts};

    #[test]
    fn run_collects_one_record_per_sample() {
        let config = SystemConfig::default();
        let mut controller = Parallel::new(&config).expect("valid");
        let trace = PowerTrace::new(Seconds::new(1.0), vec![Watts::new(10_000.0); 25]);
        let result = Simulator::new(&config).run(&mut controller, &trace);
        assert_eq!(result.records.len(), 25);
        assert!(result.capacity_loss() > 0.0);
        assert!(result.energy().value() > 0.0);
        assert_eq!(result.methodology, "Parallel");
    }

    #[test]
    fn empty_trace_is_a_noop() {
        let config = SystemConfig::default();
        let mut controller = Parallel::new(&config).expect("valid");
        let trace = PowerTrace::new(Seconds::new(1.0), vec![]);
        let result = Simulator::new(&config).run(&mut controller, &trace);
        assert!(result.records.is_empty());
        assert_eq!(result.capacity_loss(), 0.0);
    }

    /// Records every forecast window the simulator hands to the
    /// controller, so the `trace.window(t + 1, forecast_len)` semantics
    /// can be pinned explicitly.
    struct ForecastProbe {
        forecasts: Vec<Vec<Watts>>,
        state: crate::controller::SystemState,
    }

    impl ForecastProbe {
        fn new() -> Self {
            Self {
                forecasts: Vec::new(),
                state: crate::controller::SystemState {
                    battery_temp: otem_units::Kelvin::from_celsius(25.0),
                    coolant_temp: otem_units::Kelvin::from_celsius(25.0),
                    soe: otem_units::Ratio::HALF,
                    soc: otem_units::Ratio::ONE,
                },
            }
        }
    }

    impl crate::controller::Controller for ForecastProbe {
        fn name(&self) -> &'static str {
            "ForecastProbe"
        }

        fn step(
            &mut self,
            load: Watts,
            forecast: &[Watts],
            _dt: Seconds,
        ) -> crate::controller::StepRecord {
            self.forecasts.push(forecast.to_vec());
            crate::controller::StepRecord {
                load,
                hees: otem_hees::HeesStep::default(),
                cooling_power: Watts::ZERO,
                state: self.state,
            }
        }

        fn state(&self) -> crate::controller::SystemState {
            self.state
        }
    }

    /// Pins the forecast-window contract at the end of the route: the
    /// controller at step `t` sees `trace.window(t + 1, forecast_len)`,
    /// which is always exactly `forecast_len` long and **zero-padded**
    /// (not shrunk) past the last sample — so the final step's window
    /// contains no real samples at all.
    #[test]
    fn forecast_window_is_zero_padded_at_the_end_of_the_trace() {
        let config = SystemConfig::default();
        let samples: Vec<Watts> = (1..=6).map(|k| Watts::new(1_000.0 * k as f64)).collect();
        let trace = PowerTrace::new(Seconds::new(1.0), samples.clone());
        let mut sim = Simulator::new(&config);
        sim.forecast_len = 4;
        let mut probe = ForecastProbe::new();
        sim.run(&mut probe, &trace);

        assert_eq!(probe.forecasts.len(), 6);
        // Every window has exactly forecast_len entries, shrinking never.
        for (t, forecast) in probe.forecasts.iter().enumerate() {
            assert_eq!(forecast.len(), 4, "window length at step {t}");
        }
        // Step 0 sees samples 1..=4 (forecast[0] is the *next* load).
        assert_eq!(probe.forecasts[0], samples[1..5].to_vec());
        // Step 3 straddles the end: two real samples, then zeros.
        assert_eq!(
            probe.forecasts[3],
            vec![samples[4], samples[5], Watts::ZERO, Watts::ZERO]
        );
        // Step 4 sees the last sample then zeros; step 5 (the final
        // step) sees a window of pure padding.
        assert_eq!(
            probe.forecasts[4],
            vec![samples[5], Watts::ZERO, Watts::ZERO, Watts::ZERO]
        );
        assert_eq!(probe.forecasts[5], vec![Watts::ZERO; 4]);
    }

    /// A forecast window longer than the whole route is all padding
    /// beyond the real samples from step 1 on.
    #[test]
    fn forecast_window_longer_than_route_is_mostly_padding() {
        let config = SystemConfig::default();
        let trace = PowerTrace::new(
            Seconds::new(1.0),
            vec![Watts::new(500.0), Watts::new(700.0)],
        );
        let mut sim = Simulator::new(&config);
        sim.forecast_len = 5;
        let mut probe = ForecastProbe::new();
        sim.run(&mut probe, &trace);
        assert_eq!(
            probe.forecasts[0],
            vec![
                Watts::new(700.0),
                Watts::ZERO,
                Watts::ZERO,
                Watts::ZERO,
                Watts::ZERO
            ]
        );
        assert_eq!(probe.forecasts[1], vec![Watts::ZERO; 5]);
    }

    #[test]
    fn run_each_streams_the_records_run_collects() {
        let config = SystemConfig::default();
        let trace = PowerTrace::new(Seconds::new(1.0), vec![Watts::new(12_000.0); 15]);

        let mut retained = Parallel::new(&config).expect("valid");
        let result = Simulator::new(&config).run(&mut retained, &trace);

        let mut streamed = Parallel::new(&config).expect("valid");
        let mut seen = Vec::new();
        let totals = Simulator::new(&config).run_each(&mut streamed, &trace, &NullSink, |t, r| {
            assert_eq!(t, seen.len(), "records arrive in step order");
            seen.push(*r);
        });

        assert_eq!(seen, result.records, "streamed records are bit-identical");
        assert_eq!(totals.steps, result.records.len());
        assert_eq!(
            totals.capacity_loss.to_bits(),
            result.capacity_loss.to_bits()
        );
    }

    #[test]
    fn run_with_emits_one_step_completed_per_sample() {
        use otem_telemetry::MemorySink;
        let config = SystemConfig::default();
        let mut controller = Parallel::new(&config).expect("valid");
        let trace = PowerTrace::new(Seconds::new(1.0), vec![Watts::new(10_000.0); 7]);
        let sink = MemorySink::new();
        let result = Simulator::new(&config).run_with(&mut controller, &trace, &sink);
        assert_eq!(result.records.len(), 7);
        assert_eq!(sink.count_kind("step_completed"), 7);
        // The event mirrors the record it was derived from.
        let first = sink
            .events()
            .into_iter()
            .find(|e| matches!(e, Event::StepCompleted { .. }))
            .expect("a step_completed event");
        if let Event::StepCompleted { step, load_w, .. } = first {
            assert_eq!(step, 0);
            assert_eq!(load_w, 10_000.0);
        }
        // Each step is wrapped in a sim_step span, balanced.
        assert_eq!(
            sink.count_kind("span_start"),
            7 + 7,
            "sim_step + parallel_step"
        );
        assert_eq!(sink.count_kind("span_end"), 14);
    }
}
