//! The closed-loop simulation engine — the paper's Algorithm 1 outer
//! loop, generalised over methodologies.

use crate::config::SystemConfig;
use crate::controller::Controller;
use crate::metrics::SimulationResult;
use otem_battery::AgingModel;
use otem_drivecycle::PowerTrace;
use serde::{Deserialize, Serialize};

/// Drives a [`Controller`] over a [`PowerTrace`], accumulating the
/// paper's outputs (`Q_loss`, `Energy`) and the full step records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Simulator {
    config: SystemConfig,
    /// How many future samples the controller gets to see each step
    /// (Algorithm 1 lines 11–12 fill the control window from `P̂_e`).
    pub forecast_len: usize,
}

impl Simulator {
    /// Builds a simulator for the given system configuration.
    pub fn new(config: &SystemConfig) -> Self {
        Self {
            config: config.clone(),
            forecast_len: 64,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Runs the full route: for each sample, hand the controller the
    /// load and its forecast window, apply the step, and integrate the
    /// capacity-loss model (Eq. 5) against the realised battery
    /// temperature and C-rate.
    pub fn run(&self, controller: &mut dyn Controller, trace: &PowerTrace) -> SimulationResult {
        let dt = self.config.dt;
        let mut aging = AgingModel::new(self.config.aging);
        let mut records = Vec::with_capacity(trace.len());

        for t in 0..trace.len() {
            let load = trace.get(t);
            let forecast = trace.window(t + 1, self.forecast_len);
            let record = controller.step(load, &forecast, dt);
            aging.accumulate(
                record.state.battery_temp,
                record.hees.battery_c_rate,
                dt,
            );
            records.push(record);
        }

        SimulationResult {
            methodology: controller.name(),
            dt,
            records,
            capacity_loss: aging.cumulative_loss(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Parallel;
    use otem_units::{Seconds, Watts};

    #[test]
    fn run_collects_one_record_per_sample() {
        let config = SystemConfig::default();
        let mut controller = Parallel::new(&config).expect("valid");
        let trace = PowerTrace::new(
            Seconds::new(1.0),
            vec![Watts::new(10_000.0); 25],
        );
        let result = Simulator::new(&config).run(&mut controller, &trace);
        assert_eq!(result.records.len(), 25);
        assert!(result.capacity_loss() > 0.0);
        assert!(result.energy().value() > 0.0);
        assert_eq!(result.methodology, "Parallel");
    }

    #[test]
    fn empty_trace_is_a_noop() {
        let config = SystemConfig::default();
        let mut controller = Parallel::new(&config).expect("valid");
        let trace = PowerTrace::new(Seconds::new(1.0), vec![]);
        let result = Simulator::new(&config).run(&mut controller, &trace);
        assert!(result.records.is_empty());
        assert_eq!(result.capacity_loss(), 0.0);
    }
}
