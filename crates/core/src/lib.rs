//! OTEM — Optimized Thermal and Energy Management for Hybrid Electrical
//! Energy Storage in Electric Vehicles.
//!
//! A from-scratch Rust reproduction of the DATE 2016 paper by
//! Vatanparvar and Al Faruque. The crate provides:
//!
//! * the **OTEM controller** ([`policy::Otem`]): a model-predictive
//!   controller that jointly manages the ultracapacitor utilisation and
//!   the active battery cooling system, maintaining the paper's *Thermal
//!   and Energy Budget* (TEB) — pre-charging the bank and/or pre-cooling
//!   the battery ahead of predicted power peaks (Section III,
//!   Algorithm 1);
//! * the three **state-of-the-art baselines** the paper compares against:
//!   the hard-wired parallel architecture ([`policy::Parallel`], \[15\]),
//!   a battery-only system with thermostatic active cooling
//!   ([`policy::ActiveCooling`], \[25\]), and the temperature-threshold
//!   dual architecture ([`policy::Dual`], \[16\]);
//! * a closed-loop **simulation engine** ([`Simulator`]) that drives any
//!   controller over a drive-cycle power trace and produces the metrics
//!   the paper's evaluation reports (battery capacity loss, HEES energy,
//!   average power, temperature traces).
//!
//! # Quickstart
//!
//! ```
//! use otem::{policy::Otem, Simulator, SystemConfig};
//! use otem_drivecycle::{standard, Powertrain, StandardCycle, VehicleParams};
//!
//! # fn main() -> Result<(), otem::OtemError> {
//! let config = SystemConfig::default();
//! let cycle = standard(StandardCycle::Nycc)?;
//! let trace = Powertrain::new(VehicleParams::midsize_ev())?.power_trace(&cycle);
//!
//! let mut controller = Otem::new(&config)?;
//! let result = Simulator::new(&config).run(&mut controller, &trace);
//! println!(
//!     "capacity loss {:.3e}, average power {:.1} kW",
//!     result.capacity_loss(),
//!     result.average_power().value() / 1000.0
//! );
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod adjoint;
pub mod analysis;
pub mod batch;
mod config;
mod controller;
mod error;
mod metrics;
pub mod mpc;
pub mod planner;
pub mod policy;
mod sim;
pub mod supervisor;

pub use config::SystemConfig;
pub use controller::{Controller, PlantFault, StepRecord, SystemState};
pub use error::OtemError;
pub use metrics::SimulationResult;
pub use sim::{RunCursor, RunTotals, Simulator};
pub use supervisor::{SupervisedOtem, SupervisorConfig};
