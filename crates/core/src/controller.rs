//! The controller abstraction every methodology implements, and the
//! per-step record the simulator collects.

use otem_hees::HeesStep;
use otem_telemetry::Sink;
use otem_units::{Kelvin, Ratio, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Snapshot of the paper's state vector `x = [T_b, T_c, SoE, SoC]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemState {
    /// Battery temperature `T_b`.
    pub battery_temp: Kelvin,
    /// Coolant temperature `T_c` (equals `T_b`'s environment for
    /// passive architectures).
    pub coolant_temp: Kelvin,
    /// Ultracapacitor state of energy.
    pub soe: Ratio,
    /// Battery state of charge.
    pub soc: Ratio,
}

/// Everything that happened during one control period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// The EV power request this period served.
    pub load: Watts,
    /// HEES bookkeeping (delivered, internal powers, heat, stress).
    pub hees: HeesStep,
    /// Electric power drawn by the cooling system (cooler + pump).
    pub cooling_power: Watts,
    /// State after the step.
    pub state: SystemState,
}

impl StepRecord {
    /// Total power consumed this period: HEES internal consumption
    /// (which already includes serving the cooling load via the bus).
    pub fn total_power(&self) -> Watts {
        self.hees.hees_power()
    }
}

/// A plant-level degradation a fault harness may ask a controller to
/// emulate. Faults that only corrupt the controller's *inputs* (noisy
/// sensors, bad forecasts) don't need this channel — they are applied by
/// the harness itself; this enum covers degradations that live *inside*
/// the plant or the optimiser and so need the controller's cooperation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PlantFault {
    /// Forces the cooling pump stuck (true: stuck *off* — the active
    /// thermal loop loses actuation; false: restore normal operation).
    PumpStuck(bool),
    /// Caps the optimiser's per-period iteration budget (`Some(0)`
    /// starves it completely); `None` restores the configured budget.
    SolverIterationCap(Option<usize>),
    /// Caps the optimiser's per-solve wall-clock deadline in
    /// nanoseconds (`Some(0)` makes every solve miss it immediately);
    /// `None` restores the configured deadline. Models a compute
    /// platform losing headroom — thermal throttling of the control
    /// ECU, a co-scheduled task stealing the core.
    SolverDeadlineNs(Option<u64>),
    /// Additive bias (K) on the temperature the controller *reads* from
    /// its plant — models a drifted thermistor. Zero removes the bias.
    SensorBias {
        /// Bias applied to the measured battery temperature.
        temp_k: f64,
    },
}

/// A thermal/energy management methodology driving one HEES
/// architecture.
///
/// Implementations own their architecture and thermal plant; the
/// [`crate::Simulator`] feeds them the load and the forecast window and
/// collects the records.
pub trait Controller {
    /// Human-readable methodology name (used by the experiment tables).
    fn name(&self) -> &'static str;

    /// Executes one control period: serve `load`, given the forecast of
    /// upcoming requests (`forecast[0]` is the *next* period's load).
    fn step(&mut self, load: Watts, forecast: &[Watts], dt: Seconds) -> StepRecord;

    /// [`Controller::step`] with telemetry: controllers that emit
    /// structured events (cooling toggles, ultracapacitor saturation,
    /// solver traces) override this and route `step` through it with a
    /// [`otem_telemetry::NullSink`].
    ///
    /// The sink is strictly observational — for any sink this must
    /// return exactly what [`Controller::step`] returns. The default
    /// ignores the sink.
    fn step_with(
        &mut self,
        load: Watts,
        forecast: &[Watts],
        dt: Seconds,
        sink: &dyn Sink,
    ) -> StepRecord {
        let _ = sink;
        self.step(load, forecast, dt)
    }

    /// Current state vector.
    fn state(&self) -> SystemState;

    /// Asks the controller to emulate a plant-level fault. Returns
    /// `true` if the fault is supported and now active (or cleared);
    /// controllers without the corresponding hardware simply return
    /// `false` and the harness records the fault as inapplicable. The
    /// default supports nothing.
    fn inject(&mut self, fault: PlantFault) -> bool {
        let _ = fault;
        false
    }
}

/// Boxed trait objects are controllers too, delegating every method —
/// this is what lets decorators generic over `C: Controller` (the fault
/// harness, the fleet's poison hook) wrap an already-erased
/// `Box<dyn Controller>` without knowing the concrete methodology.
impl Controller for Box<dyn Controller> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn step(&mut self, load: Watts, forecast: &[Watts], dt: Seconds) -> StepRecord {
        (**self).step(load, forecast, dt)
    }

    fn step_with(
        &mut self,
        load: Watts,
        forecast: &[Watts],
        dt: Seconds,
        sink: &dyn Sink,
    ) -> StepRecord {
        (**self).step_with(load, forecast, dt, sink)
    }

    fn state(&self) -> SystemState {
        (**self).state()
    }

    fn inject(&mut self, fault: PlantFault) -> bool {
        (**self).inject(fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_power_reads_hees_internal() {
        let rec = StepRecord {
            load: Watts::new(1_000.0),
            hees: HeesStep {
                battery_internal: Watts::new(900.0),
                cap_internal: Watts::new(300.0),
                ..HeesStep::default()
            },
            cooling_power: Watts::new(100.0),
            state: SystemState {
                battery_temp: Kelvin::from_celsius(25.0),
                coolant_temp: Kelvin::from_celsius(25.0),
                soe: Ratio::ONE,
                soc: Ratio::ONE,
            },
        };
        assert_eq!(rec.total_power(), Watts::new(1_200.0));
    }
}
