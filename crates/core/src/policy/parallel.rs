//! Baseline 1: the hard-wired parallel architecture (Shin et al.
//! DATE'11 \[15\]) — "no thermal or energy management implemented".

use crate::config::SystemConfig;
use crate::controller::{Controller, StepRecord, SystemState};
use crate::error::OtemError;
use otem_battery::BatteryPack;
use otem_hees::{pack_domain_bank, ParallelHees};
use otem_telemetry::{span, Sink};
use otem_thermal::{ThermalModel, ThermalState};
use otem_units::{Seconds, Watts};

/// Battery ∥ ultracapacitor, no cooling, no control: the circuit decides
/// the split and the pack convects passively to ambient.
#[derive(Debug, Clone)]
pub struct Parallel {
    hees: ParallelHees,
    thermal: ThermalModel,
    state: ThermalState,
}

impl Parallel {
    /// Builds the baseline from the shared system configuration.
    ///
    /// # Errors
    ///
    /// Propagates component validation errors.
    pub fn new(config: &SystemConfig) -> Result<Self, OtemError> {
        config.validate()?;
        let battery = BatteryPack::new(config.cell.clone(), config.pack)?;
        let rated = battery.open_circuit_voltage();
        let mut hees = ParallelHees::new(battery, pack_domain_bank(config.capacitance, rated))?;
        hees.set_state(config.initial_soc, config.initial_soe);
        Ok(Self {
            hees,
            thermal: ThermalModel::new(config.thermal_passive)?,
            state: ThermalState::uniform(config.ambient),
        })
    }
}

impl Controller for Parallel {
    fn name(&self) -> &'static str {
        "Parallel"
    }

    fn step(&mut self, load: Watts, _forecast: &[Watts], dt: Seconds) -> StepRecord {
        let hees_step = self.hees.step(load, self.state.battery, dt);
        // Passive pack: no inlet flow; the coolant node just tracks the
        // battery through the (zero-flow) exchange.
        self.state = self.thermal.step_crank_nicolson(
            self.state,
            hees_step.battery_heat,
            self.state.coolant,
            dt,
        );
        StepRecord {
            load,
            hees: hees_step,
            cooling_power: Watts::ZERO,
            state: self.state_snapshot(),
        }
    }

    fn step_with(
        &mut self,
        load: Watts,
        forecast: &[Watts],
        dt: Seconds,
        sink: &dyn Sink,
    ) -> StepRecord {
        let _step_span = span(sink, "parallel_step");
        self.step(load, forecast, dt)
    }

    fn state(&self) -> SystemState {
        self.state_snapshot()
    }
}

impl Parallel {
    fn state_snapshot(&self) -> SystemState {
        SystemState {
            battery_temp: self.state.battery,
            coolant_temp: self.state.coolant,
            soe: self.hees.soe(),
            soc: self.hees.soc(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otem_units::Kelvin;

    #[test]
    fn sustained_load_heats_the_pack() {
        let config = SystemConfig::default();
        let mut p = Parallel::new(&config).expect("valid");
        for _ in 0..600 {
            let _ = p.step(Watts::new(40_000.0), &[], Seconds::new(1.0));
        }
        assert!(p.state().battery_temp > Kelvin::from_celsius(25.5));
        assert!(p.state().soc.value() < 1.0);
    }

    #[test]
    fn no_cooling_power_is_ever_drawn() {
        let config = SystemConfig::default();
        let mut p = Parallel::new(&config).expect("valid");
        let rec = p.step(Watts::new(30_000.0), &[], Seconds::new(1.0));
        assert_eq!(rec.cooling_power, Watts::ZERO);
    }
}
