//! The four methodologies the paper evaluates (Section IV-B).

mod cooling;
mod dual;
mod otem;
mod parallel;

pub use cooling::ActiveCooling;
pub use dual::Dual;
pub use otem::Otem;
pub use parallel::Parallel;
