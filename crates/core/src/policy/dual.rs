//! Baseline 3: the dual (switched) architecture with temperature-
//! threshold switching (Shin et al. DATE'14 \[16\]).

use crate::config::SystemConfig;
use crate::controller::{Controller, StepRecord, SystemState};
use crate::error::OtemError;
use otem_battery::BatteryPack;
use otem_hees::{pack_domain_bank, DualHees, DualMode};
use otem_telemetry::{span, Event, NullSink, Sink};
use otem_thermal::{ThermalModel, ThermalState};
use otem_units::{Kelvin, Ratio, Seconds, Watts};

/// Switch to the ultracapacitor when the battery crosses a temperature
/// threshold; switch back (and recharge the bank from the battery) once
/// it has cooled. No active cooling system exists in this baseline.
#[derive(Debug, Clone)]
pub struct Dual {
    hees: DualHees,
    thermal: ThermalModel,
    state: ThermalState,
    using_cap: bool,
    /// Temperature at which the load is redirected to the
    /// ultracapacitor.
    pub hot_threshold: Kelvin,
    /// Temperature below which the battery takes the load back.
    pub cool_threshold: Kelvin,
    /// Power used to recharge the bank from the battery while cool.
    pub recharge_power: Watts,
    /// Bank level above which recharging stops.
    pub recharge_target: Ratio,
}

impl Dual {
    /// Builds the baseline with the paper-like 33 °C / 31 °C switching
    /// band.
    ///
    /// # Errors
    ///
    /// Propagates component validation errors.
    pub fn new(config: &SystemConfig) -> Result<Self, OtemError> {
        config.validate()?;
        let battery = BatteryPack::new(config.cell.clone(), config.pack)?;
        let rated = battery.open_circuit_voltage();
        let mut hees = DualHees::new(battery, pack_domain_bank(config.capacitance, rated))?;
        hees.set_state(config.initial_soc, config.initial_soe);
        Ok(Self {
            hees,
            thermal: ThermalModel::new(config.thermal_passive)?,
            state: ThermalState::uniform(config.ambient),
            using_cap: false,
            hot_threshold: Kelvin::from_celsius(33.0),
            cool_threshold: Kelvin::from_celsius(31.0),
            recharge_power: Watts::new(6_000.0),
            recharge_target: Ratio::from_percent(95.0),
        })
    }
}

impl Controller for Dual {
    fn name(&self) -> &'static str {
        "Dual"
    }

    fn step(&mut self, load: Watts, forecast: &[Watts], dt: Seconds) -> StepRecord {
        self.step_with(load, forecast, dt, &NullSink)
    }

    fn step_with(
        &mut self,
        load: Watts,
        _forecast: &[Watts],
        dt: Seconds,
        sink: &dyn Sink,
    ) -> StepRecord {
        let _step_span = span(sink, "dual_step");
        // Threshold rule with hysteresis (the [16] policy).
        if self.state.battery >= self.hot_threshold {
            self.using_cap = true;
        } else if self.state.battery <= self.cool_threshold {
            self.using_cap = false;
        }

        // The Fig. 1 failure mode, as an event: the policy wants the
        // bank but the bank cannot carry the load, so the hot battery
        // takes it back.
        if self.using_cap && !self.hees.cap_can_serve(load) {
            let limit = if load.value() >= 0.0 {
                self.hees.cap().max_discharge_power()
            } else {
                self.hees.cap().max_charge_power()
            };
            sink.record(Event::UcapSaturated {
                commanded_w: load.value(),
                limit_w: limit.value(),
            });
        }

        let mode = if self.using_cap && self.hees.cap_can_serve(load) {
            DualMode::Ultracap
        } else if !self.using_cap && self.hees.soe() < self.recharge_target && load.value() >= 0.0 {
            DualMode::BatteryRecharging(self.recharge_power.value())
        } else {
            DualMode::Battery
        };

        let hees_step = self.hees.step(mode, load, self.state.battery, dt);
        self.state = self.thermal.step_crank_nicolson(
            self.state,
            hees_step.battery_heat,
            self.state.coolant,
            dt,
        );

        StepRecord {
            load,
            hees: hees_step,
            cooling_power: Watts::ZERO,
            state: self.snapshot(),
        }
    }

    fn state(&self) -> SystemState {
        self.snapshot()
    }
}

impl Dual {
    fn snapshot(&self) -> SystemState {
        SystemState {
            battery_temp: self.state.battery,
            coolant_temp: self.state.coolant,
            soe: self.hees.soe(),
            soc: self.hees.soc(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cool_battery_carries_the_load() {
        let config = SystemConfig::default();
        let mut d = Dual::new(&config).expect("valid");
        let rec = d.step(Watts::new(30_000.0), &[], Seconds::new(1.0));
        assert!(rec.hees.battery_internal.value() > 0.0);
    }

    #[test]
    fn hot_battery_hands_off_to_the_cap() {
        let config = SystemConfig::default();
        let mut d = Dual::new(&config).expect("valid");
        // Pre-heat the pack past the threshold.
        d.state = ThermalState::uniform(Kelvin::from_celsius(39.0));
        let rec = d.step(Watts::new(25_000.0), &[], Seconds::new(1.0));
        assert_eq!(rec.hees.battery_internal, Watts::ZERO);
        assert!(rec.hees.cap_internal.value() > 0.0);
    }

    #[test]
    fn recharges_the_bank_when_cool_and_low() {
        let config = SystemConfig::default();
        let mut d = Dual::new(&config).expect("valid");
        d.hees.set_state(Ratio::ONE, Ratio::HALF);
        let rec = d.step(Watts::new(10_000.0), &[], Seconds::new(1.0));
        assert!(rec.hees.cap_internal.value() < 0.0, "bank charging");
        assert!(
            rec.hees.battery_internal.value() > 10_000.0,
            "battery carries load + recharge"
        );
    }

    #[test]
    fn bank_runs_dry_under_sustained_heat() {
        // The Fig. 1 motivation: with a small bank and a hot battery,
        // the cap depletes and the battery must take back the load while
        // still hot.
        let config = SystemConfig {
            capacitance: otem_units::Farads::new(5_000.0),
            ..SystemConfig::default()
        };
        let mut d = Dual::new(&config).expect("valid");
        d.state = ThermalState::uniform(Kelvin::from_celsius(39.0));
        let mut battery_resumed_hot = false;
        for _ in 0..300 {
            let rec = d.step(Watts::new(30_000.0), &[], Seconds::new(1.0));
            if rec.hees.battery_internal.value() > 0.0
                && rec.state.battery_temp > Kelvin::from_celsius(37.0)
            {
                battery_resumed_hot = true;
                break;
            }
        }
        assert!(battery_resumed_hot, "5 kF bank should deplete while hot");
    }
}
