//! Baseline 2: battery-only storage with a thermostatic active cooling
//! system (after Karimi & Li \[25\]).

use crate::config::SystemConfig;
use crate::controller::{Controller, StepRecord, SystemState};
use crate::error::OtemError;
use otem_battery::BatteryPack;
use otem_hees::HeesStep;
use otem_telemetry::{span, Event, NullSink, Sink};
use otem_thermal::{CoolerAction, CoolingPlant, ThermalModel, ThermalState};
use otem_units::{Kelvin, Ratio, Seconds, Watts};

/// Battery as the sole storage; a bang-bang thermostat drives the
/// cooling loop at full authority above `on_threshold` and shuts it off
/// below `off_threshold`. The cooling load is served from the bus (i.e.
/// by the battery itself).
#[derive(Debug, Clone)]
pub struct ActiveCooling {
    battery: BatteryPack,
    thermal: ThermalModel,
    plant: CoolingPlant,
    state: ThermalState,
    cooling_on: bool,
    /// Thermostat switch-on temperature.
    pub on_threshold: Kelvin,
    /// Thermostat switch-off temperature.
    pub off_threshold: Kelvin,
}

impl ActiveCooling {
    /// Builds the baseline from the shared system configuration with the
    /// default 30 °C / 28 °C thermostat band.
    ///
    /// # Errors
    ///
    /// Propagates component validation errors.
    pub fn new(config: &SystemConfig) -> Result<Self, OtemError> {
        config.validate()?;
        let mut battery = BatteryPack::new(config.cell.clone(), config.pack)?;
        battery.set_soc(config.initial_soc);
        Ok(Self {
            battery,
            thermal: ThermalModel::new(config.thermal_active)?,
            plant: CoolingPlant::new(config.plant)?,
            state: ThermalState::uniform(config.ambient),
            cooling_on: false,
            on_threshold: Kelvin::from_celsius(30.0),
            off_threshold: Kelvin::from_celsius(28.0),
        })
    }
}

impl Controller for ActiveCooling {
    fn name(&self) -> &'static str {
        "ActiveCooling"
    }

    fn step(&mut self, load: Watts, forecast: &[Watts], dt: Seconds) -> StepRecord {
        self.step_with(load, forecast, dt, &NullSink)
    }

    fn step_with(
        &mut self,
        load: Watts,
        _forecast: &[Watts],
        dt: Seconds,
        sink: &dyn Sink,
    ) -> StepRecord {
        let _step_span = span(sink, "cooling_step");
        // Thermostat with hysteresis.
        let was_on = self.cooling_on;
        if self.state.battery >= self.on_threshold {
            self.cooling_on = true;
        } else if self.state.battery <= self.off_threshold {
            self.cooling_on = false;
        }
        if self.cooling_on != was_on {
            sink.record(Event::CoolingToggle {
                on: self.cooling_on,
                battery_temp_k: self.state.battery.value(),
            });
        }

        let action = if self.cooling_on {
            // Full authority: chill to the coldest feasible inlet.
            let coldest = self.plant.coldest_inlet(self.state.coolant);
            self.plant.actuate(self.state.coolant, coldest)
        } else {
            CoolerAction::idle(self.state.coolant)
        };

        // Cooling electricity rides on the bus: the battery serves both.
        let total = load + action.total_power();
        let draw = self
            .battery
            .draw_power(total, self.state.battery)
            .or_else(|_| {
                let peak = self.battery.max_discharge_power(self.state.battery) * 0.999;
                self.battery.draw_power(peak.min(total), self.state.battery)
            })
            .unwrap_or(otem_battery::PowerDraw::IDLE);
        self.battery.integrate(draw, dt);

        self.state = self
            .thermal
            .step_crank_nicolson(self.state, draw.heat, action.inlet, dt);

        StepRecord {
            load,
            hees: HeesStep {
                delivered: draw.terminal_power - action.total_power(),
                shortfall: Watts::new((total.value() - draw.terminal_power.value()).max(0.0)),
                battery_internal: draw.internal_power,
                cap_internal: Watts::ZERO,
                battery_heat: draw.heat,
                battery_c_rate: draw.c_rate,
                converter_loss: Watts::ZERO,
            },
            cooling_power: action.total_power(),
            state: self.snapshot(),
        }
    }

    fn state(&self) -> SystemState {
        self.snapshot()
    }
}

impl ActiveCooling {
    fn snapshot(&self) -> SystemState {
        SystemState {
            battery_temp: self.state.battery,
            coolant_temp: self.state.coolant,
            soe: Ratio::ZERO, // no ultracapacitor in this baseline
            soc: self.battery.soc(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermostat_kicks_in_under_sustained_load() {
        let config = SystemConfig::default();
        let mut c = ActiveCooling::new(&config).expect("valid");
        let mut saw_cooling = false;
        for _ in 0..1800 {
            let rec = c.step(Watts::new(60_000.0), &[], Seconds::new(1.0));
            if rec.cooling_power.value() > 0.0 {
                saw_cooling = true;
            }
        }
        assert!(saw_cooling, "cooling never engaged");
        // The loop must keep the pack well below the passive equilibrium.
        assert!(c.state().battery_temp < Kelvin::from_celsius(38.0));
    }

    #[test]
    fn idle_vehicle_never_cools() {
        let config = SystemConfig::default();
        let mut c = ActiveCooling::new(&config).expect("valid");
        for _ in 0..300 {
            let rec = c.step(Watts::new(500.0), &[], Seconds::new(1.0));
            assert_eq!(rec.cooling_power, Watts::ZERO);
        }
    }

    #[test]
    fn hysteresis_prevents_chatter() {
        let config = SystemConfig::default();
        let mut c = ActiveCooling::new(&config).expect("valid");
        // Force the pack hot, then watch the on/off transitions.
        let mut transitions = 0;
        let mut last_on = false;
        for t in 0..3600 {
            let load = if t % 2 == 0 { 80_000.0 } else { 10_000.0 };
            let rec = c.step(Watts::new(load), &[], Seconds::new(1.0));
            let on = rec.cooling_power.value() > 0.0;
            if on != last_on {
                transitions += 1;
                last_on = on;
            }
        }
        assert!(transitions < 40, "{transitions} thermostat transitions");
    }
}
