//! The paper's contribution: OTEM — MPC-based joint thermal and energy
//! management of the hybrid architecture plus active cooling
//! (Section III, Algorithm 1).

use crate::config::SystemConfig;
use crate::controller::{Controller, PlantFault, StepRecord, SystemState};
use crate::error::OtemError;
use crate::mpc::{Mpc, MpcConfig, MpcDecision, MpcPlant};
use otem_battery::BatteryPack;
use otem_converter::DcDcConverter;
use otem_hees::{HybridCommand, HybridHees};
use otem_telemetry::{span, Event, NullSink, Sink};
use otem_thermal::{CoolerAction, CoolingPlant, ThermalModel, ThermalState};
use otem_ultracap::UltracapParams;
use otem_units::{Kelvin, Seconds, Watts};

/// The OTEM controller: hybrid (DC-bus) HEES + active cooling, jointly
/// optimised each period by a receding-horizon MPC that maintains the
/// Thermal and Energy Budget — pre-charging the ultracapacitor and
/// pre-cooling the battery ahead of predicted demand.
#[derive(Debug, Clone)]
pub struct Otem {
    hees: HybridHees,
    thermal: ThermalModel,
    plant: CoolingPlant,
    state: ThermalState,
    mpc: Mpc,
    config: SystemConfig,
    /// Whether the cooling loop ran last period — tracked solely so the
    /// telemetry path can report [`Event::CoolingToggle`] on the
    /// idle↔active transitions.
    cooling_on: bool,
    /// Injected fault: the cooling pump is stuck off (the MPC keeps
    /// commanding it, the plant ignores the command).
    pump_stuck: bool,
    /// Injected fault: additive bias (K) on the battery temperature the
    /// controller reads. The true plant state evolves unbiased.
    sensor_bias_k: f64,
}

impl Otem {
    /// Builds the controller with default MPC tuning.
    ///
    /// # Errors
    ///
    /// Propagates component validation errors.
    pub fn new(config: &SystemConfig) -> Result<Self, OtemError> {
        Self::with_mpc(config, MpcConfig::default())
    }

    /// Builds the controller with explicit MPC tuning (used by the
    /// horizon/weight ablations).
    ///
    /// # Errors
    ///
    /// Propagates component validation errors.
    pub fn with_mpc(config: &SystemConfig, mpc_config: MpcConfig) -> Result<Self, OtemError> {
        config.validate()?;
        let battery = BatteryPack::new(config.cell.clone(), config.pack)?;
        let mut hees = HybridHees::new(
            battery,
            UltracapParams::paper_bank(config.capacitance),
            DcDcConverter::battery_side(),
            DcDcConverter::ultracap_side(),
        )?;
        hees.set_state(config.initial_soc, config.initial_soe);
        Ok(Self {
            hees,
            thermal: ThermalModel::new(config.thermal_active)?,
            plant: CoolingPlant::new(config.plant)?,
            state: ThermalState::uniform(config.ambient),
            mpc: Mpc::new(mpc_config),
            config: config.clone(),
            cooling_on: false,
            pump_stuck: false,
            sensor_bias_k: 0.0,
        })
    }

    /// The MPC tuning in use.
    pub fn mpc_config(&self) -> &MpcConfig {
        self.mpc.config()
    }

    /// The system configuration this controller was built from (the
    /// supervisor reads bounds and limits from here).
    pub fn system_config(&self) -> &SystemConfig {
        &self.config
    }

    /// Clears the MPC's warm-start memory. The supervisor calls this
    /// when re-arming after a fallback episode so the first re-armed
    /// solve does not extrapolate a plan computed under fault.
    pub fn reset_mpc(&mut self) {
        self.mpc.reset();
    }

    /// Replaces the MPC solver's deadline time source. Production keeps
    /// the default monotonic clock; test harnesses inject a
    /// [`crate::mpc::VirtualClock`] so deadline-triggered paths are
    /// deterministic and bit-reproducible.
    pub fn set_solver_clock(&mut self, clock: std::sync::Arc<dyn crate::mpc::Clock>) {
        self.mpc.set_clock(clock);
    }

    /// The thermal state as the controller's sensors report it —
    /// identical to the true state unless a [`PlantFault::SensorBias`]
    /// is active.
    fn measured_thermal(&self) -> ThermalState {
        let mut state = self.state;
        if self.sensor_bias_k != 0.0 {
            state.battery = Kelvin::new(state.battery.value() + self.sensor_bias_k);
        }
        state
    }

    fn plant_snapshot(&self) -> MpcPlant {
        MpcPlant {
            hees: self.hees.clone(),
            thermal: self.thermal,
            plant: self.plant,
            state: self.measured_thermal(),
            aging: self.config.aging,
            soc_min: self.config.soc_min,
            soe_min: self.config.soe_min,
            battery_power_max: self.config.battery_power_max,
            cap_power_max: self.config.cap_power_max,
        }
    }
}

impl Controller for Otem {
    fn name(&self) -> &'static str {
        "OTEM"
    }

    fn step(&mut self, load: Watts, forecast: &[Watts], dt: Seconds) -> StepRecord {
        self.step_with(load, forecast, dt, &NullSink)
    }

    fn step_with(
        &mut self,
        load: Watts,
        forecast: &[Watts],
        dt: Seconds,
        sink: &dyn Sink,
    ) -> StepRecord {
        let _step_span = span(sink, "otem_step");
        let decision = self.plan_with(load, forecast, dt, sink);
        self.apply_with(load, decision.cap_bus, decision.cool_duty, dt, sink)
    }

    fn state(&self) -> SystemState {
        self.snapshot()
    }

    fn inject(&mut self, fault: PlantFault) -> bool {
        match fault {
            PlantFault::PumpStuck(stuck) => {
                self.pump_stuck = stuck;
                true
            }
            PlantFault::SolverIterationCap(cap) => {
                self.mpc.set_iteration_cap(cap);
                true
            }
            PlantFault::SolverDeadlineNs(deadline_ns) => {
                self.mpc.set_deadline_ns(deadline_ns);
                true
            }
            PlantFault::SensorBias { temp_k } => {
                self.sensor_bias_k = temp_k;
                true
            }
        }
    }
}

impl Otem {
    /// Algorithm 1 lines 11–14: build the control window and run the
    /// receding-horizon optimisation, returning the planned first move
    /// *without* actuating the plant. [`Otem::step_with`] is exactly
    /// [`Otem::plan_with`] followed by [`Otem::apply_with`]; the split
    /// exists so a supervisor can validate the decision in between and
    /// substitute a fallback command on the same plant.
    pub fn plan_with(
        &mut self,
        load: Watts,
        forecast: &[Watts],
        dt: Seconds,
        sink: &dyn Sink,
    ) -> MpcDecision {
        // Fill the control window with the current request followed by
        // the forecast. With move blocking, each decision block spans
        // `block_size` control periods and sees the mean load of its span.
        let n = self.mpc.config().horizon;
        let block = self.mpc.config().block_size.max(1);
        let mut raw = Vec::with_capacity(n * block);
        raw.push(load);
        raw.extend(forecast.iter().take(n * block - 1).copied());
        raw.resize(n * block, Watts::ZERO);
        let loads: Vec<Watts> = raw
            .chunks(block)
            .map(|c| c.iter().copied().sum::<Watts>() / c.len() as f64)
            .collect();

        // Line 14: optimise (over block-sized model steps).
        let decision = self
            .mpc
            .solve_with(&self.plant_snapshot(), &loads, dt * block as f64, sink);

        if decision.cap_bus.value().abs() >= 0.995 * self.config.cap_power_max.value() {
            sink.record(Event::UcapSaturated {
                commanded_w: decision.cap_bus.value(),
                limit_w: self.config.cap_power_max.value(),
            });
        }
        decision
    }

    /// Algorithm 1 lines 15–16: apply one period's command (`cap_bus`,
    /// `cool_duty`) to the real plant and record what happened. The
    /// command need not come from the MPC — the supervisor routes its
    /// rule-based fallback through the same path, so fallback steps are
    /// physically identical to MPC steps in every respect but the source
    /// of the numbers.
    pub fn apply_with(
        &mut self,
        load: Watts,
        cap_bus: Watts,
        cool_duty: f64,
        dt: Seconds,
        sink: &dyn Sink,
    ) -> StepRecord {
        let outlet = self.state.coolant;
        let coldest = self.plant.coldest_inlet(outlet);
        let inlet = Kelvin::new(
            outlet.value() - cool_duty.clamp(0.0, 1.0) * (outlet.value() - coldest.value()),
        );
        let cooling_active = cool_duty > 1e-3 && !self.pump_stuck;
        if cooling_active != self.cooling_on {
            self.cooling_on = cooling_active;
            sink.record(Event::CoolingToggle {
                on: cooling_active,
                battery_temp_k: self.state.battery.value(),
            });
        }
        let action = if cooling_active {
            self.plant.actuate(outlet, inlet)
        } else {
            CoolerAction::idle(outlet)
        };

        let battery_bus = load + action.total_power() - cap_bus;
        let hees_step = self.hees.step(
            HybridCommand {
                battery_bus,
                cap_bus,
            },
            self.state.battery,
            dt,
        );
        self.state =
            self.thermal
                .step_crank_nicolson(self.state, hees_step.battery_heat, action.inlet, dt);

        StepRecord {
            load,
            hees: hees_step,
            cooling_power: action.total_power(),
            state: self.snapshot(),
        }
    }

    fn snapshot(&self) -> SystemState {
        SystemState {
            battery_temp: self.state.battery,
            coolant_temp: self.state.coolant,
            soe: self.hees.soe(),
            soc: self.hees.soc(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_mpc() -> MpcConfig {
        MpcConfig {
            horizon: 6,
            solver_iterations: 15,
            ..MpcConfig::default()
        }
    }

    #[test]
    fn serves_the_load() {
        let config = SystemConfig::default();
        let mut otem = Otem::with_mpc(&config, short_mpc()).expect("valid");
        let forecast = vec![Watts::new(20_000.0); 6];
        let rec = otem.step(Watts::new(20_000.0), &forecast, Seconds::new(1.0));
        assert!(
            (rec.hees.delivered.value() - 20_000.0 - rec.cooling_power.value()).abs() < 2_000.0,
            "delivered {:?} for 20 kW + cooling {:?}",
            rec.hees.delivered,
            rec.cooling_power
        );
        assert!(rec.hees.shortfall.value() < 1_000.0);
    }

    #[test]
    fn hot_pack_gets_managed() {
        let config = SystemConfig::default();
        let mut otem = Otem::with_mpc(&config, short_mpc()).expect("valid");
        otem.state = ThermalState::uniform(Kelvin::from_celsius(39.0));
        let forecast = vec![Watts::new(50_000.0); 6];
        let mut cooled_or_offloaded = false;
        for _ in 0..30 {
            let rec = otem.step(Watts::new(50_000.0), &forecast, Seconds::new(1.0));
            if rec.cooling_power.value() > 0.0 || rec.hees.cap_internal.value() > 1_000.0 {
                cooled_or_offloaded = true;
                break;
            }
        }
        assert!(cooled_or_offloaded, "hot pack ignored by the MPC");
    }

    #[test]
    fn regen_is_absorbed() {
        let config = SystemConfig::default();
        let mut otem = Otem::with_mpc(&config, short_mpc()).expect("valid");
        otem.hees
            .set_state(otem_units::Ratio::new(0.8), otem_units::Ratio::new(0.5));
        let forecast = vec![Watts::new(-30_000.0); 6];
        let before_soc = otem.state().soc;
        let before_soe = otem.state().soe;
        for _ in 0..10 {
            let _ = otem.step(Watts::new(-30_000.0), &forecast, Seconds::new(1.0));
        }
        let after = otem.state();
        assert!(
            after.soc > before_soc || after.soe > before_soe,
            "regeneration vanished"
        );
    }
}
