//! Simulation results: the quantities the paper's evaluation reports.

use crate::controller::StepRecord;
use otem_units::{Joules, Kelvin, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// The outcome of driving one controller over one power trace.
///
/// Collects the paper's Algorithm 1 outputs — accumulated battery
/// capacity loss `Q_loss` and HEES energy `Energy` — plus the full
/// per-step records for the temporal analyses (Figs. 6–7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationResult {
    /// Methodology name.
    pub methodology: &'static str,
    /// Control period used.
    pub dt: Seconds,
    /// Per-step records.
    pub records: Vec<StepRecord>,
    /// Accumulated battery capacity loss (fraction of rated capacity).
    pub capacity_loss: f64,
}

impl SimulationResult {
    /// Accumulated capacity loss (fraction of rated capacity) — the
    /// paper's `Q_loss` output.
    pub fn capacity_loss(&self) -> f64 {
        self.capacity_loss
    }

    /// Total energy consumed from the HEES (battery chemical + net
    /// ultracapacitor energy) — the paper's `Energy` output. Includes
    /// the energy spent powering the cooling system, which is served
    /// from the bus.
    pub fn energy(&self) -> Joules {
        self.records.iter().map(|r| r.total_power() * self.dt).sum()
    }

    /// Energy drawn by the cooling system alone.
    pub fn cooling_energy(&self) -> Joules {
        self.records.iter().map(|r| r.cooling_power * self.dt).sum()
    }

    /// Average power consumption over the route (the Fig. 9 / Table I
    /// metric).
    pub fn average_power(&self) -> Watts {
        let duration = self.duration();
        if duration.value() == 0.0 {
            return Watts::ZERO;
        }
        self.energy() / duration
    }

    /// Route duration.
    pub fn duration(&self) -> Seconds {
        self.dt * self.records.len() as f64
    }

    /// Peak battery temperature reached.
    pub fn peak_battery_temp(&self) -> Kelvin {
        self.records
            .iter()
            .map(|r| r.state.battery_temp)
            .fold(Kelvin::ZERO, Kelvin::max)
    }

    /// Time (s) spent with the battery above the given temperature —
    /// the thermal-violation measure behind Fig. 1.
    pub fn time_above(&self, limit: Kelvin) -> Seconds {
        let n = self
            .records
            .iter()
            .filter(|r| r.state.battery_temp > limit)
            .count();
        self.dt * n as f64
    }

    /// Total unserved load energy (should be ≈ 0 for a healthy
    /// configuration; nonzero values flag an undersized storage).
    pub fn shortfall_energy(&self) -> Joules {
        self.records
            .iter()
            .map(|r| r.hees.shortfall * self.dt)
            .sum()
    }

    /// The battery-temperature time series (for Figs. 1, 6, 7).
    pub fn battery_temps(&self) -> Vec<Kelvin> {
        self.records.iter().map(|r| r.state.battery_temp).collect()
    }

    /// The ultracapacitor SoE time series as fractions (for Fig. 7).
    pub fn soe_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.state.soe.value()).collect()
    }

    /// Battery-lifetime projection: driving hours until the 20 %
    /// end-of-life budget is exhausted, extrapolating this route's loss
    /// rate (the paper's BLT metric).
    ///
    /// Returns `None` for an empty route or zero accumulated loss.
    pub fn projected_lifetime_hours(&self) -> Option<f64> {
        if self.capacity_loss <= 0.0 || self.records.is_empty() {
            return None;
        }
        let rate = self.capacity_loss / self.duration().value();
        Some(0.20 / rate / 3600.0)
    }

    /// Serialises the per-step records as CSV (`t,load_w,delivered_w,
    /// battery_internal_w,cap_internal_w,cooling_w,t_battery_c,
    /// t_coolant_c,soc,soe`) for external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 96 + 128);
        out.push_str(
            "t,load_w,delivered_w,battery_internal_w,cap_internal_w,             cooling_w,t_battery_c,t_coolant_c,soc,soe
",
        );
        for (i, r) in self.records.iter().enumerate() {
            use std::fmt::Write;
            let _ = writeln!(
                out,
                "{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.4},{:.4},{:.6},{:.6}",
                i as f64 * self.dt.value(),
                r.load.value(),
                r.hees.delivered.value(),
                r.hees.battery_internal.value(),
                r.hees.cap_internal.value(),
                r.cooling_power.value(),
                r.state.battery_temp.to_celsius().value(),
                r.state.coolant_temp.to_celsius().value(),
                r.state.soc.value(),
                r.state.soe.value(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::SystemState;
    use otem_hees::HeesStep;
    use otem_units::Ratio;

    fn record(load: f64, internal: f64, cooling: f64, temp_c: f64) -> StepRecord {
        StepRecord {
            load: Watts::new(load),
            hees: HeesStep {
                battery_internal: Watts::new(internal),
                ..HeesStep::default()
            },
            cooling_power: Watts::new(cooling),
            state: SystemState {
                battery_temp: Kelvin::from_celsius(temp_c),
                coolant_temp: Kelvin::from_celsius(temp_c),
                soe: Ratio::HALF,
                soc: Ratio::HALF,
            },
        }
    }

    fn result() -> SimulationResult {
        SimulationResult {
            methodology: "test",
            dt: Seconds::new(1.0),
            records: vec![
                record(1000.0, 1100.0, 0.0, 25.0),
                record(2000.0, 2250.0, 200.0, 32.0),
                record(500.0, 600.0, 200.0, 41.0),
            ],
            capacity_loss: 1.5e-6,
        }
    }

    #[test]
    fn energy_sums_internal_power() {
        let r = result();
        assert_eq!(r.energy(), Joules::new(1100.0 + 2250.0 + 600.0));
        assert_eq!(r.cooling_energy(), Joules::new(400.0));
    }

    #[test]
    fn average_power_is_energy_over_duration() {
        let r = result();
        assert!((r.average_power().value() - 3950.0 / 3.0).abs() < 1e-9);
        assert_eq!(r.duration(), Seconds::new(3.0));
    }

    #[test]
    fn thermal_summaries() {
        let r = result();
        assert_eq!(r.peak_battery_temp(), Kelvin::from_celsius(41.0));
        assert_eq!(r.time_above(Kelvin::from_celsius(40.0)), Seconds::new(1.0));
        assert_eq!(r.time_above(Kelvin::from_celsius(30.0)), Seconds::new(2.0));
        assert_eq!(r.battery_temps().len(), 3);
    }

    #[test]
    fn lifetime_projection_extrapolates_route_rate() {
        let r = result();
        let hours = r.projected_lifetime_hours().expect("loss accumulated");
        // rate = 1.5e-6 per 3 s → 0.2/rate = 4e5 s ≈ 111.1 h
        assert!((hours - 0.20 / (1.5e-6 / 3.0) / 3600.0).abs() < 1e-9);
    }

    #[test]
    fn csv_has_header_and_one_row_per_record() {
        let r = result();
        let csv = r.to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + r.records.len());
        assert!(lines[0].starts_with("t,load_w"));
        assert!(lines[1].starts_with("0,1000.000"));
    }

    #[test]
    fn empty_result_is_well_defined() {
        let r = SimulationResult {
            methodology: "empty",
            dt: Seconds::new(1.0),
            records: vec![],
            capacity_loss: 0.0,
        };
        assert_eq!(r.average_power(), Watts::ZERO);
        assert_eq!(r.energy(), Joules::ZERO);
        assert_eq!(r.projected_lifetime_hours(), None);
    }
}
