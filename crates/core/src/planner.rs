//! Clairvoyant charge-allocation planner: dynamic programming over the
//! whole route (the offline formulation of Xie et al.'s HEES charge
//! allocation \[14\]).
//!
//! Given the *entire* power-request trace up front, the planner computes
//! the battery/ultracapacitor split that minimises total HEES energy
//! (battery chemical + bank + conversion losses) by DP over a
//! (time × state-of-energy) grid. It ignores thermal dynamics — it is an
//! *energy* bound, not a lifetime controller — and it is not causal.
//!
//! Its role in this workspace is as a **benchmark**: the receding-horizon
//! OTEM only sees a short forecast window; comparing its HEES energy to
//! the clairvoyant optimum measures what the missing future knowledge
//! costs (see the `dp_gap` integration test and the Criterion group).

use crate::config::SystemConfig;
use crate::error::OtemError;
use otem_drivecycle::PowerTrace;
use otem_hees::{HybridCommand, HybridHees};
use otem_units::{Joules, Ratio, Watts};
use serde::{Deserialize, Serialize};

/// DP discretisation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Number of state-of-energy grid points.
    pub soe_levels: usize,
    /// Candidate ultracapacitor bus powers per step, spanning
    /// ±`cap_power_max` (odd count keeps zero in the set).
    pub actions: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            soe_levels: 41,
            actions: 11,
        }
    }
}

/// The planner's output: per-step ultracapacitor bus-power commands and
/// the achieved total.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// Commanded bank bus power per step (positive = bank serves).
    pub cap_bus: Vec<Watts>,
    /// Predicted total HEES energy under the plan.
    pub energy: Joules,
}

/// Computes the clairvoyant optimal split for a trace.
///
/// Thermal state is frozen at the configured ambient (the planner bounds
/// *energy*, not lifetime). Battery SoC is tracked approximately through
/// the model plant while evaluating the winning path.
///
/// # Errors
///
/// Propagates component construction errors from the configuration.
pub fn plan_split(
    config: &SystemConfig,
    trace: &PowerTrace,
    planner: &PlannerConfig,
) -> Result<Plan, OtemError> {
    let n = trace.len();
    let levels = planner.soe_levels.max(2);
    let actions = planner.actions.max(3);
    let dt = trace.dt();

    // Reference plant for step-cost evaluation (cloned per transition).
    let mut base = HybridHees::ev_default(config.capacitance)?;
    base.set_state(config.initial_soc, config.initial_soe);

    let soe_of = |level: usize| -> f64 {
        config.soe_min.value() + (1.0 - config.soe_min.value()) * level as f64 / (levels - 1) as f64
    };
    let level_of = |soe: f64| -> usize {
        let t = (soe - config.soe_min.value()) / (1.0 - config.soe_min.value());
        ((t * (levels - 1) as f64).round() as isize).clamp(0, levels as isize - 1) as usize
    };
    let action_power = |a: usize| -> Watts {
        let frac = 2.0 * a as f64 / (actions - 1) as f64 - 1.0;
        config.cap_power_max * frac
    };

    // Backward DP: value[level] = minimal cost-to-go from step t.
    const INF: f64 = f64::INFINITY;
    let mut value = vec![0.0f64; levels];
    let mut policy = vec![vec![0u16; levels]; n];

    for t in (0..n).rev() {
        let load = trace.get(t);
        let mut next_value = vec![INF; levels];
        for level in 0..levels {
            let soe = soe_of(level);
            let mut best = INF;
            let mut best_a = 0u16;
            for a in 0..actions {
                let cap_bus = action_power(a);
                let mut plant = base.clone();
                plant.set_state(Ratio::new(0.8), Ratio::new(soe));
                let step = plant.step(
                    HybridCommand {
                        battery_bus: load - cap_bus,
                        cap_bus,
                    },
                    config.ambient,
                    dt,
                );
                // Infeasible splits (shortfall) are forbidden transitions.
                if step.shortfall.value() > 1.0 {
                    continue;
                }
                let next_level = level_of(plant.soe().value());
                // Signed cost: regeneration absorbed into either storage
                // reduces net consumption, matching the simulator's
                // energy metric.
                let cost = step.hees_power().value() * dt.value();
                let total = cost + value[next_level];
                if total < best {
                    best = total;
                    best_a = a as u16;
                }
            }
            next_value[level] = best;
            policy[t][level] = best_a;
        }
        value = next_value;
    }

    // Forward pass: follow the winning policy with the real plant.
    let mut plant = base;
    let mut cap_bus = Vec::with_capacity(n);
    let mut energy = 0.0;
    for (t, row) in policy.iter().enumerate() {
        let level = level_of(plant.soe().value());
        let a = row[level] as usize;
        let command = action_power(a);
        let step = plant.step(
            HybridCommand {
                battery_bus: trace.get(t) - command,
                cap_bus: command,
            },
            config.ambient,
            dt,
        );
        energy += step.hees_power().value() * dt.value();
        cap_bus.push(command);
    }

    Ok(Plan {
        cap_bus,
        energy: Joules::new(energy),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use otem_units::Seconds;

    fn small_planner() -> PlannerConfig {
        PlannerConfig {
            soe_levels: 15,
            actions: 7,
        }
    }

    fn flat_trace(watts: f64, n: usize) -> PowerTrace {
        PowerTrace::new(Seconds::new(1.0), vec![Watts::new(watts); n])
    }

    #[test]
    fn plan_covers_every_step() {
        let config = SystemConfig::default();
        let trace = flat_trace(15_000.0, 40);
        let plan = plan_split(&config, &trace, &small_planner()).unwrap();
        assert_eq!(plan.cap_bus.len(), 40);
        assert!(plan.energy.value() > 0.0);
    }

    #[test]
    fn steady_load_prefers_the_battery() {
        // A flat load gains nothing from cycling energy through the
        // bank's converter: the optimal plan leaves the bank untouched.
        let config = SystemConfig::default();
        let trace = flat_trace(20_000.0, 30);
        let plan = plan_split(&config, &trace, &small_planner()).unwrap();
        let cap_energy: f64 = plan.cap_bus.iter().map(|p| p.value().abs()).sum::<f64>();
        // Near-zero bank activity (grid noise allowed).
        assert!(
            cap_energy < 0.1 * 20_000.0 * 30.0,
            "bank used {cap_energy} W·steps on a flat load"
        );
    }

    #[test]
    fn plan_beats_battery_only_on_pulsed_load() {
        // Pulses: shaving them with the bank reduces I²R losses enough
        // to beat battery-only despite conversion losses.
        let config = SystemConfig::default();
        let mut samples = Vec::new();
        for _ in 0..6 {
            samples.extend(vec![Watts::new(2_000.0); 5]);
            samples.extend(vec![Watts::new(90_000.0); 3]);
        }
        let trace = PowerTrace::new(Seconds::new(1.0), samples);
        let plan = plan_split(&config, &trace, &small_planner()).unwrap();

        // Battery-only comparison on the same plant.
        let mut plant = HybridHees::ev_default(config.capacitance).unwrap();
        plant.set_state(config.initial_soc, config.initial_soe);
        let mut battery_only = 0.0;
        for t in 0..trace.len() {
            let step = plant.step(
                HybridCommand {
                    battery_bus: trace.get(t),
                    cap_bus: Watts::ZERO,
                },
                config.ambient,
                Seconds::new(1.0),
            );
            battery_only += step.hees_power().value().max(0.0);
        }
        assert!(
            plan.energy.value() < battery_only,
            "plan {:.0} J should beat battery-only {battery_only:.0} J",
            plan.energy.value()
        );
    }

    #[test]
    fn empty_trace_is_an_empty_plan() {
        let config = SystemConfig::default();
        let trace = PowerTrace::new(Seconds::new(1.0), vec![]);
        let plan = plan_split(&config, &trace, &small_planner()).unwrap();
        assert!(plan.cap_bus.is_empty());
        assert_eq!(plan.energy, Joules::ZERO);
    }
}
