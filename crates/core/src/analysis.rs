//! Post-simulation analysis: TEB-event detection, energy breakdowns and
//! thermal compliance reports over a [`SimulationResult`].
//!
//! The paper's Fig. 7 narrative — "the OTEM provides enough TEB when it
//! notices large EV power requests in the near-future" — is made
//! measurable here: a *pre-charge event* is a step that charges the
//! ultracapacitor during modest load with a large request inside the
//! lookahead; a *pre-cool event* runs the cooler while the battery is
//! already below the soft ceiling, ahead of such a request.

use crate::metrics::SimulationResult;
use otem_units::{Joules, Kelvin, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Thresholds for classifying TEB events.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TebCriteria {
    /// How far ahead (steps) a "near-future" request may sit.
    pub lookahead: usize,
    /// What counts as a large upcoming request.
    pub peak_threshold: Watts,
    /// Loads below this are "modest" (preparation can happen).
    pub quiet_threshold: Watts,
    /// Minimum charging power for a pre-charge event.
    pub charge_threshold: Watts,
    /// Minimum cooling electric power for a pre-cool event.
    pub cool_threshold: Watts,
}

impl Default for TebCriteria {
    fn default() -> Self {
        Self {
            lookahead: 15,
            peak_threshold: Watts::new(25_000.0),
            quiet_threshold: Watts::new(20_000.0),
            charge_threshold: Watts::new(500.0),
            cool_threshold: Watts::new(200.0),
        }
    }
}

/// Counted TEB events over a run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TebReport {
    /// Steps that pre-charged the bank ahead of a large request.
    pub precharge_events: usize,
    /// Steps that pre-cooled the battery ahead of a large request.
    pub precool_events: usize,
    /// Large-request steps where the bank shared the load.
    pub peaks_shared: usize,
    /// Large-request steps the battery served alone.
    pub peaks_alone: usize,
}

impl TebReport {
    /// Fraction of large-request steps the bank helped with.
    pub fn peak_share_fraction(&self) -> f64 {
        let total = self.peaks_shared + self.peaks_alone;
        if total == 0 {
            0.0
        } else {
            self.peaks_shared as f64 / total as f64
        }
    }
}

/// Scans a result for TEB events under the given criteria.
pub fn teb_report(result: &SimulationResult, criteria: &TebCriteria) -> TebReport {
    let records = &result.records;
    let mut report = TebReport::default();
    for (t, rec) in records.iter().enumerate() {
        let upcoming_peak = records
            .iter()
            .take((t + 1 + criteria.lookahead).min(records.len()))
            .skip(t + 1)
            .map(|r| r.load)
            .fold(Watts::ZERO, Watts::max);
        let peak_coming = upcoming_peak >= criteria.peak_threshold;
        let quiet_now = rec.load < criteria.quiet_threshold;

        if quiet_now && peak_coming {
            if rec.hees.cap_internal <= -criteria.charge_threshold {
                report.precharge_events += 1;
            }
            if rec.cooling_power >= criteria.cool_threshold {
                report.precool_events += 1;
            }
        }
        if rec.load >= criteria.peak_threshold {
            if rec.hees.cap_internal >= criteria.charge_threshold {
                report.peaks_shared += 1;
            } else {
                report.peaks_alone += 1;
            }
        }
    }
    report
}

/// Where the consumed energy went.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Energy delivered toward the EV load (net of cooling).
    pub delivered: Joules,
    /// Joule + entropic losses inside the battery.
    pub battery_loss: Joules,
    /// DC/DC conversion losses.
    pub converter_loss: Joules,
    /// Electric energy spent on the cooling system.
    pub cooling: Joules,
    /// Load energy that could not be served.
    pub shortfall: Joules,
}

impl EnergyBreakdown {
    /// Losses as a fraction of delivered energy.
    pub fn loss_fraction(&self) -> f64 {
        let delivered = self.delivered.value();
        if delivered <= 0.0 {
            return 0.0;
        }
        (self.battery_loss.value() + self.converter_loss.value()) / delivered
    }
}

/// Integrates the per-step records into an [`EnergyBreakdown`].
pub fn energy_breakdown(result: &SimulationResult) -> EnergyBreakdown {
    let dt = result.dt;
    let mut b = EnergyBreakdown::default();
    for rec in &result.records {
        // The battery's realised loss is its generated heat (Joule +
        // entropic, Eq. 4) — robust for both discharge and charge.
        b.delivered += (rec.hees.delivered - rec.cooling_power) * dt;
        b.battery_loss += rec.hees.battery_heat * dt;
        b.converter_loss += rec.hees.converter_loss * dt;
        b.cooling += rec.cooling_power * dt;
        b.shortfall += rec.hees.shortfall * dt;
    }
    b
}

/// Thermal compliance summary against a limit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalReport {
    /// The limit applied.
    pub limit: Kelvin,
    /// Hottest battery temperature reached.
    pub peak: Kelvin,
    /// Time spent above the limit.
    pub time_above: Seconds,
    /// Longest contiguous violation.
    pub longest_violation: Seconds,
}

/// Summarises thermal compliance over a run.
pub fn thermal_report(result: &SimulationResult, limit: Kelvin) -> ThermalReport {
    let mut longest = 0usize;
    let mut current = 0usize;
    for rec in &result.records {
        if rec.state.battery_temp > limit {
            current += 1;
            longest = longest.max(current);
        } else {
            current = 0;
        }
    }
    ThermalReport {
        limit,
        peak: result.peak_battery_temp(),
        time_above: result.time_above(limit),
        longest_violation: result.dt * longest as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{StepRecord, SystemState};
    use otem_hees::HeesStep;
    use otem_units::Ratio;

    fn rec(load: f64, cap_internal: f64, cooling: f64, temp_c: f64) -> StepRecord {
        StepRecord {
            load: Watts::new(load),
            hees: HeesStep {
                delivered: Watts::new(load),
                battery_internal: Watts::new(load - cap_internal),
                cap_internal: Watts::new(cap_internal),
                battery_heat: Watts::new(0.02 * load.abs()),
                converter_loss: Watts::new(0.01 * load.abs()),
                ..HeesStep::default()
            },
            cooling_power: Watts::new(cooling),
            state: SystemState {
                battery_temp: Kelvin::from_celsius(temp_c),
                coolant_temp: Kelvin::from_celsius(temp_c),
                soc: Ratio::HALF,
                soe: Ratio::HALF,
            },
        }
    }

    fn result(records: Vec<StepRecord>) -> SimulationResult {
        SimulationResult {
            methodology: "test",
            dt: Seconds::new(1.0),
            records,
            capacity_loss: 1e-6,
        }
    }

    #[test]
    fn precharge_before_peak_is_detected() {
        // Quiet + charging for 3 steps, then a 40 kW peak served by the bank.
        let mut records = vec![rec(5_000.0, -2_000.0, 0.0, 28.0); 3];
        records.push(rec(40_000.0, 15_000.0, 0.0, 29.0));
        let report = teb_report(&result(records), &TebCriteria::default());
        assert_eq!(report.precharge_events, 3);
        assert_eq!(report.peaks_shared, 1);
        assert_eq!(report.peaks_alone, 0);
        assert_eq!(report.peak_share_fraction(), 1.0);
    }

    #[test]
    fn unprepared_peak_counts_as_alone() {
        let mut records = vec![rec(5_000.0, 0.0, 0.0, 28.0); 3];
        records.push(rec(40_000.0, 0.0, 0.0, 29.0));
        let report = teb_report(&result(records), &TebCriteria::default());
        assert_eq!(report.precharge_events, 0);
        assert_eq!(report.peaks_alone, 1);
        assert_eq!(report.peak_share_fraction(), 0.0);
    }

    #[test]
    fn precooling_ahead_of_peak_is_detected() {
        let mut records = vec![rec(5_000.0, 0.0, 3_000.0, 30.0); 2];
        records.push(rec(40_000.0, 0.0, 0.0, 31.0));
        let report = teb_report(&result(records), &TebCriteria::default());
        assert_eq!(report.precool_events, 2);
    }

    #[test]
    fn quiet_route_has_no_events() {
        let records = vec![rec(5_000.0, -2_000.0, 3_000.0, 28.0); 10];
        let report = teb_report(&result(records), &TebCriteria::default());
        assert_eq!(report.precharge_events, 0);
        assert_eq!(report.precool_events, 0);
        assert_eq!(report.peak_share_fraction(), 0.0);
    }

    #[test]
    fn energy_breakdown_integrates_components() {
        let records = vec![rec(10_000.0, 0.0, 500.0, 30.0); 10];
        let b = energy_breakdown(&result(records));
        assert_eq!(b.delivered, Joules::new(95_000.0));
        assert_eq!(b.battery_loss, Joules::new(2_000.0));
        assert_eq!(b.converter_loss, Joules::new(1_000.0));
        assert_eq!(b.cooling, Joules::new(5_000.0));
        assert!((b.loss_fraction() - 3_000.0 / 95_000.0).abs() < 1e-12);
    }

    #[test]
    fn thermal_report_tracks_longest_violation() {
        let limit = Kelvin::from_celsius(40.0);
        let mut records = vec![rec(1.0, 0.0, 0.0, 35.0); 3];
        records.extend(vec![rec(1.0, 0.0, 0.0, 42.0); 4]); // 4 s violation
        records.push(rec(1.0, 0.0, 0.0, 39.0));
        records.extend(vec![rec(1.0, 0.0, 0.0, 41.0); 2]); // 2 s violation
        let report = thermal_report(&result(records), limit);
        assert_eq!(report.time_above, Seconds::new(6.0));
        assert_eq!(report.longest_violation, Seconds::new(4.0));
        assert_eq!(report.peak, Kelvin::from_celsius(42.0));
    }
}
