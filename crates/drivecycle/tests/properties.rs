//! Property tests: synthesis robustness across random specs, and
//! power-train monotonicity.

use otem_drivecycle::{synthesize, CycleSpec, Powertrain, StandardCycle, VehicleParams};
use otem_units::{Meters, MetersPerSecond, MetersPerSecondSquared, Seconds, Watts};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn synthesis_honours_any_sane_spec(
        duration in 300.0..2000.0f64,
        avg_kmh in 10.0..70.0f64,
        vmax_margin in 1.6..3.0f64,
        stops in 0u32..15,
        amax in 1.5..4.0f64,
        idle in 0.02..0.3f64,
        seed in 0u64..1000,
    ) {
        let spec = CycleSpec {
            name: "prop".to_owned(),
            duration: Seconds::new(duration.round()),
            distance: Meters::new(avg_kmh / 3.6 * duration),
            max_speed: MetersPerSecond::from_kmh(avg_kmh * vmax_margin),
            stops,
            max_accel: MetersPerSecondSquared::new(amax),
            idle_fraction: idle,
            max_specific_power: 25.0,
        };
        prop_assume!(spec.validate().is_ok());
        match synthesize(&spec, seed) {
            Ok(trace) => {
                prop_assert_eq!(trace.duration().value(), spec.duration.value());
                let err = (trace.distance().value() - spec.distance.value()).abs()
                    / spec.distance.value();
                prop_assert!(err < 0.02, "distance error {:.1}%", err * 100.0);
                prop_assert!(trace.max_speed().value() <= spec.max_speed.value() * 1.001);
                prop_assert!(
                    trace.max_acceleration().value() <= spec.max_accel.value() * 1.05
                );
                prop_assert!(trace.speeds().iter().all(|s| s.value() >= 0.0));
            }
            // Dense stop-and-go specs with long idle can be genuinely
            // unsatisfiable; rejecting them cleanly is correct behaviour.
            Err(e) => prop_assert!(
                matches!(e, otem_drivecycle::CycleError::Unsatisfiable { .. }),
                "unexpected error {e}"
            ),
        }
    }

    #[test]
    fn power_request_monotone_in_accel(
        v in 0.5..35.0f64,
        a1 in -3.0..3.0f64,
        da in 0.1..1.0f64,
    ) {
        let t = Powertrain::new(VehicleParams::midsize_ev()).unwrap();
        let lo = t.power_request(
            MetersPerSecond::new(v),
            MetersPerSecondSquared::new(a1),
            0.0,
        );
        let hi = t.power_request(
            MetersPerSecond::new(v),
            MetersPerSecondSquared::new(a1 + da),
            0.0,
        );
        prop_assert!(hi >= lo);
    }

    #[test]
    fn regen_never_returns_more_than_braking_supplies(
        v in 1.0..35.0f64,
        a in -4.0..-0.5f64,
    ) {
        let t = Powertrain::new(VehicleParams::midsize_ev()).unwrap();
        let p = t.power_request(
            MetersPerSecond::new(v),
            MetersPerSecondSquared::new(a),
            0.0,
        );
        let wheel = t
            .tractive_force(MetersPerSecond::new(v), MetersPerSecondSquared::new(a), 0.0)
            .value()
            * v;
        if wheel < 0.0 {
            // |recovered| ≤ |wheel braking power| (minus accessories).
            prop_assert!(p.value() >= wheel, "recovered {p:?} from wheel {wheel}");
        }
    }

    #[test]
    fn power_trace_has_no_nan_for_standard_cycles(idx in 0usize..6) {
        let cycle = StandardCycle::ALL[idx];
        let trace = Powertrain::new(VehicleParams::midsize_ev())
            .unwrap()
            .power_trace(&otem_drivecycle::standard(cycle).unwrap());
        prop_assert!(trace.samples().iter().all(|p| p.is_finite()));
        prop_assert!(trace.peak() > Watts::ZERO);
    }
}
