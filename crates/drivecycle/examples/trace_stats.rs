//! Prints summary statistics of every standard cycle's synthesised trace
//! and power profile (developer sanity check).

use otem_drivecycle::{standard, Powertrain, StandardCycle, VehicleParams};

fn main() {
    let train = Powertrain::new(VehicleParams::midsize_ev()).expect("valid vehicle");
    println!(
        "{:<7} {:>6} {:>8} {:>7} {:>7} {:>6} {:>9} {:>9} {:>10}",
        "cycle", "dur_s", "dist_km", "vavg", "vmax", "stops", "Pmean_kW", "Ppeak_kW", "Pregen_kW"
    );
    for c in StandardCycle::ALL {
        let cycle = standard(c).expect("synthesis");
        let trace = train.power_trace(&cycle);
        let min = trace
            .samples()
            .iter()
            .fold(f64::INFINITY, |m, p| m.min(p.value()));
        println!(
            "{:<7} {:>6.0} {:>8.2} {:>7.1} {:>7.1} {:>6} {:>9.1} {:>9.1} {:>10.1}",
            cycle.name(),
            cycle.duration().value(),
            cycle.distance().value() / 1000.0,
            cycle.average_speed().to_kmh(),
            cycle.max_speed().to_kmh(),
            cycle.stops(),
            trace.mean().value() / 1000.0,
            trace.peak().value() / 1000.0,
            min / 1000.0,
        );
    }
}
