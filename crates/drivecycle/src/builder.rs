//! Programmatic drive-cycle construction: compose accelerate / cruise /
//! brake / idle segments into a valid speed trace.

use crate::cycle::DriveCycle;
use crate::error::CycleError;
use otem_units::{MetersPerSecond, MetersPerSecondSquared};

/// Builds a [`DriveCycle`] from kinematic segments.
///
/// The builder tracks the current speed; each segment appends 1 Hz
/// samples. Acceleration magnitudes are capped by the builder's limit so
/// the resulting trace always satisfies a known envelope.
///
/// # Examples
///
/// ```
/// use otem_drivecycle::CycleBuilder;
/// use otem_units::{MetersPerSecond, MetersPerSecondSquared, Seconds};
///
/// # fn main() -> Result<(), otem_drivecycle::CycleError> {
/// let cycle = CycleBuilder::new("depot-run", MetersPerSecondSquared::new(2.0))
///     .accelerate_to(MetersPerSecond::from_kmh(50.0))
///     .cruise(Seconds::new(120.0))
///     .brake_to(MetersPerSecond::ZERO)
///     .idle(Seconds::new(30.0))
///     .build()?;
/// assert_eq!(cycle.stops(), 1); // the stop before the trailing idle
/// assert!(cycle.max_speed().to_kmh() <= 50.0 + 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CycleBuilder {
    name: String,
    accel_limit: f64,
    speeds: Vec<f64>,
}

impl CycleBuilder {
    /// Starts a cycle at standstill with the given acceleration limit.
    pub fn new(name: impl Into<String>, accel_limit: MetersPerSecondSquared) -> Self {
        Self {
            name: name.into(),
            accel_limit: accel_limit.value().abs().max(0.1),
            speeds: vec![0.0],
        }
    }

    fn current(&self) -> f64 {
        self.speeds.last().copied().unwrap_or(0.0)
    }

    /// Ramps to the target speed at the acceleration limit.
    #[must_use]
    pub fn accelerate_to(mut self, target: MetersPerSecond) -> Self {
        let target = target.value().max(0.0);
        let mut v = self.current();
        while (v - target).abs() > 1e-9 {
            let step = (target - v).clamp(-self.accel_limit, self.accel_limit);
            v += step;
            self.speeds.push(v);
        }
        self
    }

    /// Holds the current speed for the given duration.
    #[must_use]
    pub fn cruise(mut self, duration: otem_units::Seconds) -> Self {
        let v = self.current();
        for _ in 0..duration.value().round().max(0.0) as usize {
            self.speeds.push(v);
        }
        self
    }

    /// Decelerates to the target speed (an alias of
    /// [`CycleBuilder::accelerate_to`] that reads better for braking).
    #[must_use]
    pub fn brake_to(self, target: MetersPerSecond) -> Self {
        self.accelerate_to(target)
    }

    /// Stands still for the given duration.
    ///
    /// # Panics
    ///
    /// Panics if called while moving — brake to zero first (this is a
    /// construction-order bug, not a runtime condition).
    #[must_use]
    pub fn idle(mut self, duration: otem_units::Seconds) -> Self {
        assert!(
            self.current() < 1e-9,
            "idle() while moving at {} m/s — brake_to(0) first",
            self.current()
        );
        for _ in 0..duration.value().round().max(0.0) as usize {
            self.speeds.push(0.0);
        }
        self
    }

    /// Finalises the cycle (appending a braking ramp to standstill if the
    /// last segment left the vehicle moving).
    ///
    /// # Errors
    ///
    /// Returns [`CycleError::InvalidTrace`] if the trace ended up empty
    /// (cannot happen through this API, but the constructor contract of
    /// [`DriveCycle::from_speeds`] is preserved).
    pub fn build(self) -> Result<DriveCycle, CycleError> {
        let finished = if self.current() > 1e-9 {
            self.brake_to(MetersPerSecond::ZERO)
        } else {
            self
        };
        DriveCycle::from_speeds(
            finished.name,
            finished
                .speeds
                .into_iter()
                .map(MetersPerSecond::new)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otem_units::Seconds;

    #[test]
    fn composed_cycle_obeys_the_envelope() {
        let cycle = CycleBuilder::new("test", MetersPerSecondSquared::new(1.5))
            .accelerate_to(MetersPerSecond::new(20.0))
            .cruise(Seconds::new(60.0))
            .brake_to(MetersPerSecond::new(5.0))
            .accelerate_to(MetersPerSecond::new(15.0))
            .brake_to(MetersPerSecond::ZERO)
            .idle(Seconds::new(10.0))
            .build()
            .expect("valid");
        assert!(cycle.max_acceleration().value() <= 1.5 + 1e-9);
        assert_eq!(cycle.max_speed(), MetersPerSecond::new(20.0));
        assert!(cycle.distance().value() > 1_000.0);
    }

    #[test]
    fn build_auto_brakes_a_moving_cycle() {
        let cycle = CycleBuilder::new("moving", MetersPerSecondSquared::new(2.0))
            .accelerate_to(MetersPerSecond::new(10.0))
            .build()
            .expect("valid");
        assert_eq!(cycle.speeds().last().unwrap().value(), 0.0);
    }

    #[test]
    fn multiple_trips_count_stops() {
        let cycle = CycleBuilder::new("two-trips", MetersPerSecondSquared::new(2.0))
            .accelerate_to(MetersPerSecond::new(10.0))
            .brake_to(MetersPerSecond::ZERO)
            .idle(Seconds::new(5.0))
            .accelerate_to(MetersPerSecond::new(8.0))
            .build()
            .expect("valid");
        assert_eq!(cycle.stops(), 1);
    }

    #[test]
    #[should_panic(expected = "idle() while moving")]
    fn idle_while_moving_is_a_bug() {
        let _ = CycleBuilder::new("bug", MetersPerSecondSquared::new(2.0))
            .accelerate_to(MetersPerSecond::new(10.0))
            .idle(Seconds::new(5.0));
    }

    #[test]
    fn zero_duration_segments_are_noops() {
        let cycle = CycleBuilder::new("empty", MetersPerSecondSquared::new(2.0))
            .cruise(Seconds::ZERO)
            .idle(Seconds::ZERO)
            .build()
            .expect("valid");
        assert_eq!(cycle.len(), 1);
        assert_eq!(cycle.distance().value(), 0.0);
    }
}
