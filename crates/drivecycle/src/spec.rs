//! Published summary statistics of the standard regulatory drive cycles.
//!
//! The real second-by-second traces are EPA/ADVISOR data files we do not
//! ship; the synthesiser reconstructs traces matching these statistics
//! (see DESIGN.md §3).

use crate::error::CycleError;
use otem_units::{Meters, MetersPerSecond, MetersPerSecondSquared, Seconds};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics that characterise a drive cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleSpec {
    /// Cycle name (e.g. `"US06"`).
    pub name: String,
    /// Total duration.
    pub duration: Seconds,
    /// Total distance.
    pub distance: Meters,
    /// Maximum speed.
    pub max_speed: MetersPerSecond,
    /// Number of complete stops (speed returns to zero mid-cycle),
    /// excluding the final stop.
    pub stops: u32,
    /// Maximum acceleration magnitude.
    pub max_accel: MetersPerSecondSquared,
    /// Fraction of the duration spent at standstill.
    pub idle_fraction: f64,
    /// Peak specific tractive power (W/kg): real cycles are
    /// power-limited, so hard accelerations only occur at low speed.
    /// The synthesiser enforces `a·v ≤ max_specific_power`.
    pub max_specific_power: f64,
}

impl CycleSpec {
    /// Overall average speed (distance / duration).
    pub fn average_speed(&self) -> MetersPerSecond {
        MetersPerSecond::new(self.distance.value() / self.duration.value())
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError::InvalidSpec`] for non-positive duration,
    /// distance, speeds or accelerations, an idle fraction outside
    /// `[0, 0.9]`, or an average speed exceeding the maximum speed.
    pub fn validate(&self) -> Result<(), CycleError> {
        if self.duration.value() <= 0.0 {
            return Err(CycleError::InvalidSpec {
                field: "duration",
                constraint: "> 0 s",
            });
        }
        if self.distance.value() <= 0.0 {
            return Err(CycleError::InvalidSpec {
                field: "distance",
                constraint: "> 0 m",
            });
        }
        if self.max_speed.value() <= 0.0 {
            return Err(CycleError::InvalidSpec {
                field: "max_speed",
                constraint: "> 0 m/s",
            });
        }
        if self.max_accel.value() <= 0.0 {
            return Err(CycleError::InvalidSpec {
                field: "max_accel",
                constraint: "> 0 m/s²",
            });
        }
        if self.max_specific_power <= 0.0 {
            return Err(CycleError::InvalidSpec {
                field: "max_specific_power",
                constraint: "> 0 W/kg",
            });
        }
        if !(0.0..=0.9).contains(&self.idle_fraction) {
            return Err(CycleError::InvalidSpec {
                field: "idle_fraction",
                constraint: "within [0, 0.9]",
            });
        }
        if self.average_speed().value() >= self.max_speed.value() {
            return Err(CycleError::InvalidSpec {
                field: "distance",
                constraint: "average speed < max speed",
            });
        }
        Ok(())
    }
}

/// The standard regulatory cycles the paper evaluates on ("multiple
/// standard driving cycles" citing \[12\], which uses the EPA set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum StandardCycle {
    /// EPA Urban Dynamometer Driving Schedule: city driving, frequent
    /// stops.
    Udds,
    /// EPA Highway Fuel Economy Test: sustained highway cruising.
    Hwfet,
    /// EPA US06 Supplemental FTP: aggressive, high-speed, high-accel —
    /// the paper's stress cycle for Figs. 1, 6, 7 and Table I.
    Us06,
    /// EPA SC03 Speed Correction cycle: urban with A/C load profile.
    Sc03,
    /// New York City Cycle: dense stop-and-go, very low speed.
    Nycc,
    /// California LA92 (Unified): harder urban cycle than UDDS.
    La92,
    /// WLTP Class 3 (WLTC): the worldwide harmonised cycle — long, with
    /// low/medium/high/extra-high phases.
    Wltc,
    /// Japanese JC08: urban stop-and-go with a short expressway stint.
    Jc08,
    /// Artemis Urban: the European real-traffic urban cycle; denser
    /// stop-and-go than UDDS.
    ArtemisUrban,
}

impl StandardCycle {
    /// The six cycles the paper's figures report, in their order.
    pub const ALL: [StandardCycle; 6] = [
        StandardCycle::Udds,
        StandardCycle::Hwfet,
        StandardCycle::Us06,
        StandardCycle::Sc03,
        StandardCycle::Nycc,
        StandardCycle::La92,
    ];

    /// Every cycle this crate can synthesise, including the non-EPA
    /// extensions.
    pub const EXTENDED: [StandardCycle; 9] = [
        StandardCycle::Udds,
        StandardCycle::Hwfet,
        StandardCycle::Us06,
        StandardCycle::Sc03,
        StandardCycle::Nycc,
        StandardCycle::La92,
        StandardCycle::Wltc,
        StandardCycle::Jc08,
        StandardCycle::ArtemisUrban,
    ];

    /// Published summary statistics (EPA dynamometer listings).
    pub fn spec(self) -> CycleSpec {
        let (name, dur, dist_km, vmax_kmh, stops, amax, idle, msp) = match self {
            Self::Udds => ("UDDS", 1369.0, 11.99, 91.2, 17, 1.48, 0.19, 14.0),
            Self::Hwfet => ("HWFET", 765.0, 16.45, 96.4, 0, 1.43, 0.01, 16.0),
            Self::Us06 => ("US06", 596.0, 12.89, 129.2, 4, 3.76, 0.07, 40.0),
            Self::Sc03 => ("SC03", 600.0, 5.76, 88.2, 5, 2.28, 0.19, 18.0),
            Self::Nycc => ("NYCC", 598.0, 1.90, 44.6, 11, 2.68, 0.35, 14.0),
            Self::La92 => ("LA92", 1435.0, 15.80, 108.1, 16, 3.08, 0.16, 26.0),
            Self::Wltc => ("WLTC", 1800.0, 23.27, 131.3, 8, 1.67, 0.13, 22.0),
            Self::Jc08 => ("JC08", 1204.0, 8.17, 81.6, 11, 1.69, 0.28, 14.0),
            Self::ArtemisUrban => ("ArtemisUrban", 993.0, 4.87, 57.3, 20, 2.86, 0.28, 16.0),
        };
        CycleSpec {
            name: name.to_owned(),
            duration: Seconds::new(dur),
            distance: Meters::new(dist_km * 1000.0),
            max_speed: MetersPerSecond::from_kmh(vmax_kmh),
            stops,
            max_accel: MetersPerSecondSquared::new(amax),
            idle_fraction: idle,
            max_specific_power: msp,
        }
    }

    /// Deterministic seed for the synthesiser, derived from the name so
    /// every run of the workspace regenerates identical traces.
    pub fn seed(self) -> u64 {
        let name = self.spec().name;
        // FNV-1a over the name: stable across platforms and runs.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        hash
    }
}

impl fmt::Display for StandardCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.spec().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builtin_specs_validate() {
        for cycle in StandardCycle::EXTENDED {
            cycle
                .spec()
                .validate()
                .unwrap_or_else(|e| panic!("{cycle} spec invalid: {e}"));
        }
    }

    #[test]
    fn us06_is_the_most_aggressive() {
        let us06 = StandardCycle::Us06.spec();
        // Fastest of the EPA set (WLTC's extra-high phase peaks slightly
        // higher) and the highest specific power of every cycle.
        for other in StandardCycle::ALL {
            if other != StandardCycle::Us06 {
                assert!(us06.max_speed >= other.spec().max_speed);
            }
        }
        for other in StandardCycle::EXTENDED {
            if other != StandardCycle::Us06 {
                assert!(us06.max_specific_power >= other.spec().max_specific_power);
            }
        }
        assert!(us06.max_accel.value() > 3.0);
    }

    #[test]
    fn average_speed_sane() {
        let nycc = StandardCycle::Nycc.spec();
        assert!(nycc.average_speed().to_kmh() < 15.0);
        let hwfet = StandardCycle::Hwfet.spec();
        assert!(hwfet.average_speed().to_kmh() > 70.0);
    }

    #[test]
    fn seeds_are_distinct_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for cycle in StandardCycle::EXTENDED {
            assert!(seen.insert(cycle.seed()), "duplicate seed for {cycle}");
            assert_eq!(cycle.seed(), cycle.seed());
        }
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut s = StandardCycle::Udds.spec();
        s.duration = Seconds::new(0.0);
        assert!(s.validate().is_err());

        let mut s = StandardCycle::Udds.spec();
        s.idle_fraction = 0.95;
        assert!(s.validate().is_err());

        let mut s = StandardCycle::Udds.spec();
        // Average above max: unattainable.
        s.max_speed = MetersPerSecond::new(2.0);
        assert!(s.validate().is_err());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(StandardCycle::Us06.to_string(), "US06");
        assert_eq!(StandardCycle::Nycc.to_string(), "NYCC");
    }
}
