//! The second-by-second speed trace of a drive cycle.

use crate::error::CycleError;
use otem_units::{Meters, MetersPerSecond, MetersPerSecondSquared, Seconds};
use serde::{Deserialize, Serialize};

/// A drive cycle: a 1 Hz speed trace starting and ending at standstill.
///
/// # Examples
///
/// ```
/// use otem_drivecycle::DriveCycle;
/// use otem_units::MetersPerSecond;
///
/// # fn main() -> Result<(), otem_drivecycle::CycleError> {
/// let speeds: Vec<_> = [0.0, 2.0, 4.0, 6.0, 4.0, 2.0, 0.0]
///     .iter()
///     .map(|&v| MetersPerSecond::new(v))
///     .collect();
/// let cycle = DriveCycle::from_speeds("ramp", speeds)?;
/// assert_eq!(cycle.duration().value(), 7.0);
/// assert!(cycle.distance().value() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriveCycle {
    name: String,
    speeds: Vec<MetersPerSecond>,
}

impl DriveCycle {
    /// Sampling period of all cycles: 1 s (the regulatory traces and the
    /// paper's control period).
    pub const DT: Seconds = Seconds::new(1.0);

    /// Builds a cycle from a 1 Hz speed trace.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError::InvalidTrace`] if the trace is empty or any
    /// sample is negative or non-finite.
    pub fn from_speeds(
        name: impl Into<String>,
        speeds: Vec<MetersPerSecond>,
    ) -> Result<Self, CycleError> {
        if speeds.is_empty() {
            return Err(CycleError::InvalidTrace {
                index: 0,
                reason: "empty trace",
            });
        }
        for (index, s) in speeds.iter().enumerate() {
            if !s.is_finite() {
                return Err(CycleError::InvalidTrace {
                    index,
                    reason: "non-finite speed",
                });
            }
            if s.value() < 0.0 {
                return Err(CycleError::InvalidTrace {
                    index,
                    reason: "negative speed",
                });
            }
        }
        Ok(Self {
            name: name.into(),
            speeds,
        })
    }

    /// Cycle name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The speed samples.
    pub fn speeds(&self) -> &[MetersPerSecond] {
        &self.speeds
    }

    /// Number of 1 s samples.
    pub fn len(&self) -> usize {
        self.speeds.len()
    }

    /// `true` if the trace is empty (cannot occur for validated cycles).
    pub fn is_empty(&self) -> bool {
        self.speeds.is_empty()
    }

    /// Total duration.
    pub fn duration(&self) -> Seconds {
        Seconds::new(self.speeds.len() as f64)
    }

    /// Distance covered (trapezoidal integration of speed).
    pub fn distance(&self) -> Meters {
        let sum: f64 = self
            .speeds
            .windows(2)
            .map(|w| 0.5 * (w[0].value() + w[1].value()))
            .sum();
        Meters::new(sum)
    }

    /// Maximum speed reached.
    pub fn max_speed(&self) -> MetersPerSecond {
        self.speeds
            .iter()
            .copied()
            .fold(MetersPerSecond::ZERO, MetersPerSecond::max)
    }

    /// Overall average speed (distance / duration).
    pub fn average_speed(&self) -> MetersPerSecond {
        MetersPerSecond::new(self.distance().value() / self.duration().value())
    }

    /// Acceleration at sample `i` (backward difference; zero at `i = 0`).
    pub fn acceleration(&self, i: usize) -> MetersPerSecondSquared {
        if i == 0 || i >= self.speeds.len() {
            return MetersPerSecondSquared::ZERO;
        }
        MetersPerSecondSquared::new(self.speeds[i].value() - self.speeds[i - 1].value())
    }

    /// Largest acceleration magnitude across the trace.
    pub fn max_acceleration(&self) -> MetersPerSecondSquared {
        (1..self.speeds.len())
            .map(|i| self.acceleration(i).abs())
            .fold(MetersPerSecondSquared::ZERO, MetersPerSecondSquared::max)
    }

    /// Number of complete stops: transitions from motion to standstill,
    /// excluding the final stop at the end of the trace.
    pub fn stops(&self) -> u32 {
        let mut stops = 0;
        let mut moving = false;
        let standstill = 0.05; // m/s threshold
        for (i, s) in self.speeds.iter().enumerate() {
            if s.value() > standstill {
                moving = true;
            } else if moving {
                moving = false;
                if i < self.speeds.len() - 1 {
                    stops += 1;
                }
            }
        }
        stops
    }

    /// Fraction of samples at standstill.
    pub fn idle_fraction(&self) -> f64 {
        let idle = self.speeds.iter().filter(|s| s.value() <= 0.05).count();
        idle as f64 / self.speeds.len() as f64
    }

    /// Serialises as two-column CSV (`t_s,speed_mps`) for external
    /// plotting or interchange with other simulators.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.speeds.len() * 16 + 16);
        out.push_str(
            "t_s,speed_mps
",
        );
        for (i, s) in self.speeds.iter().enumerate() {
            use std::fmt::Write;
            let _ = writeln!(out, "{i},{:.4}", s.value());
        }
        out
    }

    /// Parses the CSV format written by [`DriveCycle::to_csv`].
    ///
    /// # Errors
    ///
    /// Returns [`CycleError::InvalidTrace`] on malformed rows or invalid
    /// speed samples.
    pub fn from_csv(name: impl Into<String>, csv: &str) -> Result<Self, CycleError> {
        let mut speeds = Vec::new();
        for (row, line) in csv.lines().enumerate() {
            if row == 0 && line.starts_with("t_s") {
                continue; // header
            }
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let speed_field = line.split(',').nth(1).ok_or(CycleError::InvalidTrace {
                index: row,
                reason: "missing speed column",
            })?;
            let value: f64 = speed_field
                .trim()
                .parse()
                .map_err(|_| CycleError::InvalidTrace {
                    index: row,
                    reason: "unparseable speed",
                })?;
            speeds.push(MetersPerSecond::new(value));
        }
        Self::from_speeds(name, speeds)
    }

    /// Concatenates `n` repetitions of this cycle (the paper drives US06
    /// five times back-to-back for Figs. 6–7).
    pub fn repeat(&self, n: usize) -> DriveCycle {
        let mut speeds = Vec::with_capacity(self.speeds.len() * n.max(1));
        for _ in 0..n.max(1) {
            speeds.extend_from_slice(&self.speeds);
        }
        DriveCycle {
            name: if n > 1 {
                format!("{}x{n}", self.name)
            } else {
                self.name.clone()
            },
            speeds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> DriveCycle {
        let speeds = [0.0, 2.0, 4.0, 6.0, 6.0, 4.0, 2.0, 0.0, 0.0, 3.0, 0.0]
            .iter()
            .map(|&v| MetersPerSecond::new(v))
            .collect();
        DriveCycle::from_speeds("test", speeds).unwrap()
    }

    #[test]
    fn distance_is_trapezoidal() {
        let c = DriveCycle::from_speeds(
            "tri",
            vec![
                MetersPerSecond::new(0.0),
                MetersPerSecond::new(2.0),
                MetersPerSecond::new(0.0),
            ],
        )
        .unwrap();
        assert_eq!(c.distance().value(), 2.0);
    }

    #[test]
    fn stats_are_consistent() {
        let c = ramp();
        assert_eq!(c.duration().value(), 11.0);
        assert_eq!(c.max_speed().value(), 6.0);
        assert_eq!(c.max_acceleration().value(), 3.0);
        assert_eq!(c.stops(), 1); // stop at index 7; the final stop is excluded
        assert!(c.idle_fraction() > 0.0);
    }

    #[test]
    fn final_stop_not_counted() {
        let c = DriveCycle::from_speeds(
            "one-trip",
            vec![
                MetersPerSecond::new(0.0),
                MetersPerSecond::new(5.0),
                MetersPerSecond::new(0.0),
            ],
        )
        .unwrap();
        assert_eq!(c.stops(), 0);
    }

    #[test]
    fn repeat_concatenates() {
        let c = ramp();
        let c3 = c.repeat(3);
        assert_eq!(c3.len(), 3 * c.len());
        assert_eq!(c3.name(), "testx3");
        assert!((c3.distance().value() - 3.0 * c.distance().value()).abs() < 1.0);
        // repeat(0) and repeat(1) both give one copy
        assert_eq!(c.repeat(0).len(), c.len());
        assert_eq!(c.repeat(1).name(), "test");
    }

    #[test]
    fn invalid_traces_rejected() {
        assert!(DriveCycle::from_speeds("empty", vec![]).is_err());
        assert!(DriveCycle::from_speeds("neg", vec![MetersPerSecond::new(-1.0)]).is_err());
        assert!(DriveCycle::from_speeds("nan", vec![MetersPerSecond::new(f64::NAN)]).is_err());
    }

    #[test]
    fn csv_round_trip() {
        let c = ramp();
        let csv = c.to_csv();
        assert!(csv.starts_with(
            "t_s,speed_mps
"
        ));
        let back = DriveCycle::from_csv("test", &csv).expect("parse");
        assert_eq!(back.len(), c.len());
        for (a, b) in back.speeds().iter().zip(c.speeds()) {
            assert!((a.value() - b.value()).abs() < 1e-4);
        }
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(DriveCycle::from_csv(
            "bad",
            "t_s,speed_mps
0,not-a-number
"
        )
        .is_err());
        assert!(DriveCycle::from_csv(
            "bad",
            "t_s,speed_mps
0
"
        )
        .is_err());
        // Negative speeds still rejected through from_speeds.
        assert!(DriveCycle::from_csv(
            "bad", "0,-3.0
"
        )
        .is_err());
    }

    #[test]
    fn acceleration_bounds() {
        let c = ramp();
        assert_eq!(c.acceleration(0).value(), 0.0);
        assert_eq!(c.acceleration(1).value(), 2.0);
        assert_eq!(c.acceleration(100).value(), 0.0); // out of range
    }
}
