//! Drive cycles and EV power-train modelling for the OTEM simulator.
//!
//! The OTEM paper estimates the EV's power requests with ADVISOR (the
//! NREL Advanced Vehicle Simulator) driving standard regulatory cycles.
//! ADVISOR and its cycle files are MATLAB artifacts unavailable here, so
//! this crate substitutes both halves (see DESIGN.md §3):
//!
//! * [`CycleSpec`]/[`synthesize`] — a deterministic micro-trip generator
//!   that produces second-by-second speed traces matching each standard
//!   cycle's published summary statistics (duration, distance, average
//!   and maximum speed, stop count, acceleration envelope).
//! * [`Powertrain`] — a backward-facing longitudinal-dynamics model (the
//!   same approach ADVISOR uses): road load = inertia + aerodynamic drag
//!   plus rolling resistance and grade, mapped through drivetrain
//!   efficiency and regenerative-braking recapture to battery-bus power.
//!
//! The product is a [`PowerTrace`]: the `P_e` input of the paper's
//! Algorithm 1.
//!
//! # Examples
//!
//! ```
//! use otem_drivecycle::{standard, Powertrain, StandardCycle, VehicleParams};
//!
//! # fn main() -> Result<(), otem_drivecycle::CycleError> {
//! let cycle = standard(StandardCycle::Us06)?;
//! let powertrain = Powertrain::new(VehicleParams::midsize_ev())?;
//! let trace = powertrain.power_trace(&cycle);
//! assert!(trace.peak().value() > 50_000.0); // US06 is aggressive
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod builder;
mod cycle;
mod error;
mod grade;
mod spec;
mod synth;
mod trace;
mod vehicle;

pub use builder::CycleBuilder;
pub use cycle::DriveCycle;
pub use error::CycleError;
pub use grade::GradeProfile;
pub use spec::{CycleSpec, StandardCycle};
pub use synth::synthesize;
pub use trace::PowerTrace;
pub use vehicle::{Powertrain, VehicleParams};

/// Synthesises one of the standard regulatory cycles from its published
/// statistics, deterministically (same cycle ⇒ same trace).
///
/// # Errors
///
/// Returns [`CycleError`] if synthesis cannot satisfy the spec (should
/// not happen for the built-in specs; the error path exists for custom
/// specs).
pub fn standard(cycle: StandardCycle) -> Result<DriveCycle, CycleError> {
    synthesize(&cycle.spec(), cycle.seed())
}
