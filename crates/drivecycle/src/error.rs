//! Error type for cycle synthesis and validation.

use std::error::Error;
use std::fmt;

/// Errors returned by drive-cycle construction and synthesis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CycleError {
    /// A cycle specification field was out of range.
    InvalidSpec {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// The synthesiser could not match the specification (e.g. the
    /// requested distance is unreachable within the duration at the
    /// allowed maximum speed).
    Unsatisfiable {
        /// What could not be met.
        reason: String,
    },
    /// A hand-built cycle contained invalid samples.
    InvalidTrace {
        /// Index of the offending sample.
        index: usize,
        /// What was wrong with it.
        reason: &'static str,
    },
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidSpec { field, constraint } => {
                write!(f, "invalid cycle spec: {field} must satisfy {constraint}")
            }
            Self::Unsatisfiable { reason } => {
                write!(f, "cycle spec unsatisfiable: {reason}")
            }
            Self::InvalidTrace { index, reason } => {
                write!(f, "invalid speed trace at sample {index}: {reason}")
            }
        }
    }
}

impl Error for CycleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CycleError>();
    }

    #[test]
    fn display_mentions_field() {
        let e = CycleError::InvalidSpec {
            field: "duration",
            constraint: "> 0",
        };
        assert!(e.to_string().contains("duration"));
    }
}
