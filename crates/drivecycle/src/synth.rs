//! Deterministic micro-trip synthesis of drive cycles from summary
//! statistics.
//!
//! A cycle is assembled from `stops + 1` micro-trips (accelerate →
//! cruise with bounded jitter → decelerate to standstill) separated by
//! idle dwells. Trip durations and distances are drawn from a seeded
//! RNG, then the whole trace is iteratively rescaled so that total
//! distance matches the spec while the speed and acceleration envelopes
//! stay inside their published limits.

use crate::cycle::DriveCycle;
use crate::error::CycleError;
use crate::spec::CycleSpec;
use otem_units::MetersPerSecond;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthesises a speed trace matching `spec`, deterministically for a
/// given `seed`.
///
/// # Errors
///
/// Returns [`CycleError::InvalidSpec`] when the spec fails validation and
/// [`CycleError::Unsatisfiable`] when the iterative distance correction
/// cannot get within 2 % of the requested distance (e.g. the distance is
/// unreachable at the allowed maximum speed).
pub fn synthesize(spec: &CycleSpec, seed: u64) -> Result<DriveCycle, CycleError> {
    spec.validate()?;
    let mut rng = StdRng::seed_from_u64(seed);

    let duration = spec.duration.value().round() as usize;
    let n_trips = spec.stops as usize + 1;
    let vmax = spec.max_speed.value();
    // Construction headroom: build with 80 % of the acceleration budget
    // and 97 % of the speed budget so the distance-correction rescale
    // cannot push the trace over its envelope.
    let accel = 0.8 * spec.max_accel.value();
    let vcap = 0.97 * vmax;

    // Idle budget, split between the stops (plus a short lead-in/out).
    let idle_total = (spec.idle_fraction * duration as f64).round() as usize;
    let moving_total = duration.saturating_sub(idle_total);
    if moving_total < n_trips * 4 {
        return Err(CycleError::Unsatisfiable {
            reason: format!("only {moving_total} moving seconds for {n_trips} trips"),
        });
    }

    // Random trip weights: duration shares and (correlated) distance
    // shares.
    let dur_weights: Vec<f64> = (0..n_trips).map(|_| rng.gen_range(0.6..1.6)).collect();
    let dist_weights: Vec<f64> = dur_weights
        .iter()
        .map(|w| w * rng.gen_range(0.75..1.35))
        .collect();
    let dur_sum: f64 = dur_weights.iter().sum();
    let dist_sum: f64 = dist_weights.iter().sum();

    // The trip with the highest implied mean speed carries the cycle's
    // top-speed excursion.
    let mean_speeds: Vec<f64> = (0..n_trips)
        .map(|i| {
            (dist_weights[i] / dist_sum * spec.distance.value())
                / (dur_weights[i] / dur_sum * moving_total as f64)
        })
        .collect();
    let fastest = mean_speeds
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);

    let mut speeds: Vec<f64> = Vec::with_capacity(duration);
    // Lead-in idle second so every cycle starts from standstill.
    speeds.push(0.0);
    let idle_per_gap = if n_trips > 1 {
        idle_total.saturating_sub(2) / n_trips.max(1)
    } else {
        idle_total.saturating_sub(2)
    };

    for trip in 0..n_trips {
        let trip_secs = ((dur_weights[trip] / dur_sum) * moving_total as f64)
            .round()
            .max(4.0) as usize;
        let target_peak = if trip == fastest {
            vcap
        } else {
            (mean_speeds[trip] * rng.gen_range(1.15..1.45)).min(vcap)
        };
        synth_trip(&mut speeds, trip_secs, target_peak, accel, &mut rng);
        // Idle dwell after the trip (also after the last trip, consuming
        // the remaining idle budget at the tail).
        speeds.extend(std::iter::repeat_n(0.0, idle_per_gap));
    }

    // Exact duration: pad with trailing idle or trim tail idle samples.
    match speeds.len().cmp(&duration) {
        std::cmp::Ordering::Less => speeds.resize(duration, 0.0),
        std::cmp::Ordering::Greater => {
            speeds.truncate(duration);
            // Ensure we end at standstill even if truncation cut a trip.
            let n = speeds.len();
            let tail = 6.min(n);
            for (k, s) in speeds[n - tail..].iter_mut().enumerate() {
                let factor = 1.0 - (k + 1) as f64 / tail as f64;
                *s = s.min(vcap * factor);
            }
        }
        std::cmp::Ordering::Equal => {}
    }

    // Iterative distance correction: scale speeds (clamping to the cap)
    // until within 2 % of spec. After every rescale the acceleration
    // envelope is re-enforced, since scaling up scales accelerations too.
    let accel_limit = 0.98 * spec.max_accel.value();
    enforce_envelope(&mut speeds, accel_limit, spec.max_specific_power);
    let target = spec.distance.value();
    for _ in 0..20 {
        let actual = trace_distance(&speeds);
        if actual <= 0.0 {
            return Err(CycleError::Unsatisfiable {
                reason: "synthesised trace covers no distance".to_owned(),
            });
        }
        let k = target / actual;
        if (k - 1.0).abs() < 0.015 {
            break;
        }
        let k = k.clamp(0.7, 1.3);
        for s in &mut speeds {
            *s = (*s * k).min(vcap);
        }
        enforce_envelope(&mut speeds, accel_limit, spec.max_specific_power);
    }
    let actual = trace_distance(&speeds);
    if (actual - target).abs() / target > 0.02 {
        return Err(CycleError::Unsatisfiable {
            reason: format!("distance converged to {actual:.0} m vs requested {target:.0} m"),
        });
    }

    DriveCycle::from_speeds(
        spec.name.clone(),
        speeds.into_iter().map(MetersPerSecond::new).collect(),
    )
}

/// Appends one micro-trip: accelerate to `peak`, cruise with jittered
/// speed, decelerate to standstill, totalling `secs` samples.
fn synth_trip(speeds: &mut Vec<f64>, secs: usize, peak: f64, accel: f64, rng: &mut StdRng) {
    let ramp_up = ((peak / accel).ceil() as usize).max(1);
    let ramp_down = ramp_up;
    let cruise = secs.saturating_sub(ramp_up + ramp_down);

    // If the trip is too short to reach the peak, use a triangular
    // profile at the acceleration budget.
    if cruise == 0 {
        let half = (secs / 2).max(1);
        let tri_peak = (accel * half as f64).min(peak);
        for k in 1..=half {
            speeds.push(tri_peak * k as f64 / half as f64);
        }
        for k in (0..secs.saturating_sub(half)).rev() {
            speeds.push(tri_peak * k as f64 / (secs - half).max(1) as f64);
        }
        return;
    }

    for k in 1..=ramp_up {
        speeds.push(peak * k as f64 / ramp_up as f64);
    }
    // Cruise: accel-bounded random walk around the peak.
    let mut v = peak;
    let jitter = (0.35 * accel).min(0.15 * peak.max(1.0));
    for _ in 0..cruise {
        v += rng.gen_range(-jitter..=jitter);
        v = v
            .clamp(0.55 * peak, peak / 0.97 * 0.999)
            .min(peak / 0.97 * 0.97 + jitter);
        // Never exceed the construction cap implicitly handled by caller's
        // vcap choice: peaks are already ≤ vcap, jitter stays within it.
        v = v.min(peak);
        speeds.push(v);
    }
    for k in (0..ramp_down).rev() {
        speeds.push(v * k as f64 / ramp_down as f64);
    }
}

/// Limits sample-to-sample speed changes with a forward pass
/// (acceleration) and a backward pass (deceleration). The forward pass
/// also enforces the specific-power cap `a·v ≤ msp`: hard launches are
/// only possible from low speed, as on the real dynamometer traces.
/// Idempotent; never raises any speed.
fn enforce_envelope(speeds: &mut [f64], amax: f64, msp: f64) {
    for i in 1..speeds.len() {
        let v = speeds[i - 1];
        let a_lim = if v > 1.0 { amax.min(msp / v) } else { amax };
        speeds[i] = speeds[i].min(v + a_lim);
    }
    for i in (0..speeds.len().saturating_sub(1)).rev() {
        speeds[i] = speeds[i].min(speeds[i + 1] + amax);
    }
}

fn trace_distance(speeds: &[f64]) -> f64 {
    speeds.windows(2).map(|w| 0.5 * (w[0] + w[1])).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::StandardCycle;

    #[test]
    fn every_standard_cycle_synthesises() {
        for cycle in StandardCycle::EXTENDED {
            let spec = cycle.spec();
            let trace = synthesize(&spec, cycle.seed()).unwrap_or_else(|e| panic!("{cycle}: {e}"));
            assert_eq!(
                trace.duration().value(),
                spec.duration.value(),
                "{cycle} duration"
            );
            let dist_err =
                (trace.distance().value() - spec.distance.value()).abs() / spec.distance.value();
            assert!(
                dist_err < 0.02,
                "{cycle} distance off by {:.1}%",
                dist_err * 100.0
            );
            assert!(
                trace.max_speed().value() <= spec.max_speed.value() * 1.001,
                "{cycle} overspeeds"
            );
            assert!(
                trace.max_speed().value() >= spec.max_speed.value() * 0.75,
                "{cycle} max speed {:.1} too far below spec {:.1}",
                trace.max_speed().value(),
                spec.max_speed.value()
            );
            assert!(
                trace.max_acceleration().value() <= spec.max_accel.value() * 1.05,
                "{cycle} accel envelope violated: {:?}",
                trace.max_acceleration()
            );
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let spec = StandardCycle::Us06.spec();
        let a = synthesize(&spec, 42).unwrap();
        let b = synthesize(&spec, 42).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = StandardCycle::Us06.spec();
        let a = synthesize(&spec, 1).unwrap();
        let b = synthesize(&spec, 2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn stop_counts_roughly_match() {
        for cycle in StandardCycle::EXTENDED {
            let spec = cycle.spec();
            let trace = synthesize(&spec, cycle.seed()).unwrap();
            let got = trace.stops();
            assert!(
                (got as i64 - spec.stops as i64).abs() <= 2,
                "{cycle}: {got} stops vs spec {}",
                spec.stops
            );
        }
    }

    #[test]
    fn starts_and_ends_at_standstill() {
        for cycle in StandardCycle::EXTENDED {
            let trace = synthesize(&cycle.spec(), cycle.seed()).unwrap();
            assert_eq!(trace.speeds()[0].value(), 0.0, "{cycle} start");
            let last = trace.speeds().last().unwrap().value();
            assert!(last < 3.0, "{cycle} ends at {last} m/s");
        }
    }

    #[test]
    fn unsatisfiable_spec_is_reported() {
        let mut spec = StandardCycle::Udds.spec();
        // Demand the UDDS distance in a tenth of the time at the same
        // max speed: impossible.
        spec.duration = otem_units::Seconds::new(137.0);
        assert!(matches!(
            synthesize(&spec, 1),
            Err(CycleError::Unsatisfiable { .. }) | Err(CycleError::InvalidSpec { .. })
        ));
    }
}
