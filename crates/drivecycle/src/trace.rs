//! Power-request traces: the `P_e` input of the paper's Algorithm 1.

use otem_units::{Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// A uniformly sampled power-request trace.
///
/// # Examples
///
/// ```
/// use otem_drivecycle::PowerTrace;
/// use otem_units::{Seconds, Watts};
///
/// let trace = PowerTrace::new(
///     Seconds::new(1.0),
///     vec![Watts::new(1000.0), Watts::new(2000.0), Watts::new(-500.0)],
/// );
/// assert_eq!(trace.peak(), Watts::new(2000.0));
/// assert_eq!(trace.energy(), otem_units::Joules::new(2500.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTrace {
    dt: Seconds,
    samples: Vec<Watts>,
}

impl PowerTrace {
    /// Builds a trace from its sampling period and samples.
    pub fn new(dt: Seconds, samples: Vec<Watts>) -> Self {
        Self { dt, samples }
    }

    /// Sampling period.
    pub fn dt(&self) -> Seconds {
        self.dt
    }

    /// The samples.
    pub fn samples(&self) -> &[Watts] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the trace has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total duration.
    pub fn duration(&self) -> Seconds {
        self.dt * self.samples.len() as f64
    }

    /// Sample at index `i`, or zero past the end (convenient for MPC
    /// look-ahead windows that extend beyond the route).
    pub fn get(&self, i: usize) -> Watts {
        self.samples.get(i).copied().unwrap_or(Watts::ZERO)
    }

    /// Largest (most demanding) sample.
    pub fn peak(&self) -> Watts {
        self.samples.iter().copied().fold(Watts::ZERO, Watts::max)
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> Watts {
        if self.samples.is_empty() {
            return Watts::ZERO;
        }
        self.samples.iter().copied().sum::<Watts>() / self.samples.len() as f64
    }

    /// Net energy over the trace (discharge positive, regen negative).
    pub fn energy(&self) -> Joules {
        self.samples.iter().copied().sum::<Watts>() * self.dt
    }

    /// The forecast window `[start, start + n)` padded with zeros past
    /// the end of the route — what the MPC hands to the optimiser at
    /// each step (Algorithm 1 lines 11–12).
    pub fn window(&self, start: usize, n: usize) -> Vec<Watts> {
        (start..start + n).map(|i| self.get(i)).collect()
    }

    /// Concatenates `n` repetitions of the trace.
    pub fn repeat(&self, n: usize) -> PowerTrace {
        let mut samples = Vec::with_capacity(self.samples.len() * n.max(1));
        for _ in 0..n.max(1) {
            samples.extend_from_slice(&self.samples);
        }
        PowerTrace {
            dt: self.dt,
            samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> PowerTrace {
        PowerTrace::new(
            Seconds::new(1.0),
            vec![
                Watts::new(100.0),
                Watts::new(300.0),
                Watts::new(-50.0),
                Watts::new(0.0),
            ],
        )
    }

    #[test]
    fn stats() {
        let t = trace();
        assert_eq!(t.len(), 4);
        assert_eq!(t.duration(), Seconds::new(4.0));
        assert_eq!(t.peak(), Watts::new(300.0));
        assert_eq!(t.mean(), Watts::new(87.5));
        assert_eq!(t.energy(), Joules::new(350.0));
    }

    #[test]
    fn get_pads_with_zero() {
        let t = trace();
        assert_eq!(t.get(2), Watts::new(-50.0));
        assert_eq!(t.get(99), Watts::ZERO);
    }

    #[test]
    fn window_spans_the_end() {
        let t = trace();
        let w = t.window(2, 4);
        assert_eq!(
            w,
            vec![Watts::new(-50.0), Watts::ZERO, Watts::ZERO, Watts::ZERO]
        );
    }

    #[test]
    fn repeat_scales_energy() {
        let t = trace();
        let t3 = t.repeat(3);
        assert_eq!(t3.len(), 12);
        assert_eq!(t3.energy(), Joules::new(3.0 * 350.0));
    }

    #[test]
    fn empty_trace_stats_are_defined() {
        let t = PowerTrace::new(Seconds::new(1.0), vec![]);
        assert!(t.is_empty());
        assert_eq!(t.mean(), Watts::ZERO);
        assert_eq!(t.peak(), Watts::ZERO);
        assert_eq!(t.energy(), Joules::ZERO);
    }
}
