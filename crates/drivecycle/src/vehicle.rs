//! Backward-facing EV power-train model: speed trace → battery-bus power.

use crate::cycle::DriveCycle;
use crate::error::CycleError;
use crate::trace::PowerTrace;
use otem_units::{Kilograms, MetersPerSecond, MetersPerSecondSquared, Newtons, Ratio, Watts};
use serde::{Deserialize, Serialize};

/// Vehicle and driveline parameters for the road-load model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VehicleParams {
    /// Curb mass plus payload.
    pub mass: Kilograms,
    /// Aerodynamic drag coefficient `C_d`.
    pub drag_coefficient: f64,
    /// Frontal area (m²).
    pub frontal_area: f64,
    /// Rolling-resistance coefficient `C_rr`.
    pub rolling_resistance: f64,
    /// Air density (kg/m³).
    pub air_density: f64,
    /// Combined driveline + motor + inverter efficiency (tractive power
    /// to bus power).
    pub drivetrain_efficiency: Ratio,
    /// Fraction of braking power recaptured to the bus (regenerative
    /// braking, after its own conversion losses).
    pub regen_efficiency: Ratio,
    /// Constant accessory load on the bus (12 V systems, electronics;
    /// HVAC excluded — the paper treats climate control separately).
    pub accessory_power: Watts,
}

impl VehicleParams {
    /// A mid-size premium EV in the Tesla-Model-S class, the paper's
    /// reference vehicle.
    pub fn midsize_ev() -> Self {
        Self {
            mass: Kilograms::new(2_100.0),
            drag_coefficient: 0.24,
            frontal_area: 2.34,
            rolling_resistance: 0.009,
            air_density: 1.2,
            drivetrain_efficiency: Ratio::new(0.85),
            regen_efficiency: Ratio::new(0.60),
            accessory_power: Watts::new(500.0),
        }
    }

    /// A compact city EV (Leaf/i3 class): lighter and blunter than the
    /// premium sedan, with a smaller accessory load.
    pub fn compact_ev() -> Self {
        Self {
            mass: Kilograms::new(1_400.0),
            drag_coefficient: 0.29,
            frontal_area: 2.2,
            accessory_power: Watts::new(400.0),
            ..Self::midsize_ev()
        }
    }

    /// Validates physical plausibility.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError::InvalidSpec`] for non-positive mass, area,
    /// density or efficiencies, or coefficients outside sane ranges.
    pub fn validate(&self) -> Result<(), CycleError> {
        if self.mass.value() <= 0.0 {
            return Err(CycleError::InvalidSpec {
                field: "mass",
                constraint: "> 0 kg",
            });
        }
        if !(0.0..2.0).contains(&self.drag_coefficient) {
            return Err(CycleError::InvalidSpec {
                field: "drag_coefficient",
                constraint: "within (0, 2)",
            });
        }
        if self.frontal_area <= 0.0 {
            return Err(CycleError::InvalidSpec {
                field: "frontal_area",
                constraint: "> 0 m²",
            });
        }
        if !(0.0..0.1).contains(&self.rolling_resistance) {
            return Err(CycleError::InvalidSpec {
                field: "rolling_resistance",
                constraint: "within (0, 0.1)",
            });
        }
        if self.air_density <= 0.0 {
            return Err(CycleError::InvalidSpec {
                field: "air_density",
                constraint: "> 0 kg/m³",
            });
        }
        if self.drivetrain_efficiency.value() <= 0.0 {
            return Err(CycleError::InvalidSpec {
                field: "drivetrain_efficiency",
                constraint: "> 0",
            });
        }
        if self.accessory_power.value() < 0.0 {
            return Err(CycleError::InvalidSpec {
                field: "accessory_power",
                constraint: ">= 0 W",
            });
        }
        Ok(())
    }
}

impl Default for VehicleParams {
    fn default() -> Self {
        Self::midsize_ev()
    }
}

/// The backward-facing power-train: maps kinematics to bus power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Powertrain {
    params: VehicleParams,
}

impl Powertrain {
    /// Standard gravity (m/s²).
    const G: f64 = 9.806_65;

    /// Builds a power-train after validating the vehicle parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError::InvalidSpec`] when validation fails.
    pub fn new(params: VehicleParams) -> Result<Self, CycleError> {
        params.validate()?;
        Ok(Self { params })
    }

    /// The vehicle parameters.
    pub fn params(&self) -> &VehicleParams {
        &self.params
    }

    /// Tractive force at the wheels for the given operating point
    /// (level road unless `grade` ≠ 0, expressed as a slope ratio).
    pub fn tractive_force(
        &self,
        speed: MetersPerSecond,
        accel: MetersPerSecondSquared,
        grade: f64,
    ) -> Newtons {
        let p = &self.params;
        let v = speed.value();
        let inertial = p.mass.value() * accel.value();
        let aero = 0.5 * p.air_density * p.drag_coefficient * p.frontal_area * v * v;
        let rolling = if v > 0.01 {
            p.rolling_resistance * p.mass.value() * Self::G
        } else {
            0.0
        };
        let climb = p.mass.value() * Self::G * grade;
        Newtons::new(inertial + aero + rolling + climb)
    }

    /// Battery-bus power request for the given operating point: positive
    /// when the storage must supply power, negative when regenerative
    /// braking returns power.
    pub fn power_request(
        &self,
        speed: MetersPerSecond,
        accel: MetersPerSecondSquared,
        grade: f64,
    ) -> Watts {
        let p = &self.params;
        let wheel: Watts = self.tractive_force(speed, accel, grade) * speed;
        let traction = if wheel.value() >= 0.0 {
            // Discharging: driveline losses inflate the request.
            wheel / p.drivetrain_efficiency.value()
        } else {
            // Braking: only a fraction comes back.
            wheel * p.regen_efficiency.value()
        };
        traction + p.accessory_power
    }

    /// Evaluates the whole cycle into a 1 Hz power-request trace on a
    /// level road (the paper's `P_e` input).
    pub fn power_trace(&self, cycle: &DriveCycle) -> PowerTrace {
        self.power_trace_with_grade(cycle, &crate::grade::GradeProfile::flat())
    }

    /// Evaluates the cycle over a road-grade profile: the grade is
    /// looked up by the distance travelled so far, so hills land where
    /// the route puts them regardless of speed.
    pub fn power_trace_with_grade(
        &self,
        cycle: &DriveCycle,
        grade: &crate::grade::GradeProfile,
    ) -> PowerTrace {
        let speeds = cycle.speeds();
        let mut distance = 0.0;
        let samples = (0..speeds.len())
            .map(|i| {
                let g = grade.grade_at(otem_units::Meters::new(distance));
                let p = self.power_request(speeds[i], cycle.acceleration(i), g);
                if i + 1 < speeds.len() {
                    distance += 0.5 * (speeds[i].value() + speeds[i + 1].value());
                }
                p
            })
            .collect();
        PowerTrace::new(DriveCycle::DT, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train() -> Powertrain {
        Powertrain::new(VehicleParams::midsize_ev()).unwrap()
    }

    #[test]
    fn cruise_power_is_tens_of_kilowatts() {
        let t = train();
        // 120 km/h steady cruise.
        let p = t.power_request(
            MetersPerSecond::from_kmh(120.0),
            MetersPerSecondSquared::ZERO,
            0.0,
        );
        assert!(
            (10_000.0..40_000.0).contains(&p.value()),
            "cruise power {p:?}"
        );
    }

    #[test]
    fn hard_acceleration_approaches_triple_digit_kilowatts() {
        let t = train();
        let p = t.power_request(
            MetersPerSecond::new(25.0),
            MetersPerSecondSquared::new(2.5),
            0.0,
        );
        assert!(p.value() > 80_000.0, "launch power {p:?}");
    }

    #[test]
    fn braking_regenerates() {
        let t = train();
        let p = t.power_request(
            MetersPerSecond::new(20.0),
            MetersPerSecondSquared::new(-2.0),
            0.0,
        );
        assert!(p.value() < 0.0, "regen power {p:?}");
        // Regen magnitude is a fraction of what the same accel costs.
        let drive = t.power_request(
            MetersPerSecond::new(20.0),
            MetersPerSecondSquared::new(2.0),
            0.0,
        );
        assert!(p.abs() < drive);
    }

    #[test]
    fn standstill_only_draws_accessories() {
        let t = train();
        let p = t.power_request(MetersPerSecond::ZERO, MetersPerSecondSquared::ZERO, 0.0);
        assert_eq!(p, t.params().accessory_power);
    }

    #[test]
    fn grade_adds_load() {
        let t = train();
        let flat = t.power_request(
            MetersPerSecond::new(20.0),
            MetersPerSecondSquared::ZERO,
            0.0,
        );
        let hill = t.power_request(
            MetersPerSecond::new(20.0),
            MetersPerSecondSquared::ZERO,
            0.05,
        );
        assert!(hill.value() > flat.value() + 15_000.0);
    }

    #[test]
    fn aero_grows_quadratically() {
        let t = train();
        let f1 = t
            .tractive_force(
                MetersPerSecond::new(10.0),
                MetersPerSecondSquared::ZERO,
                0.0,
            )
            .value();
        let f2 = t
            .tractive_force(
                MetersPerSecond::new(20.0),
                MetersPerSecondSquared::ZERO,
                0.0,
            )
            .value();
        let rolling = 0.009 * 2_100.0 * 9.806_65;
        assert!(((f2 - rolling) / (f1 - rolling) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn hilly_route_costs_more_than_flat() {
        use crate::grade::GradeProfile;
        use crate::spec::StandardCycle;
        use crate::synth::synthesize;
        use otem_units::Meters;
        let t = train();
        let cycle = synthesize(&StandardCycle::Udds.spec(), 3).unwrap();
        let flat = t.power_trace(&cycle);
        let profile = GradeProfile::from_breakpoints(vec![
            (Meters::new(0.0), Meters::new(0.0)),
            (Meters::new(6_000.0), Meters::new(180.0)), // 3 % climb
            (Meters::new(12_000.0), Meters::new(180.0)),
        ])
        .unwrap();
        let hilly = t.power_trace_with_grade(&cycle, &profile);
        assert!(hilly.energy() > flat.energy());
        // The extra energy is roughly m·g·h / η at the bus.
        let extra = hilly.energy().value() - flat.energy().value();
        let expected = 2_100.0 * 9.806_65 * 180.0 / 0.85;
        assert!(
            (extra - expected).abs() / expected < 0.35,
            "extra {extra} vs m·g·h/η ≈ {expected}"
        );
    }

    #[test]
    fn compact_ev_draws_less_than_midsize() {
        let mid = Powertrain::new(VehicleParams::midsize_ev()).unwrap();
        let compact = Powertrain::new(VehicleParams::compact_ev()).unwrap();
        let v = MetersPerSecond::from_kmh(100.0);
        let a = MetersPerSecondSquared::new(1.0);
        assert!(compact.power_request(v, a, 0.0) < mid.power_request(v, a, 0.0));
    }

    #[test]
    fn invalid_vehicle_rejected() {
        let mut v = VehicleParams::midsize_ev();
        v.mass = Kilograms::new(0.0);
        assert!(Powertrain::new(v).is_err());

        let mut v = VehicleParams::midsize_ev();
        v.drag_coefficient = 3.0;
        assert!(Powertrain::new(v).is_err());
    }
}
