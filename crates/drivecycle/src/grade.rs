//! Road-grade profiles: routes are not flat, and climbing dominates the
//! power request wherever it appears (the battery-aware driving work the
//! paper builds on \[12\] routes around exactly this).

use crate::error::CycleError;
use otem_units::Meters;
use serde::{Deserialize, Serialize};

/// A piecewise-linear elevation profile over route distance.
///
/// Grade (slope ratio) is queried by distance travelled, which the
/// power-train integrates alongside the speed trace.
///
/// # Examples
///
/// ```
/// use otem_drivecycle::GradeProfile;
/// use otem_units::Meters;
///
/// # fn main() -> Result<(), otem_drivecycle::CycleError> {
/// // 2 km flat, then 1 km at +5 %, then descend.
/// let profile = GradeProfile::from_breakpoints(vec![
///     (Meters::new(0.0), Meters::new(0.0)),
///     (Meters::new(2_000.0), Meters::new(0.0)),
///     (Meters::new(3_000.0), Meters::new(50.0)),
///     (Meters::new(5_000.0), Meters::new(0.0)),
/// ])?;
/// assert_eq!(profile.grade_at(Meters::new(1_000.0)), 0.0);
/// assert!((profile.grade_at(Meters::new(2_500.0)) - 0.05).abs() < 1e-12);
/// assert!(profile.grade_at(Meters::new(4_000.0)) < 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradeProfile {
    /// `(distance, elevation)` breakpoints, strictly increasing in
    /// distance.
    breakpoints: Vec<(f64, f64)>,
}

impl GradeProfile {
    /// A perfectly flat route.
    pub fn flat() -> Self {
        Self {
            breakpoints: vec![(0.0, 0.0)],
        }
    }

    /// Builds from `(distance, elevation)` breakpoints.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError::InvalidTrace`] when fewer than one
    /// breakpoint is given, distances are not strictly increasing, any
    /// value is non-finite, or a segment's grade magnitude exceeds 30 %
    /// (steeper than any public road).
    pub fn from_breakpoints(breakpoints: Vec<(Meters, Meters)>) -> Result<Self, CycleError> {
        if breakpoints.is_empty() {
            return Err(CycleError::InvalidTrace {
                index: 0,
                reason: "empty grade profile",
            });
        }
        let raw: Vec<(f64, f64)> = breakpoints
            .iter()
            .map(|(d, e)| (d.value(), e.value()))
            .collect();
        for (i, w) in raw.windows(2).enumerate() {
            let (d0, e0) = w[0];
            let (d1, e1) = w[1];
            if !(d0.is_finite() && e0.is_finite() && d1.is_finite() && e1.is_finite()) {
                return Err(CycleError::InvalidTrace {
                    index: i,
                    reason: "non-finite breakpoint",
                });
            }
            if d1 <= d0 {
                return Err(CycleError::InvalidTrace {
                    index: i + 1,
                    reason: "distances must be strictly increasing",
                });
            }
            let grade = (e1 - e0) / (d1 - d0);
            if grade.abs() > 0.30 {
                return Err(CycleError::InvalidTrace {
                    index: i + 1,
                    reason: "grade exceeds 30 %",
                });
            }
        }
        Ok(Self { breakpoints: raw })
    }

    /// The slope ratio at the given route distance (constant within each
    /// segment; the last segment's grade extends past the final
    /// breakpoint, zero before the first and for single-point profiles).
    pub fn grade_at(&self, distance: Meters) -> f64 {
        let d = distance.value();
        if self.breakpoints.len() < 2 || d < self.breakpoints[0].0 {
            return 0.0;
        }
        let idx = self
            .breakpoints
            .windows(2)
            .position(|w| d < w[1].0)
            .unwrap_or(self.breakpoints.len() - 2);
        let (d0, e0) = self.breakpoints[idx];
        let (d1, e1) = self.breakpoints[idx + 1];
        (e1 - e0) / (d1 - d0)
    }

    /// Total elevation gained (sum of positive segment rises).
    pub fn total_climb(&self) -> Meters {
        let climb: f64 = self
            .breakpoints
            .windows(2)
            .map(|w| (w[1].1 - w[0].1).max(0.0))
            .sum();
        Meters::new(climb)
    }
}

impl Default for GradeProfile {
    fn default() -> Self {
        Self::flat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(v: f64) -> Meters {
        Meters::new(v)
    }

    fn hill() -> GradeProfile {
        GradeProfile::from_breakpoints(vec![
            (m(0.0), m(0.0)),
            (m(1_000.0), m(0.0)),
            (m(2_000.0), m(60.0)),
            (m(3_000.0), m(20.0)),
        ])
        .unwrap()
    }

    #[test]
    fn grades_per_segment() {
        let p = hill();
        assert_eq!(p.grade_at(m(500.0)), 0.0);
        assert!((p.grade_at(m(1_500.0)) - 0.06).abs() < 1e-12);
        assert!((p.grade_at(m(2_500.0)) + 0.04).abs() < 1e-12);
        // Past the end: last segment's grade persists.
        assert!((p.grade_at(m(9_999.0)) + 0.04).abs() < 1e-12);
    }

    #[test]
    fn flat_profile_is_zero_everywhere() {
        let p = GradeProfile::flat();
        assert_eq!(p.grade_at(m(0.0)), 0.0);
        assert_eq!(p.grade_at(m(1e6)), 0.0);
        assert_eq!(p.total_climb(), m(0.0));
    }

    #[test]
    fn total_climb_counts_only_rises() {
        assert_eq!(hill().total_climb(), m(60.0));
    }

    #[test]
    fn invalid_profiles_rejected() {
        assert!(GradeProfile::from_breakpoints(vec![]).is_err());
        // Non-increasing distance.
        assert!(GradeProfile::from_breakpoints(vec![(m(0.0), m(0.0)), (m(0.0), m(5.0)),]).is_err());
        // Cliff.
        assert!(
            GradeProfile::from_breakpoints(vec![(m(0.0), m(0.0)), (m(100.0), m(50.0)),]).is_err()
        );
    }
}
