//! Deterministic fault injection for OTEM controllers.
//!
//! Robustness claims need a repeatable adversary. This crate provides
//! one: a seeded, schedule-driven [`FaultPlan`] and a
//! [`FaultedController`] decorator that wraps **any**
//! [`otem::Controller`] and corrupts what flows across its boundary —
//! sensor readings, load, forecast — plus, for controllers that opt in
//! via [`otem::Controller::inject`], plant-internal degradations (stuck
//! cooling pump, starved solver, collapsed solve deadline, biased
//! thermistor).
//!
//! Design rules:
//!
//! * **The nominal path is untouched.** Faults live entirely in this
//!   decorator; a controller that is never wrapped runs byte-identical
//!   code to before this crate existed.
//! * **Determinism.** All randomness comes from one seeded generator;
//!   the same plan over the same trace reproduces the same corruption
//!   bit-for-bit. Campaign results are therefore regression-testable.
//! * **Observability.** Every active fault on every step emits
//!   [`Event::FaultInjected`], so a telemetry stream fully reconstructs
//!   the adversary's timeline.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use otem::{Controller, PlantFault, StepRecord, SystemState};
use otem_telemetry::{Event, NullSink, Sink};
use otem_units::{Kelvin, Ratio, Seconds, Watts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One kind of injected degradation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Gaussian noise on the *reported* measurements: battery/coolant
    /// temperature (K) and SoC/SoE (absolute ratio units).
    SensorNoise {
        /// Standard deviation of the temperature noise (K).
        temp_sigma_k: f64,
        /// Standard deviation of the SoC/SoE noise (ratio units).
        ratio_sigma: f64,
    },
    /// Constant offset on the temperature the controller reads
    /// (delivered via [`PlantFault::SensorBias`] when the controller
    /// supports it, otherwise applied to the reported record).
    SensorBias {
        /// Bias on the measured battery temperature (K).
        temp_k: f64,
    },
    /// The forecast channel goes dark: the controller sees an empty
    /// window.
    ForecastDropout,
    /// The forecast freezes: the controller keeps seeing the window
    /// from the step before the fault began.
    ForecastStale,
    /// The forecast is systematically mis-scaled (e.g. `gain: 0.2`
    /// models a planner that wildly underestimates demand).
    ForecastScale {
        /// Multiplier applied to every forecast sample.
        gain: f64,
    },
    /// The forecast turns to garbage: every sample becomes NaN. The
    /// nastiest case — an unsupervised MPC happily optimises a NaN
    /// objective.
    ForecastCorrupt,
    /// An additive load transient on top of the drive-cycle demand.
    LoadSpike {
        /// Extra bus power demanded (W; may be negative).
        power_w: f64,
    },
    /// A degraded DC-DC stage: extra conversion loss modelled as an
    /// inflated load, `load += |load| · (1/efficiency − 1)`.
    ConverterDerate {
        /// Residual efficiency in `(0, 1]`.
        efficiency: f64,
    },
    /// The cooling pump sticks off ([`PlantFault::PumpStuck`]).
    PumpStuck,
    /// The solver's per-period iteration budget collapses
    /// ([`PlantFault::SolverIterationCap`]).
    SolverStarvation {
        /// Remaining iteration budget (0 = fully starved).
        max_iterations: usize,
    },
    /// The solver's wall-clock deadline collapses
    /// ([`PlantFault::SolverDeadlineNs`]) — models a throttled or
    /// overloaded control ECU. Zero nanoseconds makes every solve miss
    /// the deadline before its first iteration.
    SolverDeadline {
        /// Remaining per-solve budget in nanoseconds.
        deadline_ns: u64,
    },
    /// The control stack **panics** on every step the window covers —
    /// models a software defect (unwrap on bad data, index out of
    /// bounds) rather than a physical degradation. Unlike every other
    /// fault, this one does not corrupt and continue: the wrapped
    /// controller's `step` unwinds. It exists for chaos harnesses that
    /// prove panic *containment* — the fleet engine must catch the
    /// unwind, record a structured error for the poisoned vehicle, and
    /// keep the rest of the campaign (and the serving process) alive.
    Poison,
}

impl FaultKind {
    /// Stable snake_case name, used by [`Event::FaultInjected`] and the
    /// campaign reports.
    pub fn name(self) -> &'static str {
        match self {
            Self::SensorNoise { .. } => "sensor_noise",
            Self::SensorBias { .. } => "sensor_bias",
            Self::ForecastDropout => "forecast_dropout",
            Self::ForecastStale => "forecast_stale",
            Self::ForecastScale { .. } => "forecast_scale",
            Self::ForecastCorrupt => "forecast_corrupt",
            Self::LoadSpike { .. } => "load_spike",
            Self::ConverterDerate { .. } => "converter_derate",
            Self::PumpStuck => "pump_stuck",
            Self::SolverStarvation { .. } => "solver_starvation",
            Self::SolverDeadline { .. } => "solver_deadline",
            Self::Poison => "poison",
        }
    }
}

/// A fault active over the half-open step interval `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// First step (inclusive) on which the fault is active.
    pub from: u64,
    /// First step on which it is no longer active.
    pub until: u64,
    /// What happens while it is.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// Whether the window covers `step`.
    pub fn covers(&self, step: u64) -> bool {
        (self.from..self.until).contains(&step)
    }
}

/// A seeded, schedule-driven fault campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for all stochastic corruption.
    pub seed: u64,
    /// The scheduled windows.
    pub windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// An empty plan (wrapping with it is a no-op campaign).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            windows: Vec::new(),
        }
    }

    /// Schedules `kind` over `[from, until)` (builder style).
    #[must_use]
    pub fn inject(mut self, kind: FaultKind, from: u64, until: u64) -> Self {
        self.windows.push(FaultWindow { from, until, kind });
        self
    }

    /// The faults active at `step`, in schedule order.
    pub fn active(&self, step: u64) -> impl Iterator<Item = FaultKind> + '_ {
        self.windows
            .iter()
            .filter(move |w| w.covers(step))
            .map(|w| w.kind)
    }
}

/// Tracks which plant-level faults the decorator has pushed into the
/// wrapped controller, so injections are idempotent per window and are
/// cleared the step after their window closes.
#[derive(Debug, Clone, Copy, Default)]
struct AppliedPlantFaults {
    pump_stuck: bool,
    iteration_cap: Option<usize>,
    deadline_ns: Option<u64>,
    sensor_bias_k: f64,
    /// Whether the wrapped controller accepted the bias injection (if
    /// not, the decorator biases the reported record instead).
    bias_supported: bool,
}

/// Wraps any controller and subjects it to a [`FaultPlan`].
///
/// The decorator owns the step counter: each [`Controller::step`] /
/// [`Controller::step_with`] call advances it by one, and windows are
/// expressed in these steps.
#[derive(Debug, Clone)]
pub struct FaultedController<C: Controller> {
    inner: C,
    plan: FaultPlan,
    rng: StdRng,
    step: u64,
    /// Latest un-faulted forecast, kept for [`FaultKind::ForecastStale`].
    last_forecast: Vec<Watts>,
    /// Scratch for the corrupted forecast handed to the controller.
    scratch: Vec<Watts>,
    applied: AppliedPlantFaults,
    injections: u64,
}

impl<C: Controller> FaultedController<C> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: C, plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        Self {
            inner,
            plan,
            rng,
            step: 0,
            last_forecast: Vec::new(),
            scratch: Vec::new(),
            applied: AppliedPlantFaults::default(),
            injections: 0,
        }
    }

    /// The wrapped controller.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Consumes the decorator, returning the wrapped controller.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// Total fault-step activations so far (one per active fault per
    /// step — the number of [`Event::FaultInjected`] events emitted).
    pub fn injections(&self) -> u64 {
        self.injections
    }

    /// One standard-normal draw (Box–Muller over the seeded generator).
    fn gauss(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Reconciles the plant-level faults the schedule wants at this step
    /// with what is currently pushed into the controller.
    fn reconcile_plant_faults(&mut self, step: u64) {
        let mut want_pump = false;
        let mut want_cap: Option<usize> = None;
        let mut want_deadline: Option<u64> = None;
        let mut want_bias = 0.0;
        for kind in self.plan.active(step) {
            match kind {
                FaultKind::PumpStuck => want_pump = true,
                FaultKind::SolverStarvation { max_iterations } => {
                    want_cap = Some(max_iterations);
                }
                FaultKind::SolverDeadline { deadline_ns } => {
                    want_deadline = Some(deadline_ns);
                }
                FaultKind::SensorBias { temp_k } => want_bias = temp_k,
                _ => {}
            }
        }
        if want_pump != self.applied.pump_stuck {
            let _ = self.inner.inject(PlantFault::PumpStuck(want_pump));
            self.applied.pump_stuck = want_pump;
        }
        if want_cap != self.applied.iteration_cap {
            let _ = self.inner.inject(PlantFault::SolverIterationCap(want_cap));
            self.applied.iteration_cap = want_cap;
        }
        if want_deadline != self.applied.deadline_ns {
            let _ = self
                .inner
                .inject(PlantFault::SolverDeadlineNs(want_deadline));
            self.applied.deadline_ns = want_deadline;
        }
        if want_bias != self.applied.sensor_bias_k {
            self.applied.bias_supported = self
                .inner
                .inject(PlantFault::SensorBias { temp_k: want_bias });
            self.applied.sensor_bias_k = want_bias;
        }
    }

    /// Applies the input-side corruption, returning the effective load
    /// and leaving the effective forecast in `self.scratch`.
    fn corrupt_inputs(&mut self, step: u64, load: Watts, forecast: &[Watts]) -> Watts {
        self.scratch.clear();
        self.scratch.extend_from_slice(forecast);
        let mut load = load;
        let mut dropout = false;
        for kind in self.plan.active(step) {
            match kind {
                FaultKind::LoadSpike { power_w } => {
                    load += Watts::new(power_w);
                }
                FaultKind::ConverterDerate { efficiency } => {
                    let eff = efficiency.clamp(1e-3, 1.0);
                    load += Watts::new(load.value().abs() * (1.0 / eff - 1.0));
                }
                FaultKind::ForecastDropout => dropout = true,
                FaultKind::ForecastStale => {
                    self.scratch.clear();
                    self.scratch.extend_from_slice(&self.last_forecast);
                }
                FaultKind::ForecastScale { gain } => {
                    for w in &mut self.scratch {
                        *w = Watts::new(w.value() * gain);
                    }
                }
                FaultKind::ForecastCorrupt => {
                    for w in &mut self.scratch {
                        *w = Watts::new(f64::NAN);
                    }
                }
                _ => {}
            }
        }
        if dropout {
            self.scratch.clear();
        }
        load
    }

    /// Applies measurement-side corruption to the reported record.
    fn corrupt_record(&mut self, step: u64, mut record: StepRecord) -> StepRecord {
        let mut temp_sigma = 0.0;
        let mut ratio_sigma = 0.0;
        let mut bias = 0.0;
        for kind in self.plan.active(step) {
            match kind {
                FaultKind::SensorNoise {
                    temp_sigma_k,
                    ratio_sigma: rs,
                } => {
                    temp_sigma = temp_sigma_k;
                    ratio_sigma = rs;
                }
                FaultKind::SensorBias { temp_k } if !self.applied.bias_supported => {
                    bias = temp_k;
                }
                _ => {}
            }
        }
        if temp_sigma > 0.0 {
            let db = temp_sigma * self.gauss();
            let dc = temp_sigma * self.gauss();
            record.state.battery_temp = Kelvin::new(record.state.battery_temp.value() + db);
            record.state.coolant_temp = Kelvin::new(record.state.coolant_temp.value() + dc);
        }
        if ratio_sigma > 0.0 {
            let ds = ratio_sigma * self.gauss();
            let de = ratio_sigma * self.gauss();
            record.state.soc = Ratio::new(record.state.soc.value() + ds);
            record.state.soe = Ratio::new(record.state.soe.value() + de);
        }
        if bias != 0.0 {
            record.state.battery_temp = Kelvin::new(record.state.battery_temp.value() + bias);
        }
        record
    }
}

impl<C: Controller> Controller for FaultedController<C> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn step(&mut self, load: Watts, forecast: &[Watts], dt: Seconds) -> StepRecord {
        self.step_with(load, forecast, dt, &NullSink)
    }

    fn step_with(
        &mut self,
        load: Watts,
        forecast: &[Watts],
        dt: Seconds,
        sink: &dyn Sink,
    ) -> StepRecord {
        let step = self.step;
        self.step += 1;

        for kind in self.plan.active(step) {
            self.injections += 1;
            sink.record(Event::FaultInjected {
                step,
                fault: kind.name(),
            });
        }

        // Poison unwinds *after* the injection event above, so a
        // telemetry stream still shows what killed the step.
        if self.plan.active(step).any(|k| k == FaultKind::Poison) {
            panic!("poison fault: injected controller panic at step {step}");
        }

        self.reconcile_plant_faults(step);
        let eff_load = self.corrupt_inputs(step, load, forecast);
        // Freeze the stale buffer *after* corruption so a stale window
        // replays the last pre-fault window, not its own output.
        if !self
            .plan
            .active(step)
            .any(|k| k == FaultKind::ForecastStale)
        {
            self.last_forecast.clear();
            self.last_forecast.extend_from_slice(forecast);
        }

        let scratch = std::mem::take(&mut self.scratch);
        let record = self.inner.step_with(eff_load, &scratch, dt, sink);
        self.scratch = scratch;
        self.corrupt_record(step, record)
    }

    fn state(&self) -> SystemState {
        // Truthful: sensor corruption applies to per-step records; the
        // state accessor reports the plant as it is, so harnesses can
        // compare belief vs ground truth.
        self.inner.state()
    }

    fn inject(&mut self, fault: PlantFault) -> bool {
        self.inner.inject(fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otem_telemetry::MemorySink;

    /// A stub controller that records exactly what it was asked to do.
    #[derive(Debug, Default)]
    struct Probe {
        loads: Vec<f64>,
        forecasts: Vec<Vec<f64>>,
        plant_faults: Vec<PlantFault>,
        support_bias: bool,
    }

    impl Controller for Probe {
        fn name(&self) -> &'static str {
            "probe"
        }

        fn step(&mut self, load: Watts, forecast: &[Watts], _dt: Seconds) -> StepRecord {
            self.loads.push(load.value());
            self.forecasts
                .push(forecast.iter().map(|w| w.value()).collect());
            StepRecord {
                load,
                hees: Default::default(),
                cooling_power: Watts::ZERO,
                state: self.state(),
            }
        }

        fn state(&self) -> SystemState {
            SystemState {
                battery_temp: Kelvin::from_celsius(30.0),
                coolant_temp: Kelvin::from_celsius(29.0),
                soe: Ratio::new(0.5),
                soc: Ratio::new(0.8),
            }
        }

        fn inject(&mut self, fault: PlantFault) -> bool {
            self.plant_faults.push(fault);
            match fault {
                PlantFault::SensorBias { .. } => self.support_bias,
                _ => true,
            }
        }
    }

    fn run(plan: FaultPlan, steps: u64) -> (FaultedController<Probe>, MemorySink) {
        let mut faulted = FaultedController::new(Probe::default(), plan);
        let sink = MemorySink::new();
        let forecast = [Watts::new(10_000.0), Watts::new(20_000.0)];
        for _ in 0..steps {
            let _ = faulted.step_with(Watts::new(5_000.0), &forecast, Seconds::new(1.0), &sink);
        }
        (faulted, sink)
    }

    #[test]
    fn windows_are_half_open_and_named() {
        let w = FaultWindow {
            from: 2,
            until: 4,
            kind: FaultKind::ForecastDropout,
        };
        assert!(!w.covers(1));
        assert!(w.covers(2));
        assert!(w.covers(3));
        assert!(!w.covers(4));
        assert_eq!(FaultKind::ForecastDropout.name(), "forecast_dropout");
        assert_eq!(
            FaultKind::SolverStarvation { max_iterations: 0 }.name(),
            "solver_starvation"
        );
    }

    #[test]
    fn load_faults_reshape_the_demand() {
        let plan = FaultPlan::new(1)
            .inject(
                FaultKind::LoadSpike {
                    power_w: 1_000_000.0,
                },
                1,
                2,
            )
            .inject(FaultKind::ConverterDerate { efficiency: 0.5 }, 2, 3);
        let (f, sink) = run(plan, 3);
        assert_eq!(f.inner().loads[0], 5_000.0);
        assert_eq!(f.inner().loads[1], 1_005_000.0);
        assert_eq!(f.inner().loads[2], 10_000.0, "1/0.5 − 1 doubles |load|");
        assert_eq!(sink.count_kind("fault_injected"), 2);
        assert_eq!(f.injections(), 2);
    }

    #[test]
    fn forecast_faults_corrupt_the_window() {
        let plan = FaultPlan::new(1)
            .inject(FaultKind::ForecastScale { gain: 0.1 }, 0, 1)
            .inject(FaultKind::ForecastDropout, 1, 2)
            .inject(FaultKind::ForecastCorrupt, 2, 3);
        let (f, _) = run(plan, 4);
        let fc = &f.inner().forecasts;
        assert_eq!(fc[0], vec![1_000.0, 2_000.0]);
        assert!(fc[1].is_empty());
        assert!(fc[2].iter().all(|v| v.is_nan()));
        assert_eq!(fc[3], vec![10_000.0, 20_000.0], "nominal after the window");
    }

    #[test]
    fn stale_forecast_replays_the_pre_fault_window() {
        let mut faulted = FaultedController::new(
            Probe::default(),
            FaultPlan::new(1).inject(FaultKind::ForecastStale, 1, 3),
        );
        for k in 0..4u64 {
            let fresh = [Watts::new(1_000.0 * k as f64)];
            let _ = faulted.step(Watts::ZERO, &fresh, Seconds::new(1.0));
        }
        let fc = &faulted.inner().forecasts;
        assert_eq!(fc[0], vec![0.0]);
        assert_eq!(fc[1], vec![0.0], "frozen at the step-0 window");
        assert_eq!(fc[2], vec![0.0], "still frozen");
        assert_eq!(fc[3], vec![3_000.0], "thaws when the window closes");
    }

    #[test]
    fn plant_faults_are_idempotent_and_cleared() {
        let plan = FaultPlan::new(1)
            .inject(FaultKind::PumpStuck, 1, 3)
            .inject(FaultKind::SolverStarvation { max_iterations: 0 }, 1, 3)
            .inject(FaultKind::SolverDeadline { deadline_ns: 500 }, 1, 3);
        let (f, _) = run(plan, 5);
        // One injection on entry, one clear on exit — not one per step.
        assert_eq!(
            f.inner().plant_faults,
            vec![
                PlantFault::PumpStuck(true),
                PlantFault::SolverIterationCap(Some(0)),
                PlantFault::SolverDeadlineNs(Some(500)),
                PlantFault::PumpStuck(false),
                PlantFault::SolverIterationCap(None),
                PlantFault::SolverDeadlineNs(None),
            ]
        );
        assert_eq!(
            FaultKind::SolverDeadline { deadline_ns: 500 }.name(),
            "solver_deadline"
        );
    }

    #[test]
    fn sensor_bias_falls_back_to_record_corruption_when_unsupported() {
        let plan = FaultPlan::new(1).inject(FaultKind::SensorBias { temp_k: 5.0 }, 0, 1);
        let mut faulted = FaultedController::new(Probe::default(), plan);
        let rec = faulted.step(Watts::ZERO, &[], Seconds::new(1.0));
        // Probe rejects the bias injection, so the decorator biases the
        // reported measurement instead.
        assert!((rec.state.battery_temp.value() - (303.15 + 5.0)).abs() < 1e-9);
        // Ground truth stays unbiased.
        assert!((faulted.state().battery_temp.value() - 303.15).abs() < 1e-9);
    }

    #[test]
    fn sensor_noise_is_seed_deterministic() {
        let plan = || {
            FaultPlan::new(99).inject(
                FaultKind::SensorNoise {
                    temp_sigma_k: 2.0,
                    ratio_sigma: 0.05,
                },
                0,
                10,
            )
        };
        let (run_a, _) = run(plan(), 10);
        let (run_b, _) = run(plan(), 10);
        let mut a = FaultedController::new(Probe::default(), plan());
        let mut b = FaultedController::new(Probe::default(), plan());
        for _ in 0..10 {
            let ra = a.step(Watts::ZERO, &[], Seconds::new(1.0));
            let rb = b.step(Watts::ZERO, &[], Seconds::new(1.0));
            assert_eq!(
                ra.state.battery_temp.value().to_bits(),
                rb.state.battery_temp.value().to_bits()
            );
            assert_ne!(
                ra.state.battery_temp.value(),
                303.15,
                "noise must actually perturb the reading"
            );
        }
        let _ = (run_a, run_b);
    }

    #[test]
    fn empty_plan_is_transparent() {
        let (f, sink) = run(FaultPlan::new(7), 5);
        assert_eq!(f.injections(), 0);
        assert_eq!(sink.count_kind("fault_injected"), 0);
        assert!(f.inner().plant_faults.is_empty());
        assert!(f.inner().loads.iter().all(|&l| l == 5_000.0));
    }

    #[test]
    fn poison_fault_panics_inside_its_window_only() {
        let plan = FaultPlan::new(0).inject(FaultKind::Poison, 2, 3);
        assert_eq!(FaultKind::Poison.name(), "poison");
        let mut faulted = FaultedController::new(Probe::default(), plan);
        for _ in 0..2 {
            faulted.step(Watts::new(1.0), &[], Seconds::new(1.0));
        }
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            faulted.step(Watts::new(1.0), &[], Seconds::new(1.0));
        }));
        assert!(caught.is_err(), "step inside the poison window must unwind");
    }
}
