//! Property tests: stability and physical sanity of the thermal
//! integrators across the whole operating envelope.

use otem_thermal::{CoolingPlant, PlantParams, ThermalModel, ThermalParams, ThermalState};
use otem_units::{Kelvin, Seconds, Watts};
use proptest::prelude::*;

fn model() -> ThermalModel {
    ThermalModel::new(ThermalParams::ev_pack()).unwrap()
}

proptest! {
    #[test]
    fn crank_nicolson_bounded_by_sources(
        t0 in 273.0..330.0f64,
        q in 0.0..8_000.0f64,
        inlet in 280.0..310.0f64,
        steps in 1..2_000usize,
    ) {
        // Temperatures can never leave the hull of (initial, ambient,
        // inlet, equilibrium) by more than a hair: the system is a stable
        // linear filter.
        let m = model();
        let eq = m.equilibrium(Watts::new(q), Kelvin::new(inlet));
        let lo = t0.min(inlet).min(298.15).min(eq.battery.value()) - 0.5;
        let hi = t0.max(inlet).max(298.15).max(eq.battery.value()) + 0.5;
        let mut s = ThermalState::uniform(Kelvin::new(t0));
        for _ in 0..steps {
            s = m.step_crank_nicolson(s, Watts::new(q), Kelvin::new(inlet), Seconds::new(1.0));
            prop_assert!(s.battery.value().is_finite());
            prop_assert!((lo..=hi).contains(&s.battery.value()),
                "battery {} left [{lo}, {hi}]", s.battery.value());
        }
    }

    #[test]
    fn hotter_heat_input_means_hotter_equilibrium(
        q in 0.0..6_000.0f64,
        dq in 100.0..2_000.0f64,
        inlet in 280.0..305.0f64,
    ) {
        let m = model();
        let base = m.equilibrium(Watts::new(q), Kelvin::new(inlet));
        let more = m.equilibrium(Watts::new(q + dq), Kelvin::new(inlet));
        prop_assert!(more.battery > base.battery);
    }

    #[test]
    fn colder_inlet_means_colder_equilibrium(
        q in 0.0..6_000.0f64,
        inlet in 285.0..305.0f64,
        drop in 1.0..10.0f64,
    ) {
        let m = model();
        let base = m.equilibrium(Watts::new(q), Kelvin::new(inlet));
        let cooled = m.equilibrium(Watts::new(q), Kelvin::new(inlet - drop));
        prop_assert!(cooled.battery < base.battery);
    }

    #[test]
    fn actuation_is_always_feasible_and_priced_consistently(
        outlet in 283.0..320.0f64,
        request in 260.0..330.0f64,
    ) {
        let plant = CoolingPlant::new(PlantParams::ev_plant()).unwrap();
        let outlet = Kelvin::new(outlet);
        let action = plant.actuate(outlet, Kelvin::new(request));
        // Achieved inlet within actuator envelope.
        prop_assert!(action.inlet <= outlet);
        prop_assert!(action.inlet >= plant.coldest_inlet(outlet) - Kelvin::new(1e-9));
        // Price agrees with the open formula.
        let repriced = plant.power_for_inlet(outlet, action.inlet);
        prop_assert!((repriced.value() - action.cooler_power.value()).abs() < 1e-9);
        // Never exceeds the cooler limit.
        prop_assert!(action.cooler_power.value() <= plant.params().max_cooler_power.value() + 1e-6);
    }

    #[test]
    fn euler_and_cn_converge_together(
        t0 in 290.0..320.0f64,
        q in 0.0..4_000.0f64,
    ) {
        // At a fine step both integrators approximate the same ODE.
        let m = model();
        let mut cn = ThermalState::uniform(Kelvin::new(t0));
        let mut eu = cn;
        let dt = Seconds::new(0.05);
        for _ in 0..2_000 {
            cn = m.step_crank_nicolson(cn, Watts::new(q), Kelvin::new(293.15), dt);
            eu = m.step_euler(eu, Watts::new(q), Kelvin::new(293.15), dt);
        }
        prop_assert!((cn.battery.value() - eu.battery.value()).abs() < 0.05);
    }
}
