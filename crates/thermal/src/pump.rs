//! Extension: a variable-flow coolant pump.
//!
//! The paper fixes the coolant flow rate, making the pump power a
//! constant (Section II-D). Real plants modulate the flow: hydraulic
//! power grows with the cube of the flow rate, while the loop's
//! heat-capacity rate `Ċ_c = ṁ·c_p` grows linearly — so running the
//! pump slow whenever the thermal load allows saves meaningful energy.
//! This module models that trade-off for design studies; the OTEM
//! controller itself keeps the paper's fixed-flow assumption.

use crate::error::ThermalError;
use otem_units::{Ratio, ThermalConductance, Watts};
use serde::{Deserialize, Serialize};

/// A centrifugal coolant pump with controllable speed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariableFlowPump {
    /// Flow heat-capacity rate at full speed (W/K).
    pub rated_flow_capacity: ThermalConductance,
    /// Electric power at full speed (W).
    pub rated_power: Watts,
    /// Minimum sustainable duty (below this the pump stalls/cavitates).
    pub min_duty: Ratio,
}

impl VariableFlowPump {
    /// A pump matched to the EV plant's 1,050 W/K loop at 250 W.
    pub fn ev_pump() -> Self {
        Self {
            rated_flow_capacity: ThermalConductance::new(1_050.0),
            rated_power: Watts::new(250.0),
            min_duty: Ratio::new(0.2),
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for non-positive
    /// ratings or a zero minimum duty.
    pub fn validate(&self) -> Result<(), ThermalError> {
        if self.rated_flow_capacity.value() <= 0.0 {
            return Err(ThermalError::InvalidParameter {
                name: "rated_flow_capacity",
                value: self.rated_flow_capacity.value(),
                constraint: "> 0 W/K",
            });
        }
        if self.rated_power.value() <= 0.0 {
            return Err(ThermalError::InvalidParameter {
                name: "rated_power",
                value: self.rated_power.value(),
                constraint: "> 0 W",
            });
        }
        if self.min_duty.value() <= 0.0 {
            return Err(ThermalError::InvalidParameter {
                name: "min_duty",
                value: self.min_duty.value(),
                constraint: "> 0",
            });
        }
        Ok(())
    }

    /// Flow heat-capacity rate at the given duty (linear in speed).
    /// Duty zero means the pump is off; otherwise it is clamped to
    /// `[min_duty, 1]`.
    pub fn flow_capacity(&self, duty: Ratio) -> ThermalConductance {
        let d = self.effective_duty(duty);
        self.rated_flow_capacity * d
    }

    /// Electric power at the given duty: affinity-law cubic,
    /// `P = P_rated·d³`, zero when off.
    pub fn power(&self, duty: Ratio) -> Watts {
        let d = self.effective_duty(duty);
        self.rated_power * (d * d * d)
    }

    /// Smallest duty whose flow capacity reaches `needed` (or `None`
    /// when even full speed falls short). Running at exactly this duty is
    /// the energy-optimal choice for a required heat-capacity rate.
    pub fn duty_for_flow(&self, needed: ThermalConductance) -> Option<Ratio> {
        if needed.value() <= 0.0 {
            return Some(Ratio::ZERO);
        }
        let d = needed.value() / self.rated_flow_capacity.value();
        if d > 1.0 {
            None
        } else {
            Some(Ratio::new(d.max(self.min_duty.value())))
        }
    }

    fn effective_duty(&self, duty: Ratio) -> f64 {
        if duty.value() == 0.0 {
            0.0
        } else {
            duty.value().max(self.min_duty.value())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pump() -> VariableFlowPump {
        VariableFlowPump::ev_pump()
    }

    #[test]
    fn full_speed_matches_ratings() {
        let p = pump();
        assert_eq!(p.flow_capacity(Ratio::ONE).value(), 1_050.0);
        assert_eq!(p.power(Ratio::ONE).value(), 250.0);
    }

    #[test]
    fn off_is_free() {
        let p = pump();
        assert_eq!(p.flow_capacity(Ratio::ZERO).value(), 0.0);
        assert_eq!(p.power(Ratio::ZERO).value(), 0.0);
    }

    #[test]
    fn cubic_affinity_law() {
        let p = pump();
        let half = p.power(Ratio::HALF).value();
        assert!((half - 250.0 * 0.125).abs() < 1e-9, "P(0.5) = {half}");
        // Half flow costs an eighth of the power: the variable-flow win.
        assert_eq!(p.flow_capacity(Ratio::HALF).value(), 525.0);
    }

    #[test]
    fn low_duties_clamp_to_minimum() {
        let p = pump();
        assert_eq!(
            p.flow_capacity(Ratio::new(0.05)).value(),
            1_050.0 * 0.2,
            "below min_duty clamps up"
        );
    }

    #[test]
    fn duty_for_flow_inverts_the_linear_law() {
        let p = pump();
        let d = p.duty_for_flow(ThermalConductance::new(700.0)).unwrap();
        assert!((p.flow_capacity(d).value() - 700.0).abs() < 1e-9);
        assert!(p.duty_for_flow(ThermalConductance::new(2_000.0)).is_none());
        assert_eq!(p.duty_for_flow(ThermalConductance::ZERO), Some(Ratio::ZERO));
        // Tiny demands clamp to the stall limit.
        let tiny = p.duty_for_flow(ThermalConductance::new(10.0)).unwrap();
        assert_eq!(tiny, Ratio::new(0.2));
    }

    #[test]
    fn energy_saving_versus_fixed_flow() {
        // Meeting a 400 W/K requirement: fixed-flow pays 250 W, the
        // variable pump pays the cube of ~0.38.
        let p = pump();
        let duty = p.duty_for_flow(ThermalConductance::new(400.0)).unwrap();
        let variable = p.power(duty).value();
        assert!(variable < 30.0, "variable pump at {variable} W");
        assert!(250.0 / variable > 8.0, "saving factor");
    }

    #[test]
    fn invalid_pump_rejected() {
        let mut p = VariableFlowPump::ev_pump();
        p.rated_power = Watts::ZERO;
        assert!(p.validate().is_err());
        let mut p = VariableFlowPump::ev_pump();
        p.min_duty = Ratio::ZERO;
        assert!(p.validate().is_err());
        assert!(VariableFlowPump::ev_pump().validate().is_ok());
    }
}
