//! The lumped two-node battery/coolant thermal model (paper Eq. 14–15,
//! discretised per Eq. 17).

use crate::error::ThermalError;
use otem_units::{HeatCapacity, Kelvin, KelvinPerSecond, Seconds, ThermalConductance, Watts};
use serde::{Deserialize, Serialize};

/// Parameters of the two-node thermal model.
///
/// All quantities are *pack level* lumps: per-cell heat capacities and
/// film coefficients are multiplied by the cell count / wetted area when
/// building a parameter set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalParams {
    /// Battery lump heat capacity `C_b` (J/K). ≈ cell count × 40 J/K.
    pub battery_heat_capacity: HeatCapacity,
    /// In-pack coolant lump heat capacity `C_c` (J/K).
    pub coolant_heat_capacity: HeatCapacity,
    /// Battery ↔ coolant conductance `h` (W/K) while coolant flows
    /// (the paper's `h_cb`/`h_bc` after lumping).
    pub battery_coolant_conductance: ThermalConductance,
    /// Coolant flow heat-capacity rate `Ċ_c = ṁ·c_p` (W/K): the fresh
    /// inlet flow term of Eq. 15. Zero models a plant with the pump off
    /// (or no cooling system at all).
    pub coolant_flow_capacity: ThermalConductance,
    /// Passive battery ↔ ambient conductance (W/K). Small; dominant only
    /// for architectures without active cooling.
    pub ambient_conductance: ThermalConductance,
    /// Ambient temperature the passive path leaks to.
    pub ambient_temperature: Kelvin,
}

impl ThermalParams {
    /// A pack of ≈ 7,100 cells with a liquid cooling loop, sized for a
    /// Tesla-S-like EV (see crate docs for the magnitudes).
    pub fn ev_pack() -> Self {
        Self {
            battery_heat_capacity: HeatCapacity::new(284_000.0),
            coolant_heat_capacity: HeatCapacity::new(17_500.0),
            battery_coolant_conductance: ThermalConductance::new(3_000.0),
            coolant_flow_capacity: ThermalConductance::new(1_050.0),
            ambient_conductance: ThermalConductance::new(30.0),
            ambient_temperature: Kelvin::from_celsius(25.0),
        }
    }

    /// The same pack with the cooling loop absent/off: no coolant flow,
    /// only the passive ambient path (Parallel \[15\] and Dual \[16\]
    /// baselines). Without the sealed liquid-cooling enclosure the cells
    /// sit in ambient air, so the passive conductance is substantially
    /// larger than the sealed pack's leakage.
    pub fn ev_pack_passive() -> Self {
        Self {
            coolant_flow_capacity: ThermalConductance::ZERO,
            ambient_conductance: ThermalConductance::new(100.0),
            ..Self::ev_pack()
        }
    }

    /// Thermal lumps for the 1,536-cell city-EV pack
    /// ([`ev_pack`](Self::ev_pack) scaled down): smaller heat capacity,
    /// faster response — temperature excursions play out within one
    /// drive cycle, as in the paper's Figs. 1 and 6.
    pub fn city_pack() -> Self {
        Self {
            battery_heat_capacity: HeatCapacity::new(61_400.0),
            coolant_heat_capacity: HeatCapacity::new(8_000.0),
            battery_coolant_conductance: ThermalConductance::new(2_500.0),
            coolant_flow_capacity: ThermalConductance::new(1_050.0),
            ambient_conductance: ThermalConductance::new(30.0),
            ambient_temperature: Kelvin::from_celsius(25.0),
        }
    }

    /// The city-EV pack without a cooling loop: natural convection only.
    /// Sustained aggressive driving generates more heat than this path
    /// sheds — the paper's motivation for combining the HEES with an
    /// active cooling system.
    pub fn city_pack_passive() -> Self {
        Self {
            coolant_flow_capacity: ThermalConductance::ZERO,
            ambient_conductance: ThermalConductance::new(80.0),
            ..Self::city_pack()
        }
    }

    /// Sets the ambient temperature (the paper evaluates several
    /// environment temperatures).
    pub fn with_ambient(mut self, ambient: Kelvin) -> Self {
        self.ambient_temperature = ambient;
        self
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for non-positive heat
    /// capacities, negative conductances, or a non-physical ambient
    /// temperature.
    pub fn validate(&self) -> Result<(), ThermalError> {
        if self.battery_heat_capacity.value() <= 0.0 {
            return Err(ThermalError::InvalidParameter {
                name: "battery_heat_capacity",
                value: self.battery_heat_capacity.value(),
                constraint: "> 0 J/K",
            });
        }
        if self.coolant_heat_capacity.value() <= 0.0 {
            return Err(ThermalError::InvalidParameter {
                name: "coolant_heat_capacity",
                value: self.coolant_heat_capacity.value(),
                constraint: "> 0 J/K",
            });
        }
        for (name, value) in [
            (
                "battery_coolant_conductance",
                self.battery_coolant_conductance.value(),
            ),
            ("coolant_flow_capacity", self.coolant_flow_capacity.value()),
            ("ambient_conductance", self.ambient_conductance.value()),
        ] {
            if value < 0.0 || !value.is_finite() {
                return Err(ThermalError::InvalidParameter {
                    name,
                    value,
                    constraint: ">= 0 W/K and finite",
                });
            }
        }
        if self.ambient_temperature.value() <= 0.0 {
            return Err(ThermalError::InvalidParameter {
                name: "ambient_temperature",
                value: self.ambient_temperature.value(),
                constraint: "> 0 K",
            });
        }
        Ok(())
    }
}

impl Default for ThermalParams {
    fn default() -> Self {
        Self::ev_pack()
    }
}

/// The two temperatures of the lumped model: paper state variables
/// `T_b` and `T_c`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalState {
    /// Battery lump temperature `T_b`.
    pub battery: Kelvin,
    /// In-pack coolant lump temperature `T_c`.
    pub coolant: Kelvin,
}

impl ThermalState {
    /// Both nodes at the same temperature (cold start).
    pub fn uniform(temperature: Kelvin) -> Self {
        Self {
            battery: temperature,
            coolant: temperature,
        }
    }
}

/// Exact sensitivities of one Crank–Nicolson step. Because the two-node
/// model is linear in its state and inputs, these depend only on the
/// parameters and the step length — constants reused across a whole MPC
/// horizon by the adjoint backward sweep.
///
/// Produced by [`ThermalModel::crank_nicolson_jacobian`]. Row arrays are
/// ordered `[∂·/∂T_b, ∂·/∂T_c]` (state rows) or `[∂T_b⁺/∂u, ∂T_c⁺/∂u]`
/// (input rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrankNicolsonJacobian {
    /// `[∂T_b⁺/∂T_b, ∂T_b⁺/∂T_c]` — next battery temperature in the
    /// prior state.
    pub d_battery: [f64; 2],
    /// `[∂T_c⁺/∂T_b, ∂T_c⁺/∂T_c]` — next coolant temperature in the
    /// prior state.
    pub d_coolant: [f64; 2],
    /// `[∂T_b⁺/∂Q, ∂T_c⁺/∂Q]` — both next temperatures in the battery
    /// heat input.
    pub d_battery_heat: [f64; 2],
    /// `[∂T_b⁺/∂T_in, ∂T_c⁺/∂T_in]` — both next temperatures in the
    /// coolant inlet temperature.
    pub d_inlet: [f64; 2],
}

/// The thermal model: derivative evaluation plus two integrators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    params: ThermalParams,
}

impl ThermalModel {
    /// Builds a model after validating the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] when validation fails.
    pub fn new(params: ThermalParams) -> Result<Self, ThermalError> {
        params.validate()?;
        Ok(Self { params })
    }

    /// The parameter set.
    pub fn params(&self) -> &ThermalParams {
        &self.params
    }

    /// Continuous-time derivatives (Eq. 14–15):
    ///
    /// * `C_b·dT_b/dt = h·(T_c − T_b) + h_amb·(T_amb − T_b) + Q_b`
    /// * `C_c·dT_c/dt = h·(T_b − T_c) + Ċ_c·(T_i − T_c)`
    pub fn derivatives(
        &self,
        state: ThermalState,
        battery_heat: Watts,
        inlet: Kelvin,
    ) -> (KelvinPerSecond, KelvinPerSecond) {
        let p = &self.params;
        let h = p.battery_coolant_conductance;
        let q_exchange: Watts = h * (state.coolant - state.battery);
        let q_ambient: Watts = p.ambient_conductance * (p.ambient_temperature - state.battery);
        let db = (q_exchange + q_ambient + battery_heat) / p.battery_heat_capacity.value();
        let q_back: Watts = h * (state.battery - state.coolant);
        let q_flow: Watts = p.coolant_flow_capacity * (inlet - state.coolant);
        let dc = (q_back + q_flow) / p.coolant_heat_capacity.value();
        (
            KelvinPerSecond::new(db.value()),
            KelvinPerSecond::new(dc.value()),
        )
    }

    /// One forward-Euler step (the discretisation ablation baseline).
    pub fn step_euler(
        &self,
        state: ThermalState,
        battery_heat: Watts,
        inlet: Kelvin,
        dt: Seconds,
    ) -> ThermalState {
        let (db, dc) = self.derivatives(state, battery_heat, inlet);
        ThermalState {
            battery: state.battery + db * dt,
            coolant: state.coolant + dc * dt,
        }
    }

    /// One Crank–Nicolson (trapezoidal) step — the implicit average the
    /// paper writes in Eq. 17. The two-node system is linear in the
    /// temperatures, so the step solves a 2×2 linear system exactly.
    ///
    /// Unconditionally stable: safe at the 1 s control period even though
    /// the coolant node's time constant is only a few seconds.
    pub fn step_crank_nicolson(
        &self,
        state: ThermalState,
        battery_heat: Watts,
        inlet: Kelvin,
        dt: Seconds,
    ) -> ThermalState {
        let (tb, tc) = crate::kernel::crank_nicolson(
            self.node_constants(),
            state.battery.value(),
            state.coolant.value(),
            battery_heat.value(),
            inlet.value(),
            dt.value(),
        );
        ThermalState {
            battery: Kelvin::new(tb),
            coolant: Kelvin::new(tc),
        }
    }

    /// The kernel-facing constants of the two-node system — what the
    /// batched SoA rollout hoists out of its lane loop.
    pub fn node_constants(&self) -> crate::kernel::NodeConstants<f64> {
        let p = &self.params;
        crate::kernel::NodeConstants {
            cb: p.battery_heat_capacity.value(),
            cc: p.coolant_heat_capacity.value(),
            h: p.battery_coolant_conductance.value(),
            f: p.coolant_flow_capacity.value(),
            ha: p.ambient_conductance.value(),
            t_ambient: p.ambient_temperature.value(),
        }
    }

    /// The exact Jacobian of [`ThermalModel::step_crank_nicolson`] for a
    /// fixed step length. The two-node system is linear, so these
    /// sensitivities are constants of the solve — compute once per MPC
    /// horizon and reuse at every step of the adjoint backward sweep.
    pub fn crank_nicolson_jacobian(&self, dt: Seconds) -> CrankNicolsonJacobian {
        let p = &self.params;
        let cb = p.battery_heat_capacity.value();
        let cc = p.coolant_heat_capacity.value();
        let h = p.battery_coolant_conductance.value();
        let f = p.coolant_flow_capacity.value();
        let ha = p.ambient_conductance.value();
        let dtv = dt.value();

        let a11 = -(h + ha) / cb;
        let a12 = h / cb;
        let a21 = h / cc;
        let a22 = -(h + f) / cc;
        let k = dtv / 2.0;
        let m11 = 1.0 - k * a11;
        let m12 = -k * a12;
        let m21 = -k * a21;
        let m22 = 1.0 - k * a22;
        let det = m11 * m22 - m12 * m21;
        // x⁺ = M⁻¹·((I + k·A)·x + dt·r): differentiate the solved linear
        // map in the prior state, the heat source (enters r1) and the
        // inlet temperature (enters r2).
        CrankNicolsonJacobian {
            d_battery: [
                ((1.0 + k * a11) * m22 - k * a21 * m12) / det,
                (k * a12 * m22 - (1.0 + k * a22) * m12) / det,
            ],
            d_coolant: [
                (k * a21 * m11 - (1.0 + k * a11) * m21) / det,
                ((1.0 + k * a22) * m11 - k * a12 * m21) / det,
            ],
            d_battery_heat: [(dtv / cb) * m22 / det, -(dtv / cb) * m21 / det],
            d_inlet: [-(dtv * f / cc) * m12 / det, (dtv * f / cc) * m11 / det],
        }
    }

    /// Steady-state temperatures under constant heat input and inlet
    /// temperature (sets both derivatives to zero). Useful for sizing
    /// checks and tests.
    pub fn equilibrium(&self, battery_heat: Watts, inlet: Kelvin) -> ThermalState {
        let p = &self.params;
        let h = p.battery_coolant_conductance.value();
        let f = p.coolant_flow_capacity.value();
        let ha = p.ambient_conductance.value();
        let q = battery_heat.value();
        let ta = p.ambient_temperature.value();
        let ti = inlet.value();
        // 0 = h(Tc−Tb) + ha(Ta−Tb) + q
        // 0 = h(Tb−Tc) + f(Ti−Tc)
        // From the second: Tc = (h·Tb + f·Ti)/(h+f)
        // Substitute into the first and solve for Tb.
        if h + f == 0.0 {
            // Isolated battery: balance against ambient only.
            let tb = if ha > 0.0 { ta + q / ha } else { f64::INFINITY };
            return ThermalState {
                battery: Kelvin::new(tb),
                coolant: Kelvin::new(tb),
            };
        }
        let alpha = h * f / (h + f); // effective battery→inlet conductance
        let tb = (alpha * ti + ha * ta + q) / (alpha + ha);
        let tc = (h * tb + f * ti) / (h + f);
        ThermalState {
            battery: Kelvin::new(tb),
            coolant: Kelvin::new(tc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ThermalModel {
        ThermalModel::new(ThermalParams::ev_pack()).expect("valid preset")
    }

    fn c(celsius: f64) -> Kelvin {
        Kelvin::from_celsius(celsius)
    }

    #[test]
    fn heating_raises_battery_temperature() {
        let m = model();
        let s0 = ThermalState::uniform(c(25.0));
        let s1 = m.step_crank_nicolson(s0, Watts::new(3_000.0), c(25.0), Seconds::new(60.0));
        assert!(s1.battery > s0.battery);
    }

    #[test]
    fn cold_inlet_cools_the_battery() {
        let m = model();
        let mut s = ThermalState::uniform(c(40.0));
        for _ in 0..600 {
            s = m.step_crank_nicolson(s, Watts::ZERO, c(15.0), Seconds::new(1.0));
        }
        assert!(s.battery < c(30.0), "battery stayed at {:?}", s.battery);
        assert!(s.coolant < s.battery);
    }

    #[test]
    fn converges_to_equilibrium() {
        let m = model();
        let q = Watts::new(2_000.0);
        let inlet = c(18.0);
        let eq = m.equilibrium(q, inlet);
        let mut s = ThermalState::uniform(c(25.0));
        for _ in 0..20_000 {
            s = m.step_crank_nicolson(s, q, inlet, Seconds::new(1.0));
        }
        assert!(
            (s.battery.value() - eq.battery.value()).abs() < 0.05,
            "battery {:?} vs equilibrium {:?}",
            s.battery,
            eq.battery
        );
        assert!((s.coolant.value() - eq.coolant.value()).abs() < 0.05);
    }

    #[test]
    fn equilibrium_has_zero_derivatives() {
        let m = model();
        let q = Watts::new(2_500.0);
        let inlet = c(12.0);
        let eq = m.equilibrium(q, inlet);
        let (db, dc) = m.derivatives(eq, q, inlet);
        assert!(db.value().abs() < 1e-9, "dT_b/dt = {db:?}");
        assert!(dc.value().abs() < 1e-9, "dT_c/dt = {dc:?}");
    }

    #[test]
    fn crank_nicolson_and_euler_agree_for_small_steps() {
        let m = model();
        let q = Watts::new(4_000.0);
        let inlet = c(10.0);
        let mut cn = ThermalState::uniform(c(30.0));
        let mut eu = cn;
        let dt = Seconds::new(0.05);
        for _ in 0..12_000 {
            cn = m.step_crank_nicolson(cn, q, inlet, dt);
            eu = m.step_euler(eu, q, inlet, dt);
        }
        assert!(
            (cn.battery.value() - eu.battery.value()).abs() < 0.02,
            "CN {:?} vs Euler {:?}",
            cn.battery,
            eu.battery
        );
    }

    #[test]
    fn crank_nicolson_stable_at_large_steps() {
        // Coolant time constant ≈ 4 s; Euler at dt = 10 s would ring or
        // blow up, CN must stay bounded and sane.
        let m = model();
        let mut s = ThermalState::uniform(c(30.0));
        for _ in 0..500 {
            s = m.step_crank_nicolson(s, Watts::new(1_000.0), c(20.0), Seconds::new(10.0));
            assert!(s.battery.value().is_finite());
            assert!((250.0..400.0).contains(&s.battery.value()));
        }
    }

    #[test]
    fn passive_pack_heats_far_above_ambient() {
        let m = ThermalModel::new(ThermalParams::ev_pack_passive()).unwrap();
        let eq = m.equilibrium(Watts::new(1_500.0), c(25.0));
        // 1.5 kW across a 100 W/K air path → 15 K above ambient; far
        // hotter than the actively cooled pack under the same load.
        assert!(eq.battery > c(39.0), "equilibrium {:?}", eq.battery);
        let cooled = ThermalModel::new(ThermalParams::ev_pack()).unwrap();
        assert!(cooled.equilibrium(Watts::new(1_500.0), c(15.0)).battery < eq.battery);
    }

    #[test]
    fn cooled_pack_holds_temperature_under_same_load() {
        let m = model();
        let eq = m.equilibrium(Watts::new(1_000.0), c(15.0));
        assert!(eq.battery < c(30.0), "equilibrium {:?}", eq.battery);
    }

    #[test]
    fn isolated_pack_equilibrium_is_ambient_balance() {
        let params = ThermalParams {
            battery_coolant_conductance: ThermalConductance::ZERO,
            coolant_flow_capacity: ThermalConductance::ZERO,
            ..ThermalParams::ev_pack()
        };
        let m = ThermalModel::new(params).unwrap();
        let eq = m.equilibrium(Watts::new(300.0), c(0.0));
        let expected = 25.0 + 300.0 / 30.0;
        assert!((eq.battery.to_celsius().value() - expected).abs() < 1e-9);
    }

    #[test]
    fn city_pack_responds_faster_than_ev_pack() {
        let big = ThermalModel::new(ThermalParams::ev_pack_passive()).unwrap();
        let small = ThermalModel::new(ThermalParams::city_pack_passive()).unwrap();
        let q = Watts::new(1_500.0);
        let mut sb = ThermalState::uniform(c(25.0));
        let mut ss = sb;
        for _ in 0..300 {
            sb = big.step_crank_nicolson(sb, q, sb.coolant, Seconds::new(1.0));
            ss = small.step_crank_nicolson(ss, q, ss.coolant, Seconds::new(1.0));
        }
        assert!(ss.battery > sb.battery, "{ss:?} vs {sb:?}");
        assert!(ThermalParams::city_pack().validate().is_ok());
        assert!(ThermalParams::city_pack_passive().validate().is_ok());
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut p = ThermalParams::ev_pack();
        p.battery_heat_capacity = HeatCapacity::new(0.0);
        assert!(ThermalModel::new(p).is_err());

        let mut p = ThermalParams::ev_pack();
        p.ambient_conductance = ThermalConductance::new(-1.0);
        assert!(ThermalModel::new(p).is_err());
    }

    #[test]
    fn with_ambient_overrides_environment() {
        let p = ThermalParams::ev_pack().with_ambient(c(35.0));
        assert_eq!(p.ambient_temperature, c(35.0));
    }

    #[test]
    fn crank_nicolson_jacobian_matches_finite_differences() {
        for params in [ThermalParams::ev_pack(), ThermalParams::city_pack()] {
            let m = ThermalModel::new(params).unwrap();
            let dt = Seconds::new(1.0);
            let jac = m.crank_nicolson_jacobian(dt);
            let base = ThermalState {
                battery: c(33.0),
                coolant: c(29.0),
            };
            let q = Watts::new(2_200.0);
            let inlet = c(21.0);
            let step = |s: ThermalState, q: Watts, inlet: Kelvin| -> (f64, f64) {
                let next = m.step_crank_nicolson(s, q, inlet, dt);
                (next.battery.value(), next.coolant.value())
            };
            // The CN step is affine in state and inputs, so a unit
            // central difference is exact up to rounding — no truncation
            // error, no cancellation on the small heat-input slopes.
            let h = 1.0;
            let check = |analytic: [f64; 2], plus: (f64, f64), minus: (f64, f64), what: &str| {
                let fd = [
                    (plus.0 - minus.0) / (2.0 * h),
                    (plus.1 - minus.1) / (2.0 * h),
                ];
                for (a, f) in analytic.iter().zip(fd) {
                    assert!(
                        (a - f).abs() <= 1e-6 * f.abs().max(1e-9),
                        "{what}: analytic {a} vs FD {f}"
                    );
                }
            };
            let bump_b = |d: f64| ThermalState {
                battery: Kelvin::new(base.battery.value() + d),
                ..base
            };
            let bump_c = |d: f64| ThermalState {
                coolant: Kelvin::new(base.coolant.value() + d),
                ..base
            };
            check(
                [jac.d_battery[0], jac.d_coolant[0]],
                step(bump_b(h), q, inlet),
                step(bump_b(-h), q, inlet),
                "∂/∂T_b",
            );
            check(
                [jac.d_battery[1], jac.d_coolant[1]],
                step(bump_c(h), q, inlet),
                step(bump_c(-h), q, inlet),
                "∂/∂T_c",
            );
            check(
                jac.d_battery_heat,
                step(base, Watts::new(q.value() + h), inlet),
                step(base, Watts::new(q.value() - h), inlet),
                "∂/∂Q",
            );
            check(
                jac.d_inlet,
                step(base, q, Kelvin::new(inlet.value() + h)),
                step(base, q, Kelvin::new(inlet.value() - h)),
                "∂/∂T_in",
            );
        }
    }
}
