//! Scalar-generic thermal step math.
//!
//! The Crank–Nicolson update of the coupled battery/coolant two-node
//! system (Eq. 14–17), written once against [`otem_units::Scalar`] and
//! monomorphised per scalar type. The concrete `f64` method
//! [`crate::ThermalModel::step_crank_nicolson`] delegates here — the
//! `f64` instantiation performs the *same operations in the same order*
//! as the pre-refactor hand-written code, so delegation is bit-identical
//! (the contract the golden traces pin).

use otem_units::Scalar;

/// The physical constants of the two-node system, pre-extracted from
/// `ThermalParams` so batched lanes can hoist them out of the lane loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeConstants<S> {
    /// Battery lump heat capacity `C_b` (J/K).
    pub cb: S,
    /// Coolant lump heat capacity `C_c` (J/K).
    pub cc: S,
    /// Battery↔coolant conductance `h` (W/K).
    pub h: S,
    /// Coolant flow capacity `f = ṁ·c_p` (W/K).
    pub f: S,
    /// Battery↔ambient conductance `h_a` (W/K).
    pub ha: S,
    /// Ambient temperature `T_a` (K).
    pub t_ambient: S,
}

/// One Crank–Nicolson step of `dx/dt = A·x + r` with `x = [T_b, T_c]`:
/// `(I − dt/2·A)·x⁺ = (I + dt/2·A)·x + dt·r`, solved by the explicit
/// 2×2 inverse. Returns the next `(T_b, T_c)` pair.
#[inline]
pub fn crank_nicolson<S: Scalar>(
    n: NodeConstants<S>,
    xb: S,
    xc: S,
    battery_heat: S,
    inlet: S,
    dt: S,
) -> (S, S) {
    let a11 = -(n.h + n.ha) / n.cb;
    let a12 = n.h / n.cb;
    let a21 = n.h / n.cc;
    let a22 = -(n.h + n.f) / n.cc;
    let r1 = (battery_heat + n.ha * n.t_ambient) / n.cb;
    let r2 = n.f * inlet / n.cc;

    let k = dt / S::from_f64(2.0);
    let m11 = S::ONE - k * a11;
    let m12 = -(k * a12);
    let m21 = -(k * a21);
    let m22 = S::ONE - k * a22;
    let b1 = xb + k * (a11 * xb + a12 * xc) + dt * r1;
    let b2 = xc + k * (a21 * xb + a22 * xc) + dt * r2;
    let det = m11 * m22 - m12 * m21;
    debug_assert!(det.abs().to_f64() > 1e-12, "CN system became singular");
    ((b1 * m22 - b2 * m12) / det, (b2 * m11 - b1 * m21) / det)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constants() -> NodeConstants<f64> {
        NodeConstants {
            cb: 2.0e5,
            cc: 2.0e4,
            h: 500.0,
            f: 350.0,
            ha: 15.0,
            t_ambient: 298.15,
        }
    }

    #[test]
    fn heating_raises_the_battery_node() {
        let (tb, tc) = crank_nicolson(constants(), 298.15, 298.15, 2_000.0, 288.15, 1.0);
        assert!(tb > 298.15, "T_b = {tb}");
        assert!(tc < 298.15, "cold inlet pulls the coolant node down");
    }

    #[test]
    fn zero_step_is_identity() {
        let (tb, tc) = crank_nicolson(constants(), 305.0, 300.0, 5_000.0, 290.0, 0.0);
        assert_eq!(tb, 305.0);
        assert_eq!(tc, 300.0);
    }

    #[cfg(feature = "f32")]
    #[test]
    fn f32_lanes_track_f64_within_single_precision() {
        let wide = crank_nicolson(constants(), 305.0, 300.0, 5_000.0, 290.0, 1.0).0;
        let n32 = NodeConstants::<f32> {
            cb: 2.0e5,
            cc: 2.0e4,
            h: 500.0,
            f: 350.0,
            ha: 15.0,
            t_ambient: 298.15,
        };
        let narrow = crank_nicolson(n32, 305.0, 300.0, 5_000.0, 290.0, 1.0).0 as f64;
        assert!((wide - narrow).abs() < 1e-2, "{wide} vs {narrow}");
    }
}
