//! The cooler + pump: electric power needed to chill the returned coolant
//! (paper Eq. 16) with actuator limits.

use crate::error::ThermalError;
use otem_units::{Kelvin, Ratio, ThermalConductance, Watts};
use serde::{Deserialize, Serialize};

/// Cooler/pump parameters (paper Section II-D).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlantParams {
    /// Coolant flow heat-capacity rate `Ċ_c` (W/K) — must match the
    /// thermal model's flow capacity.
    pub flow_capacity: ThermalConductance,
    /// Cooler efficiency `η_c` folding in the refrigeration cycle and the
    /// air-side exchange (an effective coefficient of performance).
    pub efficiency: Ratio,
    /// Maximum cooler electric power `P̄_c` (constraint C3).
    pub max_cooler_power: Watts,
    /// Coldest inlet temperature the plant can produce.
    pub min_inlet: Kelvin,
    /// Constant pump electric power while the loop runs (`P_m`; the paper
    /// fixes the flow rate, making this a constant).
    pub pump_power: Watts,
}

impl PlantParams {
    /// Plant matched to [`crate::ThermalParams::ev_pack`]: 1,050 W/K
    /// flow, 4 kW cooler, 250 W pump, and an 18 °C inlet floor (EV
    /// thermal systems do not chill the pack far below its optimal
    /// operating band).
    pub fn ev_plant() -> Self {
        Self {
            flow_capacity: ThermalConductance::new(1_050.0),
            efficiency: Ratio::new(1.0), // interpreted below; see note
            max_cooler_power: Watts::new(4_000.0),
            min_inlet: Kelvin::from_celsius(18.0),
            pump_power: Watts::new(250.0),
        }
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for non-positive flow,
    /// efficiency, cooler limit or inlet floor, or negative pump power.
    pub fn validate(&self) -> Result<(), ThermalError> {
        if self.flow_capacity.value() <= 0.0 {
            return Err(ThermalError::InvalidParameter {
                name: "flow_capacity",
                value: self.flow_capacity.value(),
                constraint: "> 0 W/K",
            });
        }
        if self.efficiency.value() <= 0.0 {
            return Err(ThermalError::InvalidParameter {
                name: "efficiency",
                value: self.efficiency.value(),
                constraint: "> 0",
            });
        }
        if self.max_cooler_power.value() <= 0.0 {
            return Err(ThermalError::InvalidParameter {
                name: "max_cooler_power",
                value: self.max_cooler_power.value(),
                constraint: "> 0 W",
            });
        }
        if self.min_inlet.value() <= 0.0 {
            return Err(ThermalError::InvalidParameter {
                name: "min_inlet",
                value: self.min_inlet.value(),
                constraint: "> 0 K",
            });
        }
        if self.pump_power.value() < 0.0 {
            return Err(ThermalError::InvalidParameter {
                name: "pump_power",
                value: self.pump_power.value(),
                constraint: ">= 0 W",
            });
        }
        Ok(())
    }
}

impl Default for PlantParams {
    fn default() -> Self {
        Self::ev_plant()
    }
}

/// The realised cooling action for one control period: what inlet
/// temperature was actually achieved and what it cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoolerAction {
    /// Achieved inlet temperature `T_i` after clamping to actuator
    /// limits.
    pub inlet: Kelvin,
    /// Cooler electric power `P_c` (Eq. 16).
    pub cooler_power: Watts,
    /// Pump electric power `P_m` (zero when the loop idles).
    pub pump_power: Watts,
}

impl CoolerAction {
    /// The plant doing nothing (loop off): inlet equals outlet, no power.
    pub fn idle(outlet: Kelvin) -> Self {
        Self {
            inlet: outlet,
            cooler_power: Watts::ZERO,
            pump_power: Watts::ZERO,
        }
    }

    /// Total electric power drawn from the bus.
    pub fn total_power(&self) -> Watts {
        self.cooler_power + self.pump_power
    }
}

/// The active cooling plant: maps a requested inlet temperature to a
/// feasible one and prices it (Eq. 16 with constraints C2–C3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoolingPlant {
    params: PlantParams,
}

impl CoolingPlant {
    /// Builds a plant after validating the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] when validation fails.
    pub fn new(params: PlantParams) -> Result<Self, ThermalError> {
        params.validate()?;
        Ok(Self { params })
    }

    /// The parameter set.
    pub fn params(&self) -> &PlantParams {
        &self.params
    }

    /// Electric power needed to supply coolant at `inlet` given the loop
    /// returns it at `outlet` (Eq. 16): `P_c = Ċ_c/η_c · (T_o − T_i)`.
    /// Zero when `inlet ≥ outlet` (constraint C2: the cooler only cools).
    pub fn power_for_inlet(&self, outlet: Kelvin, inlet: Kelvin) -> Watts {
        let dt = outlet.value() - inlet.value();
        if dt <= 0.0 {
            return Watts::ZERO;
        }
        Watts::new(self.params.flow_capacity.value() / self.params.efficiency.value() * dt)
    }

    /// Coldest inlet achievable right now given the outlet temperature
    /// and the cooler power limit.
    pub fn coldest_inlet(&self, outlet: Kelvin) -> Kelvin {
        let max_drop = self.params.max_cooler_power.value() * self.params.efficiency.value()
            / self.params.flow_capacity.value();
        // The floor cannot exceed the outlet itself: if the loop already
        // runs colder than `min_inlet`, the best the plant can do is pass
        // the coolant through unchanged.
        let floor = self.params.min_inlet.value().min(outlet.value());
        Kelvin::new((outlet.value() - max_drop).max(floor))
    }

    /// Slope of [`CoolingPlant::coldest_inlet`] in the outlet
    /// temperature — a branch indicator for the adjoint backward sweep:
    ///
    /// * `1.0` when the cooler is power-limited (`outlet − max_drop`
    ///   wins) or when the pass-through floor binds (`floor = outlet`),
    /// * `0.0` when the fixed `min_inlet` floor binds.
    pub fn coldest_inlet_slope(&self, outlet: Kelvin) -> f64 {
        let max_drop = self.params.max_cooler_power.value() * self.params.efficiency.value()
            / self.params.flow_capacity.value();
        let floor = self.params.min_inlet.value().min(outlet.value());
        if outlet.value() - max_drop >= floor {
            1.0
        } else if self.params.min_inlet.value() < outlet.value() {
            0.0
        } else {
            1.0
        }
    }

    /// Realises a requested inlet temperature: clamps it into
    /// `[coldest_inlet, outlet]` and prices the result. The pump runs
    /// whenever the loop is active.
    pub fn actuate(&self, outlet: Kelvin, requested_inlet: Kelvin) -> CoolerAction {
        let inlet = Kelvin::new(
            requested_inlet
                .value()
                .max(self.coldest_inlet(outlet).value())
                .min(outlet.value()),
        );
        CoolerAction {
            inlet,
            cooler_power: self.power_for_inlet(outlet, inlet),
            pump_power: self.params.pump_power,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plant() -> CoolingPlant {
        CoolingPlant::new(PlantParams::ev_plant()).expect("valid preset")
    }

    fn c(celsius: f64) -> Kelvin {
        Kelvin::from_celsius(celsius)
    }

    #[test]
    fn cooling_power_proportional_to_drop() {
        let p = plant();
        let p1 = p.power_for_inlet(c(30.0), c(28.0));
        let p2 = p.power_for_inlet(c(30.0), c(26.0));
        assert!((p2.value() - 2.0 * p1.value()).abs() < 1e-9);
    }

    #[test]
    fn heating_request_costs_nothing() {
        let p = plant();
        assert_eq!(p.power_for_inlet(c(20.0), c(25.0)), Watts::ZERO);
    }

    #[test]
    fn actuate_clamps_to_power_limit() {
        let p = plant();
        // Ask for an absurdly cold inlet; the achieved one must respect
        // the 4 kW cooler limit and the 10 °C floor.
        let action = p.actuate(c(35.0), c(-40.0));
        assert!(action.cooler_power <= p.params().max_cooler_power + Watts::new(1e-9));
        assert!(action.inlet >= p.params().min_inlet);
        assert!(action.inlet < c(35.0));
    }

    #[test]
    fn actuate_never_heats() {
        let p = plant();
        let action = p.actuate(c(22.0), c(30.0));
        assert_eq!(action.inlet, c(22.0)); // clamped down to the outlet
        assert_eq!(action.cooler_power, Watts::ZERO);
        // Pump still runs while the loop is active.
        assert_eq!(action.pump_power, p.params().pump_power);
    }

    #[test]
    fn idle_action_is_free() {
        let a = CoolerAction::idle(c(28.0));
        assert_eq!(a.total_power(), Watts::ZERO);
        assert_eq!(a.inlet, c(28.0));
    }

    #[test]
    fn coldest_inlet_respects_floor() {
        let p = plant();
        // From a barely-warm outlet the floor binds, not the power limit.
        assert_eq!(p.coldest_inlet(c(19.0)), p.params().min_inlet);
        // If the loop already runs below the floor, pass-through is the
        // best the plant can do.
        assert_eq!(p.coldest_inlet(c(11.0)), c(11.0));
    }

    #[test]
    fn achieved_power_matches_formula() {
        let p = plant();
        let action = p.actuate(c(32.0), c(29.0));
        let expected = 1_050.0 / 1.0 * 3.0;
        assert!((action.cooler_power.value() - expected).abs() < 1e-9);
        assert!((action.total_power().value() - expected - 250.0).abs() < 1e-9);
    }

    #[test]
    fn coldest_inlet_slope_matches_finite_differences_per_branch() {
        let p = plant();
        // Hot outlet: power-limited branch, slope 1. Warm outlet: the
        // 18 °C floor binds, slope 0. Cold outlet: pass-through, slope 1.
        for (celsius, expected) in [(35.0, 1.0), (19.0, 0.0), (11.0, 1.0)] {
            let slope = p.coldest_inlet_slope(c(celsius));
            assert_eq!(slope, expected, "branch at {celsius} °C");
            let h = 1e-5;
            let fd = (p.coldest_inlet(c(celsius + h)).value()
                - p.coldest_inlet(c(celsius - h)).value())
                / (2.0 * h);
            assert!((slope - fd).abs() < 1e-6, "slope {slope} vs FD {fd}");
        }
    }

    #[test]
    fn invalid_plant_rejected() {
        let mut p = PlantParams::ev_plant();
        p.efficiency = Ratio::ZERO;
        assert!(CoolingPlant::new(p).is_err());

        let mut p = PlantParams::ev_plant();
        p.max_cooler_power = Watts::ZERO;
        assert!(CoolingPlant::new(p).is_err());
    }
}
