//! Active battery cooling system for the OTEM simulator.
//!
//! Implements Section II-D of the OTEM paper (DATE 2016):
//!
//! * **Battery/coolant energy balance** (Eq. 14–15): both the battery
//!   cells and the coolant inside the pack are lumped by their heat
//!   capacities; the battery node receives the cells' internal heat
//!   `Q_b` and exchanges with the coolant through a conductance `h`; the
//!   coolant node additionally exchanges with the pumped inlet flow at
//!   temperature `T_i`.
//! * **Cooler power** (Eq. 16): `P_c = Ċ_c/η_c · (T_o − T_i)` — chilling
//!   the returned coolant below its outlet temperature costs power in
//!   proportion to the temperature drop.
//! * **Pump**: fixed flow rate ⇒ constant power while running.
//! * **Discretisation** (Eq. 17): Crank–Nicolson on the coupled linear
//!   two-node system (exactly the trapezoidal form the paper writes), with
//!   a forward-Euler alternative for the discretisation ablation.
//!
//! Architectures *without* active cooling (the Parallel \[15\] and Dual
//! \[16\] baselines) are modelled by zero coolant flow and a small passive
//! battery↔ambient conductance.
//!
//! # Examples
//!
//! ```
//! use otem_thermal::{ThermalModel, ThermalParams, ThermalState};
//! use otem_units::{Kelvin, Seconds, Watts};
//!
//! # fn main() -> Result<(), otem_thermal::ThermalError> {
//! let model = ThermalModel::new(ThermalParams::ev_pack())?;
//! let mut state = ThermalState::uniform(Kelvin::from_celsius(25.0));
//! // One second of 2 kW cell heating with 15 °C coolant coming in:
//! state = model.step_crank_nicolson(
//!     state,
//!     Watts::new(2_000.0),
//!     Kelvin::from_celsius(15.0),
//!     Seconds::new(1.0),
//! );
//! assert!(state.battery > Kelvin::from_celsius(24.9));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod cooler;
mod error;
pub mod kernel;
mod model;
mod multi_node;
mod pump;

pub use cooler::{CoolerAction, CoolingPlant, PlantParams};
pub use error::ThermalError;
pub use model::{CrankNicolsonJacobian, ThermalModel, ThermalParams, ThermalState};
pub use multi_node::{MultiNodeModel, MultiNodeState};
pub use pump::VariableFlowPump;
