//! Error type for the thermal models.

use std::error::Error;
use std::fmt;

/// Errors returned by the thermal plant models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ThermalError {
    /// A parameter was outside its physically meaningful range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(
                f,
                "invalid thermal parameter {name} = {value}: must satisfy {constraint}"
            ),
        }
    }
}

impl Error for ThermalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ThermalError>();
    }

    #[test]
    fn display_names_parameter() {
        let e = ThermalError::InvalidParameter {
            name: "battery_heat_capacity",
            value: -1.0,
            constraint: "> 0",
        };
        assert!(e.to_string().contains("battery_heat_capacity"));
    }
}
